#!/usr/bin/env bash
# Quantifies the allocation-free query hot path (flat hash sketch index +
# reusable sketch scratch) against the pre-overhaul CSR + allocating path.
#
# Runs the BM_Hotpath* family of bench_micro in the Release build with
# repetitions, keeps the median of each series, and writes a summary JSON
# (default: BENCH_hotpath.json at the repo root) with the derived speedups.
# Exits non-zero if the end-to-end map_segment speedup drops below 1.5x.
#
# Usage: scripts/bench_hotpath.sh [output.json]
#   JEM_BENCH_REPS     repetitions per benchmark (default 5)
#   JEM_BENCH_MIN_TIME min seconds per repetition (default 0.5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${JEM_BENCH_REPS:-5}"
MIN_TIME="${JEM_BENCH_MIN_TIME:-0.5}"
OUT="${1:-BENCH_hotpath.json}"
RAW="build/bench_hotpath_raw.json"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build --target bench_micro jem_map

# Metrics snapshot of a demo run (docs/observability.md): embedded in the
# summary so a regression report carries its own hot-path counters
# (sketch hit rate, probe lengths, candidates per segment).
METRICS="build/bench_hotpath_metrics.json"
./build/examples/jem_map --demo --metrics "$METRICS" \
  --output /dev/null >/dev/null

./build/bench/bench_micro \
  --benchmark_filter='^BM_Hotpath' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$RAW" --benchmark_out_format=json

python3 - "$RAW" "$OUT" "$REPS" "$METRICS" <<'PY'
import json
import sys

raw_path, out_path, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
raw = json.load(open(raw_path))
metrics = json.load(open(sys.argv[4]))

medians = {}
for bench in raw["benchmarks"]:
    if bench.get("aggregate_name") != "median":
        continue
    name = bench["run_name"]
    medians[name] = {
        "cpu_time_ns": bench["cpu_time"],
        "real_time_ns": bench["real_time"],
    }
    if "items_per_second" in bench:
        medians[name]["items_per_second"] = bench["items_per_second"]

def speedup(baseline, fast):
    return medians[baseline]["cpu_time_ns"] / medians[fast]["cpu_time_ns"]

speedups = {
    # Single-key probe: frozen-CSR binary search vs flat hash index.
    "lookup_flat_vs_csr":
        speedup("BM_HotpathCsrLookup", "BM_HotpathFlatIndexLookup"),
    # Segment sketching: pre-overhaul deque kernel vs reusable scratch.
    "sketch_scratch_vs_reference":
        speedup("BM_HotpathSketchReference", "BM_HotpathSketchScratch"),
    # Segment sketching: current allocating API vs reusable scratch.
    "sketch_scratch_vs_alloc":
        speedup("BM_HotpathSketchAlloc", "BM_HotpathSketchScratch"),
    # End-to-end query mapping: pre-overhaul CSR+alloc path vs hot path.
    "map_segment_hot_vs_reference":
        speedup("BM_HotpathMapSegmentReference", "BM_HotpathMapSegment"),
}

summary = {
    "generated_by": "scripts/bench_hotpath.sh",
    "benchmark_binary": "build/bench/bench_micro",
    "repetitions": reps,
    "aggregate": "median",
    "benchmarks": medians,
    "speedups": {k: round(v, 3) for k, v in speedups.items()},
    "engine_segments_per_second": round(
        medians["BM_HotpathEngineSegmentsPerSec"]["items_per_second"], 1),
    # Demo-run metrics snapshot (docs/observability.md): the hot-path
    # counters that explain a throughput shift (hit rate, probe lengths).
    "metrics": metrics["metrics"],
    "acceptance": {
        "criterion": "map_segment_hot_vs_reference >= 1.5",
        "pass": speedups["map_segment_hot_vs_reference"] >= 1.5,
    },
}

with open(out_path, "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print(json.dumps(summary["speedups"], indent=2))
ok = summary["acceptance"]["pass"]
print("hot-path acceptance:", "PASS" if ok else "FAIL")
sys.exit(0 if ok else 1)
PY
