#!/usr/bin/env bash
# Full local check: configure, build (warnings-as-errors), run the test
# suite, then every benchmark/table/figure driver. This is what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Deprecation guard: the deprecated map_reads_* entry points must not be
# used inside src/ (the -Werror build catches direct use; this catches
# anyone silencing the warning instead of migrating to MappingEngine).
if grep -rn "deprecated-declarations" src/; then
  echo "error: deprecation-warning suppression found in src/" >&2
  exit 1
fi

# Engine + chaos + serve concurrency tests under ThreadSanitizer: the
# bounded queue, the streaming pipeline and the mpisim fault paths are the
# lock-based concurrency in the library, the chaos suite drives them
# through aborts/timeouts (docs/robustness.md), and the serve suite runs a
# live MappingServer with concurrent clients (docs/serve.md).
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
  -DJEM_BUILD_BENCH=OFF -DJEM_BUILD_EXAMPLES=OFF
cmake --build build-tsan --target test_engine test_chaos test_obs test_serve
ctest --test-dir build-tsan --output-on-failure \
  -R 'Engine|BoundedQueue|Chaos|FaultPlan|Property|Counter|Gauge|Histogram|Registry|MetricsSnapshot|Tracer|StagedChaosTrace|Window|OpenMetrics|TraceContext|Http|Lru|MappingServ|ServeObservability|ServiceConfig|MapServiceRequest|Cli|Resilience|CircuitBreaker'

# The same suites under AddressSanitizer + UndefinedBehaviorSanitizer: the
# fault-injection shutdown paths (worker aborts, queue closes, partial
# drains) are where lifetime bugs would hide. The persistence suites ride
# along (docs/persistence.md): every artifact corruption case — truncation,
# bit rot, torn journal records, stale resume state — must be detected as a
# structured error without tripping ASan/UBSan while parsing hostile bytes.
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
  -DJEM_BUILD_BENCH=OFF -DJEM_BUILD_EXAMPLES=ON
cmake --build build-asan --target test_engine test_chaos test_io test_core \
  test_obs test_serve jem obs_check
ctest --test-dir build-asan --output-on-failure \
  -R 'Engine|BoundedQueue|Chaos|FaultPlan|Property|Xxh64|Artifact|AtomicWriteFile|Checkpoint|MappingOutput|MappingWriter|IndexSerde|Gzip|Json|Counter|Gauge|Histogram|Registry|MetricsSnapshot|Tracer|StagedChaosTrace|Window|OpenMetrics|TraceContext|Http|Lru|MappingServ|ServeObservability|ServiceConfig|MapServiceRequest|Cli|Resilience|CircuitBreaker'

# Hot-path bench smoke (the default build type is Release): a short run of
# the BM_Hotpath* family catches wiring regressions in the flat-index /
# scratch-kernel benches early. scripts/bench_hotpath.sh does the real
# measurement and writes BENCH_hotpath.json.
./build/bench/bench_micro --benchmark_filter='^BM_Hotpath' \
  --benchmark_min_time=0.02

for b in build/bench/*; do
  if [[ -f "$b" && -x "$b" ]]; then
    echo "== $b =="
    "$b"
  fi
done

for e in quickstart hybrid_scaffold hybrid_pipeline parameter_study; do
  echo "== examples/$e =="
  "./build/examples/$e"
done
./build/examples/jem_map --demo --output /tmp/jem_check.tsv

# Metrics smoke (docs/observability.md): a demo run and a 4-rank
# distributed run must produce a metrics snapshot and a Chrome trace that
# obs_check accepts — parseable JSON, schema fields present, B/E span
# pairs matched on every track.
./build/examples/jem_map --demo --metrics /tmp/jem_check_m.json \
  --trace /tmp/jem_check_t.json --progress --output /tmp/jem_check.tsv
./build/examples/obs_check --metrics /tmp/jem_check_m.json \
  --trace /tmp/jem_check_t.json
./build/examples/jem_map --demo --ranks 4 --metrics /tmp/jem_check_m4.json \
  --trace /tmp/jem_check_t4.json --output /tmp/jem_check.tsv
./build/examples/obs_check --metrics /tmp/jem_check_m4.json \
  --trace /tmp/jem_check_t4.json
grep -q 'distributed.rank3.map_ns' /tmp/jem_check_m4.json
grep -q 'mpisim.allgatherv.rank0.sent_bytes' /tmp/jem_check_m4.json
echo "metrics smoke: ok"

# Serve smoke (docs/serve.md): start an always-on demo server on an
# ephemeral port, hammer it with concurrent clients via `jem probe`,
# validate the /metrics body with obs_check, then require a clean SIGTERM
# drain (exit 0). Runs against the Release build and again under
# ASan/UBSan, where lifetime bugs in the connection/batcher shutdown
# ordering would surface.
serve_smoke() {
  local bindir="$1"
  local dir
  dir=$(mktemp -d /tmp/jem_serve_smoke.XXXXXX)
  "$bindir/examples/jem" serve --demo --port 0 --port-file "$dir/port" &
  local serve_pid=$!
  for _ in $(seq 1 200); do
    [[ -s "$dir/port" ]] && break
    sleep 0.05
  done
  if [[ ! -s "$dir/port" ]]; then
    echo "error: jem serve never published its port" >&2
    kill "$serve_pid" 2>/dev/null || true
    return 1
  fi
  "$bindir/examples/jem" probe --port "$(cat "$dir/port")" --demo \
    --requests 24 --clients 6 --healthz-out "$dir/healthz.json" \
    --metrics-out "$dir/metrics.json" \
    --openmetrics-out "$dir/metrics.om" --requests-out "$dir/requests.json"
  "$bindir/examples/obs_check" --metrics "$dir/metrics.json"
  # Content negotiation (docs/observability.md): the same /metrics endpoint
  # must serve JSON by default and valid OpenMetrics text on request, and
  # /debug/requests must return a well-formed flight-recorder dump.
  "$bindir/examples/obs_check" --openmetrics "$dir/metrics.om"
  "$bindir/examples/obs_check" --flight "$dir/requests.json"
  grep -q '"status":"ok"' "$dir/healthz.json"
  grep -q '"slo"' "$dir/healthz.json"
  grep -q 'serve.http.requests' "$dir/metrics.json"
  grep -q 'jem_serve_http_requests_total' "$dir/metrics.om"
  grep -q 'jem_serve_slo_latency_ns' "$dir/metrics.om"
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  rm -rf "$dir"
}
echo "== serve smoke (Release) =="
serve_smoke build
echo "== serve smoke (ASan/UBSan) =="
serve_smoke build-asan
echo "serve smoke: ok"

# Serve chaos smoke (docs/serve.md "Failure modes & recovery"): the same
# demo server, now running a seeded fault plan — random connection resets
# and injected latency plus a scripted batcher abort and worker abort — with
# a hot-swap artifact armed. `jem probe` drives it through the resilient
# client and fires POST /admin/reload mid-load; every request must still
# complete, the supervisor must have respawned both aborted threads, the
# epoch must have advanced, and the drain must stay clean. Runs against
# Release and again under ASan/UBSan.
serve_chaos_smoke() {
  local bindir="$1"
  local dir
  dir=$(mktemp -d /tmp/jem_serve_chaos.XXXXXX)
  "$bindir/examples/jem" build-index --demo --output "$dir/demo.jemidx"
  "$bindir/examples/jem" serve --demo --port 0 --port-file "$dir/port" \
    --cache 0 --chaos-seed 7 --chaos-delay 0.05 --chaos-drop 0.08 \
    --chaos-abort-at serve.batch:4,serve.read:11 \
    --reload-index "$dir/demo.jemidx" &
  local serve_pid=$!
  for _ in $(seq 1 200); do
    [[ -s "$dir/port" ]] && break
    sleep 0.05
  done
  if [[ ! -s "$dir/port" ]]; then
    echo "error: jem serve (chaos) never published its port" >&2
    kill "$serve_pid" 2>/dev/null || true
    return 1
  fi
  "$bindir/examples/jem" probe --port "$(cat "$dir/port")" --demo \
    --requests 60 --clients 6 --retries 6 \
    --admin-reload "$dir/demo.jemidx" \
    --healthz-out "$dir/healthz.json" --metrics-out "$dir/metrics.json"
  "$bindir/examples/obs_check" --metrics "$dir/metrics.json"
  grep -q 'serve.chaos.injected.reset' "$dir/metrics.json"
  grep -q 'serve.supervisor.worker_restarts' "$dir/metrics.json"
  grep -q 'serve.reload.success' "$dir/metrics.json"
  grep -q '"status":"ok"' "$dir/healthz.json"
  grep -q '"epoch":1' "$dir/healthz.json"
  grep -Eq '"worker_restarts":[1-9]' "$dir/healthz.json"
  grep -Eq '"batcher_restarts":[1-9]' "$dir/healthz.json"
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  rm -rf "$dir"
}
echo "== serve chaos smoke (Release) =="
serve_chaos_smoke build
echo "== serve chaos smoke (ASan/UBSan) =="
serve_chaos_smoke build-asan
echo "serve chaos smoke: ok"

# Subcommand-shim golden (docs/serve.md): the legacy jem_map entry point is
# a shim over `jem map`; a demo run through each must produce byte-identical
# mappings.
./build/examples/jem_map --demo --output /tmp/jem_check_shim.tsv
./build/examples/jem map --demo --output /tmp/jem_check_sub.tsv
cmp /tmp/jem_check_shim.tsv /tmp/jem_check_sub.tsv
echo "shim golden: byte-identical"

# Kill-and-resume smoke (docs/persistence.md): SIGKILL a checkpointed
# streaming run mid-flight, resume it, and require the published output to
# be byte-identical to an uninterrupted run. If the kill happens to land
# after completion the resume exercises the journal-gone full-re-run
# fallback instead — either way the diff must be empty.
SMOKE=/tmp/jem_ckpt_smoke
rm -rf "$SMOKE" && mkdir -p "$SMOKE"
./build/examples/make_dataset --preset "E. coli" --prefix "$SMOKE/ds" \
  --cap-bp 300000
./build/examples/jem_map --subjects "$SMOKE/ds_contigs.fa" \
  --queries "$SMOKE/ds_reads.fq.gz" --output "$SMOKE/golden.tsv"
./build/examples/jem_map --subjects "$SMOKE/ds_contigs.fa" \
  --queries "$SMOKE/ds_reads.fq.gz" --output "$SMOKE/out.tsv" \
  --batch 20 --checkpoint "$SMOKE/run.ckpt" &
JEM_PID=$!
sleep 0.05
kill -9 "$JEM_PID" 2>/dev/null || true
wait "$JEM_PID" 2>/dev/null || true
./build/examples/jem_map --subjects "$SMOKE/ds_contigs.fa" \
  --queries "$SMOKE/ds_reads.fq.gz" --output "$SMOKE/out.tsv" \
  --batch 20 --checkpoint "$SMOKE/run.ckpt" --resume
diff "$SMOKE/golden.tsv" "$SMOKE/out.tsv"
echo "kill-and-resume smoke: byte-identical"
rm -rf "$SMOKE"
echo "ALL CHECKS PASSED"
