#!/usr/bin/env bash
# Full local check: configure, build (warnings-as-errors), run the test
# suite, then every benchmark/table/figure driver. This is what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [[ -x "$b" ]]; then
    echo "== $b =="
    "$b"
  fi
done

for e in quickstart hybrid_scaffold hybrid_pipeline parameter_study; do
  echo "== examples/$e =="
  "./build/examples/$e"
done
./build/examples/jem_map --demo --output /tmp/jem_check.tsv
echo "ALL CHECKS PASSED"
