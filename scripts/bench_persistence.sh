#!/usr/bin/env bash
# Quantifies the index persistence trade-off (docs/persistence.md): what
# --load-index buys over rebuilding the sketch index from FASTA, plus the
# raw serialize/deserialize/disk-load throughput of the JEMIDX1 artifact.
#
# Runs the BM_IndexLoad* family of bench_micro in the Release build with
# repetitions, keeps the median of each series, and writes a summary JSON
# (default: BENCH_persistence.json at the repo root) with the derived
# speedups. Exits non-zero if loading the index is not at least 5x faster
# than rebuilding it.
#
# Usage: scripts/bench_persistence.sh [output.json]
#   JEM_BENCH_REPS     repetitions per benchmark (default 5)
#   JEM_BENCH_MIN_TIME min seconds per repetition (default 0.5)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${JEM_BENCH_REPS:-5}"
MIN_TIME="${JEM_BENCH_MIN_TIME:-0.5}"
OUT="${1:-BENCH_persistence.json}"
RAW="build/bench_persistence_raw.json"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build --target bench_micro jem_map

# Metrics snapshot of a save+load round trip (docs/observability.md):
# embedded in the summary so the io.index_cache.* counters of the
# measured configuration travel with the numbers.
METRICS="build/bench_persistence_metrics.json"
IDX="build/bench_persistence_demo.idx"
./build/examples/jem_map --demo --save-index "$IDX" \
  --output /dev/null >/dev/null
./build/examples/jem_map --demo --load-index "$IDX" --metrics "$METRICS" \
  --output /dev/null >/dev/null
rm -f "$IDX"

./build/bench/bench_micro \
  --benchmark_filter='^BM_IndexLoad' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$RAW" --benchmark_out_format=json

python3 - "$RAW" "$OUT" "$REPS" "$METRICS" <<'PY'
import json
import sys

raw_path, out_path, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
raw = json.load(open(raw_path))
metrics = json.load(open(sys.argv[4]))

medians = {}
for bench in raw["benchmarks"]:
    if bench.get("aggregate_name") != "median":
        continue
    name = bench["run_name"]
    medians[name] = {
        "cpu_time_ns": bench["cpu_time"],
        "real_time_ns": bench["real_time"],
    }
    for counter in ("items_per_second", "bytes_per_second"):
        if counter in bench:
            medians[name][counter] = bench[counter]

def speedup(baseline, fast):
    return medians[baseline]["cpu_time_ns"] / medians[fast]["cpu_time_ns"]

speedups = {
    # The headline: deserialize+validate an artifact vs sketch the same
    # subject set from scratch (what --load-index saves per run).
    "load_from_disk_vs_rebuild":
        speedup("BM_IndexLoadBuildFromFasta", "BM_IndexLoadFromDisk"),
    # In-memory deserialize vs rebuild (excludes file I/O).
    "deserialize_vs_rebuild":
        speedup("BM_IndexLoadBuildFromFasta", "BM_IndexLoadDeserialize"),
    # Artifact write cost relative to a rebuild (how cheap --save-index is).
    "rebuild_vs_serialize":
        speedup("BM_IndexLoadBuildFromFasta", "BM_IndexLoadSerialize"),
}

summary = {
    "generated_by": "scripts/bench_persistence.sh",
    "benchmark_binary": "build/bench/bench_micro",
    "repetitions": reps,
    "aggregate": "median",
    "benchmarks": medians,
    "speedups": {k: round(v, 3) for k, v in speedups.items()},
    # Round-trip metrics snapshot: io.index_cache.hits must be 1 here.
    "metrics": metrics["metrics"],
    "acceptance": {
        "criterion": "load_from_disk_vs_rebuild >= 5",
        "pass": speedups["load_from_disk_vs_rebuild"] >= 5,
    },
}

with open(out_path, "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")

print(json.dumps(summary["speedups"], indent=2))
ok = summary["acceptance"]["pass"]
print("persistence acceptance:", "PASS" if ok else "FAIL")
sys.exit(0 if ok else 1)
PY
