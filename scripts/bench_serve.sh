#!/usr/bin/env bash
# Measures the always-on mapping service (docs/serve.md): request latency
# percentiles and throughput of a live MappingServer under concurrent load,
# via bench/bench_serve. Writes a summary JSON (default: BENCH_serve.json at
# the repo root) with p50/p99 latency and req/s.
#
# Usage: scripts/bench_serve.sh [output.json]
#   JEM_BENCH_SERVE_REQUESTS total requests       (default 2000)
#   JEM_BENCH_SERVE_CLIENTS  concurrent clients   (default 8)
#   JEM_BENCH_SERVE_WORKERS  server workers       (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${JEM_BENCH_SERVE_REQUESTS:-2000}"
CLIENTS="${JEM_BENCH_SERVE_CLIENTS:-8}"
WORKERS="${JEM_BENCH_SERVE_WORKERS:-4}"
OUT="${1:-BENCH_serve.json}"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build --target bench_serve

# Cold run (cache off): every request pays the map kernel.
./build/bench/bench_serve --requests "$REQUESTS" --clients "$CLIENTS" \
  --workers "$WORKERS" --cache 0 --out "$OUT"

# Warm run (default cache): repeated segments come from the LRU. Printed for
# comparison; the JSON keeps the cold numbers, which are the honest ones.
./build/bench/bench_serve --requests "$REQUESTS" --clients "$CLIENTS" \
  --workers "$WORKERS"

echo "bench_serve: wrote $OUT"
