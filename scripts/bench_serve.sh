#!/usr/bin/env bash
# Measures the always-on mapping service (docs/serve.md): request latency
# percentiles and throughput of a live MappingServer under concurrent load,
# via bench/bench_serve. Writes a summary JSON (default: BENCH_serve.json at
# the repo root) with p50/p99 latency and req/s.
#
# Usage: scripts/bench_serve.sh [output.json]
#   JEM_BENCH_SERVE_REQUESTS total requests       (default 2000)
#   JEM_BENCH_SERVE_CLIENTS  concurrent clients   (default 8)
#   JEM_BENCH_SERVE_WORKERS  server workers       (default 4)
#   JEM_BENCH_SERVE_SWEEP    open-loop rates rps  (default 100,300,600)
#   JEM_BENCH_SERVE_PER_POINT requests per point  (default 300)
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${JEM_BENCH_SERVE_REQUESTS:-2000}"
CLIENTS="${JEM_BENCH_SERVE_CLIENTS:-8}"
WORKERS="${JEM_BENCH_SERVE_WORKERS:-4}"
SWEEP="${JEM_BENCH_SERVE_SWEEP:-100,300,600}"
PER_POINT="${JEM_BENCH_SERVE_PER_POINT:-300}"
OUT="${1:-BENCH_serve.json}"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build --target bench_serve jem

# Cold run (cache off): every request pays the map kernel.
./build/bench/bench_serve --requests "$REQUESTS" --clients "$CLIENTS" \
  --workers "$WORKERS" --cache 0 --out "$OUT"

# Warm run (default cache): repeated segments come from the LRU. Printed for
# comparison; the JSON keeps the cold numbers, which are the honest ones.
./build/bench/bench_serve --requests "$REQUESTS" --clients "$CLIENTS" \
  --workers "$WORKERS"

# Offered-load curve (ROADMAP item 4c): a live demo server driven by
# `jem loadgen` in open-loop mode at each swept rate, Zipf-skewed queries.
# The resulting latency/shed curve is spliced into the summary JSON as
# "load_curve".
DIR=$(mktemp -d /tmp/jem_bench_loadgen.XXXXXX)
trap 'rm -rf "$DIR"' EXIT
./build/examples/jem serve --demo --port 0 --port-file "$DIR/port" \
  --workers "$WORKERS" &
SERVE_PID=$!
for _ in $(seq 1 200); do
  [[ -s "$DIR/port" ]] && break
  sleep 0.05
done
[[ -s "$DIR/port" ]] || { echo "error: jem serve never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true; exit 1; }
./build/examples/jem loadgen --demo --port "$(cat "$DIR/port")" \
  --mode open --sweep "$SWEEP" --requests "$PER_POINT" \
  --clients "$CLIENTS" --out "$DIR/curve.json"

# Snapshot the server's own windowed SLO view (docs/observability.md) while
# the loadgen traffic is still inside the 10s/1m windows; it lands in the
# summary JSON as "slo_window" next to the client-side percentiles.
./build/examples/jem probe --demo --port "$(cat "$DIR/port")" \
  --requests 1 --clients 1 --healthz-out "$DIR/healthz.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
# /healthz is a single JSON line whose last member is "slo":{...}; strip the
# prefix and the outer brace to keep just the windowed object.
SLO=$(sed -e 's/.*"slo"://' -e 's/}$//' "$DIR/healthz.json")

# Splice the curve into the summary (no jq in the image: drop the closing
# brace, append the new key, close again).
{
  sed '$d' "$OUT"
  printf '  ,"load_curve": '
  cat "$DIR/curve.json"
  printf '  ,"slo_window": %s\n' "$SLO"
  printf '}\n'
} > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "bench_serve: wrote $OUT (with load_curve and slo_window)"
