#include "sim/genome.hpp"

#include <gtest/gtest.h>

#include "core/dna.hpp"
#include "core/minimizer.hpp"

namespace jem::sim {
namespace {

TEST(GenomeSimulator, ProducesRequestedLength) {
  GenomeParams params;
  params.length = 12'345;
  params.seed = 1;
  EXPECT_EQ(simulate_genome(params).size(), 12'345u);
}

TEST(GenomeSimulator, IsDeterministicInSeed) {
  GenomeParams params;
  params.length = 10'000;
  params.seed = 42;
  EXPECT_EQ(simulate_genome(params), simulate_genome(params));
}

TEST(GenomeSimulator, DiffersAcrossSeeds) {
  GenomeParams a;
  a.length = 10'000;
  a.seed = 1;
  GenomeParams b = a;
  b.seed = 2;
  EXPECT_NE(simulate_genome(a), simulate_genome(b));
}

TEST(GenomeSimulator, OutputIsPureAcgt) {
  GenomeParams params;
  params.length = 50'000;
  params.repeat_fraction = 0.3;
  EXPECT_TRUE(core::is_acgt(simulate_genome(params)));
}

TEST(GenomeSimulator, HitsTargetGcContent) {
  for (double gc : {0.3, 0.5, 0.66}) {
    GenomeParams params;
    params.length = 200'000;
    params.gc = gc;
    params.seed = 7;
    EXPECT_NEAR(core::gc_content(simulate_genome(params)), gc, 0.01)
        << "gc=" << gc;
  }
}

TEST(GenomeSimulator, RejectsBadParams) {
  GenomeParams params;
  params.length = 0;
  EXPECT_THROW((void)simulate_genome(params), std::invalid_argument);
  params = {};
  params.gc = 0.0;
  EXPECT_THROW((void)simulate_genome(params), std::invalid_argument);
  params = {};
  params.repeat_fraction = 1.0;
  EXPECT_THROW((void)simulate_genome(params), std::invalid_argument);
}

TEST(GenomeSimulator, RepeatsReduceDistinctMinimizerDiversity) {
  // A repeat-rich genome re-uses sequence, so the fraction of *distinct*
  // minimizer k-mers is measurably lower than in a repeat-free genome.
  const auto distinct_fraction = [](double repeat_fraction) {
    GenomeParams params;
    params.length = 300'000;
    params.repeat_fraction = repeat_fraction;
    params.repeat_unit_length = 3000;
    params.repeat_families = 4;
    params.seed = 99;
    const std::string genome = simulate_genome(params);
    const auto minimizers = core::minimizer_scan(genome, {16, 20});
    std::vector<core::KmerCode> kmers;
    for (const auto& m : minimizers) kmers.push_back(m.kmer);
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
    return static_cast<double>(kmers.size()) /
           static_cast<double>(minimizers.size());
  };
  EXPECT_GT(distinct_fraction(0.0), distinct_fraction(0.5) + 0.05);
}

TEST(GenomeSimulator, NoRepeatFamiliesWhenFractionZero) {
  GenomeParams params;
  params.length = 50'000;
  params.repeat_fraction = 0.0;
  params.seed = 3;
  // Deterministic sanity: generating twice with/without the repeat stage
  // disabled yields the same background.
  EXPECT_EQ(simulate_genome(params), simulate_genome(params));
}

}  // namespace
}  // namespace jem::sim
