#include "sim/hifi_reads.hpp"

#include <gtest/gtest.h>

#include "align/banded.hpp"
#include "core/dna.hpp"
#include "sim/genome.hpp"

namespace jem::sim {
namespace {

std::string test_genome(std::uint64_t length, std::uint64_t seed) {
  GenomeParams params;
  params.length = length;
  params.seed = seed;
  return simulate_genome(params);
}

TEST(HiFiSimulator, ReadCountMatchesCoverage) {
  const std::string genome = test_genome(1'000'000, 21);
  HiFiParams params;
  params.coverage = 10.0;
  params.seed = 1;
  const SimulatedReads result = simulate_hifi_reads(genome, params);
  const double achieved = static_cast<double>(result.reads.total_bases()) /
                          static_cast<double>(genome.size());
  EXPECT_NEAR(achieved, 10.0, 1.0);
}

TEST(HiFiSimulator, LengthsFollowTargetDistribution) {
  const std::string genome = test_genome(3'000'000, 22);
  HiFiParams params;
  params.coverage = 10.0;
  params.mean_length = 10205;
  params.sd_length = 3400;
  params.seed = 2;
  const SimulatedReads result = simulate_hifi_reads(genome, params);
  const auto stats = result.reads.length_stats();
  EXPECT_NEAR(stats.mean, 10205, 600);
  EXPECT_NEAR(stats.stddev, 3400, 700);  // clamping trims the tails a bit
  // The clamp applies before the error model: deletions/insertions can move
  // final lengths slightly past the bounds.
  EXPECT_GE(stats.min + 50, params.min_length);
  EXPECT_LE(stats.max, params.max_length + 50);
}

TEST(HiFiSimulator, TruthIntervalsAreWithinGenome) {
  const std::string genome = test_genome(500'000, 23);
  HiFiParams params;
  params.seed = 3;
  const SimulatedReads result = simulate_hifi_reads(genome, params);
  for (const ReadTruth& truth : result.truth) {
    EXPECT_LT(truth.interval.begin, truth.interval.end);
    EXPECT_LE(truth.interval.end, genome.size());
  }
}

TEST(HiFiSimulator, ErrorFreeForwardReadsMatchGenome) {
  const std::string genome = test_genome(200'000, 24);
  HiFiParams params;
  params.error_rate = 0.0;
  params.seed = 4;
  const SimulatedReads result = simulate_hifi_reads(genome, params);
  for (io::SeqId id = 0; id < result.reads.size(); ++id) {
    const ReadTruth& truth = result.truth[id];
    const std::string source(std::string_view(genome).substr(
        truth.interval.begin, truth.interval.length()));
    if (truth.reverse) {
      EXPECT_EQ(result.reads.bases(id), core::reverse_complement(source));
    } else {
      EXPECT_EQ(result.reads.bases(id), source);
    }
  }
}

TEST(HiFiSimulator, BothStrandsAreSampled) {
  const std::string genome = test_genome(500'000, 25);
  HiFiParams params;
  params.seed = 5;
  const SimulatedReads result = simulate_hifi_reads(genome, params);
  std::size_t reverse_count = 0;
  for (const ReadTruth& truth : result.truth) {
    if (truth.reverse) ++reverse_count;
  }
  const double fraction = static_cast<double>(reverse_count) /
                          static_cast<double>(result.truth.size());
  EXPECT_NEAR(fraction, 0.5, 0.2);
}

TEST(HiFiSimulator, ErrorRateMatchesHiFiAccuracy) {
  const std::string genome = test_genome(400'000, 26);
  HiFiParams params;
  params.error_rate = 0.001;
  params.seed = 6;
  const SimulatedReads result = simulate_hifi_reads(genome, params);

  // Measure observed per-base divergence of a sample of reads against
  // their source spans using exact edit distance.
  std::uint64_t edits = 0;
  std::uint64_t bases = 0;
  const io::SeqId sample =
      std::min<io::SeqId>(20, static_cast<io::SeqId>(result.reads.size()));
  for (io::SeqId id = 0; id < sample; ++id) {
    const ReadTruth& truth = result.truth[id];
    std::string source(std::string_view(genome).substr(
        truth.interval.begin, truth.interval.length()));
    if (truth.reverse) source = core::reverse_complement(source);
    edits += align::edit_distance(result.reads.bases(id), source);
    bases += truth.interval.length();
  }
  const double rate = static_cast<double>(edits) / static_cast<double>(bases);
  EXPECT_LT(rate, 0.004);  // ~99.9 % accurate
  EXPECT_GT(rate, 0.0001);
}

TEST(HiFiSimulator, IsDeterministicInSeed) {
  const std::string genome = test_genome(100'000, 27);
  HiFiParams params;
  params.seed = 7;
  const SimulatedReads a = simulate_hifi_reads(genome, params);
  const SimulatedReads b = simulate_hifi_reads(genome, params);
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (io::SeqId id = 0; id < a.reads.size(); ++id) {
    EXPECT_EQ(a.reads.bases(id), b.reads.bases(id));
  }
}

TEST(HiFiSimulator, RejectsBadParams) {
  const std::string genome = test_genome(10'000, 28);
  HiFiParams params;
  params.coverage = 0.0;
  EXPECT_THROW((void)simulate_hifi_reads(genome, params),
               std::invalid_argument);
  params = {};
  params.mismatch_fraction = 0.8;
  params.insertion_fraction = 0.8;
  EXPECT_THROW((void)simulate_hifi_reads(genome, params),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_hifi_reads("", {}), std::invalid_argument);
}

TEST(ApplyHifiErrors, ZeroRateIsIdentity) {
  HiFiParams params;
  params.error_rate = 0.0;
  EXPECT_EQ(apply_hifi_errors("ACGTACGT", params, 1), "ACGTACGT");
}

TEST(ApplyHifiErrors, MutatesAtApproximatelyTheGivenRate) {
  HiFiParams params;
  params.error_rate = 0.01;
  std::string seq(100'000, 'A');
  const std::string mutated = apply_hifi_errors(seq, params, 2);
  const std::uint64_t edits = align::edit_distance(seq, mutated);
  EXPECT_NEAR(static_cast<double>(edits) / 1e5, 0.01, 0.004);
}

TEST(ApplyHifiErrors, PureDeletionModelShortensSequence) {
  HiFiParams params;
  params.error_rate = 0.1;
  params.mismatch_fraction = 0.0;
  params.insertion_fraction = 0.0;  // all errors are deletions
  const std::string seq(10'000, 'C');
  const std::string mutated = apply_hifi_errors(seq, params, 3);
  EXPECT_LT(mutated.size(), seq.size());
  EXPECT_NEAR(static_cast<double>(mutated.size()), 9000.0, 300.0);
}

TEST(ApplyHifiErrors, PureInsertionModelLengthensSequence) {
  HiFiParams params;
  params.error_rate = 0.1;
  params.mismatch_fraction = 0.0;
  params.insertion_fraction = 1.0;
  const std::string seq(10'000, 'G');
  const std::string mutated = apply_hifi_errors(seq, params, 4);
  EXPECT_GT(mutated.size(), seq.size());
  EXPECT_NEAR(static_cast<double>(mutated.size()), 11000.0, 300.0);
}

}  // namespace
}  // namespace jem::sim
