#include "sim/variants.hpp"

#include <gtest/gtest.h>

#include "core/dna.hpp"
#include "sim/genome.hpp"

namespace jem::sim {
namespace {

std::string test_genome(std::uint64_t length, std::uint64_t seed) {
  GenomeParams params;
  params.length = length;
  params.seed = seed;
  return simulate_genome(params);
}

TEST(Variants, IsDeterministicInSeed) {
  const std::string genome = test_genome(200'000, 31);
  VariantParams params;
  params.seed = 1;
  const DonorGenome a = apply_structural_variants(genome, params);
  const DonorGenome b = apply_structural_variants(genome, params);
  EXPECT_EQ(a.genome, b.genome);
  EXPECT_EQ(a.events, b.events);
}

TEST(Variants, EventsAreSortedAndNonOverlapping) {
  const std::string genome = test_genome(500'000, 32);
  VariantParams params;
  params.events_per_mbp = 100;
  params.seed = 2;
  const DonorGenome donor = apply_structural_variants(genome, params);
  ASSERT_GT(donor.events.size(), 10u);
  for (std::size_t i = 1; i < donor.events.size(); ++i) {
    EXPECT_GE(donor.events[i].position,
              donor.events[i - 1].position + donor.events[i - 1].length);
  }
}

TEST(Variants, EventCountTracksRate) {
  const std::string genome = test_genome(1'000'000, 33);
  VariantParams params;
  params.events_per_mbp = 50;
  params.seed = 3;
  const DonorGenome donor = apply_structural_variants(genome, params);
  EXPECT_NEAR(static_cast<double>(donor.events.size()), 50.0, 5.0);
}

TEST(Variants, PureDeletionsShrinkTheGenome) {
  const std::string genome = test_genome(300'000, 34);
  VariantParams params;
  params.deletion_fraction = 1.0;
  params.insertion_fraction = 0.0;
  params.events_per_mbp = 100;
  params.seed = 4;
  const DonorGenome donor = apply_structural_variants(genome, params);
  std::uint64_t deleted = 0;
  for (const VariantEvent& event : donor.events) {
    EXPECT_EQ(event.type, VariantType::kDeletion);
    deleted += event.length;
  }
  EXPECT_EQ(donor.genome.size(), genome.size() - deleted);
}

TEST(Variants, PureInsertionsGrowTheGenome) {
  const std::string genome = test_genome(300'000, 35);
  VariantParams params;
  params.deletion_fraction = 0.0;
  params.insertion_fraction = 1.0;
  params.events_per_mbp = 100;
  params.seed = 5;
  const DonorGenome donor = apply_structural_variants(genome, params);
  std::uint64_t inserted = 0;
  for (const VariantEvent& event : donor.events) {
    EXPECT_EQ(event.type, VariantType::kInsertion);
    inserted += event.length;
  }
  EXPECT_EQ(donor.genome.size(), genome.size() + inserted);
}

TEST(Variants, PureInversionsPreserveLengthAndInvertSpans) {
  const std::string genome = test_genome(300'000, 36);
  VariantParams params;
  params.deletion_fraction = 0.0;
  params.insertion_fraction = 0.0;  // all inversions
  params.events_per_mbp = 60;
  params.seed = 6;
  const DonorGenome donor = apply_structural_variants(genome, params);
  ASSERT_EQ(donor.genome.size(), genome.size());

  // With inversions only, original and donor coordinates coincide: each
  // event span must equal the reverse complement of the source span, and
  // everything outside events must be untouched.
  std::uint64_t cursor = 0;
  for (const VariantEvent& event : donor.events) {
    EXPECT_EQ(donor.genome.substr(cursor, event.position - cursor),
              genome.substr(cursor, event.position - cursor));
    EXPECT_EQ(donor.genome.substr(event.position, event.length),
              core::reverse_complement(std::string_view(genome).substr(
                  event.position, event.length)));
    cursor = event.position + event.length;
  }
  EXPECT_EQ(donor.genome.substr(cursor), genome.substr(cursor));
}

TEST(Variants, LengthBoundsAreRespected) {
  const std::string genome = test_genome(500'000, 37);
  VariantParams params;
  params.min_length = 100;
  params.max_length = 400;
  params.events_per_mbp = 80;
  params.seed = 7;
  const DonorGenome donor = apply_structural_variants(genome, params);
  for (const VariantEvent& event : donor.events) {
    EXPECT_GE(event.length, 100u);
    EXPECT_LE(event.length, 400u);
  }
}

TEST(Variants, RejectsBadParams) {
  const std::string genome = test_genome(10'000, 38);
  EXPECT_THROW((void)apply_structural_variants("", {}),
               std::invalid_argument);
  VariantParams params;
  params.deletion_fraction = 0.8;
  params.insertion_fraction = 0.5;
  EXPECT_THROW((void)apply_structural_variants(genome, params),
               std::invalid_argument);
  params = {};
  params.min_length = 0;
  EXPECT_THROW((void)apply_structural_variants(genome, params),
               std::invalid_argument);
  params = {};
  params.min_length = 10;
  params.max_length = 5;
  EXPECT_THROW((void)apply_structural_variants(genome, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace jem::sim
