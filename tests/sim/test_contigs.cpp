#include "sim/contigs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dna.hpp"
#include "sim/genome.hpp"

namespace jem::sim {
namespace {

std::string test_genome(std::uint64_t length, std::uint64_t seed) {
  GenomeParams params;
  params.length = length;
  params.seed = seed;
  return simulate_genome(params);
}

TEST(Interval, OverlapComputesIntersectionLength) {
  EXPECT_EQ(overlap({0, 10}, {5, 15}), 5u);
  EXPECT_EQ(overlap({5, 15}, {0, 10}), 5u);
  EXPECT_EQ(overlap({0, 10}, {10, 20}), 0u);
  EXPECT_EQ(overlap({0, 10}, {20, 30}), 0u);
  EXPECT_EQ(overlap({0, 100}, {40, 60}), 20u);
  EXPECT_EQ(overlap({3, 7}, {3, 7}), 4u);
}

TEST(ContigSimulator, TruthIntervalsAreSortedAndDisjoint) {
  const std::string genome = test_genome(500'000, 11);
  ContigSimParams params;
  params.seed = 5;
  const SimulatedContigs result = simulate_contigs(genome, params);
  ASSERT_GT(result.contigs.size(), 10u);
  for (std::size_t i = 1; i < result.truth.size(); ++i) {
    EXPECT_LE(result.truth[i - 1].end, result.truth[i].begin);
  }
}

TEST(ContigSimulator, ForwardContigsMatchGenomeSubstring) {
  const std::string genome = test_genome(300'000, 12);
  ContigSimParams params;
  params.random_orientation = false;
  params.seed = 6;
  const SimulatedContigs result = simulate_contigs(genome, params);
  for (io::SeqId id = 0; id < result.contigs.size(); ++id) {
    const Interval& truth = result.truth[id];
    EXPECT_EQ(result.contigs.bases(id),
              std::string_view(genome).substr(truth.begin, truth.length()));
  }
}

TEST(ContigSimulator, ReversedContigsAreReverseComplements) {
  const std::string genome = test_genome(200'000, 13);
  ContigSimParams params;
  params.random_orientation = true;
  params.seed = 7;
  const SimulatedContigs result = simulate_contigs(genome, params);
  bool any_reversed = false;
  bool any_forward = false;
  for (io::SeqId id = 0; id < result.contigs.size(); ++id) {
    const Interval& truth = result.truth[id];
    const std::string source(
        std::string_view(genome).substr(truth.begin, truth.length()));
    if (result.reversed[id]) {
      any_reversed = true;
      EXPECT_EQ(result.contigs.bases(id), core::reverse_complement(source));
    } else {
      any_forward = true;
      EXPECT_EQ(result.contigs.bases(id), source);
    }
  }
  EXPECT_TRUE(any_reversed);
  EXPECT_TRUE(any_forward);
}

TEST(ContigSimulator, RespectsMinimumLength) {
  const std::string genome = test_genome(400'000, 14);
  ContigSimParams params;
  params.min_length = 500;
  params.seed = 8;
  const SimulatedContigs result = simulate_contigs(genome, params);
  for (io::SeqId id = 0; id < result.contigs.size(); ++id) {
    EXPECT_GE(result.contigs.length(id), 500u);
  }
}

TEST(ContigSimulator, HitsCoverageFractionApproximately) {
  const std::string genome = test_genome(2'000'000, 15);
  for (double fraction : {0.7, 0.92}) {
    ContigSimParams params;
    params.coverage_fraction = fraction;
    params.seed = 9;
    const SimulatedContigs result = simulate_contigs(genome, params);
    const double covered =
        static_cast<double>(result.contigs.total_bases()) /
        static_cast<double>(genome.size());
    EXPECT_NEAR(covered, fraction, 0.08) << "target " << fraction;
  }
}

TEST(ContigSimulator, LengthDistributionNearTarget) {
  const std::string genome = test_genome(5'000'000, 16);
  ContigSimParams params;
  params.mean_length = 3000;
  params.sd_length = 4000;
  params.seed = 10;
  const SimulatedContigs result = simulate_contigs(genome, params);
  const auto stats = result.contigs.length_stats();
  // min-length clamping shifts the mean up slightly; generous tolerance.
  EXPECT_NEAR(stats.mean, 3000, 900);
  EXPECT_GT(stats.stddev, 1500);
}

TEST(ContigSimulator, ErrorRateMutatesBases) {
  // Compare each noisy contig against its genome source span (substitutions
  // only, so lengths match and a positional comparison measures the rate).
  const std::string genome = test_genome(100'000, 17);
  ContigSimParams noisy;
  noisy.random_orientation = false;
  noisy.error_rate = 0.05;
  noisy.seed = 11;
  const SimulatedContigs result = simulate_contigs(genome, noisy);
  std::uint64_t mismatches = 0;
  std::uint64_t total = 0;
  for (io::SeqId id = 0; id < result.contigs.size(); ++id) {
    const Interval& truth = result.truth[id];
    const auto source =
        std::string_view(genome).substr(truth.begin, truth.length());
    const auto mutated = result.contigs.bases(id);
    ASSERT_EQ(source.size(), mutated.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
      ++total;
      if (source[i] != mutated[i]) ++mismatches;
    }
  }
  const double rate =
      static_cast<double>(mismatches) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(ContigSimulator, RejectsBadInputs) {
  EXPECT_THROW((void)simulate_contigs("", {}), std::invalid_argument);
  const std::string genome = test_genome(10'000, 18);
  ContigSimParams params;
  params.coverage_fraction = 0.0;
  EXPECT_THROW((void)simulate_contigs(genome, params), std::invalid_argument);
  params.coverage_fraction = 1.5;
  EXPECT_THROW((void)simulate_contigs(genome, params), std::invalid_argument);
}

TEST(LogNormalSpec, ReproducesMeanAndSd) {
  const LogNormalSpec spec = lognormal_from_mean_sd(3000.0, 4000.0);
  // Analytic inversion check: mean = exp(mu + sigma^2/2).
  const double mean = std::exp(spec.mu + spec.sigma * spec.sigma / 2.0);
  const double variance = (std::exp(spec.sigma * spec.sigma) - 1.0) *
                          std::exp(2.0 * spec.mu + spec.sigma * spec.sigma);
  EXPECT_NEAR(mean, 3000.0, 1.0);
  EXPECT_NEAR(std::sqrt(variance), 4000.0, 1.0);
}

TEST(LogNormalSpec, RejectsNonPositive) {
  EXPECT_THROW((void)lognormal_from_mean_sd(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)lognormal_from_mean_sd(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace jem::sim
