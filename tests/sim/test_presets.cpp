#include "sim/presets.hpp"

#include <gtest/gtest.h>

namespace jem::sim {
namespace {

TEST(Presets, HasAllEightTable1Rows) {
  const auto& presets = table1_presets();
  ASSERT_EQ(presets.size(), 8u);
  EXPECT_EQ(presets[0].name, "E. coli");
  EXPECT_EQ(presets[6].name, "B. splendens");
  EXPECT_TRUE(presets[7].real_data);  // O. sativa row
}

TEST(Presets, GenomeLengthsMatchTable1) {
  EXPECT_EQ(preset_by_name("E. coli").genome_length, 4'641'652u);
  EXPECT_EQ(preset_by_name("B. splendens").genome_length, 339'050'970u);
  EXPECT_EQ(preset_by_name("Human chr 7").genome_length, 159'345'973u);
}

TEST(Presets, LookupThrowsOnUnknownName) {
  EXPECT_THROW((void)preset_by_name("Z. fictional"), std::invalid_argument);
}

TEST(Presets, EukaryotesHaveMoreRepeatsThanBacteria) {
  EXPECT_LT(preset_by_name("E. coli").repeat_fraction,
            preset_by_name("Human chr 7").repeat_fraction);
  EXPECT_LT(preset_by_name("P. aeruginosa").repeat_fraction,
            preset_by_name("C. elegans").repeat_fraction);
}

TEST(GenerateDataset, ScalesGenomeLength) {
  const auto& preset = preset_by_name("E. coli");
  const Dataset dataset = generate_dataset(preset, 0.05, 1);
  EXPECT_NEAR(static_cast<double>(dataset.genome.size()),
              0.05 * static_cast<double>(preset.genome_length), 1000.0);
}

TEST(GenerateDataset, PreservesDensitiesUnderScaling) {
  const auto& preset = preset_by_name("C. elegans");
  const Dataset dataset = generate_dataset(preset, 0.01, 2);
  // Read coverage ~ preset.read_coverage regardless of scale.
  const double coverage =
      static_cast<double>(dataset.reads.reads.total_bases()) /
      static_cast<double>(dataset.genome.size());
  EXPECT_NEAR(coverage, preset.read_coverage, 2.0);
  // Subject coverage fraction similar to Table I.
  const double subject_fraction =
      static_cast<double>(dataset.contigs.contigs.total_bases()) /
      static_cast<double>(dataset.genome.size());
  EXPECT_NEAR(subject_fraction, preset.subject_coverage, 0.12);
}

TEST(GenerateDataset, IsDeterministic) {
  const auto& preset = preset_by_name("E. coli");
  const Dataset a = generate_dataset(preset, 0.02, 77);
  const Dataset b = generate_dataset(preset, 0.02, 77);
  EXPECT_EQ(a.genome, b.genome);
  ASSERT_EQ(a.reads.reads.size(), b.reads.reads.size());
  ASSERT_EQ(a.contigs.contigs.size(), b.contigs.contigs.size());
}

TEST(GenerateDataset, RejectsBadScale) {
  const auto& preset = preset_by_name("E. coli");
  EXPECT_THROW((void)generate_dataset(preset, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)generate_dataset(preset, 1.5, 1), std::invalid_argument);
}

TEST(GenerateDataset, EnforcesMinimumGenomeSize) {
  // A tiny scale of a small genome still yields a usable genome.
  const auto& preset = preset_by_name("E. coli");
  const Dataset dataset = generate_dataset(preset, 0.0001, 3);
  EXPECT_GE(dataset.genome.size(), 50'000u);
}

TEST(GenerateDataset, ContigTruthAlignsWithContigSet) {
  const auto& preset = preset_by_name("P. aeruginosa");
  const Dataset dataset = generate_dataset(preset, 0.02, 4);
  EXPECT_EQ(dataset.contigs.contigs.size(), dataset.contigs.truth.size());
  EXPECT_EQ(dataset.contigs.contigs.size(), dataset.contigs.reversed.size());
  EXPECT_EQ(dataset.reads.reads.size(), dataset.reads.truth.size());
}

}  // namespace
}  // namespace jem::sim
