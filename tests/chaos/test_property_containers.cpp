// Property tests for the concurrency/containers substrate the streaming
// pipeline stands on: RingDeque is differential-tested against std::deque
// under seeded random operation sequences (wraparound and growth-while-
// wrapped are the interesting states), and BoundedQueue's close/timeout
// semantics are pinned down — close wakes every waiter, accepted items are
// never lost, and a timed-out push does not steal the caller's value.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/prng.hpp"
#include "util/ring_buffer.hpp"

namespace jem::util {
namespace {

using std::chrono::milliseconds;

void expect_matches_model(const RingDeque<std::uint32_t>& ring,
                          const std::deque<std::uint32_t>& model) {
  ASSERT_EQ(ring.size(), model.size());
  ASSERT_EQ(ring.empty(), model.empty());
  for (std::size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(ring[i], model[i]) << "at index " << i;
  }
  if (!model.empty()) {
    ASSERT_EQ(ring.front(), model.front());
    ASSERT_EQ(ring.back(), model.back());
  }
}

TEST(PropertyContainers, RingDequeWrapsAroundAtCapacityWithoutGrowing) {
  RingDeque<std::uint32_t> ring;
  std::deque<std::uint32_t> model;
  // Fill the initial 16-slot ring, then slide the window so the head
  // crosses the end of the backing storage while size stays at capacity.
  for (std::uint32_t i = 0; i < 16; ++i) {
    ring.push_back(i);
    model.push_back(i);
  }
  const std::size_t capacity = ring.capacity();
  ASSERT_EQ(capacity, 16u);
  for (std::uint32_t i = 16; i < 64; ++i) {
    ring.pop_front();
    model.pop_front();
    ring.push_back(i);
    model.push_back(i);
    expect_matches_model(ring, model);
  }
  EXPECT_EQ(ring.capacity(), capacity) << "sliding at capacity must not grow";
}

TEST(PropertyContainers, RingDequeGrowsCorrectlyWhileWrapped) {
  RingDeque<std::uint32_t> ring;
  std::deque<std::uint32_t> model;
  // Wrap the live range: 12 in, 8 out, 12 in leaves head near the end of
  // the 16-slot storage with the contents split across the seam...
  for (std::uint32_t i = 0; i < 12; ++i) {
    ring.push_back(i);
    model.push_back(i);
  }
  for (int i = 0; i < 8; ++i) {
    ring.pop_front();
    model.pop_front();
  }
  for (std::uint32_t i = 100; i < 112; ++i) {
    ring.push_back(i);
    model.push_back(i);
  }
  expect_matches_model(ring, model);
  // ...then grow past capacity: the unroll must stitch the two spans back
  // together in order.
  for (std::uint32_t i = 200; i < 240; ++i) {
    ring.push_back(i);
    model.push_back(i);
  }
  expect_matches_model(ring, model);
  EXPECT_GT(ring.capacity(), 16u);
}

TEST(PropertyContainers, RingDequeMatchesDequeUnderRandomOps) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Xoshiro256ss rng(seed);
    RingDeque<std::uint32_t> ring;
    std::deque<std::uint32_t> model;
    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t op = rng.bounded(100);
      if (op < 55 || model.empty()) {
        const auto value = static_cast<std::uint32_t>(rng());
        ring.push_back(value);
        model.push_back(value);
      } else if (op < 75) {
        ring.pop_front();
        model.pop_front();
      } else if (op < 95) {
        ring.pop_back();
        model.pop_back();
      } else {
        ring.clear();
        model.clear();
      }
      if (step % 61 == 0) expect_matches_model(ring, model);
    }
    expect_matches_model(ring, model);
  }
}

TEST(PropertyContainers, BoundedQueuePopAfterCloseDrainsEverything) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  queue.close();
  EXPECT_FALSE(queue.push(4)) << "a closed queue accepts nothing new";
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt) << "drained + closed is terminal";
}

TEST(PropertyContainers, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::optional<int> result(123);
  std::thread consumer([&] { result = queue.pop(); });
  std::this_thread::sleep_for(milliseconds(20));  // let it block
  queue.close();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(PropertyContainers, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // now full
  bool accepted = true;
  std::thread producer([&] { accepted = queue.push(2); });
  std::this_thread::sleep_for(milliseconds(20));  // let it block on full
  queue.close();
  producer.join();
  EXPECT_FALSE(accepted);
  // The item accepted before close is still there.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(PropertyContainers, TimedOpsDistinguishTimeoutFromClosed) {
  BoundedQueue<std::string> queue(1);
  std::string item = "first";
  ASSERT_EQ(queue.push_wait_for(item, milliseconds(10)),
            QueueOpResult::kSuccess);

  // Full queue: a timed push expires without consuming the caller's value.
  std::string second = "second";
  ASSERT_EQ(queue.push_wait_for(second, milliseconds(10)),
            QueueOpResult::kTimeout);
  EXPECT_EQ(second, "second") << "kTimeout must leave the value intact";

  std::string out;
  ASSERT_EQ(queue.pop_wait_for(out, milliseconds(10)),
            QueueOpResult::kSuccess);
  EXPECT_EQ(out, "first");

  // Empty but open: timeout. Empty and closed: terminal.
  ASSERT_EQ(queue.pop_wait_for(out, milliseconds(10)),
            QueueOpResult::kTimeout);
  queue.close();
  EXPECT_EQ(queue.pop_wait_for(out, milliseconds(10)), QueueOpResult::kClosed);
  EXPECT_EQ(queue.push_wait_for(second, milliseconds(10)),
            QueueOpResult::kClosed);
  EXPECT_EQ(second, "second") << "kClosed must leave the value intact too";
}

TEST(PropertyContainers, TimedPushSucceedsOnceSpaceFrees) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(milliseconds(30));
    (void)queue.pop();
  });
  int value = 2;
  // Generous timeout: the push must succeed as soon as the pop frees a slot.
  EXPECT_EQ(queue.push_wait_for(value, milliseconds(2000)),
            QueueOpResult::kSuccess);
  consumer.join();
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
}

TEST(PropertyContainers, CloseWhileManyWaitersReleasesAll) {
  BoundedQueue<int> queue(2);
  std::vector<std::thread> waiters;
  std::atomic<int> woken{0};
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&] {
      (void)queue.pop();  // all block: the queue stays empty
      ++woken;
    });
  }
  std::this_thread::sleep_for(milliseconds(20));
  queue.close();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woken.load(), 6);
}

}  // namespace
}  // namespace jem::util
