// Chaos tests for the mpisim robustness layer: injected delays, drops and
// rank aborts against the collectives and point-to-point paths. The
// invariants under test are (a) nothing deadlocks, (b) delay-only plans
// change timing but never results, (c) a dead rank degrades — never hangs —
// its peers, and (d) the same seed replays the same schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "mpisim/communicator.hpp"
#include "util/fault_plan.hpp"

namespace jem::mpisim {
namespace {

using std::chrono::milliseconds;

SpmdOptions with_plan(const util::FaultPlan& plan) {
  SpmdOptions options;
  options.fault_plan = &plan;
  return options;
}

std::vector<int> rank_payload(int rank) {
  std::vector<int> payload(static_cast<std::size_t>(rank) + 1);
  std::iota(payload.begin(), payload.end(), rank * 100);
  return payload;
}

TEST(ChaosMpisim, DelayOnlyPlanKeepsCollectiveResultsBitIdentical) {
  const int ranks = 4;
  const auto run_with = [&](const util::FaultPlan* plan) {
    std::vector<std::vector<int>> gathered(static_cast<std::size_t>(ranks));
    std::vector<int> reduced(static_cast<std::size_t>(ranks));
    SpmdOptions options;
    options.fault_plan = plan;
    const SpmdReport report = run_spmd_ft(
        ranks,
        [&](Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          comm.barrier();
          gathered[r] = comm.allgatherv<int>(rank_payload(comm.rank()));
          reduced[r] =
              comm.all_reduce(comm.rank() + 1,
                              [](int a, int b) { return a + b; });
        },
        options);
    EXPECT_TRUE(report.ok());
    return std::make_pair(gathered, reduced);
  };

  util::FaultPlan delays;
  delays.delay_at(util::FaultPlan::kAnyRank, "", util::FaultPlan::kAnyInvocation,
                  milliseconds(2));
  const auto baseline = run_with(nullptr);
  const auto delayed = run_with(&delays);
  EXPECT_EQ(baseline.first, delayed.first);
  EXPECT_EQ(baseline.second, delayed.second);
}

TEST(ChaosMpisim, AbortedRankDegradesCollectivesWithoutDeadlock) {
  util::FaultPlan plan;
  plan.abort_at(1, "allgatherv", 0);  // rank 1 dies entering the allgather

  std::vector<std::vector<int>> gathered(4);
  const SpmdReport report = run_spmd_ft(
      4,
      [&](Comm& comm) {
        gathered[static_cast<std::size_t>(comm.rank())] =
            comm.allgatherv<int>(rank_payload(comm.rank()));
      },
      with_plan(plan));

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].rank, 1);
  EXPECT_EQ(report.failures[0].site, "allgatherv");
  EXPECT_EQ(report.failed_ranks(), std::vector<int>{1});
  EXPECT_GE(report.faults_injected, 1u);

  // Survivors observe the union minus rank 1's contribution.
  std::vector<int> expected;
  for (const int rank : {0, 2, 3}) {
    const auto part = rank_payload(rank);
    expected.insert(expected.end(), part.begin(), part.end());
  }
  for (const int rank : {0, 2, 3}) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(rank)], expected)
        << "rank " << rank;
  }
  EXPECT_TRUE(gathered[1].empty());
}

TEST(ChaosMpisim, EarlyReturningRankDoesNotHangPeers) {
  std::vector<int> sums(3, -1);
  const CommStats stats = run_spmd(3, [&](Comm& comm) {
    if (comm.rank() == 2) return;  // leaves before any collective
    sums[static_cast<std::size_t>(comm.rank())] =
        comm.all_reduce(comm.rank() + 1, [](int a, int b) { return a + b; });
  });
  EXPECT_EQ(sums[0], 3);  // 1 + 2; rank 2 contributed nothing
  EXPECT_EQ(sums[1], 3);
  EXPECT_EQ(sums[2], -1);
  EXPECT_GE(stats.collective_calls, 1u);
}

TEST(ChaosMpisim, DroppedPayloadKeepsProtocolAligned) {
  util::FaultPlan plan;
  plan.drop_at(2, "allgatherv", 0);  // rank 2 participates but loses its data

  std::vector<std::vector<int>> gathered(3);
  const SpmdReport report = run_spmd_ft(
      3,
      [&](Comm& comm) {
        gathered[static_cast<std::size_t>(comm.rank())] =
            comm.allgatherv<int>(rank_payload(comm.rank()));
        // The next collective still lines up for everyone.
        comm.barrier();
      },
      with_plan(plan));

  EXPECT_TRUE(report.ok()) << "a drop must not kill the rank";
  std::vector<int> expected = rank_payload(0);
  const auto r1 = rank_payload(1);
  expected.insert(expected.end(), r1.begin(), r1.end());
  for (int rank = 0; rank < 3; ++rank) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(rank)], expected);
  }
}

TEST(ChaosMpisim, RecvFromDeadPeerThrowsPeerFailedError) {
  util::FaultPlan plan;
  plan.abort_at(1, "before-send", 0);

  const SpmdReport report = run_spmd_ft(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          comm.fault_point("before-send");
          comm.send<int>(std::vector<int>{7}, /*dest=*/0);
          return;
        }
        EXPECT_THROW((void)comm.recv<int>(/*source=*/1), PeerFailedError);
      },
      with_plan(plan));
  EXPECT_EQ(report.failed_ranks(), std::vector<int>{1});
}

TEST(ChaosMpisim, QueuedMessagesDrainEvenFromDeadSender) {
  util::FaultPlan plan;
  plan.abort_at(1, "after-send", 0);

  std::vector<int> received;
  std::mutex mutex;
  const SpmdReport report = run_spmd_ft(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          comm.send<int>(std::vector<int>{41, 42}, /*dest=*/0);
          comm.fault_point("after-send");
          return;
        }
        const std::vector<int> payload = comm.recv<int>(/*source=*/1);
        std::lock_guard lock(mutex);
        received = payload;
      },
      with_plan(plan));
  EXPECT_EQ(report.failed_ranks(), std::vector<int>{1});
  EXPECT_EQ(received, (std::vector<int>{41, 42}));
}

TEST(ChaosMpisim, DroppedSendDeliversEmptyPayloadWithoutDeadlock) {
  util::FaultPlan plan;
  plan.drop_at(1, "send", 0);  // the payload vanishes in transit

  std::vector<int> received{-1};
  const SpmdReport report = run_spmd_ft(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          comm.send<int>(std::vector<int>{7}, /*dest=*/0);
          return;
        }
        // Like a dropped collective contribution, the message itself still
        // arrives (the protocol stays aligned) — only its data is voided.
        received = comm.recv<int>(/*source=*/1);
      },
      with_plan(plan));
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(received.empty());
  EXPECT_GE(report.faults_injected, 1u);
}

TEST(ChaosMpisim, RecvTimesOutWithBoundedRetries) {
  SpmdOptions options;
  options.comm.timeout = milliseconds(20);
  options.comm.max_retries = 2;

  std::uint64_t observed_retries = 0;
  const SpmdReport report = run_spmd_ft(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          // Never sends; stays alive in a barrier-free spin so rank 0's
          // wait cannot be satisfied by peer death either.
          (void)comm.recv<int>(/*source=*/0);  // also times out
          return;
        }
        (void)comm.recv<int>(/*source=*/1);
      },
      options);
  ASSERT_EQ(report.failures.size(), 2u);
  for (const RankFailure& failure : report.failures) {
    EXPECT_EQ(failure.site, "comm");
    EXPECT_NE(failure.message.find("recv"), std::string::npos);
  }
  observed_retries = report.stats.wait_retries;
  EXPECT_GE(report.stats.wait_timeouts, 2u);
  EXPECT_GE(observed_retries, 2u);  // both ranks retried before giving up
}

TEST(ChaosMpisim, CollectiveTimeoutIsReportedNotRethrown) {
  SpmdOptions options;
  options.comm.timeout = milliseconds(20);
  options.comm.max_retries = 1;

  util::FaultPlan plan;
  options.fault_plan = &plan;

  const SpmdReport report = run_spmd_ft(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          // Stall well past rank 0's whole timeout+retry budget (2 x 20 ms)
          // without ever joining the collective, then finish cleanly. Rank 0
          // must hit its own timeout — deterministically, with no race
          // against a peer-death release of the collective (a stalled peer
          // that itself times out at the same instant would make the
          // failure count 1 or 2 depending on scheduling).
          std::this_thread::sleep_for(milliseconds(200));
          return;
        }
        (void)comm.allgatherv<int>(rank_payload(0));
      },
      options);
  // Rank 0's collective timeout is contained as a reported failure — never
  // rethrown out of run_spmd_ft, never a hang; rank 1 finished cleanly.
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failed_ranks(), (std::vector<int>{0}));
  EXPECT_GE(report.stats.wait_timeouts, 1u);
}

TEST(ChaosMpisim, SameSeedSameSchedule) {
  util::RandomFaultRates rates;
  rates.delay = 0.1;
  rates.drop = 0.1;
  rates.max_delay = milliseconds(2);
  const util::FaultPlan plan = util::FaultPlan::random(1234, rates);

  const auto run_once = [&] {
    std::vector<std::vector<int>> gathered(3);
    SpmdOptions options;
    options.fault_plan = &plan;
    const SpmdReport report = run_spmd_ft(
        3,
        [&](Comm& comm) {
          auto& out = gathered[static_cast<std::size_t>(comm.rank())];
          for (int round = 0; round < 10; ++round) {
            const auto part = comm.allgatherv<int>(rank_payload(comm.rank()));
            out.insert(out.end(), part.begin(), part.end());
          }
        },
        options);
    EXPECT_TRUE(report.ok());
    return std::make_pair(gathered, report.faults_injected);
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_GT(first.second, 0u) << "plan never fired; rates too low for test";
}

TEST(ChaosMpisim, CommConfigValidates) {
  CommConfig bad;
  bad.timeout = milliseconds(-1);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.max_retries = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.backoff = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(CommConfig{}.validate());
}

}  // namespace
}  // namespace jem::mpisim
