// FaultPlan/FaultInjector unit tests: the fault schedule must be a pure
// deterministic function of (seed, rank, site, invocation) — that property
// is what makes every other chaos test reproducible.
#include "util/fault_plan.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace jem::util {
namespace {

using std::chrono::milliseconds;

TEST(FaultPlan, EmptyPlanNeverFires) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  for (int rank = 0; rank < 4; ++rank) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(plan.decide(rank, "anything", i).action, FaultAction::kNone);
    }
  }
}

TEST(FaultPlan, ExplicitEventMatchesExactKey) {
  FaultPlan plan;
  plan.abort_at(2, "allgatherv", 1);
  EXPECT_FALSE(plan.empty());

  EXPECT_EQ(plan.decide(2, "allgatherv", 1).action, FaultAction::kAbort);
  // Any component off by one misses.
  EXPECT_EQ(plan.decide(1, "allgatherv", 1).action, FaultAction::kNone);
  EXPECT_EQ(plan.decide(2, "allgatherv", 0).action, FaultAction::kNone);
  EXPECT_EQ(plan.decide(2, "gatherv", 1).action, FaultAction::kNone);
}

TEST(FaultPlan, WildcardsMatchAnyComponent) {
  FaultPlan plan;
  plan.drop_at(FaultPlan::kAnyRank, "send", FaultPlan::kAnyInvocation);
  for (int rank = 0; rank < 8; ++rank) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(plan.decide(rank, "send", i).action, FaultAction::kDrop);
    }
  }
  EXPECT_EQ(plan.decide(0, "recv", 0).action, FaultAction::kNone);

  FaultPlan any_site;
  any_site.delay_at(1, "", 0, milliseconds(7));
  const FaultDecision decision = any_site.decide(1, "whatever", 0);
  EXPECT_EQ(decision.action, FaultAction::kDelay);
  EXPECT_EQ(decision.delay, milliseconds(7));
  EXPECT_EQ(any_site.decide(0, "whatever", 0).action, FaultAction::kNone);
}

TEST(FaultPlan, FirstRegisteredMatchWins) {
  FaultPlan plan;
  plan.drop_at(0, "map", 3).abort_at(FaultPlan::kAnyRank, "map",
                                     FaultPlan::kAnyInvocation);
  EXPECT_EQ(plan.decide(0, "map", 3).action, FaultAction::kDrop);
  EXPECT_EQ(plan.decide(0, "map", 4).action, FaultAction::kAbort);
}

TEST(FaultPlan, RandomPlanIsDeterministicInTheSeed) {
  RandomFaultRates rates;
  rates.delay = 0.2;
  rates.drop = 0.1;
  rates.abort = 0.05;
  const FaultPlan a = FaultPlan::random(42, rates);
  const FaultPlan b = FaultPlan::random(42, rates);
  const FaultPlan c = FaultPlan::random(43, rates);

  bool any_difference_from_c = false;
  for (int rank = 0; rank < 4; ++rank) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      const FaultDecision da = a.decide(rank, "queue.push", i);
      const FaultDecision db = b.decide(rank, "queue.push", i);
      EXPECT_EQ(da.action, db.action);
      EXPECT_EQ(da.delay, db.delay);
      if (da.action != c.decide(rank, "queue.push", i).action) {
        any_difference_from_c = true;
      }
    }
  }
  EXPECT_TRUE(any_difference_from_c) << "different seeds gave one schedule";
}

TEST(FaultPlan, RandomPlanIsPureAcrossCallOrderings) {
  RandomFaultRates rates;
  rates.delay = 0.3;
  rates.drop = 0.2;
  rates.abort = 0.1;
  const FaultPlan plan = FaultPlan::random(7, rates);
  // Querying in reverse must give the same per-key answers.
  std::vector<FaultAction> forward;
  for (std::uint64_t i = 0; i < 50; ++i) {
    forward.push_back(plan.decide(1, "map", i).action);
  }
  for (std::uint64_t i = 50; i-- > 0;) {
    EXPECT_EQ(plan.decide(1, "map", i).action, forward[i]);
  }
}

TEST(FaultPlan, RandomRatesRoughlyRealized) {
  RandomFaultRates rates;
  rates.delay = 0.5;
  const FaultPlan plan = FaultPlan::random(11, rates);
  int delays = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (plan.decide(0, "site", static_cast<std::uint64_t>(i)).action ==
        FaultAction::kDelay) {
      ++delays;
    }
  }
  EXPECT_GT(delays, n / 4);
  EXPECT_LT(delays, 3 * n / 4);
}

TEST(FaultPlan, RandomValidatesRates) {
  RandomFaultRates over_one;
  over_one.delay = 0.9;
  over_one.drop = 0.2;
  EXPECT_THROW((void)FaultPlan::random(1, over_one), std::invalid_argument);

  RandomFaultRates negative;
  negative.delay = -0.1;
  EXPECT_THROW((void)FaultPlan::random(1, negative), std::invalid_argument);

  RandomFaultRates zero_delay;
  zero_delay.delay = 0.1;
  zero_delay.max_delay = milliseconds(0);
  EXPECT_THROW((void)FaultPlan::random(1, zero_delay), std::invalid_argument);
}

TEST(FaultPlan, InjectorCountsPerSiteInvocations) {
  FaultPlan plan;
  plan.drop_at(0, "a", 1).abort_at(0, "b", 0);
  FaultInjector injector(&plan, 0);
  ASSERT_TRUE(injector.active());

  EXPECT_TRUE(injector.fire("a"));    // a#0: none
  EXPECT_FALSE(injector.fire("a"));   // a#1: drop
  EXPECT_TRUE(injector.fire("a"));    // a#2: none
  EXPECT_THROW(injector.fire("b"), FaultAbort);  // b#0: abort

  EXPECT_EQ(injector.drops_injected(), 1u);
  EXPECT_EQ(injector.aborts_injected(), 1u);
  EXPECT_EQ(injector.delays_injected(), 0u);
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST(FaultPlan, InjectorOnNullOrEmptyPlanIsInactive) {
  FaultInjector null_injector(nullptr, 3);
  EXPECT_FALSE(null_injector.active());
  EXPECT_TRUE(null_injector.fire("anything"));

  const FaultPlan empty;
  FaultInjector empty_injector(&empty, 3);
  EXPECT_FALSE(empty_injector.active());
  EXPECT_TRUE(empty_injector.fire("anything"));
  EXPECT_EQ(empty_injector.faults_injected(), 0u);
}

TEST(FaultPlan, FaultAbortCarriesRankAndSite) {
  FaultPlan plan;
  plan.abort_at(5, "S4:map", 0);
  FaultInjector injector(&plan, 5);
  try {
    (void)injector.fire("S4:map");
    FAIL() << "expected FaultAbort";
  } catch (const FaultAbort& abort) {
    EXPECT_EQ(abort.rank(), 5);
    EXPECT_EQ(abort.site(), "S4:map");
    EXPECT_NE(std::string(abort.what()).find("rank 5"), std::string::npos);
  }
}

}  // namespace
}  // namespace jem::util
