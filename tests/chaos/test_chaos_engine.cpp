// Chaos tests for the streaming MappingEngine pipeline: injected reader /
// map / sink faults and queue timeouts must surface as structured
// MapReport failures (or counted drops), never as hangs — and delay-only
// plans must leave the mapped output bit-identical.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dna.hpp"
#include "io/batch_stream.hpp"
#include "io/fasta.hpp"
#include "util/fault_plan.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

using std::chrono::milliseconds;

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class ChaosEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(4242);
    genome_ = random_dna(rng, 40'000);
    for (int i = 0; i < 8; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    params_ = MapParams::make()
                  .k(16)
                  .window(20)
                  .trials(8)
                  .segment_length(800)
                  .seed(7)
                  .build();
    util::Xoshiro256ss read_rng(11);
    for (int i = 0; i < 24; ++i) {
      const std::size_t pos = read_rng.bounded(34'000);
      const std::size_t length = 1200 + read_rng.bounded(3000);
      reads_.add("read_" + std::to_string(i), genome_.substr(pos, length));
    }
    std::ostringstream fasta;
    io::write_fasta(fasta, reads_);
    fasta_ = fasta.str();
  }

  /// Runs the guarded streaming pipeline and collects globalized mappings.
  MapReport run_guarded(const MappingEngine& engine, MapRequest request,
                        std::size_t batch_size,
                        std::vector<SegmentMapping>* out,
                        milliseconds sink_stall = milliseconds(0)) const {
    std::istringstream in(fasta_);
    io::BatchStream stream(in, batch_size);
    return engine.run_stream_guarded(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          if (sink_stall.count() > 0) std::this_thread::sleep_for(sink_stall);
          if (out == nullptr) return;
          for (SegmentMapping mapping : result.mappings) {
            mapping.read =
                static_cast<io::SeqId>(mapping.read + result.batch.first_record);
            out->push_back(mapping);
          }
        });
  }

  std::string genome_;
  std::string fasta_;
  io::SequenceSet subjects_;
  io::SequenceSet reads_;
  MapParams params_;
};

TEST_F(ChaosEngineTest, GuardedRunWithoutFaultsMatchesSequential) {
  const MappingEngine engine(subjects_, params_);
  const auto expected = engine.mapper().map_reads(reads_);

  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 3;
  std::vector<SegmentMapping> streamed;
  const MapReport report = run_guarded(engine, request, 5, &streamed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(report.stats.reads, reads_.size());
  EXPECT_EQ(report.stats.faults_injected, 0u);
  EXPECT_EQ(report.stats.batches_dropped, 0u);
}

TEST_F(ChaosEngineTest, DelayOnlyPlanKeepsStreamOutputBitIdentical) {
  const MappingEngine engine(subjects_, params_);
  const auto expected = engine.mapper().map_reads(reads_);

  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 4;
  request.fault_plan.delay_at(util::FaultPlan::kAnyRank, "",
                              util::FaultPlan::kAnyInvocation, milliseconds(1));
  std::vector<SegmentMapping> streamed;
  const MapReport report = run_guarded(engine, request, 3, &streamed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(streamed, expected);
  EXPECT_GT(report.stats.faults_injected, 0u);
  EXPECT_EQ(report.stats.batches_dropped, 0u);
}

TEST_F(ChaosEngineTest, ReaderAbortSurfacesAsStructuredFailure) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;
  request.fault_plan.abort_at(0, "stream.next", 1);  // dies on batch #1

  std::vector<SegmentMapping> streamed;
  const MapReport report = run_guarded(engine, request, 4, &streamed);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failure->site, "stream.next");
  EXPECT_LE(report.stats.batches, 1u);  // only batch #0 can complete
}

TEST_F(ChaosEngineTest, UnguardedStreamRethrowsInjectedAbort) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;
  request.fault_plan.abort_at(0, "stream.next", 0);

  std::istringstream in(fasta_);
  io::BatchStream stream(in, 4);
  EXPECT_THROW(
      (void)engine.run_stream(stream, request,
                              [](const MappingEngine::BatchResult&) {}),
      util::FaultAbort);
}

TEST_F(ChaosEngineTest, DroppedReaderBatchIsCountedAndRestStayOrdered) {
  const MappingEngine engine(subjects_, params_);
  const std::size_t batch_size = 4;
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;
  request.fault_plan.drop_at(0, "stream.next", 1);  // second parse vanishes

  std::vector<SegmentMapping> streamed;
  const MapReport report = run_guarded(engine, request, batch_size, &streamed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.stats.batches_dropped, 1u);
  EXPECT_EQ(report.stats.reads, reads_.size() - batch_size);

  // Everything except the dropped reads [4, 8) arrives, in read order.
  const auto expected = engine.mapper().map_reads(reads_);
  std::vector<SegmentMapping> survivors;
  for (const SegmentMapping& mapping : expected) {
    if (mapping.read >= batch_size && mapping.read < 2 * batch_size) continue;
    survivors.push_back(mapping);
  }
  EXPECT_EQ(streamed, survivors);
}

TEST_F(ChaosEngineTest, MapStageAbortSurfacesAsMapFailure) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 3;
  request.fault_plan.abort_at(0, "map", 2);

  const MapReport report = run_guarded(engine, request, 3, nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failure->site, "map");
  EXPECT_GE(report.stats.faults_injected, 1u);
}

TEST_F(ChaosEngineTest, DroppedMapBatchLeavesNoEmitterHole) {
  const MappingEngine engine(subjects_, params_);
  const std::size_t batch_size = 4;
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 3;
  request.fault_plan.drop_at(0, "map", 1);  // batch index 1 never emits

  std::vector<SegmentMapping> streamed;
  const MapReport report = run_guarded(engine, request, batch_size, &streamed);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.stats.batches_dropped, 1u);

  const auto expected = engine.mapper().map_reads(reads_);
  std::vector<SegmentMapping> survivors;
  for (const SegmentMapping& mapping : expected) {
    if (mapping.read >= batch_size && mapping.read < 2 * batch_size) continue;
    survivors.push_back(mapping);
  }
  EXPECT_EQ(streamed, survivors);
}

TEST_F(ChaosEngineTest, SinkAbortSurfacesAsSinkFailure) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;
  request.fault_plan.abort_at(0, "sink", 1);

  const MapReport report = run_guarded(engine, request, 4, nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failure->site, "sink");
}

TEST_F(ChaosEngineTest, SinkExceptionIsContainedNotRethrown) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;

  std::istringstream in(fasta_);
  io::BatchStream stream(in, 4);
  int delivered = 0;
  const MapReport report = engine.run_stream_guarded(
      stream, request, [&](const MappingEngine::BatchResult&) {
        if (++delivered == 2) throw std::runtime_error("sink exploded");
      });
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failure->message.find("sink exploded"), std::string::npos);
}

TEST_F(ChaosEngineTest, StalledSinkTimesOutInsteadOfDeadlocking) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;
  request.queue_depth = 1;
  request.stage_timeout = milliseconds(10);
  request.max_retries = 1;

  // The sink sleeps far past the producer's total wait budget (10 + 20 ms),
  // so with a depth-1 queue the push must time out — a bounded failure, not
  // a stuck pipeline.
  const MapReport report = run_guarded(engine, request, 1, nullptr,
                                       /*sink_stall=*/milliseconds(200));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failure->site, "queue.push");
  EXPECT_GE(report.stats.timeouts, 1u);
}

TEST_F(ChaosEngineTest, RequestValidatesRobustnessKnobs) {
  const MappingEngine engine(subjects_, params_);
  MapRequest bad;
  bad.stage_timeout = milliseconds(-5);
  EXPECT_THROW((void)engine.run(reads_, bad), std::invalid_argument);
  bad = {};
  bad.max_retries = -1;
  EXPECT_THROW((void)engine.run(reads_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace jem::core
