// Chaos tests for the distributed drivers: a rank aborted by an injected
// fault must never cost queries — the driver re-maps the lost partition —
// and the report must say whether the surviving output is bit-identical
// (post-allgather abort) or degraded (shared state was lost).
#include "core/distributed.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "core/dna.hpp"
#include "util/fault_plan.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

using std::chrono::milliseconds;

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class ChaosDistributedTest : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;

  void SetUp() override {
    util::Xoshiro256ss rng(9001);
    genome_ = random_dna(rng, 40'000);
    for (int i = 0; i < 8; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    params_ = MapParams::make()
                  .k(16)
                  .window(20)
                  .trials(8)
                  .segment_length(800)
                  .seed(7)
                  .build();
    util::Xoshiro256ss read_rng(13);
    for (int i = 0; i < 24; ++i) {
      const std::size_t pos = read_rng.bounded(34'000);
      const std::size_t length = 1200 + read_rng.bounded(3000);
      reads_.add("read_" + std::to_string(i), genome_.substr(pos, length));
    }
  }

  [[nodiscard]] DistributedResult baseline() const {
    return run_distributed(subjects_, reads_, params_, kRanks);
  }

  std::string genome_;
  io::SequenceSet subjects_;
  io::SequenceSet reads_;
  MapParams params_;
};

TEST_F(ChaosDistributedTest, AbortAfterSketchShareIsBitIdenticalAfterRecovery) {
  const DistributedResult golden = baseline();

  RobustnessOptions robust;
  robust.fault_plan.abort_at(1, "S4:map", 0);  // dies after S3 completed
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, kRanks, SketchScheme::kJem,
                      /*threads_per_rank=*/1, robust);

  // Rank 1 contributed its sketch before dying, so the driver's re-mapped
  // partition is computed against the exact same S_global: bit-identical.
  EXPECT_EQ(result.mappings, golden.mappings);
  EXPECT_EQ(result.report.failed_ranks, std::vector<int>{1});
  EXPECT_GT(result.report.queries_recovered, 0u);
  EXPECT_GE(result.report.faults_injected, 1u);
  EXPECT_GE(result.report.recover_s, 0.0);
  EXPECT_FALSE(result.report.degraded);
  EXPECT_EQ(result.report.queries_mapped, golden.report.queries_mapped);
}

TEST_F(ChaosDistributedTest, AbortBeforeSketchDegradesButMapsEveryQuery) {
  const DistributedResult golden = baseline();

  RobustnessOptions robust;
  robust.fault_plan.abort_at(2, "S2:sketch", 0);  // dies before sharing
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, kRanks, SketchScheme::kJem,
                      /*threads_per_rank=*/1, robust);

  // Survivors mapped against a table missing rank 2's subjects, so results
  // may differ — but every query is still mapped and the report says so.
  EXPECT_EQ(result.mappings.size(), golden.mappings.size());
  EXPECT_EQ(result.report.queries_mapped, golden.report.queries_mapped);
  EXPECT_EQ(result.report.failed_ranks, std::vector<int>{2});
  EXPECT_GT(result.report.queries_recovered, 0u);
  EXPECT_TRUE(result.report.degraded);
}

TEST_F(ChaosDistributedTest, TwoAbortedRanksStillRecoverBitIdentical) {
  const DistributedResult golden = baseline();

  RobustnessOptions robust;
  robust.fault_plan.abort_at(1, "S4:map", 0).abort_at(3, "S4:map", 0);
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, kRanks, SketchScheme::kJem,
                      /*threads_per_rank=*/1, robust);

  EXPECT_EQ(result.mappings, golden.mappings);
  EXPECT_EQ(result.report.failed_ranks, (std::vector<int>{1, 3}));
  EXPECT_FALSE(result.report.degraded);
}

TEST_F(ChaosDistributedTest, DelayOnlyPlanKeepsDistributedOutputIdentical) {
  const DistributedResult golden = baseline();

  RobustnessOptions robust;
  robust.fault_plan.delay_at(util::FaultPlan::kAnyRank, "",
                             util::FaultPlan::kAnyInvocation, milliseconds(1));
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, kRanks, SketchScheme::kJem,
                      /*threads_per_rank=*/1, robust);

  EXPECT_EQ(result.mappings, golden.mappings);
  EXPECT_TRUE(result.report.failed_ranks.empty());
  EXPECT_FALSE(result.report.degraded);
  EXPECT_GT(result.report.faults_injected, 0u);
}

TEST_F(ChaosDistributedTest, PartitionedAbortRecoversAllQueries) {
  const DistributedResult golden =
      run_distributed_partitioned(subjects_, reads_, params_, kRanks);
  EXPECT_EQ(golden.mappings, baseline().mappings)
      << "partitioned baseline must match replicated";

  RobustnessOptions robust;
  robust.fault_plan.abort_at(2, "P:map", 0);
  const DistributedResult result = run_distributed_partitioned(
      subjects_, reads_, params_, kRanks, SketchScheme::kJem, robust);

  // The dead shard stopped answering probes, so survivor results are
  // degraded — but the query count is intact.
  EXPECT_EQ(result.mappings.size(), golden.mappings.size());
  EXPECT_EQ(result.report.queries_mapped, golden.report.queries_mapped);
  EXPECT_EQ(result.report.failed_ranks, std::vector<int>{2});
  EXPECT_GT(result.report.queries_recovered, 0u);
  EXPECT_TRUE(result.report.degraded);
}

TEST_F(ChaosDistributedTest, StagedFaultPlanReBillsLostWork) {
  const DistributedResult golden =
      run_staged(subjects_, reads_, params_, kRanks);

  RobustnessOptions robust;
  robust.fault_plan.abort_at(1, "S4:map-queries", 0);
  const DistributedResult result =
      run_staged(subjects_, reads_, params_, kRanks, mpisim::NetworkModel{},
                 SketchScheme::kJem, robust);

  // The staged mode is a performance model: results stay complete and
  // identical, the abort only re-bills rank 1's map work to a recovery
  // step in the modeled timeline.
  EXPECT_EQ(result.mappings, golden.mappings);
  EXPECT_EQ(result.report.failed_ranks, std::vector<int>{1});
  EXPECT_GT(result.report.queries_recovered, 0u);
  EXPECT_GT(result.report.recover_s, 0.0);
  EXPECT_FALSE(result.report.degraded);
}

TEST_F(ChaosDistributedTest, RandomPlanReplaysIdenticallyRunToRun) {
  util::RandomFaultRates rates;
  rates.delay = 0.15;
  rates.drop = 0.15;
  rates.max_delay = milliseconds(2);
  RobustnessOptions robust;
  robust.fault_plan = util::FaultPlan::random(2026, rates);

  const auto run_once = [&] {
    return run_distributed(subjects_, reads_, params_, kRanks,
                           SketchScheme::kJem, /*threads_per_rank=*/1, robust);
  };
  const DistributedResult first = run_once();
  const DistributedResult second = run_once();
  EXPECT_EQ(first.mappings, second.mappings);
  EXPECT_EQ(first.report.failed_ranks, second.report.failed_ranks);
  EXPECT_EQ(first.report.faults_injected, second.report.faults_injected);
  EXPECT_EQ(first.report.degraded, second.report.degraded);
  EXPECT_GT(first.report.faults_injected, 0u);
}

TEST_F(ChaosDistributedTest, HybridRanksWithThreadsRecoverToo) {
  const DistributedResult golden = baseline();

  RobustnessOptions robust;
  robust.fault_plan.abort_at(0, "S4:map", 0);
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, kRanks, SketchScheme::kJem,
                      /*threads_per_rank=*/2, robust);

  EXPECT_EQ(result.mappings, golden.mappings);
  EXPECT_EQ(result.report.failed_ranks, std::vector<int>{0});
  EXPECT_FALSE(result.report.degraded);
}

}  // namespace
}  // namespace jem::core
