// Chaos tests of the crash-safe persistence path (docs/persistence.md):
// deterministic "ckpt.write" faults kill a checkpointed streaming run at
// chosen journal appends, and the resume protocol — read_journal, reopen the
// partial output at the journaled prefix, BatchStream::skip, continue into
// the same output — must reproduce the uninterrupted run byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/batch_stream.hpp"
#include "io/checkpoint.hpp"
#include "io/fasta.hpp"
#include "io/mapping_writer.hpp"
#include "util/fault_plan.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t len) {
  static constexpr char kBases[] = "ACGT";
  std::string out(len, 'A');
  for (char& c : out) c = kBases[rng.bounded(4)];
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

class ChaosCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(4242);
    genome_ = random_dna(rng, 40'000);
    for (int i = 0; i < 8; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    params_ = MapParams::make()
                  .k(16)
                  .window(20)
                  .trials(8)
                  .segment_length(800)
                  .seed(7)
                  .build();
    util::Xoshiro256ss read_rng(11);
    io::SequenceSet reads;
    for (int i = 0; i < 24; ++i) {
      const std::size_t pos = read_rng.bounded(34'000);
      const std::size_t length = 1200 + read_rng.bounded(3000);
      reads.add("read_" + std::to_string(i), genome_.substr(pos, length));
    }
    std::ostringstream fasta;
    io::write_fasta(fasta, reads);
    fasta_ = fasta.str();
    total_reads_ = reads.size();

    fp_.words = {0xaaaa, 0xbbbb, 0xcccc, 0xdddd};
  }

  /// Deterministic byte rendering of one emitted batch — the engine's
  /// in-order emit makes the concatenation independent of batch size,
  /// backend and thread count.
  static std::string render(const MappingEngine::BatchResult& result) {
    std::ostringstream out;
    for (const SegmentMapping& m : result.mappings) {
      out << (m.read + result.batch.first_record) << '\t'
          << read_end_tag(m.end) << '\t' << m.offset << '\t'
          << m.segment_length << '\t' << m.result.subject << '\t'
          << m.result.votes << '\n';
    }
    return std::move(out).str();
  }

  /// The uninterrupted run's bytes (serial, no checkpoint) — the golden
  /// output every interrupted-and-resumed run must reproduce.
  std::string golden(const MappingEngine& engine) const {
    std::istringstream in(fasta_);
    io::BatchStream stream(in, 5);
    std::string out;
    const MapRequest request;
    engine.run_stream(stream, request,
                      [&](const MappingEngine::BatchResult& result) {
                        out += render(result);
                      });
    return out;
  }

  /// Unique scratch paths per test (gtest runs tests in one process).
  std::string out_path(const std::string& label) const {
    return ::testing::TempDir() + "/jem_ckpt_" + label + ".tsv";
  }

  std::string genome_;
  std::string fasta_;
  io::SequenceSet subjects_;
  MapParams params_;
  std::size_t total_reads_ = 0;
  io::JournalFingerprint fp_;
};

TEST_F(ChaosCheckpointTest, CheckpointedRunMatchesPlainStreaming) {
  const MappingEngine engine(subjects_, params_);
  const std::string expected = golden(engine);

  for (const std::size_t batch : {std::size_t{3}, std::size_t{7}}) {
    const std::string label = "plain_b" + std::to_string(batch);
    const std::string out = out_path(label);
    const std::string ckpt = out + ".ckpt";
    std::remove(out.c_str());

    io::MappingOutput output(out);
    io::CheckpointWriter journal = io::CheckpointWriter::create(ckpt, fp_);
    journal.set_output_state([&] { return output.state(); });

    MapRequest request;
    request.backend = MapBackend::kPool;
    request.threads = 3;
    request.checkpoint = &journal;
    std::istringstream in(fasta_);
    io::BatchStream stream(in, batch);
    const EngineStats stats = engine.run_stream(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          output.append(render(result));
          output.sync();
        });

    const std::uint64_t batches = (total_reads_ + batch - 1) / batch;
    EXPECT_EQ(stats.journal_appends, batches);
    const io::ResumePoint point = io::read_journal(ckpt, fp_);
    EXPECT_EQ(point.batches_done, batches);
    EXPECT_EQ(point.records_done, total_reads_);
    EXPECT_EQ(point.output_bytes, expected.size());
    EXPECT_EQ(point.output_hash, io::xxh64(expected));

    output.publish();
    journal.close();
    io::remove_journal(ckpt);
    EXPECT_EQ(slurp(out), expected);
    std::remove(out.c_str());
  }
}

TEST_F(ChaosCheckpointTest, KillAndResumeIsByteIdenticalAtEveryKillPoint) {
  const MappingEngine engine(subjects_, params_);
  const std::string expected = golden(engine);

  // Acceptance matrix: >= 3 kill points x 2 batch sizes.
  for (const std::size_t batch : {std::size_t{3}, std::size_t{7}}) {
    for (const std::uint64_t kill : {std::uint64_t{0}, std::uint64_t{1},
                                     std::uint64_t{3}}) {
      const std::string label =
          "kill" + std::to_string(kill) + "_b" + std::to_string(batch);
      const std::string out = out_path(label);
      const std::string ckpt = out + ".ckpt";
      std::remove(out.c_str());

      {  // Phase 1: run until the injected crash mid-journal-append.
        io::MappingOutput output(out);
        io::CheckpointWriter journal =
            io::CheckpointWriter::create(ckpt, fp_);
        journal.set_output_state([&] { return output.state(); });

        MapRequest request;
        request.backend = MapBackend::kPool;
        request.threads = 3;
        request.checkpoint = &journal;
        request.fault_plan.abort_at(0, "ckpt.write", kill);
        std::istringstream in(fasta_);
        io::BatchStream stream(in, batch);
        const MapReport report = engine.run_stream_guarded(
            stream, request, [&](const MappingEngine::BatchResult& result) {
              output.append(render(result));
              output.sync();
            });
        ASSERT_FALSE(report.ok()) << label;
        EXPECT_EQ(report.failure->site, "ckpt.write");
        // output/journal fall out of scope unpublished — the SIGKILL shape:
        // a .partial file and a torn journal are all that survive.
      }

      // Phase 2: resume exactly as examples/jem_map --resume does.
      const io::ResumePoint point = io::read_journal(ckpt, fp_);
      EXPECT_EQ(point.batches_done, kill) << label;
      EXPECT_EQ(point.torn_records, 1u) << label;  // the torn half-record

      io::MappingOutput output(out, point.output_bytes, point.output_hash);
      io::CheckpointWriter journal =
          io::CheckpointWriter::reopen(ckpt, fp_, point);
      journal.set_output_state([&] { return output.state(); });

      std::istringstream in(fasta_);
      io::BatchStream stream(in, batch);
      EXPECT_EQ(stream.skip(point.batches_done), point.records_done);

      MapRequest request;
      request.backend = MapBackend::kPool;
      request.threads = 2;
      request.checkpoint = &journal;
      const MapReport report = engine.run_stream_guarded(
          stream, request, [&](const MappingEngine::BatchResult& result) {
            output.append(render(result));
            output.sync();
          });
      ASSERT_TRUE(report.ok()) << label;
      EXPECT_EQ(report.stats.batches_skipped, kill);

      output.publish();
      journal.close();
      io::remove_journal(ckpt);
      EXPECT_EQ(slurp(out), expected) << label;
      std::remove(out.c_str());
    }
  }
}

TEST_F(ChaosCheckpointTest, SerialBackendKillAndResumeIsByteIdentical) {
  const MappingEngine engine(subjects_, params_);
  const std::string expected = golden(engine);
  const std::string out = out_path("serial_kill");
  const std::string ckpt = out + ".ckpt";
  std::remove(out.c_str());

  {
    io::MappingOutput output(out);
    io::CheckpointWriter journal = io::CheckpointWriter::create(ckpt, fp_);
    journal.set_output_state([&] { return output.state(); });
    MapRequest request;
    request.checkpoint = &journal;  // kSerial backend
    request.fault_plan.abort_at(0, "ckpt.write", 2);
    std::istringstream in(fasta_);
    io::BatchStream stream(in, 5);
    const MapReport report = engine.run_stream_guarded(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          output.append(render(result));
          output.sync();
        });
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.failure->site, "ckpt.write");
  }

  const io::ResumePoint point = io::read_journal(ckpt, fp_);
  EXPECT_EQ(point.batches_done, 2u);
  io::MappingOutput output(out, point.output_bytes, point.output_hash);
  io::CheckpointWriter journal = io::CheckpointWriter::reopen(ckpt, fp_, point);
  journal.set_output_state([&] { return output.state(); });
  std::istringstream in(fasta_);
  io::BatchStream stream(in, 5);
  stream.skip(point.batches_done);
  MapRequest request;
  request.checkpoint = &journal;
  const MapReport report = engine.run_stream_guarded(
      stream, request, [&](const MappingEngine::BatchResult& result) {
        output.append(render(result));
        output.sync();
      });
  ASSERT_TRUE(report.ok());
  output.publish();
  journal.close();
  io::remove_journal(ckpt);
  EXPECT_EQ(slurp(out), expected);
  std::remove(out.c_str());
}

TEST_F(ChaosCheckpointTest, DroppedJournalAppendFailsClosedOnResume) {
  const MappingEngine engine(subjects_, params_);
  const std::string expected = golden(engine);
  const std::string out = out_path("drop");
  const std::string ckpt = out + ".ckpt";
  std::remove(out.c_str());

  io::MappingOutput output(out);
  io::CheckpointWriter journal = io::CheckpointWriter::create(ckpt, fp_);
  journal.set_output_state([&] { return output.state(); });

  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 3;
  request.checkpoint = &journal;
  request.fault_plan.drop_at(0, "ckpt.write", 1);  // one append silently lost
  std::istringstream in(fasta_);
  io::BatchStream stream(in, 3);
  const MapReport report = engine.run_stream_guarded(
      stream, request, [&](const MappingEngine::BatchResult& result) {
        output.append(render(result));
        output.sync();
      });

  // The run itself completes and its output is untouched by the lost
  // journal record...
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(journal.records_appended(), 7u);  // 8 batches, one record lost
  output.publish();
  journal.close();
  EXPECT_EQ(slurp(out), expected);

  // ...but the journal now has a hole, and resume must refuse it rather
  // than splice output around a missing batch.
  try {
    (void)io::read_journal(ckpt, fp_);
    FAIL() << "expected kStaleJournal";
  } catch (const io::ArtifactError& error) {
    EXPECT_EQ(error.reason(), io::ArtifactReason::kStaleJournal);
  }
  io::remove_journal(ckpt);
  std::remove(out.c_str());
}

}  // namespace
}  // namespace jem::core
