// Property / differential tests: randomized seeded genomes pushed through
// the whole sim -> sketch -> map pipeline, checking that every execution
// configuration (backend x batch size x fault plan) of MappingEngine is
// bit-identical to the sequential golden path, and that the flat-index hot
// path agrees with the reference oracle on every sampled segment.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/batch_stream.hpp"
#include "io/fasta.hpp"
#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"
#include "util/fault_plan.hpp"

namespace jem::core {
namespace {

using std::chrono::milliseconds;

struct SimCase {
  io::SequenceSet contigs;
  io::SequenceSet reads;
};

/// One randomized end-to-end input, deterministic in `seed`.
SimCase make_case(std::uint64_t seed) {
  sim::GenomeParams genome_params;
  genome_params.length = 50'000;
  genome_params.repeat_fraction = 0.10;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.mean_length = 4000.0;
  contig_params.sd_length = 2000.0;
  contig_params.coverage_fraction = 0.95;
  contig_params.seed = seed + 1;

  sim::HiFiParams read_params;
  read_params.coverage = 2.0;
  read_params.mean_length = 2500.0;
  read_params.sd_length = 800.0;
  read_params.min_length = 1200;
  read_params.max_length = 6000;
  read_params.seed = seed + 2;

  return SimCase{sim::simulate_contigs(genome, contig_params).contigs,
                 sim::simulate_hifi_reads(genome, read_params).reads};
}

MapParams small_params() {
  return MapParams::make()
      .k(16)
      .window(20)
      .trials(8)
      .segment_length(800)
      .seed(5)
      .build();
}

constexpr std::uint64_t kSeeds[] = {101, 202};

TEST(PropertyEngine, EveryBackendAndBatchSizeMatchesSequential) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SimCase input = make_case(seed);
    ASSERT_GT(input.reads.size(), 0u);
    const MappingEngine engine(input.contigs, small_params());
    const auto golden = engine.mapper().map_reads(input.reads);

    for (const MapBackend backend :
         {MapBackend::kSerial, MapBackend::kPool, MapBackend::kOpenMP}) {
      for (const std::size_t batch_size :
           {std::size_t{1}, std::size_t{3}, std::size_t{17}, std::size_t{0}}) {
        SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(backend)) +
                     " batch=" + std::to_string(batch_size));
        MapRequest request;
        request.backend = backend;
        request.batch_size = batch_size;
        request.threads = 3;
        EXPECT_EQ(engine.run(input.reads, request).mappings, golden);
      }
    }
  }
}

TEST(PropertyEngine, StreamingMatchesInMemoryForEveryBatchSize) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SimCase input = make_case(seed);
    const MappingEngine engine(input.contigs, small_params());
    const auto golden = engine.mapper().map_reads(input.reads);

    std::ostringstream fasta;
    io::write_fasta(fasta, input.reads);

    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{5}, std::size_t{32}}) {
      SCOPED_TRACE("batch=" + std::to_string(batch_size));
      std::istringstream in(fasta.str());
      io::BatchStream stream(in, batch_size);
      MapRequest request;
      request.backend = MapBackend::kPool;
      request.threads = 3;
      std::vector<SegmentMapping> streamed;
      const EngineStats stats = engine.run_stream(
          stream, request, [&](const MappingEngine::BatchResult& result) {
            for (SegmentMapping mapping : result.mappings) {
              mapping.read = static_cast<io::SeqId>(mapping.read +
                                                    result.batch.first_record);
              streamed.push_back(mapping);
            }
          });
      EXPECT_EQ(streamed, golden);
      EXPECT_EQ(stats.reads, input.reads.size());
    }
  }
}

TEST(PropertyEngine, RandomDelayPlansNeverChangeStreamOutput) {
  const SimCase input = make_case(kSeeds[0]);
  const MappingEngine engine(input.contigs, small_params());
  const auto golden = engine.mapper().map_reads(input.reads);

  std::ostringstream fasta;
  io::write_fasta(fasta, input.reads);

  for (const std::uint64_t plan_seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("plan_seed=" + std::to_string(plan_seed));
    util::RandomFaultRates rates;
    rates.delay = 0.3;
    rates.max_delay = milliseconds(2);

    MapRequest request;
    request.backend = MapBackend::kPool;
    request.threads = 3;
    request.fault_plan = util::FaultPlan::random(plan_seed, rates);

    std::istringstream in(fasta.str());
    io::BatchStream stream(in, 4);
    std::vector<SegmentMapping> streamed;
    const MapReport report = engine.run_stream_guarded(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          for (SegmentMapping mapping : result.mappings) {
            mapping.read = static_cast<io::SeqId>(mapping.read +
                                                  result.batch.first_record);
            streamed.push_back(mapping);
          }
        });
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(streamed, golden);
    EXPECT_EQ(report.stats.batches_dropped, 0u);
  }
}

TEST(PropertyEngine, FlatIndexPathMatchesReferenceOracleOnSampledSegments) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SimCase input = make_case(seed);
    const MapParams params = small_params();
    const MappingEngine engine(input.contigs, params);
    MapScratch scratch(input.contigs.size());

    const std::size_t l = params.segment_length;
    int sampled = 0;
    for (io::SeqId read = 0; read < input.reads.size(); ++read) {
      const std::string_view bases = input.reads.bases(read);
      if (bases.size() < l) continue;
      for (const std::string_view segment :
           {bases.substr(0, l), bases.substr(bases.size() - l)}) {
        const MapResult fast = engine.mapper().map_segment(segment, scratch);
        const MapResult oracle =
            engine.mapper().map_segment_reference(segment, scratch);
        EXPECT_EQ(fast, oracle);
        ++sampled;
      }
    }
    EXPECT_GT(sampled, 0);
  }
}

}  // namespace
}  // namespace jem::core
