// Chaos suite for the serve path (docs/serve.md "Failure modes & recovery",
// docs/robustness.md): a live loopback MappingServer under a seeded
// util::FaultPlan — connection resets, injected latency, truncated writes,
// dropped batches, worker/batcher aborts — driven by the resilient
// serve::Client. The acceptance contract:
//  * every request completes with bodies bit-identical to a fault-free run
//    (faults shift timing and retries, never results);
//  * the same seed replays the same injection schedule (counter-identical);
//  * the supervisor respawns aborted worker/batcher threads mid-run;
//  * /admin/reload hot-swaps the index under load with zero failed
//    requests, and a corrupt artifact leaves the old epoch serving.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dna.hpp"
#include "core/engine.hpp"
#include "core/index_serde.hpp"
#include "core/mapper.hpp"
#include "core/service.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/fault_plan.hpp"
#include "util/prng.hpp"

namespace jem::serve {
namespace {

using std::chrono::milliseconds;

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  static constexpr int kRequests = 200;

  void SetUp() override {
    util::Xoshiro256ss rng(321);
    genome_ = random_dna(rng, 30'000);
    io::SequenceSet subjects;
    for (int i = 0; i < 6; ++i) {
      subjects.add("contig_" + std::to_string(i),
                   genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    config_ = core::ServiceConfig::make()
                  .k(16)
                  .window(20)
                  .trials(16)
                  .segment_length(800)
                  .seed(11)
                  .build();
    service_ = std::make_shared<const core::MappingService>(
        std::move(subjects), config_);

    util::Xoshiro256ss query_rng(17);
    for (int i = 0; i < 8; ++i) {
      const std::size_t pos = query_rng.bounded(25'000);
      queries_.push_back(genome_.substr(pos, 800));
    }
  }

  [[nodiscard]] const std::string& query(int i) const {
    return queries_[static_cast<std::size_t>(i) % queries_.size()];
  }

  /// Writes the running service's index as a valid JEMIDX1 artifact.
  [[nodiscard]] std::string save_artifact(const std::string& name) const {
    const std::string path = ::testing::TempDir() + "/" + name;
    core::save_index(path, service_->engine().mapper().table(),
                     config_.params, config_.scheme, service_->subjects());
    return path;
  }

  /// The seeded chaos plan both determinism runs share: random resets,
  /// latency and truncated/dropped work, plus one scripted worker abort and
  /// one scripted batcher abort so the supervisor provably respawns both.
  [[nodiscard]] static util::FaultPlan chaos_plan(std::uint64_t seed) {
    util::RandomFaultRates rates;
    rates.delay = 0.05;
    rates.drop = 0.08;
    rates.abort = 0.0;
    rates.max_delay = milliseconds(2);
    util::FaultPlan plan = util::FaultPlan::random(seed, rates);
    plan.abort_at(util::FaultPlan::kAnyRank, "serve.read", 7);
    plan.abort_at(util::FaultPlan::kAnyRank, "serve.batch", 3);
    return plan;
  }

  struct ChaosRun {
    std::vector<int> statuses;
    std::vector<std::string> bodies;
    std::map<std::string, std::uint64_t> injected;  // chaos counter values
    std::uint64_t worker_restarts = 0;
    std::uint64_t batcher_restarts = 0;
    std::uint64_t client_retries = 0;
  };

  /// Drives kRequests sequential /map requests through the resilient
  /// client against a server running `plan` (cache off, so every response
  /// reflects the index, not the LRU). Deterministic end to end: the plan
  /// is seeded, the client's jitter is seeded, the request order is fixed.
  [[nodiscard]] ChaosRun run_under_chaos(const util::FaultPlan& plan) {
    ServerConfig server_config;
    server_config.port = 0;
    server_config.cache_capacity = 0;
    server_config.fault_plan = &plan;
    MappingServer server(service_, server_config);
    server.start();

    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff = milliseconds(1);
    policy.max_backoff = milliseconds(50);
    policy.jitter_seed = 0xfeedfacecafebeefull;
    CircuitBreaker::Config breaker;
    breaker.failure_threshold = 100;  // never trips during the chaos run
    Client client("127.0.0.1", server.port(), policy, breaker);

    ChaosRun run;
    for (int i = 0; i < kRequests; ++i) {
      const HttpResponse response = client.post("/map", query(i));
      run.statuses.push_back(response.status);
      run.bodies.push_back(response.body);
    }
    run.client_retries = client.retries();

    // The scripted aborts killed one worker and the batcher; wait for the
    // supervisor to finish the respawns before sampling the tallies.
    for (int i = 0; i < 5000; ++i) {
      if (server.worker_restarts() >= 1 && server.batcher_restarts() >= 1) {
        break;
      }
      std::this_thread::sleep_for(milliseconds(1));
    }
    run.worker_restarts = server.worker_restarts();
    run.batcher_restarts = server.batcher_restarts();

    const auto snapshot = server.registry().snapshot();
    for (const char* kind :
         {"delay", "reset", "partial", "abort", "cache_bypass",
          "batch_drop"}) {
      const std::string name = std::string("serve.chaos.injected.") + kind;
      const auto* metric = snapshot.find(name);
      run.injected[name] = metric == nullptr ? 0 : metric->value;
    }
    server.stop();
    return run;
  }

  std::string genome_;
  core::ServiceConfig config_;
  std::shared_ptr<const core::MappingService> service_;
  std::vector<std::string> queries_;
};

TEST_F(ServeChaosTest, SeededFaultsCompleteBitIdenticalToFaultFreeRun) {
  // Fault-free baseline over the identical request sequence.
  ServerConfig baseline_config;
  baseline_config.port = 0;
  baseline_config.cache_capacity = 0;
  MappingServer baseline(service_, baseline_config);
  baseline.start();
  std::vector<std::string> expected;
  expected.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    const HttpResponse response =
        http_post("127.0.0.1", baseline.port(), "/map", query(i));
    ASSERT_EQ(response.status, 200);
    expected.push_back(response.body);
  }
  baseline.stop();

  const util::FaultPlan plan = chaos_plan(42);
  const ChaosRun run = run_under_chaos(plan);

  // 100% completion: the resilient client absorbed every injected fault.
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_EQ(run.statuses[static_cast<std::size_t>(i)], 200)
        << "request " << i;
    EXPECT_EQ(run.bodies[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "request " << i << " diverged under chaos";
  }

  // The plan demonstrably fired: resets and both scripted aborts landed,
  // the client actually retried, and the supervisor respawned both the
  // aborted worker and the aborted batcher.
  EXPECT_GE(run.injected.at("serve.chaos.injected.reset"), 1u);
  EXPECT_EQ(run.injected.at("serve.chaos.injected.abort"), 2u);
  EXPECT_GE(run.client_retries, 1u);
  EXPECT_GE(run.worker_restarts, 1u);
  EXPECT_GE(run.batcher_restarts, 1u);
}

TEST_F(ServeChaosTest, SameSeedReplaysTheSameInjectionSchedule) {
  const util::FaultPlan plan_a = chaos_plan(42);
  const util::FaultPlan plan_b = chaos_plan(42);
  const ChaosRun first = run_under_chaos(plan_a);
  const ChaosRun second = run_under_chaos(plan_b);

  EXPECT_EQ(first.statuses, second.statuses);
  EXPECT_EQ(first.bodies, second.bodies);
  EXPECT_EQ(first.injected, second.injected)
      << "same seed must inject the same fault schedule";
  EXPECT_EQ(first.client_retries, second.client_retries);

  // A different seed draws a different random schedule (with these rates,
  // ~30+ injections per run — collision of every counter is implausible).
  const util::FaultPlan other = chaos_plan(43);
  const ChaosRun third = run_under_chaos(other);
  EXPECT_NE(first.injected, third.injected);
}

TEST_F(ServeChaosTest, HotSwapUnderLoadLosesNoRequests) {
  const std::string artifact = save_artifact("jem_chaos_swap.jemidx");
  ServerConfig server_config;
  server_config.port = 0;
  server_config.reload_index_path = artifact;
  MappingServer server(service_, server_config);
  server.start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> non_ok{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> hammer;
  hammer.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    hammer.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          const HttpResponse response = http_post(
              "127.0.0.1", server.port(), "/map", query(t * kPerThread + i));
          if (response.status != 200) non_ok.fetch_add(1);
        } catch (const ClientError&) {
          non_ok.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  // Two reloads while the hammer runs: epoch 0 -> 1 -> 2, in-flight
  // requests finish on the epoch they started with, nothing fails.
  int reloads_done = 0;
  for (std::uint64_t target_epoch = 1; target_epoch <= 2; ++target_epoch) {
    while (completed.load() < static_cast<int>(target_epoch) * 25) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    const HttpResponse reload =
        http_post("127.0.0.1", server.port(), "/admin/reload", "");
    EXPECT_EQ(reload.status, 200) << reload.body;
    EXPECT_NE(reload.body.find("\"epoch\":" + std::to_string(target_epoch)),
              std::string::npos)
        << reload.body;
    ++reloads_done;
  }
  for (std::thread& thread : hammer) thread.join();

  EXPECT_EQ(non_ok.load(), 0);
  EXPECT_EQ(reloads_done, 2);
  EXPECT_EQ(server.epoch(), 2u);

  const HttpResponse healthz =
      http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_NE(healthz.body.find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(healthz.body.find("\"index\":\"artifact\""), std::string::npos);

  // Post-swap responses still match the single-shot service (same index
  // bytes, new epoch).
  const core::MapServiceResponse expected = service_->map(
      core::MapServiceRequest::make().sequence(query(0)).build());
  const HttpResponse after =
      http_post("127.0.0.1", server.port(), "/map", query(0));
  ASSERT_EQ(after.status, 200);
  if (expected.mapped()) {
    EXPECT_NE(after.body.find("\"subject\":\"" +
                              expected.hits[0].subject_name + "\""),
              std::string::npos);
  }
  server.stop();
}

TEST_F(ServeChaosTest, CorruptArtifactLeavesOldEpochServing) {
  const std::string corrupt = ::testing::TempDir() + "/jem_chaos_corrupt.bin";
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << "this is not a JEMIDX1 artifact";
  }
  ServerConfig server_config;
  server_config.port = 0;
  MappingServer server(service_, server_config);
  server.start();

  // Direct API: structured failure, epoch untouched.
  const MappingServer::ReloadOutcome outcome = server.reload_index(corrupt);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(outcome.epoch, 0u);
  EXPECT_EQ(server.epoch(), 0u);

  // HTTP path: 409 with the structured index-unavailable error.
  const HttpResponse rejected = http_post(
      "127.0.0.1", server.port(), "/admin/reload?path=" + corrupt, "");
  EXPECT_EQ(rejected.status, 409);
  EXPECT_NE(rejected.body.find("\"error\":\"index-unavailable\""),
            std::string::npos)
      << rejected.body;

  // A params-mismatched (but well-formed) artifact is equally rejected.
  io::SequenceSet other_subjects;
  for (int i = 0; i < 6; ++i) {
    other_subjects.add(
        "contig_" + std::to_string(i),
        genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
  }
  const core::ServiceConfig other_config = core::ServiceConfig::make()
                                               .k(18)
                                               .window(20)
                                               .trials(16)
                                               .segment_length(800)
                                               .seed(11)
                                               .build();
  const core::MappingService other_service(std::move(other_subjects),
                                           other_config);
  const std::string mismatched =
      ::testing::TempDir() + "/jem_chaos_mismatch.jemidx";
  core::save_index(mismatched, other_service.engine().mapper().table(),
                   other_config.params, other_config.scheme,
                   other_service.subjects());
  const MappingServer::ReloadOutcome wrong_params =
      server.reload_index(mismatched);
  EXPECT_FALSE(wrong_params.success);
  EXPECT_FALSE(wrong_params.error.empty());
  EXPECT_EQ(server.epoch(), 0u);

  // Old index keeps serving; /admin/reload only answers POST.
  const HttpResponse still_serving =
      http_post("127.0.0.1", server.port(), "/map", query(0));
  EXPECT_EQ(still_serving.status, 200);
  const HttpResponse wrong_method =
      http_get("127.0.0.1", server.port(), "/admin/reload");
  EXPECT_EQ(wrong_method.status, 405);

  const auto snapshot = server.registry().snapshot();
  const auto* rejected_total = snapshot.find("serve.reload.rejected");
  ASSERT_NE(rejected_total, nullptr);
  EXPECT_GE(rejected_total->value, 3u);
  server.stop();
}

}  // namespace
}  // namespace jem::serve
