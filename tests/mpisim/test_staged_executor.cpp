#include "mpisim/staged_executor.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace jem::mpisim {
namespace {

TEST(StagedExecutor, RunsEveryRankSequentially) {
  StagedExecutor executor(4);
  std::vector<int> order;
  executor.compute_step("step", [&](int rank) { order.push_back(rank); });
  const std::vector<int> expected{0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(StagedExecutor, ThrowsOnNonPositiveRanks) {
  EXPECT_THROW(StagedExecutor(0), std::invalid_argument);
}

TEST(StagedExecutor, StepCostIsMaxOverRanks) {
  StagedExecutor executor(3);
  executor.compute_step("uneven", [](int rank) {
    std::this_thread::sleep_for(std::chrono::milliseconds(rank * 5));
  });
  const auto& steps = executor.steps();
  ASSERT_EQ(steps.size(), 1u);
  ASSERT_EQ(steps[0].per_rank_s.size(), 3u);
  EXPECT_GE(steps[0].cost_s, steps[0].per_rank_s[0]);
  EXPECT_GE(steps[0].cost_s, steps[0].per_rank_s[1]);
  EXPECT_DOUBLE_EQ(steps[0].cost_s, steps[0].per_rank_s[2]);
}

TEST(StagedExecutor, CommStepsUseTheModel) {
  NetworkModel model;
  StagedExecutor executor(8, model);
  executor.comm_allgatherv("gather", 1 << 20);
  EXPECT_DOUBLE_EQ(executor.comm_s(), model.allgatherv_s(8, 1 << 20));
  EXPECT_DOUBLE_EQ(executor.compute_s(), 0.0);
}

TEST(StagedExecutor, TotalIsComputePlusComm) {
  StagedExecutor executor(2);
  executor.compute_step("work", [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  executor.comm_barrier("sync");
  EXPECT_DOUBLE_EQ(executor.total_s(),
                   executor.compute_s() + executor.comm_s());
  EXPECT_GT(executor.compute_s(), 0.0);
  EXPECT_GT(executor.comm_s(), 0.0);
}

TEST(StagedExecutor, StepLookupByNameSumsDuplicates) {
  StagedExecutor executor(2);
  executor.comm_barrier("b");
  executor.comm_barrier("b");
  executor.comm_barrier("other");
  EXPECT_DOUBLE_EQ(executor.step_s("b"),
                   2 * executor.model().barrier_s(2));
  EXPECT_DOUBLE_EQ(executor.step_s("missing"), 0.0);
}

TEST(StagedExecutor, RecordsCommBytes) {
  StagedExecutor executor(4);
  executor.comm_allgatherv("gather", 12345);
  executor.comm_reduce("reduce", 678);
  ASSERT_EQ(executor.steps().size(), 2u);
  EXPECT_EQ(executor.steps()[0].bytes, 12345u);
  EXPECT_EQ(executor.steps()[1].bytes, 678u);
  EXPECT_TRUE(executor.steps()[0].is_comm);
}

TEST(StagedExecutor, ModeledScalingShrinksComputeCost) {
  // A fixed total amount of work divided across more ranks must yield a
  // smaller max-per-rank cost.
  const auto run_with_ranks = [](int ranks) {
    StagedExecutor executor(ranks);
    const int total_iters = 2'000'000;
    executor.compute_step("work", [&](int rank) {
      volatile double sink = 0;
      const int iters = total_iters / ranks;
      (void)rank;
      for (int i = 0; i < iters; ++i) sink = sink + 1.0;
    });
    return executor.compute_s();
  };
  const double t1 = run_with_ranks(1);
  const double t8 = run_with_ranks(8);
  EXPECT_LT(t8, t1);
}

}  // namespace
}  // namespace jem::mpisim
