#include "mpisim/network_model.hpp"

#include <gtest/gtest.h>

namespace jem::mpisim {
namespace {

TEST(NetworkModel, SingleRankCollectivesAreFree) {
  NetworkModel model;
  EXPECT_DOUBLE_EQ(model.allgatherv_s(1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(model.barrier_s(1), 0.0);
  EXPECT_DOUBLE_EQ(model.reduce_s(1, 1024), 0.0);
}

TEST(NetworkModel, AllgathervGrowsWithVolume) {
  NetworkModel model;
  const double small = model.allgatherv_s(8, 1 << 10);
  const double large = model.allgatherv_s(8, 1 << 24);
  EXPECT_LT(small, large);
}

TEST(NetworkModel, AllgathervLatencyGrowsWithRanks) {
  NetworkModel model;
  model.sec_per_byte = 0.0;  // isolate the latency term
  EXPECT_LT(model.allgatherv_s(2, 0), model.allgatherv_s(64, 0));
  EXPECT_DOUBLE_EQ(model.allgatherv_s(2, 0), model.latency_s);
  EXPECT_DOUBLE_EQ(model.allgatherv_s(5, 0), 4 * model.latency_s);
}

TEST(NetworkModel, AllgathervBandwidthTermMatchesRingFormula) {
  NetworkModel model;
  model.latency_s = 0.0;
  const std::uint64_t bytes = 1'000'000;
  // Ring: mu * V * (p-1)/p.
  EXPECT_DOUBLE_EQ(model.allgatherv_s(4, bytes),
                   model.sec_per_byte * 1e6 * 3.0 / 4.0);
}

TEST(NetworkModel, BarrierIsLogarithmic) {
  NetworkModel model;
  EXPECT_DOUBLE_EQ(model.barrier_s(2), model.latency_s);
  EXPECT_DOUBLE_EQ(model.barrier_s(4), 2 * model.latency_s);
  EXPECT_DOUBLE_EQ(model.barrier_s(64), 6 * model.latency_s);
  EXPECT_DOUBLE_EQ(model.barrier_s(65), 7 * model.latency_s);
}

TEST(NetworkModel, ReduceChargesPerRound) {
  NetworkModel model;
  const std::uint64_t bytes = 4096;
  const double expected =
      3 * (model.latency_s + model.sec_per_byte * 4096.0);
  EXPECT_DOUBLE_EQ(model.reduce_s(8, bytes), expected);
}

TEST(NetworkModel, P2pIsLatencyPlusBandwidth) {
  NetworkModel model;
  EXPECT_DOUBLE_EQ(model.p2p_s(0), model.latency_s);
  EXPECT_DOUBLE_EQ(model.p2p_s(1 << 20),
                   model.latency_s + model.sec_per_byte * (1 << 20));
}

TEST(NetworkModel, DefaultsAreTenGigabitClass) {
  NetworkModel model;
  // 1 GB transferred should take on the order of a second at 10 Gbps.
  const double t = model.sec_per_byte * 1e9;
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 10.0);
}

}  // namespace
}  // namespace jem::mpisim
