#include "mpisim/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace jem::mpisim {
namespace {

TEST(RunSpmd, RunsEveryRankExactlyOnce) {
  std::atomic<int> mask{0};
  run_spmd(4, [&](Comm& comm) { mask |= 1 << comm.rank(); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(RunSpmd, ReportsRankAndSize) {
  run_spmd(3, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 3);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 3);
  });
}

TEST(RunSpmd, ThrowsOnNonPositiveSize) {
  EXPECT_THROW(run_spmd(0, [](Comm&) {}), std::invalid_argument);
}

TEST(RunSpmd, PropagatesRankExceptions) {
  EXPECT_THROW(run_spmd(1,
                        [](Comm&) {
                          throw std::runtime_error("rank failure");
                        }),
               std::runtime_error);
}

TEST(Barrier, AllRanksPassTogether) {
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  run_spmd(4, [&](Comm& comm) {
    ++before;
    comm.barrier();
    // After the barrier every rank must have incremented.
    if (before.load() != 4) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Allgatherv, ConcatenatesInRankOrder) {
  run_spmd(4, [](Comm& comm) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> local(static_cast<std::size_t>(comm.rank() + 1),
                           comm.rank());
    const std::vector<int> all = comm.allgatherv(local);
    ASSERT_EQ(all.size(), 1u + 2u + 3u + 4u);
    std::vector<int> expected{0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
    EXPECT_EQ(all, expected);
  });
}

TEST(Allgatherv, HandlesEmptyContributions) {
  run_spmd(3, [](Comm& comm) {
    std::vector<double> local;
    if (comm.rank() == 1) local = {2.5};
    const std::vector<double> all = comm.allgatherv(local);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_DOUBLE_EQ(all[0], 2.5);
  });
}

TEST(Allgatherv, WorksWithSingleRank) {
  run_spmd(1, [](Comm& comm) {
    std::vector<int> local{7, 8};
    EXPECT_EQ(comm.allgatherv(local), local);
  });
}

TEST(Allgatherv, SupportsRepeatedCollectives) {
  run_spmd(3, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<int> local{comm.rank() * 100 + round};
      const auto all = comm.allgatherv(local);
      ASSERT_EQ(all.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 100 + round);
      }
    }
  });
}

TEST(Gatherv, OnlyRootReceives) {
  run_spmd(4, [](Comm& comm) {
    std::vector<int> local{comm.rank()};
    const auto parts = comm.gatherv<int>(local, /*root=*/2);
    if (comm.rank() == 2) {
      ASSERT_EQ(parts.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(parts[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_EQ(parts[static_cast<std::size_t>(r)][0], r);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(Bcast, DistributesRootPayload) {
  run_spmd(4, [](Comm& comm) {
    std::vector<std::uint64_t> local;
    if (comm.rank() == 0) local = {11, 22, 33};
    const auto received = comm.bcast<std::uint64_t>(local, /*root=*/0);
    const std::vector<std::uint64_t> expected{11, 22, 33};
    EXPECT_EQ(received, expected);
  });
}

TEST(AllReduce, ComputesSumEverywhere) {
  run_spmd(5, [](Comm& comm) {
    const int sum =
        comm.all_reduce(comm.rank() + 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 15);  // 1+2+3+4+5
  });
}

TEST(AllReduce, ComputesMax) {
  run_spmd(4, [](Comm& comm) {
    const int max_rank = comm.all_reduce(
        comm.rank(), [](int a, int b) { return a > b ? a : b; });
    EXPECT_EQ(max_rank, 3);
  });
}

TEST(AllReduceVec, ElementwiseSum) {
  run_spmd(3, [](Comm& comm) {
    std::vector<int> local{comm.rank(), comm.rank() * 10};
    const auto sums = comm.all_reduce_vec<int>(
        local, [](int a, int b) { return a + b; });
    ASSERT_EQ(sums.size(), 2u);
    EXPECT_EQ(sums[0], 0 + 1 + 2);
    EXPECT_EQ(sums[1], 0 + 10 + 20);
  });
}

TEST(PointToPoint, DeliversInFifoOrderPerChannel) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        std::vector<int> payload{i};
        comm.send<int>(payload, /*dest=*/1, /*tag=*/7);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        const auto received = comm.recv<int>(/*source=*/0, /*tag=*/7);
        ASSERT_EQ(received.size(), 1u);
        EXPECT_EQ(received[0], i);
      }
    }
  });
}

TEST(PointToPoint, TagsSeparateChannels) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> a{100};
      std::vector<int> b{200};
      comm.send<int>(a, 1, /*tag=*/1);
      comm.send<int>(b, 1, /*tag=*/2);
    } else {
      // Receive tag 2 first even though tag 1 was sent first.
      EXPECT_EQ(comm.recv<int>(0, 2)[0], 200);
      EXPECT_EQ(comm.recv<int>(0, 1)[0], 100);
    }
  });
}

TEST(PointToPoint, RingExchange) {
  constexpr int kRanks = 4;
  run_spmd(kRanks, [](Comm& comm) {
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    std::vector<int> payload{comm.rank()};
    comm.send<int>(payload, next);
    const auto received = comm.recv<int>(prev);
    EXPECT_EQ(received[0], prev);
  });
}

TEST(CommStats, CountsCollectiveVolume) {
  const CommStats stats = run_spmd(2, [](Comm& comm) {
    std::vector<std::uint64_t> local{1, 2, 3};
    (void)comm.allgatherv(local);
  });
  EXPECT_EQ(stats.collective_calls, 1u);
  EXPECT_EQ(stats.collective_bytes, 2u * 3u * sizeof(std::uint64_t));
}

TEST(CommStats, CountsP2pTraffic) {
  const CommStats stats = run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint32_t> payload{1, 2};
      comm.send<std::uint32_t>(payload, 1);
    } else {
      (void)comm.recv<std::uint32_t>(0);
    }
  });
  EXPECT_EQ(stats.p2p_messages, 1u);
  EXPECT_EQ(stats.p2p_bytes, 2u * sizeof(std::uint32_t));
}

TEST(StressTest, RandomCollectiveScheduleStaysConsistent) {
  // 40 rounds of randomly chosen collectives with randomly sized payloads;
  // every rank derives the same schedule from the round number, as a
  // well-formed SPMD program must. Verifies payload integrity throughout.
  constexpr int kRanks = 5;
  run_spmd(kRanks, [](Comm& comm) {
    std::uint64_t state = 12345;  // same stream on every rank
    const auto next = [&state] {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return state >> 33;
    };
    for (int round = 0; round < 40; ++round) {
      const std::uint64_t kind = next() % 4;
      const std::size_t size = next() % 200;
      switch (kind) {
        case 0: {
          std::vector<std::uint64_t> local(
              size, static_cast<std::uint64_t>(comm.rank()) * 1000 + round);
          const auto all = comm.allgatherv(local);
          ASSERT_EQ(all.size(), size * kRanks);
          for (int r = 0; r < kRanks; ++r) {
            for (std::size_t i = 0; i < size; ++i) {
              ASSERT_EQ(all[static_cast<std::size_t>(r) * size + i],
                        static_cast<std::uint64_t>(r) * 1000 + round);
            }
          }
          break;
        }
        case 1: {
          const int root = static_cast<int>(next() % kRanks);
          std::vector<std::uint32_t> local;
          if (comm.rank() == root) {
            local.assign(size, static_cast<std::uint32_t>(round));
          }
          const auto received = comm.bcast<std::uint32_t>(local, root);
          ASSERT_EQ(received.size(), size);
          break;
        }
        case 2: {
          const int sum = comm.all_reduce(
              comm.rank(), [](int a, int b) { return a + b; });
          ASSERT_EQ(sum, kRanks * (kRanks - 1) / 2);
          break;
        }
        default:
          comm.barrier();
          break;
      }
    }
  });
}

TEST(Allgatherv, MovesStructuredPayloads) {
  struct Payload {
    std::uint64_t key;
    std::uint32_t value;
    std::uint32_t pad;
  };
  run_spmd(2, [](Comm& comm) {
    std::vector<Payload> local{{static_cast<std::uint64_t>(comm.rank()),
                                static_cast<std::uint32_t>(comm.rank() * 2),
                                0}};
    const auto all = comm.allgatherv<Payload>(local);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].key, 0u);
    EXPECT_EQ(all[1].key, 1u);
    EXPECT_EQ(all[1].value, 2u);
  });
}

}  // namespace
}  // namespace jem::mpisim
