#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/dna.hpp"
#include "io/batch_stream.hpp"
#include "io/fasta.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

const char* backend_name(MapBackend backend) {
  switch (backend) {
    case MapBackend::kSerial: return "serial";
    case MapBackend::kPool: return "pool";
    case MapBackend::kOpenMP: return "openmp";
  }
  return "?";
}

/// Fixture: the MapperTest genome/contigs plus a read set with ragged
/// lengths, so batch sizes {1, 7, 64, all} all hit uneven tails.
class EngineGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(777);
    genome_ = random_dna(rng, 60'000);
    for (int i = 0; i < 10; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 6000, 6000));
    }
    params_ = MapParams::make()
                  .k(16)
                  .window(20)
                  .trials(16)
                  .segment_length(1000)
                  .seed(99)
                  .build();
    util::Xoshiro256ss read_rng(555);
    for (int i = 0; i < 30; ++i) {
      const std::size_t pos = read_rng.bounded(50'000);
      const std::size_t length = 1500 + read_rng.bounded(6000);
      reads_.add("read_" + std::to_string(i), genome_.substr(pos, length));
    }
  }

  [[nodiscard]] io::SeqId num_reads() const {
    return static_cast<io::SeqId>(reads_.size());
  }

  std::string genome_;
  io::SequenceSet subjects_;
  io::SequenceSet reads_;
  MapParams params_;
};

TEST_F(EngineGoldenTest, BitIdenticalToSequentialAcrossAllCombinations) {
  const MappingEngine engine(subjects_, params_);
  const auto expected_ends = engine.mapper().map_reads(reads_);
  const auto expected_tiled =
      engine.mapper().map_reads_tiled(reads_, 0, num_reads());
  const auto expected_topx =
      engine.mapper().map_reads_topx(reads_, 3, 0, num_reads());

  for (const MapBackend backend :
       {MapBackend::kSerial, MapBackend::kPool, MapBackend::kOpenMP}) {
    for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                         std::size_t{64}, std::size_t{0}}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(std::string("backend=") + backend_name(backend) +
                     " batch=" + std::to_string(batch_size) +
                     " threads=" + std::to_string(threads));
        MapRequest request;
        request.backend = backend;
        request.batch_size = batch_size;
        request.threads = threads;

        request.mode = MapMode::kEnds;
        const MapReport ends = engine.run(reads_, request);
        EXPECT_EQ(ends.mappings, expected_ends);
        EXPECT_TRUE(ends.topx.empty());
        EXPECT_EQ(ends.stats.reads, reads_.size());
        EXPECT_EQ(ends.stats.segments, expected_ends.size());

        request.mode = MapMode::kTiled;
        EXPECT_EQ(engine.run(reads_, request).mappings, expected_tiled);

        request.mode = MapMode::kTopX;
        request.top_x = 3;
        const MapReport topx = engine.run(reads_, request);
        EXPECT_EQ(topx.topx, expected_topx);
        EXPECT_TRUE(topx.mappings.empty());
      }
    }
  }
}

TEST_F(EngineGoldenTest, StreamingPipelineMatchesSequential) {
  const MappingEngine engine(subjects_, params_);
  const auto expected = engine.mapper().map_reads(reads_);
  std::ostringstream fasta;
  io::write_fasta(fasta, reads_);

  for (const std::size_t batch_size :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("batch=" + std::to_string(batch_size) +
                   " threads=" + std::to_string(threads));
      std::istringstream in(fasta.str());
      io::BatchStream stream(in, batch_size);
      MapRequest request;
      request.backend = MapBackend::kPool;
      request.threads = threads;
      request.queue_depth = 2;

      std::vector<SegmentMapping> collected;
      std::uint64_t expected_index = 0;
      const EngineStats stats = engine.run_stream(
          stream, request, [&](const MappingEngine::BatchResult& result) {
            // In-order, exactly-once delivery.
            EXPECT_EQ(result.batch.index, expected_index++);
            for (SegmentMapping mapping : result.mappings) {
              mapping.read +=
                  static_cast<io::SeqId>(result.batch.first_record);
              collected.push_back(mapping);
            }
          });

      EXPECT_EQ(collected, expected);
      EXPECT_EQ(stats.reads, reads_.size());
      EXPECT_EQ(stats.segments, expected.size());
      EXPECT_EQ(stats.batches,
                (reads_.size() + batch_size - 1) / batch_size);
      EXPECT_GT(stats.wall_s, 0.0);
    }
  }
}

TEST_F(EngineGoldenTest, StreamingTiledAndTopXModesMatchSequential) {
  const MappingEngine engine(subjects_, params_);
  const auto expected_tiled =
      engine.mapper().map_reads_tiled(reads_, 0, num_reads());
  const auto expected_topx =
      engine.mapper().map_reads_topx(reads_, 2, 0, num_reads());
  std::ostringstream fasta;
  io::write_fasta(fasta, reads_);

  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 4;

  {
    std::istringstream in(fasta.str());
    io::BatchStream stream(in, 7);
    request.mode = MapMode::kTiled;
    std::vector<SegmentMapping> collected;
    (void)engine.run_stream(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          for (SegmentMapping mapping : result.mappings) {
            mapping.read += static_cast<io::SeqId>(result.batch.first_record);
            collected.push_back(mapping);
          }
        });
    EXPECT_EQ(collected, expected_tiled);
  }
  {
    std::istringstream in(fasta.str());
    io::BatchStream stream(in, 7);
    request.mode = MapMode::kTopX;
    request.top_x = 2;
    std::vector<SegmentTopX> collected;
    (void)engine.run_stream(
        stream, request, [&](const MappingEngine::BatchResult& result) {
          for (SegmentTopX mapping : result.topx) {
            mapping.read += static_cast<io::SeqId>(result.batch.first_record);
            collected.push_back(std::move(mapping));
          }
        });
    EXPECT_EQ(collected, expected_topx);
  }
}

TEST_F(EngineGoldenTest, MinVotesOverrideMatchesStricterMapper) {
  const MappingEngine engine(subjects_, params_);
  MapParams strict = params_;
  strict.min_votes = 8;
  const JemMapper strict_mapper(subjects_, strict);

  MapRequest request;
  request.min_votes = 8;
  EXPECT_EQ(engine.run(reads_, request).mappings,
            strict_mapper.map_reads(reads_));

  request.mode = MapMode::kTopX;
  request.top_x = 3;
  EXPECT_EQ(engine.run(reads_, request).topx,
            strict_mapper.map_reads_topx(reads_, 3, 0, num_reads()));
}

TEST_F(EngineGoldenTest, MinVotesBelowMapperFloorThrows) {
  MapParams strict = params_;
  strict.min_votes = 4;
  const MappingEngine engine(subjects_, params_, SketchScheme::kJem);
  const MappingEngine strict_engine(subjects_, strict);
  MapRequest request;
  request.min_votes = 2;
  EXPECT_THROW((void)strict_engine.run(reads_, request),
               std::invalid_argument);
  // At or above the floor is fine.
  MapRequest at_floor;
  at_floor.min_votes = 4;
  EXPECT_NO_THROW((void)strict_engine.run(reads_, at_floor));
  EXPECT_NO_THROW((void)engine.run(reads_, request));
}

TEST_F(EngineGoldenTest, EmptyReadSetYieldsEmptyReport) {
  const MappingEngine engine(subjects_, params_);
  const io::SequenceSet empty;
  for (const MapBackend backend :
       {MapBackend::kSerial, MapBackend::kPool, MapBackend::kOpenMP}) {
    MapRequest request;
    request.backend = backend;
    const MapReport report = engine.run(empty, request);
    EXPECT_TRUE(report.mappings.empty());
    EXPECT_EQ(report.stats.batches, 0u);
    EXPECT_EQ(report.stats.segments, 0u);
  }
}

TEST_F(EngineGoldenTest, StreamErrorsPropagateAfterShutdown) {
  const MappingEngine engine(subjects_, params_);
  MapRequest request;
  request.backend = MapBackend::kPool;
  request.threads = 2;

  {
    // Malformed FASTQ mid-stream (quality length mismatch): the reader
    // throws, the pipeline drains.
    std::istringstream in("@r0\nACGT\n+\nIIII\n@r1\nACGT\n+\nII\n");
    io::BatchStream stream(in, 1);
    EXPECT_THROW((void)engine.run_stream(
                     stream, request,
                     [](const MappingEngine::BatchResult&) {}),
                 io::ParseError);
  }
  {
    // A throwing sink aborts the pipeline and resurfaces in the caller.
    std::ostringstream fasta;
    io::write_fasta(fasta, reads_);
    std::istringstream in(fasta.str());
    io::BatchStream stream(in, 1);
    EXPECT_THROW((void)engine.run_stream(
                     stream, request,
                     [](const MappingEngine::BatchResult&) {
                       throw std::runtime_error("sink failure");
                     }),
                 std::runtime_error);
  }
}

TEST(EngineRequestTest, ValidateRejectsBadFields) {
  MapRequest request;
  request.queue_depth = 0;
  EXPECT_THROW(request.validate(), std::invalid_argument);
  request = {};
  request.min_votes = 0;
  EXPECT_THROW(request.validate(), std::invalid_argument);
  request = {};
  EXPECT_NO_THROW(request.validate());
}

TEST(EngineParamsBuilderTest, BuildsAndValidates) {
  const MapParams params = MapParams::make()
                               .k(18)
                               .window(50)
                               .trials(12)
                               .segment_length(800)
                               .seed(7)
                               .min_votes(2)
                               .ordering(MinimizerOrdering::kRandomHash)
                               .build();
  EXPECT_EQ(params.k, 18);
  EXPECT_EQ(params.w, 50);
  EXPECT_EQ(params.trials, 12);
  EXPECT_EQ(params.segment_length, 800u);
  EXPECT_EQ(params.seed, 7u);
  EXPECT_EQ(params.min_votes, 2u);
  EXPECT_EQ(params.ordering, MinimizerOrdering::kRandomHash);

  // Invalid configs fail at construction, not mid-run.
  EXPECT_THROW((void)MapParams::make().k(0).build(), std::invalid_argument);
  EXPECT_THROW((void)MapParams::make().trials(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)MapParams::make().segment_length(0).build(),
               std::invalid_argument);
}

TEST(EngineBatchStreamTest, ChunksRecordsWithGlobalPositions) {
  std::istringstream in(">r0\nACGT\n>r1\nAAAA\n>r2\nCCCC\n>r3\nGGGG\n>r4\nTTTT\n");
  io::BatchStream stream(in, 2);
  io::ReadBatch batch;

  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.index, 0u);
  EXPECT_EQ(batch.first_record, 0u);
  ASSERT_EQ(batch.reads.size(), 2u);
  EXPECT_EQ(batch.reads.name(0), "r0");

  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.index, 1u);
  EXPECT_EQ(batch.first_record, 2u);

  ASSERT_TRUE(stream.next(batch));  // ragged tail
  EXPECT_EQ(batch.index, 2u);
  EXPECT_EQ(batch.first_record, 4u);
  EXPECT_EQ(batch.reads.size(), 1u);
  EXPECT_EQ(batch.reads.name(0), "r4");

  EXPECT_FALSE(stream.next(batch));
  EXPECT_EQ(stream.batches_read(), 3u);
  EXPECT_EQ(stream.records_read(), 5u);
}

TEST(EngineBatchStreamTest, EmptyInputYieldsNoBatches) {
  std::istringstream in("");
  io::BatchStream stream(in, 8);
  io::ReadBatch batch;
  EXPECT_FALSE(stream.next(batch));
  EXPECT_EQ(stream.batches_read(), 0u);
}

}  // namespace
}  // namespace jem::core
