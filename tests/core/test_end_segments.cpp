#include "core/end_segments.hpp"

#include <gtest/gtest.h>

#include <string>

namespace jem::core {
namespace {

TEST(EndSegments, LongReadYieldsPrefixAndSuffix) {
  const std::string read(5000, 'A');
  const auto segments = extract_end_segments(3, read, 1000);
  ASSERT_EQ(segments.size(), 2u);

  EXPECT_EQ(segments[0].read, 3u);
  EXPECT_EQ(segments[0].end, ReadEnd::kPrefix);
  EXPECT_EQ(segments[0].offset, 0u);
  EXPECT_EQ(segments[0].bases.size(), 1000u);

  EXPECT_EQ(segments[1].end, ReadEnd::kSuffix);
  EXPECT_EQ(segments[1].offset, 4000u);
  EXPECT_EQ(segments[1].bases.size(), 1000u);
}

TEST(EndSegments, SegmentsViewIntoTheRead) {
  std::string read(3000, 'A');
  read[0] = 'C';
  read[2999] = 'G';
  const auto segments = extract_end_segments(0, read, 1000);
  EXPECT_EQ(segments[0].bases.front(), 'C');
  EXPECT_EQ(segments[1].bases.back(), 'G');
}

TEST(EndSegments, ShortReadYieldsSinglePrefix) {
  const std::string read(800, 'T');
  const auto segments = extract_end_segments(1, read, 1000);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].end, ReadEnd::kPrefix);
  EXPECT_EQ(segments[0].bases.size(), 800u);
}

TEST(EndSegments, ExactlySegmentLengthYieldsSinglePrefix) {
  const std::string read(1000, 'T');
  const auto segments = extract_end_segments(0, read, 1000);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].bases.size(), 1000u);
}

TEST(EndSegments, JustOverSegmentLengthYieldsOverlappingPair) {
  const std::string read(1001, 'T');
  const auto segments = extract_end_segments(0, read, 1000);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[1].offset, 1u);
  EXPECT_EQ(segments[1].bases.size(), 1000u);
}

TEST(EndSegments, EmptyReadYieldsNothing) {
  EXPECT_TRUE(extract_end_segments(0, "", 1000).empty());
}

TEST(EndSegments, ZeroSegmentLengthYieldsNothing) {
  EXPECT_TRUE(extract_end_segments(0, "ACGT", 0).empty());
}

TEST(ReadEndTag, TagsAreStable) {
  EXPECT_EQ(read_end_tag(ReadEnd::kPrefix), 'P');
  EXPECT_EQ(read_end_tag(ReadEnd::kSuffix), 'S');
}

}  // namespace
}  // namespace jem::core
