#include "core/kmer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(KmerCodec, RejectsOutOfRangeK) {
  EXPECT_THROW(KmerCodec(0), std::invalid_argument);
  EXPECT_THROW(KmerCodec(33), std::invalid_argument);
  EXPECT_NO_THROW(KmerCodec(1));
  EXPECT_NO_THROW(KmerCodec(32));
}

TEST(KmerCodec, EncodesKnownValues) {
  const KmerCodec codec(2);
  EXPECT_EQ(codec.encode("AA").value(), 0b0000u);
  EXPECT_EQ(codec.encode("AC").value(), 0b0001u);
  EXPECT_EQ(codec.encode("TA").value(), 0b1100u);
  EXPECT_EQ(codec.encode("TT").value(), 0b1111u);
}

TEST(KmerCodec, EncodeRejectsShortOrAmbiguous) {
  const KmerCodec codec(4);
  EXPECT_FALSE(codec.encode("ACG").has_value());
  EXPECT_FALSE(codec.encode("ACGN").has_value());
  EXPECT_TRUE(codec.encode("ACGTA").has_value());  // uses first k bases
}

TEST(KmerCodec, DecodeInvertsEncode) {
  const KmerCodec codec(7);
  util::Xoshiro256ss rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::string kmer = random_dna(rng, 7);
    EXPECT_EQ(codec.decode(codec.encode(kmer).value()), kmer);
  }
}

TEST(KmerCodec, EncodedOrderEqualsLexOrder) {
  const KmerCodec codec(5);
  util::Xoshiro256ss rng(13);
  for (int i = 0; i < 200; ++i) {
    const std::string a = random_dna(rng, 5);
    const std::string b = random_dna(rng, 5);
    EXPECT_EQ(a < b, codec.encode(a).value() < codec.encode(b).value());
  }
}

TEST(KmerCodec, RollMatchesFullEncode) {
  const KmerCodec codec(6);
  util::Xoshiro256ss rng(17);
  const std::string seq = random_dna(rng, 100);
  KmerCode rolled = codec.encode(seq).value();
  for (std::size_t i = 1; i + 6 <= seq.size(); ++i) {
    rolled = codec.roll(rolled, base_code(seq[i + 5]));
    EXPECT_EQ(rolled, codec.encode(seq.substr(i, 6)).value()) << "pos " << i;
  }
}

TEST(KmerCodec, RollRcMatchesEncodedReverseComplement) {
  const KmerCodec codec(6);
  util::Xoshiro256ss rng(19);
  const std::string seq = random_dna(rng, 60);
  KmerCode fwd = 0;
  KmerCode rc = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    fwd = codec.roll(fwd, base_code(seq[i]));
    rc = codec.roll_rc(rc, base_code(seq[i]));
    if (i + 1 >= 6) {
      const std::string kmer = seq.substr(i + 1 - 6, 6);
      EXPECT_EQ(fwd, codec.encode(kmer).value());
      EXPECT_EQ(rc, codec.encode(reverse_complement(kmer)).value());
    }
  }
}

TEST(KmerCodec, ReverseComplementMatchesStringImplementation) {
  for (int k : {1, 2, 3, 15, 16, 31, 32}) {
    const KmerCodec codec(k);
    util::Xoshiro256ss rng(static_cast<std::uint64_t>(100 + k));
    for (int i = 0; i < 50; ++i) {
      const std::string kmer = random_dna(rng, static_cast<std::size_t>(k));
      const KmerCode code = codec.encode(kmer).value();
      EXPECT_EQ(codec.decode(codec.reverse_complement(code)),
                reverse_complement(kmer))
          << "k=" << k << " kmer=" << kmer;
    }
  }
}

TEST(KmerCodec, ReverseComplementIsInvolution) {
  const KmerCodec codec(16);
  util::Xoshiro256ss rng(23);
  for (int i = 0; i < 200; ++i) {
    const KmerCode code = rng() & codec.mask();
    EXPECT_EQ(codec.reverse_complement(codec.reverse_complement(code)), code);
  }
}

TEST(KmerCodec, CanonicalIsStrandInvariant) {
  const KmerCodec codec(9);
  util::Xoshiro256ss rng(29);
  for (int i = 0; i < 200; ++i) {
    const std::string kmer = random_dna(rng, 9);
    const KmerCode fwd = codec.encode(kmer).value();
    const KmerCode rc = codec.encode(reverse_complement(kmer)).value();
    EXPECT_EQ(codec.canonical(fwd), codec.canonical(rc));
    EXPECT_LE(codec.canonical(fwd), fwd);
    EXPECT_LE(codec.canonical(fwd), rc);
  }
}

TEST(KmerCodec, MaskCoversExactly2kBits) {
  EXPECT_EQ(KmerCodec(1).mask(), 0x3u);
  EXPECT_EQ(KmerCodec(16).mask(), 0xffffffffu);
  EXPECT_EQ(KmerCodec(32).mask(), ~KmerCode{0});
}

TEST(KmerCodec, K32FullWidthRoundTrip) {
  const KmerCodec codec(32);
  util::Xoshiro256ss rng(31);
  const std::string kmer = random_dna(rng, 32);
  const KmerCode code = codec.encode(kmer).value();
  EXPECT_EQ(codec.decode(code), kmer);
  EXPECT_EQ(codec.decode(codec.reverse_complement(code)),
            reverse_complement(kmer));
}

}  // namespace
}  // namespace jem::core
