#include "core/flat_index.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/sketch_table.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

/// Builds a random mutable table with `entries` (trial, kmer, subject)
/// inserts, keys drawn from a pool of `distinct_keys` so postings lists get
/// multiple subjects.
SketchTable random_table(util::Xoshiro256ss& rng, int trials,
                         std::size_t entries, std::size_t distinct_keys,
                         std::size_t subjects) {
  std::vector<KmerCode> pool(distinct_keys);
  for (auto& kmer : pool) kmer = rng();
  SketchTable table(trials);
  for (std::size_t i = 0; i < entries; ++i) {
    table.insert(static_cast<int>(rng.bounded(
                     static_cast<std::uint64_t>(trials))),
                 pool[rng.bounded(pool.size())],
                 static_cast<io::SeqId>(rng.bounded(subjects)));
  }
  return table;
}

TEST(FlatSketchIndex, FlatThrowsBeforeFreeze) {
  SketchTable table(3);
  table.insert(0, 42, 1);
  EXPECT_THROW((void)table.flat(), std::logic_error);
  table.freeze();
  EXPECT_NO_THROW((void)table.flat());
}

TEST(FlatSketchIndex, MatchesCsrLookupOnRandomTables) {
  util::Xoshiro256ss rng(11);
  for (int round = 0; round < 20; ++round) {
    const int trials = 1 + static_cast<int>(rng.bounded(8));
    const std::size_t keys = 1 + rng.bounded(300);
    SketchTable table =
        random_table(rng, trials, 10 + rng.bounded(2000), keys,
                     1 + rng.bounded(50));

    // Collect the key set before freezing (lookup on the mutable form).
    std::vector<SketchEntry> entries = table.to_entries();
    table.freeze();
    const FlatSketchIndex& index = table.flat();
    EXPECT_EQ(index.key_count(), table.key_count());
    EXPECT_GE(index.capacity(), 2 * index.key_count());

    // Every stored key: flat postings == CSR postings (same order too —
    // both are sorted by subject id).
    for (const SketchEntry& entry : entries) {
      const auto trial = static_cast<int>(entry.trial);
      const auto csr = table.lookup(trial, entry.kmer);
      const auto flat = index.lookup(trial, entry.kmer);
      ASSERT_EQ(csr.size(), flat.size());
      for (std::size_t i = 0; i < csr.size(); ++i) {
        ASSERT_EQ(csr[i], flat[i]);
      }
    }

    // Random absent keys miss in both forms.
    for (int probe = 0; probe < 200; ++probe) {
      const KmerCode kmer = rng();
      const int trial = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(trials)));
      EXPECT_EQ(table.lookup(trial, kmer).empty(),
                index.lookup(trial, kmer).empty());
    }
  }
}

TEST(FlatSketchIndex, LookupManyMatchesSingleLookups) {
  util::Xoshiro256ss rng(12);
  SketchTable table = random_table(rng, 4, 3000, 400, 64);
  table.freeze();
  const FlatSketchIndex& index = table.flat();

  for (int t = 0; t < 4; ++t) {
    // A mix of present and absent keys, long enough to engage prefetching.
    std::vector<KmerCode> kmers;
    for (int i = 0; i < 500; ++i) kmers.push_back(rng());
    for (const SketchEntry& entry : table.to_entries()) {
      if (static_cast<int>(entry.trial) == t) kmers.push_back(entry.kmer);
    }

    std::vector<std::span<const io::SeqId>> out(kmers.size());
    index.lookup_many(t, kmers, out);
    for (std::size_t i = 0; i < kmers.size(); ++i) {
      const auto single = index.lookup(t, kmers[i]);
      ASSERT_EQ(single.size(), out[i].size());
      ASSERT_EQ(single.data(), out[i].data());
    }
  }
}

TEST(FlatSketchIndex, EmptyTrialsLookupCleanly) {
  SketchTable table(5);
  table.insert(2, 77, 9);  // trials 0,1,3,4 stay empty
  table.freeze();
  const FlatSketchIndex& index = table.flat();
  EXPECT_EQ(index.trials(), 5);
  for (int t = 0; t < 5; ++t) {
    if (t == 2) {
      ASSERT_EQ(index.lookup(t, 77).size(), 1u);
      EXPECT_EQ(index.lookup(t, 77)[0], 9u);
    } else {
      EXPECT_TRUE(index.lookup(t, 77).empty());
    }
    EXPECT_TRUE(index.lookup(t, 78).empty());
  }
}

TEST(FlatSketchIndex, FromEntriesBuildsSameIndexAsFreeze) {
  util::Xoshiro256ss rng(13);
  SketchTable table = random_table(rng, 3, 1500, 200, 32);
  const std::vector<SketchEntry> entries = table.to_entries();
  table.freeze();

  const SketchTable rebuilt = SketchTable::from_entries(3, entries);
  const FlatSketchIndex& a = table.flat();
  const FlatSketchIndex& b = rebuilt.flat();
  EXPECT_EQ(a.key_count(), b.key_count());
  for (const SketchEntry& entry : entries) {
    const auto trial = static_cast<int>(entry.trial);
    const auto from_freeze = a.lookup(trial, entry.kmer);
    const auto from_entries = b.lookup(trial, entry.kmer);
    ASSERT_EQ(from_freeze.size(), from_entries.size());
    for (std::size_t i = 0; i < from_freeze.size(); ++i) {
      ASSERT_EQ(from_freeze[i], from_entries[i]);
    }
  }
}

TEST(FlatSketchIndex, AdversarialKeysCollidingInLowBits) {
  // Keys equal modulo a small power of two all hash to nearby home slots
  // only if mix64 fails to spread them; either way linear probing must
  // resolve every key.
  SketchTable table(1);
  for (std::uint64_t i = 0; i < 256; ++i) {
    table.insert(0, i << 32, static_cast<io::SeqId>(i));
  }
  table.freeze();
  const FlatSketchIndex& index = table.flat();
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto postings = index.lookup(0, i << 32);
    ASSERT_EQ(postings.size(), 1u);
    EXPECT_EQ(postings[0], static_cast<io::SeqId>(i));
  }
}

}  // namespace
}  // namespace jem::core
