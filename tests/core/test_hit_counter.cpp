#include "core/hit_counter.hpp"

#include <gtest/gtest.h>

namespace jem::core {
namespace {

TEST(LazyHitCounter, CountsFromZeroEachRound) {
  LazyHitCounter counter(4);
  EXPECT_EQ(counter.increment(2), 1u);
  EXPECT_EQ(counter.increment(2), 2u);
  EXPECT_EQ(counter.increment(3), 1u);
  counter.new_round();
  EXPECT_EQ(counter.count(2), 0u);
  EXPECT_EQ(counter.increment(2), 1u);
}

TEST(LazyHitCounter, CountReturnsZeroForUntouched) {
  LazyHitCounter counter(4);
  EXPECT_EQ(counter.count(0), 0u);
  counter.increment(0);
  EXPECT_EQ(counter.count(0), 1u);
  EXPECT_EQ(counter.count(1), 0u);
}

TEST(LazyHitCounter, StaleSlotsInvisibleAcrossManyRounds) {
  LazyHitCounter counter(3);
  for (int round = 0; round < 100; ++round) {
    counter.new_round();
    const io::SeqId subject = static_cast<io::SeqId>(round % 3);
    EXPECT_EQ(counter.increment(subject), 1u);
    for (io::SeqId other = 0; other < 3; ++other) {
      if (other != subject) {
        EXPECT_EQ(counter.count(other), 0u);
      }
    }
  }
}

TEST(LazyHitCounter, FirstTimeTrueOncePerRound) {
  LazyHitCounter counter(2);
  EXPECT_TRUE(counter.first_time(0));
  EXPECT_FALSE(counter.first_time(0));
  EXPECT_TRUE(counter.first_time(1));
  counter.new_round();
  EXPECT_TRUE(counter.first_time(0));
  EXPECT_FALSE(counter.first_time(0));
}

TEST(LazyHitCounter, MatchesResettingCounterBehaviour) {
  // Property: for any sequence of (new_round | increment) operations, the
  // lazy counter and the O(n)-reset counter agree on every count.
  LazyHitCounter lazy(8);
  ResettingHitCounter resetting(8);
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int op = 0; op < 2000; ++op) {
    if (next() % 10 == 0) {
      lazy.new_round();
      resetting.new_round();
    } else {
      const io::SeqId subject = static_cast<io::SeqId>(next() % 8);
      EXPECT_EQ(lazy.increment(subject), resetting.increment(subject));
    }
    const io::SeqId probe = static_cast<io::SeqId>(next() % 8);
    EXPECT_EQ(lazy.count(probe), resetting.count(probe));
  }
}

TEST(ResettingHitCounter, BasicCounting) {
  ResettingHitCounter counter(3);
  EXPECT_EQ(counter.increment(1), 1u);
  EXPECT_EQ(counter.increment(1), 2u);
  counter.new_round();
  EXPECT_EQ(counter.count(1), 0u);
}

TEST(LazyHitCounter, SizeReflectsSubjects) {
  LazyHitCounter counter(42);
  EXPECT_EQ(counter.size(), 42u);
}

}  // namespace
}  // namespace jem::core
