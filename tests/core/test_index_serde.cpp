#include "core/index_serde.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/mapper.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

io::ArtifactReason reason_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const io::ArtifactError& error) {
    return error.reason();
  }
  ADD_FAILURE() << "expected an ArtifactError";
  return io::ArtifactReason::kIoError;
}

std::string random_dna(util::Xoshiro256ss& rng, std::size_t len) {
  static constexpr char kBases[] = "ACGT";
  std::string out(len, 'A');
  for (char& c : out) c = kBases[rng.bounded(4)];
  return out;
}

/// Byte location of one section inside the serialized container.
struct SectionLoc {
  std::string tag;
  std::size_t header = 0;   // section header start (tag/size/checksum)
  std::size_t payload = 0;  // payload start
  std::size_t size = 0;     // payload size
};

std::vector<SectionLoc> locate_sections(const std::string& bytes) {
  std::vector<SectionLoc> locs;
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  std::size_t cursor = 16;
  for (std::uint32_t i = 0; i < count; ++i) {
    SectionLoc loc;
    loc.header = cursor;
    char tag[9] = {};
    std::memcpy(tag, bytes.data() + cursor, 8);
    loc.tag = tag;
    std::uint64_t size = 0;
    std::memcpy(&size, bytes.data() + cursor + 8, sizeof(size));
    loc.payload = cursor + 24;
    loc.size = static_cast<std::size_t>(size);
    locs.push_back(loc);
    cursor = loc.payload + loc.size;
  }
  return locs;
}

/// Rewrites a section's stored checksum to match its (tampered) payload, so
/// the framing passes and the semantic validators must catch the defect.
void fix_checksum(std::string& bytes, const SectionLoc& loc) {
  const std::uint64_t sum =
      io::xxh64(std::string_view(bytes).substr(loc.payload, loc.size));
  std::memcpy(bytes.data() + loc.header + 16, &sum, sizeof(sum));
}

class IndexSerdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(2024);
    genome_ = random_dna(rng, 20'000);
    for (int i = 0; i < 8; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 2500, 2500));
    }
    util::Xoshiro256ss read_rng(5);
    for (int i = 0; i < 12; ++i) {
      const std::size_t pos = read_rng.bounded(18'000);
      reads_.add("read_" + std::to_string(i),
                 genome_.substr(pos, 900 + read_rng.bounded(1000)));
    }
    params_ = MapParams::make()
                  .k(16)
                  .window(20)
                  .trials(4)
                  .segment_length(500)
                  .seed(7)
                  .build();
  }

  std::string genome_;
  io::SequenceSet subjects_;
  io::SequenceSet reads_;
  MapParams params_;
};

TEST_F(IndexSerdeTest, SaveLoadProducesBitIdenticalMappings) {
  const JemMapper fresh(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(fresh.table(), params_, SketchScheme::kJem, subjects_);

  SketchTable loaded =
      deserialize_index(bytes, params_, SketchScheme::kJem, subjects_);
  EXPECT_TRUE(loaded.frozen());  // query-ready without freeze()

  const JemMapper reloaded(subjects_, params_, SketchScheme::kJem,
                           std::move(loaded));
  EXPECT_EQ(reloaded.map_reads(reads_), fresh.map_reads(reads_));
}

TEST_F(IndexSerdeTest, SerializationIsDeterministicAndStable) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);
  EXPECT_EQ(bytes, serialize_index(mapper.table(), params_,
                                   SketchScheme::kJem, subjects_));
  // A loaded table re-serializes to the same artifact: the round trip loses
  // nothing.
  SketchTable loaded =
      deserialize_index(bytes, params_, SketchScheme::kJem, subjects_);
  EXPECT_EQ(bytes,
            serialize_index(loaded, params_, SketchScheme::kJem, subjects_));
}

TEST_F(IndexSerdeTest, SaveThenLoadFromDiskRoundTrips) {
  const std::string path = ::testing::TempDir() + "/jem_index_rt.jemidx";
  const JemMapper fresh(subjects_, params_, SketchScheme::kJem);
  save_index(path, fresh.table(), params_, SketchScheme::kJem, subjects_);
  SketchTable loaded =
      load_index(path, params_, SketchScheme::kJem, subjects_);
  const JemMapper reloaded(subjects_, params_, SketchScheme::kJem,
                           std::move(loaded));
  EXPECT_EQ(reloaded.map_reads(reads_), fresh.map_reads(reads_));
  std::remove(path.c_str());
}

TEST_F(IndexSerdeTest, UnfrozenTableRefusesToSerialize) {
  const HashFamily hashes(params_.trials, params_.seed);
  SketchTable unfrozen = sketch_subjects(subjects_, 0, subjects_.size(),
                                         params_, SketchScheme::kJem, hashes);
  EXPECT_THROW((void)serialize_index(unfrozen, params_, SketchScheme::kJem,
                                     subjects_),
               std::logic_error);
}

TEST_F(IndexSerdeTest, MissingFileIsOpenFailed) {
  EXPECT_EQ(reason_of([&] {
              (void)load_index("/nonexistent/idx.jemidx", params_,
                               SketchScheme::kJem, subjects_);
            }),
            io::ArtifactReason::kOpenFailed);
}

TEST_F(IndexSerdeTest, ParameterMismatchNamesTheOffendingField) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);

  const MapParams other_k = MapParams::make()
                                .k(15)
                                .window(20)
                                .trials(4)
                                .segment_length(500)
                                .seed(7)
                                .build();
  try {
    (void)deserialize_index(bytes, other_k, SketchScheme::kJem, subjects_);
    FAIL() << "expected kParamsMismatch";
  } catch (const io::ArtifactError& error) {
    EXPECT_EQ(error.reason(), io::ArtifactReason::kParamsMismatch);
    EXPECT_NE(std::string(error.what()).find("'k'"), std::string::npos)
        << error.what();
  }

  EXPECT_EQ(reason_of([&] {
              (void)deserialize_index(bytes, params_,
                                      SketchScheme::kClassicMinhash,
                                      subjects_);
            }),
            io::ArtifactReason::kParamsMismatch);
}

TEST_F(IndexSerdeTest, DifferentSubjectSetIsRejected) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);

  io::SequenceSet renamed;
  for (io::SeqId id = 0; id < subjects_.size(); ++id) {
    renamed.add(id == 3 ? "imposter" : std::string(subjects_.name(id)),
                subjects_.bases(id));
  }
  EXPECT_EQ(reason_of([&] {
              (void)deserialize_index(bytes, params_, SketchScheme::kJem,
                                      renamed);
            }),
            io::ArtifactReason::kParamsMismatch);
}

TEST_F(IndexSerdeTest, TruncationAtEverySectionBoundaryIsDetected) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);

  std::vector<std::size_t> cuts = {0, 8, 15};  // inside the container header
  for (const SectionLoc& loc : locate_sections(bytes)) {
    cuts.push_back(loc.header);            // before the section header
    cuts.push_back(loc.header + 12);       // inside the section header
    cuts.push_back(loc.payload);           // header kept, payload gone
    if (loc.size > 1) cuts.push_back(loc.payload + loc.size / 2);
    cuts.push_back(loc.payload + loc.size - 1);  // one byte short
  }
  for (const std::size_t keep : cuts) {
    if (keep >= bytes.size()) continue;
    EXPECT_EQ(reason_of([&] {
                (void)deserialize_index(bytes.substr(0, keep), params_,
                                        SketchScheme::kJem, subjects_);
              }),
              io::ArtifactReason::kTruncated)
        << "prefix length " << keep;
  }
}

TEST_F(IndexSerdeTest, BitRotInEverySectionIsAChecksumMismatch) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);

  const std::vector<SectionLoc> sections = locate_sections(bytes);
  EXPECT_EQ(sections.size(), 9u);  // PARAMS..FLATSUB, the documented layout
  for (const SectionLoc& loc : sections) {
    if (loc.size == 0) continue;
    std::string corrupt = bytes;
    corrupt[loc.payload + loc.size / 2] ^= char(0x40);
    EXPECT_EQ(reason_of([&] {
                (void)deserialize_index(corrupt, params_, SketchScheme::kJem,
                                        subjects_);
              }),
              io::ArtifactReason::kChecksumMismatch)
        << "section " << loc.tag;
  }
}

TEST_F(IndexSerdeTest, ChecksummedButInconsistentSectionsAreBadSections) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kJem);
  const std::string bytes =
      serialize_index(mapper.table(), params_, SketchScheme::kJem, subjects_);
  const std::vector<SectionLoc> sections = locate_sections(bytes);

  const auto find = [&](std::string_view tag) -> const SectionLoc& {
    for (const SectionLoc& loc : sections) {
      if (loc.tag == tag) return loc;
    }
    throw std::logic_error("section not found");
  };

  {
    // SHAPE totals no longer match its per-trial counts.
    std::string tampered = bytes;
    const SectionLoc& shape = find("SHAPE");
    std::uint64_t total = 0;
    std::memcpy(&total, tampered.data() + shape.payload, sizeof(total));
    ++total;
    std::memcpy(tampered.data() + shape.payload, &total, sizeof(total));
    fix_checksum(tampered, shape);
    EXPECT_EQ(reason_of([&] {
                (void)deserialize_index(tampered, params_, SketchScheme::kJem,
                                        subjects_);
              }),
              io::ArtifactReason::kBadSection);
  }
  {
    // KEYS sorted order violated (valid framing, invalid CSR content).
    std::string tampered = bytes;
    const SectionLoc& keys = find("KEYS");
    ASSERT_GE(keys.size, 16u);
    char tmp[8];
    std::memcpy(tmp, tampered.data() + keys.payload, 8);
    std::memcpy(tampered.data() + keys.payload,
                tampered.data() + keys.payload + 8, 8);
    std::memcpy(tampered.data() + keys.payload + 8, tmp, 8);
    fix_checksum(tampered, keys);
    EXPECT_EQ(reason_of([&] {
                (void)deserialize_index(tampered, params_, SketchScheme::kJem,
                                        subjects_);
              }),
              io::ArtifactReason::kBadSection);
  }
  {
    // KEYS payload not a multiple of the element size.
    std::string tampered = bytes;
    const SectionLoc& keys = find("KEYS");
    tampered.erase(keys.payload, 3);
    std::uint64_t new_size = keys.size - 3;
    std::memcpy(tampered.data() + keys.header + 8, &new_size,
                sizeof(new_size));
    SectionLoc shrunk = keys;
    shrunk.size = static_cast<std::size_t>(new_size);
    fix_checksum(tampered, shrunk);
    EXPECT_EQ(reason_of([&] {
                (void)deserialize_index(tampered, params_, SketchScheme::kJem,
                                        subjects_);
              }),
              io::ArtifactReason::kBadSection);
  }
}

// --- Distributed shard cache (IndexCacheOptions) ---------------------------

TEST_F(IndexSerdeTest, DistributedShardCacheIsBitIdenticalAndSelfHealing) {
  const std::string dir = ::testing::TempDir() + "/jem_shard_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  constexpr int kRanks = 3;

  const DistributedResult plain =
      run_distributed(subjects_, reads_, params_, kRanks);

  IndexCacheOptions cache;
  cache.dir = dir;

  // Cold cache: every rank sketches and persists its shard.
  const DistributedResult first = run_distributed(
      subjects_, reads_, params_, kRanks, SketchScheme::kJem, 1, {}, cache);
  EXPECT_EQ(first.mappings, plain.mappings);
  EXPECT_EQ(first.report.shards_saved, 3u);
  EXPECT_EQ(first.report.shards_loaded, 0u);
  EXPECT_EQ(first.report.shard_load_errors, 0u);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(std::filesystem::exists(cache.shard_path(r, kRanks)));
  }

  // Warm cache: S2 becomes file I/O; output must not change.
  const DistributedResult second = run_distributed(
      subjects_, reads_, params_, kRanks, SketchScheme::kJem, 1, {}, cache);
  EXPECT_EQ(second.mappings, plain.mappings);
  EXPECT_EQ(second.report.shards_loaded, 3u);
  EXPECT_EQ(second.report.shards_saved, 0u);

  // Bit rot in one shard: that rank detects it, re-sketches, re-saves — and
  // the output is still bit-identical.
  const std::string victim = cache.shard_path(1, kRanks);
  std::string shard_bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    shard_bytes.assign((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  shard_bytes[shard_bytes.size() / 2] ^= char(0x01);
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(shard_bytes.data(),
              static_cast<std::streamsize>(shard_bytes.size()));
  }
  const DistributedResult third = run_distributed(
      subjects_, reads_, params_, kRanks, SketchScheme::kJem, 1, {}, cache);
  EXPECT_EQ(third.mappings, plain.mappings);
  EXPECT_EQ(third.report.shard_load_errors, 1u);
  EXPECT_EQ(third.report.shards_loaded, 2u);
  EXPECT_EQ(third.report.shards_saved, 1u);

  // The re-saved shard is valid again.
  const DistributedResult fourth = run_distributed(
      subjects_, reads_, params_, kRanks, SketchScheme::kJem, 1, {}, cache);
  EXPECT_EQ(fourth.report.shards_loaded, 3u);
  EXPECT_EQ(fourth.report.shard_load_errors, 0u);
  EXPECT_EQ(fourth.mappings, plain.mappings);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace jem::core
