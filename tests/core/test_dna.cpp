#include "core/dna.hpp"

#include <gtest/gtest.h>

namespace jem::core {
namespace {

TEST(BaseCode, MapsAcgtCaseInsensitively) {
  EXPECT_EQ(base_code('A'), 0);
  EXPECT_EQ(base_code('C'), 1);
  EXPECT_EQ(base_code('G'), 2);
  EXPECT_EQ(base_code('T'), 3);
  EXPECT_EQ(base_code('a'), 0);
  EXPECT_EQ(base_code('t'), 3);
}

TEST(BaseCode, RejectsAmbiguityCodes) {
  for (char c : {'N', 'n', 'R', 'Y', 'X', '-', ' ', '\0'}) {
    EXPECT_EQ(base_code(c), kInvalidBase) << "base " << c;
  }
}

TEST(BaseCode, PreservesLexicographicOrder) {
  EXPECT_LT(base_code('A'), base_code('C'));
  EXPECT_LT(base_code('C'), base_code('G'));
  EXPECT_LT(base_code('G'), base_code('T'));
}

TEST(CodeBase, InvertsBaseCode) {
  for (char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(code_base(base_code(c)), c);
  }
}

TEST(ComplementCode, IsSelfInverse) {
  for (std::uint8_t code = 0; code < 4; ++code) {
    EXPECT_EQ(complement_code(complement_code(code)), code);
  }
}

TEST(ComplementBase, PairsWatsonCrick) {
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('T'), 'A');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('G'), 'C');
  EXPECT_EQ(complement_base('N'), 'N');
  EXPECT_EQ(complement_base('x'), 'N');
}

TEST(ReverseComplement, ReversesAndComplements) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(ReverseComplement, IsAnInvolution) {
  const std::string seq = "ACGTTGCAGGTACCAT";
  EXPECT_EQ(reverse_complement(reverse_complement(seq)), seq);
}

TEST(IsAcgt, DetectsCleanSequences) {
  EXPECT_TRUE(is_acgt("ACGTacgt"));
  EXPECT_TRUE(is_acgt(""));
  EXPECT_FALSE(is_acgt("ACGNT"));
  EXPECT_FALSE(is_acgt("ACG T"));
}

TEST(GcContent, CountsGcFraction) {
  EXPECT_DOUBLE_EQ(gc_content("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_content("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(gc_content("ACGT"), 0.5);
  EXPECT_DOUBLE_EQ(gc_content(""), 0.0);
}

TEST(GcContent, IgnoresAmbiguousBases) {
  EXPECT_DOUBLE_EQ(gc_content("GNNNC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_content("NNN"), 0.0);
}

}  // namespace
}  // namespace jem::core
