#include "core/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(SketchByJem, EmptyMinimizerListYieldsEmptySketch) {
  const HashFamily hashes(5, 1);
  const Sketch sketch = sketch_by_jem(std::span<const Minimizer>{}, 1000,
                                      hashes);
  EXPECT_EQ(sketch.trials(), 5);
  EXPECT_EQ(sketch.total_entries(), 0u);
}

TEST(SketchByJem, SingleMinimizerSketchesItself) {
  const HashFamily hashes(4, 2);
  const std::vector<Minimizer> minimizers{{0xabcdu, 10}};
  const Sketch sketch = sketch_by_jem(minimizers, 500, hashes);
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(sketch.per_trial[static_cast<std::size_t>(t)].size(), 1u);
    EXPECT_EQ(sketch.per_trial[static_cast<std::size_t>(t)][0], 0xabcdu);
  }
}

TEST(SketchByJem, FastMatchesNaiveOnRandomInputs) {
  util::Xoshiro256ss rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    // Random minimizer lists with increasing positions.
    std::vector<Minimizer> minimizers;
    std::uint32_t pos = 0;
    const std::size_t count = 5 + rng.bounded(80);
    for (std::size_t i = 0; i < count; ++i) {
      pos += 1 + static_cast<std::uint32_t>(rng.bounded(200));
      minimizers.push_back({rng() & 0xffffffffu, pos});
    }
    const HashFamily hashes(1 + static_cast<int>(rng.bounded(8)),
                            rng());
    const auto interval = static_cast<std::uint32_t>(50 + rng.bounded(2000));
    const Sketch fast = sketch_by_jem(minimizers, interval, hashes);
    const Sketch naive = sketch_by_jem_naive(minimizers, interval, hashes);
    ASSERT_EQ(fast.trials(), naive.trials());
    for (int t = 0; t < fast.trials(); ++t) {
      EXPECT_EQ(fast.per_trial[static_cast<std::size_t>(t)],
                naive.per_trial[static_cast<std::size_t>(t)])
          << "trial " << t;
    }
  }
}

TEST(SketchByJem, FlatKernelMatchesNaiveWithReusedScratch) {
  // The ring-buffer kernel writing into a reused FlatSketch must stay
  // bit-identical to the literal Algorithm 1 loop across random minimizer
  // lists and interval-length corners, with one scratch shared by all.
  util::Xoshiro256ss rng(77);
  SketchScratch scratch;
  FlatSketch flat;
  for (int round = 0; round < 30; ++round) {
    std::vector<Minimizer> minimizers;
    std::uint32_t pos = 0;
    const std::size_t count = rng.bounded(120);  // sometimes empty
    for (std::size_t i = 0; i < count; ++i) {
      pos += 1 + static_cast<std::uint32_t>(rng.bounded(150));
      minimizers.push_back({rng() & 0xffffffffu, pos});
    }
    const HashFamily hashes(1 + static_cast<int>(rng.bounded(10)), rng());
    const auto interval =
        static_cast<std::uint32_t>(1 + rng.bounded(3000));
    sketch_by_jem(minimizers, interval, hashes, scratch, flat);
    const Sketch naive = sketch_by_jem_naive(minimizers, interval, hashes);
    ASSERT_EQ(flat.trials(), naive.trials());
    for (int t = 0; t < naive.trials(); ++t) {
      const auto kmers = flat.trial(t);
      const auto& expected = naive.per_trial[static_cast<std::size_t>(t)];
      ASSERT_EQ(std::vector<KmerCode>(kmers.begin(), kmers.end()), expected)
          << "round " << round << " trial " << t;
    }
  }
}

TEST(SketchByJem, FlatKernelMatchesAllocatingOverloadOnNRichSequences) {
  util::Xoshiro256ss rng(78);
  SketchScratch scratch;
  FlatSketch flat;
  const HashFamily hashes(7, 21);
  for (int round = 0; round < 10; ++round) {
    std::string seq = random_dna(rng, 2000);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (rng.bounded(20) == 0) seq[i] = 'N';
    }
    const SketchParams params{{9, 7}, 400};
    const Sketch alloc = sketch_by_jem(seq, params, hashes);

    MinimizerScratch scan;
    std::vector<Minimizer> minimizers;
    minimizer_scan(seq, params.minimizer, scan, minimizers);
    sketch_by_jem(minimizers, params.interval_length, hashes, scratch, flat);
    for (int t = 0; t < 7; ++t) {
      const auto kmers = flat.trial(t);
      ASSERT_EQ(std::vector<KmerCode>(kmers.begin(), kmers.end()),
                alloc.per_trial[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(ClassicMinhash, FlatOverloadMatchesAllocating) {
  util::Xoshiro256ss rng(79);
  SketchScratch scratch;
  FlatSketch flat;
  const HashFamily hashes(9, 31);
  for (const std::string& seq :
       {random_dna(rng, 500), std::string("ACGT"), std::string("NNNN"),
        std::string()}) {
    const Sketch alloc = classic_minhash(seq, 8, hashes);
    classic_minhash(seq, 8, hashes, scratch, flat);
    ASSERT_EQ(flat.trials(), alloc.trials());
    for (int t = 0; t < alloc.trials(); ++t) {
      const auto kmers = flat.trial(t);
      ASSERT_EQ(std::vector<KmerCode>(kmers.begin(), kmers.end()),
                alloc.per_trial[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(SketchByJem, FromSequenceMatchesFromMinimizers) {
  util::Xoshiro256ss rng(8);
  const std::string seq = random_dna(rng, 3000);
  const SketchParams params{{11, 9}, 700};
  const HashFamily hashes(6, 3);
  const auto minimizers = minimizer_scan(seq, params.minimizer);
  const Sketch from_seq = sketch_by_jem(seq, params, hashes);
  const Sketch from_min =
      sketch_by_jem(minimizers, params.interval_length, hashes);
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(from_seq.per_trial[static_cast<std::size_t>(t)],
              from_min.per_trial[static_cast<std::size_t>(t)]);
  }
}

TEST(SketchByJem, PerTrialListsAreSortedUnique) {
  util::Xoshiro256ss rng(9);
  const std::string seq = random_dna(rng, 5000);
  const HashFamily hashes(8, 4);
  const Sketch sketch = sketch_by_jem(seq, {{13, 10}, 800}, hashes);
  for (const auto& kmers : sketch.per_trial) {
    EXPECT_TRUE(std::is_sorted(kmers.begin(), kmers.end()));
    EXPECT_EQ(std::adjacent_find(kmers.begin(), kmers.end()), kmers.end());
  }
}

TEST(SketchByJem, EverySketchKmerIsAMinimizer) {
  util::Xoshiro256ss rng(10);
  const std::string seq = random_dna(rng, 4000);
  const MinimizerParams mp{12, 8};
  const auto minimizers = minimizer_scan(seq, mp);
  std::vector<KmerCode> minimizer_kmers;
  for (const Minimizer& m : minimizers) minimizer_kmers.push_back(m.kmer);
  std::sort(minimizer_kmers.begin(), minimizer_kmers.end());

  const HashFamily hashes(5, 6);
  const Sketch sketch = sketch_by_jem(minimizers, 600, hashes);
  for (const auto& kmers : sketch.per_trial) {
    for (KmerCode kmer : kmers) {
      EXPECT_TRUE(std::binary_search(minimizer_kmers.begin(),
                                     minimizer_kmers.end(), kmer));
    }
  }
}

TEST(SketchByJem, IdenticalSequencesShareAllSketches) {
  util::Xoshiro256ss rng(11);
  const std::string seq = random_dna(rng, 2000);
  const HashFamily hashes(10, 12);
  const SketchParams params{{16, 10}, 1000};
  const Sketch a = sketch_by_jem(seq, params, hashes);
  const Sketch b = sketch_by_jem(seq, params, hashes);
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(a.per_trial[static_cast<std::size_t>(t)],
              b.per_trial[static_cast<std::size_t>(t)]);
  }
}

TEST(SketchByJem, ReverseComplementSharesSketches) {
  // Canonical k-mers make the minimizer *sets* strand-invariant, but the
  // interval windows mirror under reverse complement, so per-trial sketch
  // sets only partially coincide. A substantial overlap must remain — that
  // is what lets a reverse-strand segment hit the subject's table.
  util::Xoshiro256ss rng(12);
  const std::string seq = random_dna(rng, 2000);
  const std::string rc = reverse_complement(seq);
  const HashFamily hashes(10, 13);
  const SketchParams params{{15, 10}, 1000};
  const Sketch fwd = sketch_by_jem(seq, params, hashes);
  const Sketch rev = sketch_by_jem(rc, params, hashes);

  std::size_t shared = 0;
  std::size_t total = 0;
  for (int t = 0; t < 10; ++t) {
    const auto& a = fwd.per_trial[static_cast<std::size_t>(t)];
    const auto& b = rev.per_trial[static_cast<std::size_t>(t)];
    std::vector<KmerCode> intersection;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(intersection));
    shared += intersection.size();
    total += a.size();
  }
  EXPECT_GT(static_cast<double>(shared), 0.25 * static_cast<double>(total));
}

TEST(SketchByJem, SubstringSharesSketchesWithSource) {
  // The core mapping property: a 1000 bp window of a longer sequence must
  // produce sketches that hit the source's interval sketches in most trials.
  util::Xoshiro256ss rng(13);
  const std::string subject = random_dna(rng, 10000);
  const std::string query = subject.substr(4000, 1000);
  const HashFamily hashes(30, 14);
  const SketchParams params{{16, 10}, 1000};
  const Sketch subject_sketch = sketch_by_jem(subject, params, hashes);
  const Sketch query_sketch = sketch_by_jem(query, params, hashes);

  int hit_trials = 0;
  for (int t = 0; t < 30; ++t) {
    const auto& s = subject_sketch.per_trial[static_cast<std::size_t>(t)];
    const auto& q = query_sketch.per_trial[static_cast<std::size_t>(t)];
    std::vector<KmerCode> intersection;
    std::set_intersection(s.begin(), s.end(), q.begin(), q.end(),
                          std::back_inserter(intersection));
    if (!intersection.empty()) ++hit_trials;
  }
  EXPECT_GE(hit_trials, 25);
}

TEST(ClassicMinhash, OneKmerPerTrial) {
  util::Xoshiro256ss rng(15);
  const std::string seq = random_dna(rng, 500);
  const HashFamily hashes(7, 16);
  const Sketch sketch = classic_minhash(seq, 11, hashes);
  ASSERT_EQ(sketch.trials(), 7);
  for (const auto& kmers : sketch.per_trial) {
    EXPECT_EQ(kmers.size(), 1u);
  }
}

TEST(ClassicMinhash, EmptyForTooShortSequence) {
  const HashFamily hashes(3, 17);
  const Sketch sketch = classic_minhash("ACG", 11, hashes);
  EXPECT_EQ(sketch.total_entries(), 0u);
}

TEST(ClassicMinhash, MinhashIsGlobalArgmin) {
  util::Xoshiro256ss rng(18);
  const std::string seq = random_dna(rng, 300);
  const int k = 8;
  const HashFamily hashes(5, 19);
  const KmerCodec codec(k);

  // Collect all canonical k-mers by brute force.
  std::vector<KmerCode> all;
  for (std::size_t i = 0; i + k <= seq.size(); ++i) {
    all.push_back(codec.canonical(codec.encode(seq.substr(i, k)).value()));
  }

  const Sketch sketch = classic_minhash(seq, k, hashes);
  for (int t = 0; t < 5; ++t) {
    std::uint64_t best_hash = ~0ULL;
    KmerCode best_kmer = 0;
    for (KmerCode kmer : all) {
      const std::uint64_t h = hashes.hash(t, kmer);
      if (h < best_hash || (h == best_hash && kmer < best_kmer)) {
        best_hash = h;
        best_kmer = kmer;
      }
    }
    EXPECT_EQ(sketch.per_trial[static_cast<std::size_t>(t)][0], best_kmer);
  }
}

TEST(ClassicMinhash, StrandInvariant) {
  util::Xoshiro256ss rng(20);
  const std::string seq = random_dna(rng, 400);
  const HashFamily hashes(10, 21);
  const Sketch fwd = classic_minhash(seq, 9, hashes);
  const Sketch rev = classic_minhash(reverse_complement(seq), 9, hashes);
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(fwd.per_trial[static_cast<std::size_t>(t)],
              rev.per_trial[static_cast<std::size_t>(t)]);
  }
}

TEST(ClassicMinhash, SkipsAmbiguousKmers) {
  // Sequence whose only valid k-mers are in the second half.
  const std::string seq = "NNNNNNNNNNNNACGTACGTACGT";
  const HashFamily hashes(3, 22);
  const Sketch sketch = classic_minhash(seq, 6, hashes);
  EXPECT_EQ(sketch.per_trial[0].size(), 1u);
}

TEST(SketchByJem, FlatKernelMatchesFrozenReferenceKernel) {
  // The pre-overhaul deque kernel is the golden oracle: the scratch kernel
  // must reproduce it exactly through both of its branches — the suffix
  // shortcut (minimizer span <= interval) and the general sliding windows
  // (span > interval).
  util::Xoshiro256ss rng(78);
  SketchScratch scratch;
  FlatSketch flat;
  for (int round = 0; round < 40; ++round) {
    std::vector<Minimizer> minimizers;
    std::uint32_t pos = 0;
    const std::size_t count = rng.bounded(150);
    // Half the rounds use tight spacing so the whole list fits one interval
    // (suffix branch); half use wide spacing (sliding branch).
    const std::uint32_t gap = round % 2 == 0 ? 5 : 400;
    for (std::size_t i = 0; i < count; ++i) {
      pos += 1 + static_cast<std::uint32_t>(rng.bounded(gap));
      minimizers.push_back({rng() & 0xffffffffu, pos});
    }
    const HashFamily hashes(1 + static_cast<int>(rng.bounded(8)), rng());
    const auto interval = static_cast<std::uint32_t>(1 + rng.bounded(1500));
    sketch_by_jem(minimizers, interval, hashes, scratch, flat);
    const Sketch reference =
        sketch_by_jem_reference(minimizers, interval, hashes);
    ASSERT_EQ(flat.trials(), reference.trials());
    for (int t = 0; t < reference.trials(); ++t) {
      const auto kmers = flat.trial(t);
      ASSERT_EQ(std::vector<KmerCode>(kmers.begin(), kmers.end()),
                reference.per_trial[static_cast<std::size_t>(t)])
          << "round " << round << " trial " << t;
    }
  }
}

TEST(SketchTotalEntries, SumsAcrossTrials) {
  Sketch sketch;
  sketch.per_trial = {{1, 2, 3}, {4}, {}};
  EXPECT_EQ(sketch.total_entries(), 4u);
  EXPECT_EQ(sketch.trials(), 3);
}

}  // namespace
}  // namespace jem::core
