#include "core/hash_family.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jem::core {
namespace {

TEST(IsPrime, KnownSmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(9));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(100));
}

TEST(IsPrime, KnownLargePrimes) {
  EXPECT_TRUE(is_prime_u64(2'147'483'647ULL));          // 2^31 - 1 (Mersenne)
  EXPECT_TRUE(is_prime_u64(2'305'843'009'213'693'951ULL));  // 2^61 - 1
  EXPECT_TRUE(is_prime_u64(18'446'744'073'709'551'557ULL));  // largest u64 prime
}

TEST(IsPrime, KnownLargeComposites) {
  EXPECT_FALSE(is_prime_u64(2'147'483'647ULL * 2));
  EXPECT_FALSE(is_prime_u64(3'215'031'751ULL));  // strong pseudoprime base 2..7
  EXPECT_FALSE(is_prime_u64((1ULL << 61) - 2));
}

TEST(IsPrime, AgreesWithTrialDivisionUpTo10000) {
  const auto trial_division = [](std::uint64_t n) {
    if (n < 2) return false;
    for (std::uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) return false;
    }
    return true;
  };
  for (std::uint64_t n = 0; n < 10000; ++n) {
    EXPECT_EQ(is_prime_u64(n), trial_division(n)) << "n=" << n;
  }
}

TEST(NextPrime, FindsSmallestPrimeAtLeastN) {
  EXPECT_EQ(next_prime_u64(0), 2u);
  EXPECT_EQ(next_prime_u64(2), 2u);
  EXPECT_EQ(next_prime_u64(3), 3u);
  EXPECT_EQ(next_prime_u64(4), 5u);
  EXPECT_EQ(next_prime_u64(90), 97u);
  EXPECT_EQ(next_prime_u64(97), 97u);
}

TEST(LcgHash, StaysBelowModulus) {
  const LcgHash h{123456789, 987654321, 1'000'000'007};
  for (KmerCode x : {0ULL, 1ULL, 0xffffffffULL, 0xffffffffffffffffULL}) {
    EXPECT_LT(h(x), h.p);
  }
}

TEST(LcgHash, IsAffine) {
  const LcgHash h{7, 13, 101};
  EXPECT_EQ(h(0), 13u);
  EXPECT_EQ(h(1), 20u);
  EXPECT_EQ(h(2), 27u);
}

TEST(HashFamily, RejectsNonPositiveTrials) {
  EXPECT_THROW(HashFamily(0, 1), std::invalid_argument);
}

TEST(HashFamily, IsDeterministicInSeed) {
  const HashFamily a(10, 42);
  const HashFamily b(10, 42);
  for (int t = 0; t < 10; ++t) {
    EXPECT_EQ(a[t].a, b[t].a);
    EXPECT_EQ(a[t].b, b[t].b);
    EXPECT_EQ(a[t].p, b[t].p);
  }
}

TEST(HashFamily, DiffersAcrossSeeds) {
  const HashFamily a(5, 1);
  const HashFamily b(5, 2);
  bool any_diff = false;
  for (int t = 0; t < 5; ++t) {
    if (a[t].a != b[t].a || a[t].p != b[t].p) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(HashFamily, ModuliArePrimeAndLarge) {
  const HashFamily family(30, 7);
  for (int t = 0; t < 30; ++t) {
    EXPECT_TRUE(is_prime_u64(family[t].p));
    EXPECT_GT(family[t].p, 1ULL << 60);
    EXPECT_GE(family[t].a, 1u);
    EXPECT_LT(family[t].a, family[t].p);
    EXPECT_LT(family[t].b, family[t].p);
  }
}

TEST(HashFamily, TrialsAreDistinctFunctions) {
  const HashFamily family(30, 7);
  std::set<std::uint64_t> moduli;
  for (int t = 0; t < 30; ++t) moduli.insert(family[t].p);
  // Random 60-bit primes: collisions essentially impossible.
  EXPECT_EQ(moduli.size(), 30u);
}

TEST(HashFamily, DifferentTrialsRankKmersDifferently) {
  const HashFamily family(2, 99);
  // Find two k-mers ordered oppositely by the two trials.
  bool found_disagreement = false;
  for (KmerCode x = 0; x < 200 && !found_disagreement; ++x) {
    for (KmerCode y = x + 1; y < 200; ++y) {
      const bool order0 = family.hash(0, x) < family.hash(0, y);
      const bool order1 = family.hash(1, x) < family.hash(1, y);
      if (order0 != order1) {
        found_disagreement = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_disagreement);
}

TEST(HashFamily, HashesSpreadUniformly) {
  const HashFamily family(1, 5);
  // Bucket 10k consecutive ranks into 16 bins by hash value.
  constexpr int kBins = 16;
  std::array<int, kBins> counts{};
  const double bin_width = static_cast<double>(family[0].p) / kBins;
  for (KmerCode x = 0; x < 10000; ++x) {
    auto bin = static_cast<std::size_t>(
        static_cast<double>(family.hash(0, x)) / bin_width);
    if (bin >= kBins) bin = kBins - 1;
    ++counts[bin];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 10000 / kBins, 200);
  }
}

}  // namespace
}  // namespace jem::core
