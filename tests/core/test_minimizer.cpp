#include "core/minimizer.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(MinimizerScan, RejectsBadParams) {
  EXPECT_THROW((void)minimizer_scan("ACGT", {0, 5}), std::invalid_argument);
  EXPECT_THROW((void)minimizer_scan("ACGT", {33, 5}), std::invalid_argument);
  EXPECT_THROW((void)minimizer_scan("ACGT", {4, 0}), std::invalid_argument);
}

TEST(MinimizerScan, EmptyAndTooShortSequences) {
  EXPECT_TRUE(minimizer_scan("", {4, 3}).empty());
  EXPECT_TRUE(minimizer_scan("ACG", {4, 3}).empty());
}

TEST(MinimizerScan, SingleKmerSequence) {
  const auto minimizers = minimizer_scan("ACGT", {4, 3});
  ASSERT_EQ(minimizers.size(), 1u);
  EXPECT_EQ(minimizers[0].position, 0u);
  // Canonical of ACGT is itself (palindrome).
  EXPECT_EQ(minimizers[0].kmer, KmerCodec(4).encode("ACGT").value());
}

TEST(MinimizerScan, PositionsAreStrictlyIncreasing) {
  util::Xoshiro256ss rng(42);
  const std::string seq = random_dna(rng, 2000);
  const auto minimizers = minimizer_scan(seq, {8, 10});
  ASSERT_GT(minimizers.size(), 1u);
  for (std::size_t i = 1; i < minimizers.size(); ++i) {
    EXPECT_LT(minimizers[i - 1].position, minimizers[i].position);
  }
}

TEST(MinimizerScan, KmersAreCanonical) {
  util::Xoshiro256ss rng(43);
  const std::string seq = random_dna(rng, 500);
  const KmerCodec codec(8);
  for (const Minimizer& m : minimizer_scan(seq, {8, 5})) {
    EXPECT_EQ(m.kmer, codec.canonical(m.kmer));
    // The k-mer at the recorded position must canonicalize to it.
    const KmerCode at_pos = codec.encode(seq.substr(m.position, 8)).value();
    EXPECT_EQ(codec.canonical(at_pos), m.kmer);
  }
}

TEST(MinimizerScan, MatchesNaiveReference) {
  util::Xoshiro256ss rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t length = 50 + rng.bounded(500);
    const std::string seq = random_dna(rng, length);
    const int k = 3 + static_cast<int>(rng.bounded(10));
    const int w = 1 + static_cast<int>(rng.bounded(20));
    const MinimizerParams params{k, w};
    EXPECT_EQ(minimizer_scan(seq, params), minimizer_scan_naive(seq, params))
        << "len=" << length << " k=" << k << " w=" << w;
  }
}

TEST(MinimizerScan, MatchesNaiveOnRepetitiveSequence) {
  // Runs of identical bases and short tandem repeats stress tie-breaking.
  const std::string seq =
      "AAAAAAAAAATTTTTTTTTTACACACACACACGGGGGGGGGGCACACACACA"
      "AAAAAAAAAATTTTTTTTTT";
  for (int w : {1, 2, 5, 8}) {
    const MinimizerParams params{4, w};
    EXPECT_EQ(minimizer_scan(seq, params), minimizer_scan_naive(seq, params))
        << "w=" << w;
  }
}

TEST(MinimizerScan, ScratchOverloadMatchesNaiveWithReusedBuffers) {
  // The allocation-free scan must stay bit-identical to the naive reference
  // while one scratch + output vector is reused across wildly different
  // inputs — random sequences, k/w corners, and N-rich content.
  util::Xoshiro256ss rng(46);
  MinimizerScratch scratch;
  std::vector<Minimizer> out;
  for (int trial = 0; trial < 40; ++trial) {
    std::string seq = random_dna(rng, 20 + rng.bounded(800));
    // Sprinkle ambiguous bases in half the trials to exercise run breaks.
    if (trial % 2 == 0) {
      for (std::size_t i = 0; i < seq.size(); ++i) {
        if (rng.bounded(10) == 0) seq[i] = 'N';
      }
    }
    const int k = 1 + static_cast<int>(rng.bounded(16));
    const int w = 1 + static_cast<int>(rng.bounded(30));
    const auto ordering = rng.bounded(2) == 0
                              ? MinimizerOrdering::kLexicographic
                              : MinimizerOrdering::kRandomHash;
    const MinimizerParams params{k, w, ordering};
    minimizer_scan(seq, params, scratch, out);
    ASSERT_EQ(out, minimizer_scan_naive(seq, params))
        << "k=" << k << " w=" << w << " len=" << seq.size();
    ASSERT_EQ(out, minimizer_scan(seq, params));
  }
}

TEST(MinimizerScan, ScratchOverloadClearsPreviousOutput) {
  MinimizerScratch scratch;
  std::vector<Minimizer> out;
  minimizer_scan("ACGTACGTACGTACGT", {4, 3}, scratch, out);
  ASSERT_FALSE(out.empty());
  minimizer_scan("NNNNNNNN", {4, 3}, scratch, out);
  EXPECT_TRUE(out.empty());  // stale results must not survive
}

TEST(MinimizerScan, StrandSymmetric) {
  // The canonical minimizer *set* (k-mers, not positions) must be identical
  // for a sequence and its reverse complement.
  util::Xoshiro256ss rng(45);
  const std::string seq = random_dna(rng, 800);
  const std::string rc = reverse_complement(seq);
  const MinimizerParams params{8, 12};

  auto kmers_of = [&](const std::string& s) {
    std::vector<KmerCode> kmers;
    for (const Minimizer& m : minimizer_scan(s, params)) {
      kmers.push_back(m.kmer);
    }
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
    return kmers;
  };
  EXPECT_EQ(kmers_of(seq), kmers_of(rc));
}

TEST(MinimizerScan, AmbiguousBasesSplitRuns) {
  // No minimizer's k-mer window may span the N.
  const std::string seq = "ACGTACGTACGT" + std::string("N") + "TGCATGCATGCA";
  const auto minimizers = minimizer_scan(seq, {4, 2});
  for (const Minimizer& m : minimizers) {
    const bool before = m.position + 4 <= 12;
    const bool after = m.position >= 13;
    EXPECT_TRUE(before || after) << "position " << m.position;
  }
  EXPECT_FALSE(minimizers.empty());
}

TEST(MinimizerScan, AllNSequenceYieldsNothing) {
  EXPECT_TRUE(minimizer_scan("NNNNNNNNNN", {4, 2}).empty());
}

TEST(MinimizerScan, DensityIsNearTheoretical) {
  util::Xoshiro256ss rng(46);
  const std::string seq = random_dna(rng, 200'000);
  const int w = 19;
  const auto minimizers = minimizer_scan(seq, {12, w});
  const double density = static_cast<double>(minimizers.size()) /
                         static_cast<double>(seq.size() - 12 + 1);
  // Expected distinct-minimizer density is 2/(w+1) = 0.1.
  EXPECT_NEAR(density, expected_minimizer_density(w), 0.015);
}

TEST(MinimizerScan, WindowOneKeepsEveryKmer) {
  util::Xoshiro256ss rng(47);
  const std::string seq = random_dna(rng, 300);
  const auto minimizers = minimizer_scan(seq, {6, 1});
  // w=1: every k-mer position is its own window; consecutive identical
  // (kmer, pos) dedup never triggers since positions advance.
  EXPECT_EQ(minimizers.size(), seq.size() - 6 + 1);
}

TEST(MinimizerScan, LargerWindowsYieldSparserLists) {
  util::Xoshiro256ss rng(48);
  const std::string seq = random_dna(rng, 20'000);
  std::size_t prev = minimizer_scan(seq, {10, 1}).size();
  for (int w : {5, 20, 80}) {
    const std::size_t count = minimizer_scan(seq, {10, w}).size();
    EXPECT_LT(count, prev);
    prev = count;
  }
}

TEST(MinimizerScan, RandomHashOrderingMatchesNaive) {
  util::Xoshiro256ss rng(49);
  for (int trial = 0; trial < 10; ++trial) {
    const std::string seq = random_dna(rng, 100 + rng.bounded(400));
    const MinimizerParams params{5 + static_cast<int>(rng.bounded(8)),
                                 1 + static_cast<int>(rng.bounded(15)),
                                 MinimizerOrdering::kRandomHash};
    EXPECT_EQ(minimizer_scan(seq, params), minimizer_scan_naive(seq, params));
  }
}

TEST(MinimizerScan, RandomHashOrderingIsStrandSymmetric) {
  util::Xoshiro256ss rng(50);
  const std::string seq = random_dna(rng, 600);
  const MinimizerParams params{8, 12, MinimizerOrdering::kRandomHash};
  auto kmers_of = [&](const std::string& s) {
    std::vector<KmerCode> kmers;
    for (const Minimizer& m : minimizer_scan(s, params)) {
      kmers.push_back(m.kmer);
    }
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
    return kmers;
  };
  EXPECT_EQ(kmers_of(seq), kmers_of(reverse_complement(seq)));
}

TEST(MinimizerScan, OrderingsSelectDifferentMinimizers) {
  util::Xoshiro256ss rng(51);
  const std::string seq = random_dna(rng, 5000);
  const auto lex =
      minimizer_scan(seq, {12, 20, MinimizerOrdering::kLexicographic});
  const auto hashed =
      minimizer_scan(seq, {12, 20, MinimizerOrdering::kRandomHash});
  EXPECT_NE(lex, hashed);
}

TEST(MinimizerScan, RandomHashAvoidsPolyABias) {
  // On an AT-rich sequence, lexicographic ordering keeps picking poly-A
  // k-mers; the density of *distinct positions* still matches, but the
  // selected k-mer set is heavily skewed: the single all-A k-mer dominates.
  std::string at_rich;
  util::Xoshiro256ss rng(52);
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.uniform();
    at_rich.push_back(u < 0.45 ? 'A' : (u < 0.9 ? 'T' : (u < 0.95 ? 'C'
                                                                  : 'G')));
  }
  const auto count_all_a = [&](MinimizerOrdering ordering) {
    const KmerCodec codec(8);
    std::size_t all_a = 0;
    std::size_t total = 0;
    for (const Minimizer& m :
         minimizer_scan(at_rich, {8, 15, ordering})) {
      ++total;
      if (m.kmer == 0) ++all_a;  // canonical AAAAAAAA encodes to 0
    }
    return std::pair{all_a, total};
  };
  const auto [lex_a, lex_total] =
      count_all_a(MinimizerOrdering::kLexicographic);
  const auto [hash_a, hash_total] =
      count_all_a(MinimizerOrdering::kRandomHash);
  const double lex_frac =
      static_cast<double>(lex_a) / static_cast<double>(lex_total);
  const double hash_frac =
      static_cast<double>(hash_a) / static_cast<double>(hash_total);
  EXPECT_GT(lex_frac, 3 * hash_frac);
}

TEST(MinimizerScan, ShortRunBetweenNsUsesTruncatedWindow) {
  // Run of 6 bases with k=4 -> 3 k-mers, less than w=10: one truncated
  // window over the whole run.
  const std::string seq = "NNACGTACNN";
  const auto minimizers = minimizer_scan(seq, {4, 10});
  EXPECT_EQ(minimizers.size(), 1u);
}

}  // namespace
}  // namespace jem::core
