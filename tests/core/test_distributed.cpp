#include "core/distributed.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(PartitionByBases, CoversAllSequencesContiguously) {
  io::SequenceSet set;
  util::Xoshiro256ss rng(1);
  for (int i = 0; i < 57; ++i) {
    set.add("s" + std::to_string(i), random_dna(rng, 50 + rng.bounded(500)));
  }
  for (int ranks : {1, 2, 3, 7, 16}) {
    const auto ranges = partition_by_bases(set, ranks);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(ranks));
    EXPECT_EQ(ranges.front().first, 0u);
    EXPECT_EQ(ranges.back().second, set.size());
    for (std::size_t r = 1; r < ranges.size(); ++r) {
      EXPECT_EQ(ranges[r].first, ranges[r - 1].second);
    }
  }
}

TEST(PartitionByBases, BalancesBasesApproximately) {
  io::SequenceSet set;
  util::Xoshiro256ss rng(2);
  for (int i = 0; i < 200; ++i) {
    set.add("s" + std::to_string(i), random_dna(rng, 100 + rng.bounded(200)));
  }
  const int ranks = 8;
  const auto ranges = partition_by_bases(set, ranks);
  const double ideal =
      static_cast<double>(set.total_bases()) / static_cast<double>(ranks);
  for (const auto& [begin, end] : ranges) {
    std::uint64_t bases = 0;
    for (io::SeqId id = begin; id < end; ++id) bases += set.length(id);
    // Each rank within one max-sequence-length of the ideal share.
    EXPECT_NEAR(static_cast<double>(bases), ideal, 400.0);
  }
}

TEST(PartitionByBases, MoreRanksThanSequences) {
  io::SequenceSet set;
  set.add("a", "ACGTACGT");
  set.add("b", "ACGT");
  const auto ranges = partition_by_bases(set, 5);
  ASSERT_EQ(ranges.size(), 5u);
  std::size_t covered = 0;
  for (const auto& [begin, end] : ranges) covered += end - begin;
  EXPECT_EQ(covered, set.size());
}

TEST(PartitionByBases, RejectsZeroRanks) {
  io::SequenceSet set;
  EXPECT_THROW((void)partition_by_bases(set, 0), std::invalid_argument);
}

TEST(MappingWireFormat, RoundTrips) {
  SegmentMapping mapping;
  mapping.read = 42;
  mapping.end = ReadEnd::kSuffix;
  mapping.segment_length = 1000;
  mapping.result.subject = 7;
  mapping.result.votes = 28;

  const SegmentMapping back = from_wire(to_wire(mapping));
  EXPECT_EQ(back.read, mapping.read);
  EXPECT_EQ(back.end, mapping.end);
  EXPECT_EQ(back.segment_length, mapping.segment_length);
  EXPECT_EQ(back.result.subject, mapping.result.subject);
  EXPECT_EQ(back.result.votes, mapping.result.votes);
}

TEST(MappingWireFormat, PreservesUnmapped) {
  SegmentMapping mapping;
  mapping.read = 1;
  const SegmentMapping back = from_wire(to_wire(mapping));
  EXPECT_FALSE(back.result.mapped());
}

/// End-to-end fixture: compare distributed runs against the sequential
/// mapper, which is the correctness oracle.
class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(4242);
    genome_ = random_dna(rng, 80'000);
    for (int i = 0; i < 16; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    for (int i = 0; i < 30; ++i) {
      const std::size_t pos = rng.bounded(70'000);
      reads_.add("read_" + std::to_string(i),
                 genome_.substr(pos, 4000 + rng.bounded(6000)));
    }
    params_.k = 16;
    params_.w = 20;
    params_.trials = 12;
    params_.segment_length = 1000;
    params_.seed = 31337;
  }

  void expect_same_mappings(const std::vector<SegmentMapping>& a,
                            const std::vector<SegmentMapping>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].read, b[i].read) << i;
      EXPECT_EQ(a[i].end, b[i].end) << i;
      EXPECT_EQ(a[i].result.subject, b[i].result.subject) << i;
      EXPECT_EQ(a[i].result.votes, b[i].result.votes) << i;
    }
  }

  std::string genome_;
  io::SequenceSet subjects_;
  io::SequenceSet reads_;
  MapParams params_;
};

TEST_F(DistributedTest, SingleRankMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  const auto sequential = mapper.map_reads(reads_);
  const DistributedResult distributed =
      run_distributed(subjects_, reads_, params_, 1);
  expect_same_mappings(sequential, distributed.mappings);
}

TEST_F(DistributedTest, MultiRankMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  const auto sequential = mapper.map_reads(reads_);
  for (int ranks : {2, 3, 4, 8}) {
    const DistributedResult distributed =
        run_distributed(subjects_, reads_, params_, ranks);
    expect_same_mappings(sequential, distributed.mappings);
  }
}

TEST_F(DistributedTest, HybridRanksTimesThreadsMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  const auto sequential = mapper.map_reads(reads_);
  const DistributedResult hybrid = run_distributed(
      subjects_, reads_, params_, /*ranks=*/2, SketchScheme::kJem,
      /*threads_per_rank=*/3);
  expect_same_mappings(sequential, hybrid.mappings);
}

TEST_F(DistributedTest, HybridRejectsZeroThreads) {
  EXPECT_THROW((void)run_distributed(subjects_, reads_, params_, 2,
                                     SketchScheme::kJem, 0),
               std::invalid_argument);
}

TEST_F(DistributedTest, PartitionedTableMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  const auto sequential = mapper.map_reads(reads_);
  for (int ranks : {1, 2, 4, 8}) {
    const DistributedResult partitioned =
        run_distributed_partitioned(subjects_, reads_, params_, ranks);
    expect_same_mappings(sequential, partitioned.mappings);
  }
}

TEST_F(DistributedTest, PartitionedTableShrinksPerRankMemory) {
  const DistributedResult replicated =
      run_distributed(subjects_, reads_, params_, 8);
  const DistributedResult partitioned =
      run_distributed_partitioned(subjects_, reads_, params_, 8);
  ASSERT_GT(replicated.report.table_entries_max, 0u);
  ASSERT_GT(partitioned.report.table_entries_max, 0u);
  // A shard must be much smaller than the full replicated table (ideally
  // 1/8; allow generous slack for hash imbalance).
  EXPECT_LT(partitioned.report.table_entries_max,
            replicated.report.table_entries_max / 3);
}

TEST_F(DistributedTest, PartitionedRespectMinVotes) {
  MapParams strict = params_;
  strict.min_votes = static_cast<std::uint32_t>(params_.trials) + 1;
  const DistributedResult partitioned =
      run_distributed_partitioned(subjects_, reads_, strict, 4);
  for (const SegmentMapping& mapping : partitioned.mappings) {
    EXPECT_FALSE(mapping.result.mapped());
  }
}

TEST(AllToAllv, RoutesPayloadsBySourceAndDest) {
  mpisim::run_spmd(3, [](mpisim::Comm& comm) {
    // Rank r sends {r*10 + d} to each rank d, with d+1 copies.
    std::vector<std::vector<int>> outgoing(3);
    for (int d = 0; d < 3; ++d) {
      outgoing[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(d + 1), comm.rank() * 10 + d);
    }
    const auto incoming = comm.all_to_allv(outgoing);
    ASSERT_EQ(incoming.size(), 3u);
    for (int s = 0; s < 3; ++s) {
      const auto& payload = incoming[static_cast<std::size_t>(s)];
      ASSERT_EQ(payload.size(),
                static_cast<std::size_t>(comm.rank() + 1));
      for (int value : payload) {
        EXPECT_EQ(value, s * 10 + comm.rank());
      }
    }
  });
}

TEST(AllToAllv, HandlesEmptyLanes) {
  mpisim::run_spmd(2, [](mpisim::Comm& comm) {
    std::vector<std::vector<double>> outgoing(2);
    if (comm.rank() == 0) outgoing[1] = {3.14};
    const auto incoming = comm.all_to_allv(outgoing);
    if (comm.rank() == 1) {
      ASSERT_EQ(incoming[0].size(), 1u);
      EXPECT_DOUBLE_EQ(incoming[0][0], 3.14);
    } else {
      EXPECT_TRUE(incoming[0].empty());
      EXPECT_TRUE(incoming[1].empty());
    }
  });
}

TEST(AllToAllv, RejectsWrongLaneCount) {
  mpisim::run_spmd(2, [](mpisim::Comm& comm) {
    std::vector<std::vector<int>> wrong(3);
    EXPECT_THROW((void)comm.all_to_allv(wrong), std::logic_error);
    // Keep the collective schedule aligned across ranks afterwards.
    std::vector<std::vector<int>> ok(2);
    (void)comm.all_to_allv(ok);
  });
}

TEST_F(DistributedTest, StagedMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  const auto sequential = mapper.map_reads(reads_);
  for (int ranks : {1, 4, 8}) {
    const DistributedResult staged =
        run_staged(subjects_, reads_, params_, ranks);
    expect_same_mappings(sequential, staged.mappings);
  }
}

TEST_F(DistributedTest, ReportAccountsAllSteps) {
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, 4);
  EXPECT_EQ(result.report.ranks, 4);
  EXPECT_GT(result.report.sketch_subjects_s, 0.0);
  EXPECT_GT(result.report.map_queries_s, 0.0);
  EXPECT_GT(result.report.sketch_bytes, 0u);
  EXPECT_EQ(result.report.queries_mapped, result.mappings.size());
  EXPECT_GE(result.report.total_s(), result.report.compute_s());
}

TEST_F(DistributedTest, StagedReportChargesModeledComm) {
  mpisim::NetworkModel model;
  const DistributedResult staged =
      run_staged(subjects_, reads_, params_, 8, model);
  EXPECT_GT(staged.report.allgather_s, 0.0);
  // Modeled comm must equal the model applied to the measured volume
  // (staged mode charges allgather once).
  EXPECT_NEAR(staged.report.allgather_s,
              model.allgatherv_s(8, staged.report.sketch_bytes), 1e-12);
}

TEST_F(DistributedTest, StagedThroughputIsPositive) {
  const DistributedResult staged =
      run_staged(subjects_, reads_, params_, 4);
  EXPECT_GT(staged.report.query_throughput(), 0.0);
}

TEST_F(DistributedTest, MappingsAreSortedByReadThenEnd) {
  const DistributedResult result =
      run_distributed(subjects_, reads_, params_, 4);
  for (std::size_t i = 1; i < result.mappings.size(); ++i) {
    const auto& prev = result.mappings[i - 1];
    const auto& curr = result.mappings[i];
    const bool ordered =
        prev.read < curr.read ||
        (prev.read == curr.read &&
         static_cast<int>(prev.end) <= static_cast<int>(curr.end));
    EXPECT_TRUE(ordered) << "index " << i;
  }
}

}  // namespace
}  // namespace jem::core
