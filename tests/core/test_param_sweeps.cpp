// Parameterized property sweeps (TEST_P): each suite checks an invariant
// across a grid of parameters rather than at hand-picked points.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "align/banded.hpp"
#include "core/end_segments.hpp"
#include "core/distributed.hpp"
#include "core/kmer.hpp"
#include "core/minimizer.hpp"
#include "core/sketch.hpp"
#include "util/prng.hpp"

namespace jem {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

// ---------------------------------------------------------------------------
// K-mer codec identities for every k in [1, 32].
class KmerCodecSweep : public ::testing::TestWithParam<int> {};

TEST_P(KmerCodecSweep, EncodeDecodeRoundTrip) {
  const int k = GetParam();
  const core::KmerCodec codec(k);
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(1000 + k));
  for (int i = 0; i < 30; ++i) {
    const std::string kmer = random_dna(rng, static_cast<std::size_t>(k));
    const auto code = codec.encode(kmer);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(codec.decode(*code), kmer);
  }
}

TEST_P(KmerCodecSweep, ReverseComplementInvolutionAndCanonicalInvariance) {
  const int k = GetParam();
  const core::KmerCodec codec(k);
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(2000 + k));
  for (int i = 0; i < 30; ++i) {
    const core::KmerCode code = rng() & codec.mask();
    const core::KmerCode rc = codec.reverse_complement(code);
    EXPECT_EQ(codec.reverse_complement(rc), code);
    EXPECT_EQ(codec.canonical(code), codec.canonical(rc));
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, KmerCodecSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 17, 21,
                                           31, 32));

// ---------------------------------------------------------------------------
// Minimizer scan equals the naive reference across (k, w, ordering).
using MinimizerGrid = std::tuple<int, int, core::MinimizerOrdering>;
class MinimizerSweep : public ::testing::TestWithParam<MinimizerGrid> {};

TEST_P(MinimizerSweep, DequeScanMatchesNaive) {
  const auto [k, w, ordering] = GetParam();
  const core::MinimizerParams params{k, w, ordering};
  util::Xoshiro256ss rng(
      static_cast<std::uint64_t>(k * 1000 + w * 10 +
                                 static_cast<int>(ordering)));
  for (int i = 0; i < 5; ++i) {
    const std::string seq = random_dna(rng, 200 + rng.bounded(800));
    EXPECT_EQ(core::minimizer_scan(seq, params),
              core::minimizer_scan_naive(seq, params))
        << "k=" << k << " w=" << w;
  }
}

TEST_P(MinimizerSweep, PositionsStrictlyIncreaseAndKmersAreCanonical) {
  const auto [k, w, ordering] = GetParam();
  const core::MinimizerParams params{k, w, ordering};
  const core::KmerCodec codec(k);
  util::Xoshiro256ss rng(
      static_cast<std::uint64_t>(k * 77 + w * 7 +
                                 static_cast<int>(ordering)));
  const std::string seq = random_dna(rng, 3000);
  const auto minimizers = core::minimizer_scan(seq, params);
  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(minimizers[i - 1].position, minimizers[i].position);
    }
    EXPECT_EQ(minimizers[i].kmer, codec.canonical(minimizers[i].kmer));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MinimizerSweep,
    ::testing::Combine(
        ::testing::Values(4, 11, 16),
        ::testing::Values(1, 5, 50),
        ::testing::Values(core::MinimizerOrdering::kLexicographic,
                          core::MinimizerOrdering::kRandomHash)));

// ---------------------------------------------------------------------------
// JEM sketch: fast sliding implementation equals naive Algorithm 1 across T.
class SketchTrialSweep : public ::testing::TestWithParam<int> {};

TEST_P(SketchTrialSweep, FastMatchesNaive) {
  const int trials = GetParam();
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(3000 + trials));
  const std::string seq = random_dna(rng, 4000);
  const auto minimizers = core::minimizer_scan(seq, {12, 8});
  const core::HashFamily hashes(trials, 99);
  const core::Sketch fast = core::sketch_by_jem(minimizers, 600, hashes);
  const core::Sketch naive =
      core::sketch_by_jem_naive(minimizers, 600, hashes);
  ASSERT_EQ(fast.trials(), trials);
  for (int t = 0; t < trials; ++t) {
    EXPECT_EQ(fast.per_trial[static_cast<std::size_t>(t)],
              naive.per_trial[static_cast<std::size_t>(t)])
        << "trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, SketchTrialSweep,
                         ::testing::Values(1, 2, 5, 10, 30, 64));

// ---------------------------------------------------------------------------
// Banded edit distance equals the full DP whenever the band suffices.
class BandSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandSweep, BandedMatchesFullWithinBand) {
  const std::uint64_t band = GetParam();
  util::Xoshiro256ss rng(4000 + band);
  for (int i = 0; i < 10; ++i) {
    std::string a = random_dna(rng, 80);
    std::string b = a;
    // Apply at most `band` edits so the banded result must be exact.
    const std::uint64_t edits = rng.bounded(band + 1);
    for (std::uint64_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.bounded(b.size());
      b[pos] = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
    }
    const std::uint64_t exact = align::edit_distance(a, b);
    const auto banded = align::banded_edit_distance(a, b, band);
    if (exact <= band) {
      ASSERT_TRUE(banded.has_value());
      EXPECT_EQ(*banded, exact);
    } else {
      EXPECT_FALSE(banded.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, BandSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------------
// Base partitioning covers every sequence exactly once for any rank count.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, PartitionIsContiguousAndComplete) {
  const int ranks = GetParam();
  io::SequenceSet set;
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(5000 + ranks));
  const std::size_t count = rng.bounded(80);
  for (std::size_t i = 0; i < count; ++i) {
    set.add("s" + std::to_string(i), random_dna(rng, 20 + rng.bounded(300)));
  }
  const auto ranges = core::partition_by_bases(set, ranks);
  ASSERT_EQ(ranges.size(), static_cast<std::size_t>(ranks));
  io::SeqId cursor = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, cursor);
    EXPECT_LE(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, set.size());
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 32, 64));

// ---------------------------------------------------------------------------
// All three distribution strategies agree with the sequential mapper across
// (ranks, scheme) — the core correctness contract of the parallel layer.
using StrategyGrid = std::tuple<int, core::SketchScheme>;
class StrategySweep : public ::testing::TestWithParam<StrategyGrid> {
 protected:
  static void SetUpTestSuite() {
    util::Xoshiro256ss rng(8888);
    genome_ = new std::string(random_dna(rng, 50'000));
    subjects_ = new io::SequenceSet();
    for (int i = 0; i < 10; ++i) {
      subjects_->add("c" + std::to_string(i),
                     genome_->substr(static_cast<std::size_t>(i) * 5000,
                                     5000));
    }
    reads_ = new io::SequenceSet();
    for (int i = 0; i < 12; ++i) {
      const std::size_t pos = rng.bounded(42'000);
      reads_->add("r" + std::to_string(i), genome_->substr(pos, 6000));
    }
  }
  static void TearDownTestSuite() {
    delete reads_;
    delete subjects_;
    delete genome_;
    reads_ = nullptr;
    subjects_ = nullptr;
    genome_ = nullptr;
  }

  static std::string* genome_;
  static io::SequenceSet* subjects_;
  static io::SequenceSet* reads_;
};

std::string* StrategySweep::genome_ = nullptr;
io::SequenceSet* StrategySweep::subjects_ = nullptr;
io::SequenceSet* StrategySweep::reads_ = nullptr;

TEST_P(StrategySweep, AllStrategiesMatchSequential) {
  const auto [ranks, scheme] = GetParam();
  core::MapParams params;
  params.k = 16;
  params.w = 20;
  params.trials = 8;
  params.seed = 777;

  const core::JemMapper mapper(*subjects_, params, scheme);
  const auto sequential = mapper.map_reads(*reads_);

  const auto check = [&](const core::DistributedResult& result,
                         const char* label) {
    ASSERT_EQ(result.mappings.size(), sequential.size()) << label;
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(result.mappings[i].result.subject,
                sequential[i].result.subject)
          << label << " index " << i;
      EXPECT_EQ(result.mappings[i].result.votes, sequential[i].result.votes)
          << label << " index " << i;
    }
  };
  check(core::run_distributed(*subjects_, *reads_, params, ranks, scheme),
        "replicated");
  check(core::run_distributed_partitioned(*subjects_, *reads_, params, ranks,
                                          scheme),
        "partitioned");
  check(core::run_staged(*subjects_, *reads_, params, ranks, {}, scheme),
        "staged");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategySweep,
    ::testing::Combine(
        ::testing::Values(1, 2, 5),
        ::testing::Values(core::SketchScheme::kJem,
                          core::SketchScheme::kClassicMinhash)));

// ---------------------------------------------------------------------------
// End-segment extraction invariants across (read length, l) combinations.
using SegmentGrid = std::tuple<std::size_t, std::uint32_t>;
class SegmentSweep : public ::testing::TestWithParam<SegmentGrid> {};

TEST_P(SegmentSweep, EndSegmentsViewTheReadCorrectly) {
  const auto [read_length, ell] = GetParam();
  util::Xoshiro256ss rng(6000 + read_length + ell);
  const std::string read = random_dna(rng, read_length);
  const auto segments = core::extract_end_segments(0, read, ell);
  if (read_length == 0 || ell == 0) {
    EXPECT_TRUE(segments.empty());
    return;
  }
  for (const core::EndSegment& segment : segments) {
    EXPECT_LE(segment.bases.size(), static_cast<std::size_t>(ell));
    EXPECT_EQ(segment.bases,
              std::string_view(read).substr(segment.offset,
                                            segment.bases.size()));
  }
  if (read_length <= ell) {
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].bases.size(), read_length);
  } else {
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].offset, 0u);
    EXPECT_EQ(segments[1].offset + ell, read_length);
  }
}

TEST_P(SegmentSweep, TiledSegmentsCoverTheWholeRead) {
  const auto [read_length, ell] = GetParam();
  util::Xoshiro256ss rng(7000 + read_length + ell);
  const std::string read = random_dna(rng, read_length);
  const auto segments = core::extract_tiled_segments(0, read, ell);
  if (read_length == 0 || ell == 0) {
    EXPECT_TRUE(segments.empty());
    return;
  }
  std::vector<bool> covered(read_length, false);
  for (const core::EndSegment& segment : segments) {
    EXPECT_EQ(segment.bases,
              std::string_view(read).substr(segment.offset,
                                            segment.bases.size()));
    for (std::size_t i = 0; i < segment.bases.size(); ++i) {
      covered[segment.offset + i] = true;
    }
  }
  for (std::size_t i = 0; i < read_length; ++i) {
    EXPECT_TRUE(covered[i]) << "position " << i << " uncovered";
  }
  EXPECT_EQ(segments.front().end, core::ReadEnd::kPrefix);
  if (segments.size() > 1) {
    EXPECT_EQ(segments.back().end, core::ReadEnd::kSuffix);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SegmentSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 500, 1000, 1001,
                                                      2000, 9999),
                       ::testing::Values<std::uint32_t>(0, 1, 500, 1000)));

}  // namespace
}  // namespace jem
