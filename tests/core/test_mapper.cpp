#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

// Deprecation-window coverage: the legacy map_reads_* entrypoints must stay
// bit-identical to the sequential mapper until they are removed, so these
// tests keep calling them on purpose. New code routes through
// core::MappingEngine (docs/engine.md).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

/// Fixture: a genome cut into known contigs; queries taken from known spots.
class MapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(777);
    genome_ = random_dna(rng, 60'000);
    // Ten 6 Kbp contigs tiling the genome exactly.
    for (int i = 0; i < 10; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 6000, 6000));
    }
    params_.k = 16;
    params_.w = 20;  // denser minimizers than default for small test inputs
    params_.trials = 16;
    params_.segment_length = 1000;
    params_.seed = 99;
  }

  std::string genome_;
  io::SequenceSet subjects_;
  MapParams params_;
};

TEST_F(MapperTest, MapsExactSegmentToItsContig) {
  const JemMapper mapper(subjects_, params_);
  for (int contig = 0; contig < 10; ++contig) {
    // A segment from the middle of each contig.
    const std::string segment =
        genome_.substr(static_cast<std::size_t>(contig) * 6000 + 2500, 1000);
    const MapResult result = mapper.map_segment(segment);
    ASSERT_TRUE(result.mapped()) << "contig " << contig;
    EXPECT_EQ(result.subject, static_cast<io::SeqId>(contig));
    EXPECT_GT(result.votes, params_.trials / 2u);
  }
}

TEST_F(MapperTest, MapsReverseComplementSegment) {
  const JemMapper mapper(subjects_, params_);
  const std::string segment = reverse_complement(genome_.substr(14'200, 1000));
  const MapResult result = mapper.map_segment(segment);
  ASSERT_TRUE(result.mapped());
  EXPECT_EQ(result.subject, 2u);  // 14200 / 6000
}

TEST_F(MapperTest, RandomSegmentDoesNotMapConfidently) {
  const JemMapper mapper(subjects_, params_);
  util::Xoshiro256ss rng(12345);
  const std::string unrelated = random_dna(rng, 1000);
  const MapResult result = mapper.map_segment(unrelated);
  // A random segment shares no 16-mers with the genome (w.h.p.): either
  // unmapped or a tiny accidental vote count.
  if (result.mapped()) {
    EXPECT_LE(result.votes, 2u);
  }
}

TEST_F(MapperTest, VotesNeverExceedTrials) {
  const JemMapper mapper(subjects_, params_);
  const MapResult result = mapper.map_segment(genome_.substr(30'500, 1000));
  ASSERT_TRUE(result.mapped());
  EXPECT_LE(result.votes, static_cast<std::uint32_t>(params_.trials));
}

TEST_F(MapperTest, MinVotesThresholdFiltersWeakHits) {
  MapParams strict = params_;
  strict.min_votes = static_cast<std::uint32_t>(params_.trials) + 1;
  const JemMapper mapper(subjects_, strict);
  // Even a perfect segment cannot reach trials+1 votes.
  const MapResult result = mapper.map_segment(genome_.substr(2500, 1000));
  EXPECT_FALSE(result.mapped());
  EXPECT_EQ(result.votes, 0u);
}

TEST_F(MapperTest, MapSegmentIsDeterministic) {
  const JemMapper mapper(subjects_, params_);
  const std::string segment = genome_.substr(25'000, 1000);
  const MapResult a = mapper.map_segment(segment);
  const MapResult b = mapper.map_segment(segment);
  EXPECT_EQ(a.subject, b.subject);
  EXPECT_EQ(a.votes, b.votes);
}

TEST_F(MapperTest, MapReadsEmitsPrefixAndSuffixSegments) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  // Read spanning contigs 1..2: prefix in contig 1, suffix in contig 2.
  reads.add("read_0", genome_.substr(7'000, 9'000));
  const auto mappings = mapper.map_reads(reads);
  ASSERT_EQ(mappings.size(), 2u);
  EXPECT_EQ(mappings[0].end, ReadEnd::kPrefix);
  EXPECT_EQ(mappings[1].end, ReadEnd::kSuffix);
  ASSERT_TRUE(mappings[0].result.mapped());
  ASSERT_TRUE(mappings[1].result.mapped());
  EXPECT_EQ(mappings[0].result.subject, 1u);  // 7000 / 6000
  EXPECT_EQ(mappings[1].result.subject, 2u);  // 15000 / 6000
}

TEST_F(MapperTest, ParallelMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  util::Xoshiro256ss rng(555);
  for (int i = 0; i < 20; ++i) {
    const std::size_t pos = rng.bounded(50'000);
    reads.add("read_" + std::to_string(i), genome_.substr(pos, 5000));
  }
  const auto sequential = mapper.map_reads(reads);
  util::ThreadPool pool(4);
  auto parallel = mapper.map_reads_parallel(reads, pool);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].read, parallel[i].read);
    EXPECT_EQ(sequential[i].end, parallel[i].end);
    EXPECT_EQ(sequential[i].result.subject, parallel[i].result.subject);
    EXPECT_EQ(sequential[i].result.votes, parallel[i].result.votes);
  }
}

TEST_F(MapperTest, ClassicMinhashSchemeAlsoMapsExactSegments) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kClassicMinhash);
  // Classic MinHash compares whole-contig sketches against segment sketches;
  // an exact mid-contig segment may or may not share the global minimum, so
  // just verify the machinery runs and anything reported is plausible.
  const MapResult result = mapper.map_segment(genome_.substr(8'200, 1000));
  if (result.mapped()) {
    EXPECT_LT(result.subject, subjects_.size());
    EXPECT_LE(result.votes, static_cast<std::uint32_t>(params_.trials));
  }
}

TEST_F(MapperTest, ToMappingLinesResolvesNames) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("my_read", genome_.substr(2'000, 3'000));
  const auto mappings = mapper.map_reads(reads);
  const auto lines = mapper.to_mapping_lines(reads, mappings);
  ASSERT_EQ(lines.size(), mappings.size());
  EXPECT_EQ(lines[0].query, "my_read");
  EXPECT_EQ(lines[0].trials, static_cast<std::uint32_t>(params_.trials));
  if (mappings[0].result.mapped()) {
    EXPECT_EQ(lines[0].subject,
              subjects_.name(mappings[0].result.subject));
  } else {
    EXPECT_FALSE(lines[0].mapped());
  }
}

TEST_F(MapperTest, AdoptedTableMatchesBuiltTable) {
  const HashFamily hashes(params_.trials, params_.seed);
  SketchTable table = sketch_subjects(
      subjects_, 0, static_cast<io::SeqId>(subjects_.size()), params_,
      SketchScheme::kJem, hashes);
  const JemMapper adopted(subjects_, params_, SketchScheme::kJem,
                          std::move(table));
  const JemMapper built(subjects_, params_);

  const std::string segment = genome_.substr(40'100, 1000);
  const MapResult a = adopted.map_segment(segment);
  const MapResult b = built.map_segment(segment);
  EXPECT_EQ(a.subject, b.subject);
  EXPECT_EQ(a.votes, b.votes);
}

TEST_F(MapperTest, AdoptedTableRejectsTrialMismatch) {
  SketchTable table(params_.trials + 1);
  EXPECT_THROW(
      JemMapper(subjects_, params_, SketchScheme::kJem, std::move(table)),
      std::invalid_argument);
}

TEST_F(MapperTest, TieBreakPrefersSmallestSubjectId) {
  // Two identical contigs: every trial hits both, votes tie, id 0 wins.
  io::SequenceSet twins;
  util::Xoshiro256ss rng(888);
  const std::string shared = random_dna(rng, 4000);
  twins.add("twin_a", shared);
  twins.add("twin_b", shared);
  const JemMapper mapper(twins, params_);
  const MapResult result = mapper.map_segment(shared.substr(1500, 1000));
  ASSERT_TRUE(result.mapped());
  EXPECT_EQ(result.subject, 0u);
}

TEST_F(MapperTest, TopXFrontEqualsBestHit) {
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  const std::string segment = genome_.substr(20'300, 1000);
  const MapResult best = mapper.map_segment(segment, scratch);
  const auto topx = mapper.map_segment_topx(segment, 3, scratch);
  ASSERT_TRUE(best.mapped());
  ASSERT_FALSE(topx.empty());
  EXPECT_EQ(topx.front().subject, best.subject);
  EXPECT_EQ(topx.front().votes, best.votes);
}

TEST_F(MapperTest, TopXIsSortedByVotesThenId) {
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  // A segment straddling two contigs produces at least two candidates.
  const std::string segment = genome_.substr(6000 - 500, 1000);
  const auto topx = mapper.map_segment_topx(segment, 5, scratch);
  ASSERT_GE(topx.size(), 2u);
  for (std::size_t i = 1; i < topx.size(); ++i) {
    const bool ordered =
        topx[i - 1].votes > topx[i].votes ||
        (topx[i - 1].votes == topx[i].votes &&
         topx[i - 1].subject < topx[i].subject);
    EXPECT_TRUE(ordered) << "index " << i;
  }
}

TEST_F(MapperTest, TopXRespectsLimit) {
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  const std::string segment = genome_.substr(6000 - 500, 1000);
  EXPECT_LE(mapper.map_segment_topx(segment, 1, scratch).size(), 1u);
  EXPECT_LE(mapper.map_segment_topx(segment, 2, scratch).size(), 2u);
  EXPECT_TRUE(mapper.map_segment_topx(segment, 0, scratch).empty());
}

TEST_F(MapperTest, TopXOnUnrelatedSegmentIsEmptyOrWeak) {
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  util::Xoshiro256ss rng(999);
  const std::string unrelated = random_dna(rng, 1000);
  const auto topx = mapper.map_segment_topx(unrelated, 5, scratch);
  for (const MapResult& hit : topx) {
    EXPECT_LE(hit.votes, 2u);
  }
}

TEST_F(MapperTest, MapReadsTopXCoversAllSegments) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("r0", genome_.substr(3'000, 8'000));
  reads.add("r1", genome_.substr(30'000, 900));
  const auto topx = mapper.map_reads_topx(reads, 3);
  ASSERT_EQ(topx.size(), 3u);  // two ends + one short-read prefix
  EXPECT_EQ(topx[0].end, ReadEnd::kPrefix);
  EXPECT_EQ(topx[1].end, ReadEnd::kSuffix);
  EXPECT_FALSE(topx[0].hits.empty());
}

TEST_F(MapperTest, TopXTwinsBothReported) {
  io::SequenceSet twins;
  util::Xoshiro256ss rng(888);
  const std::string shared = random_dna(rng, 4000);
  twins.add("twin_a", shared);
  twins.add("twin_b", shared);
  const JemMapper mapper(twins, params_);
  MapScratch scratch(twins.size());
  const auto topx = mapper.map_segment_topx(shared.substr(1500, 1000), 2,
                                            scratch);
  ASSERT_EQ(topx.size(), 2u);
  EXPECT_EQ(topx[0].subject, 0u);
  EXPECT_EQ(topx[1].subject, 1u);
  EXPECT_EQ(topx[0].votes, topx[1].votes);
}

TEST_F(MapperTest, OpenmpMatchesSequential) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  util::Xoshiro256ss rng(556);
  for (int i = 0; i < 15; ++i) {
    const std::size_t pos = rng.bounded(50'000);
    reads.add("read_" + std::to_string(i), genome_.substr(pos, 5000));
  }
  const auto sequential = mapper.map_reads(reads);
  const auto parallel = mapper.map_reads_openmp(reads);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].read, parallel[i].read);
    EXPECT_EQ(sequential[i].end, parallel[i].end);
    EXPECT_EQ(sequential[i].result.subject, parallel[i].result.subject);
    EXPECT_EQ(sequential[i].result.votes, parallel[i].result.votes);
  }
}

TEST_F(MapperTest, TiledMappingCoversInteriorSegments) {
  const JemMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("long_read", genome_.substr(2'000, 10'000));  // 10 tiles
  const auto tiled = mapper.map_reads_tiled(reads);
  ASSERT_EQ(tiled.size(), 10u);
  EXPECT_EQ(tiled.front().end, ReadEnd::kPrefix);
  EXPECT_EQ(tiled.back().end, ReadEnd::kSuffix);
  int interior = 0;
  for (const SegmentMapping& m : tiled) {
    if (m.end == ReadEnd::kInterior) ++interior;
    // Each tile should map to the contig its genome offset falls into.
    if (m.result.mapped()) {
      const std::size_t genome_pos = 2'000 + m.offset + 500;  // tile middle
      EXPECT_EQ(m.result.subject,
                static_cast<io::SeqId>(genome_pos / 6000));
    }
  }
  EXPECT_EQ(interior, 8);
}

TEST_F(MapperTest, HotPathMatchesReferencePathExactly) {
  // Golden equivalence of the query overhaul: the flat-index + scratch hot
  // path must return bit-identical results to the pre-overhaul allocating
  // CSR path on every kind of segment, with one scratch reused throughout.
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  util::Xoshiro256ss rng(31337);
  for (int round = 0; round < 60; ++round) {
    std::string segment;
    switch (round % 4) {
      case 0:  // in-genome segment
        segment = genome_.substr(rng.bounded(genome_.size() - 1200),
                                 200 + rng.bounded(1000));
        break;
      case 1:  // reverse strand
        segment = reverse_complement(
            genome_.substr(rng.bounded(genome_.size() - 1000), 1000));
        break;
      case 2:  // unrelated sequence
        segment = random_dna(rng, 100 + rng.bounded(900));
        break;
      case 3:  // N-rich in-genome segment
        segment = genome_.substr(rng.bounded(genome_.size() - 1000), 1000);
        for (std::size_t i = 0; i < segment.size(); ++i) {
          if (rng.bounded(15) == 0) segment[i] = 'N';
        }
        break;
    }
    const MapResult fast = mapper.map_segment(segment, scratch);
    const MapResult reference = mapper.map_segment_reference(segment, scratch);
    ASSERT_EQ(fast, reference) << "round " << round;
  }
}

TEST_F(MapperTest, HotPathMatchesReferenceUnderClassicMinhash) {
  const JemMapper mapper(subjects_, params_, SketchScheme::kClassicMinhash);
  MapScratch scratch(subjects_.size());
  util::Xoshiro256ss rng(4242);
  for (int round = 0; round < 20; ++round) {
    const std::string segment =
        genome_.substr(rng.bounded(genome_.size() - 1000), 1000);
    ASSERT_EQ(mapper.map_segment(segment, scratch),
              mapper.map_segment_reference(segment, scratch));
  }
}

TEST_F(MapperTest, TopXReusesScratchAcrossCalls) {
  // map_segment_topx now keeps its touched list in the scratch; repeated
  // calls must not leak state between segments, and the front hit must
  // stay equal to map_segment's winner.
  const JemMapper mapper(subjects_, params_);
  MapScratch scratch(subjects_.size());
  for (int contig = 0; contig < 10; ++contig) {
    const std::string segment =
        genome_.substr(static_cast<std::size_t>(contig) * 6000 + 3000, 1000);
    const auto hits = mapper.map_segment_topx(segment, 5, scratch);
    const MapResult best = mapper.map_segment(segment, scratch);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits.front(), best);
    for (std::size_t i = 1; i < hits.size(); ++i) {
      const bool ordered =
          hits[i - 1].votes > hits[i].votes ||
          (hits[i - 1].votes == hits[i].votes &&
           hits[i - 1].subject < hits[i].subject);
      EXPECT_TRUE(ordered) << "hits must stay sorted by (votes desc, id)";
    }
  }
}

TEST_F(MapperTest, AdoptedTableIsFrozenForTheHotPath) {
  // The table-adopting constructor must freeze a mutable table so the
  // flat index exists; results agree with the self-sketching constructor.
  const HashFamily hashes(params_.trials, params_.seed);
  SketchTable table = sketch_subjects(
      subjects_, 0, static_cast<io::SeqId>(subjects_.size()), params_,
      SketchScheme::kJem, hashes);
  EXPECT_FALSE(table.frozen());
  const JemMapper adopted(subjects_, params_, SketchScheme::kJem,
                          std::move(table));
  EXPECT_TRUE(adopted.table().frozen());
  const JemMapper fresh(subjects_, params_);
  const std::string segment = genome_.substr(20'500, 1000);
  EXPECT_EQ(adopted.map_segment(segment), fresh.map_segment(segment));
}

TEST(MapperValidation, RejectsBadParams) {
  io::SequenceSet subjects;
  subjects.add("c", "ACGTACGTACGTACGTACGT");
  MapParams params;
  params.k = 0;
  EXPECT_THROW(JemMapper(subjects, params), std::invalid_argument);
  params = {};
  params.trials = 0;
  EXPECT_THROW(JemMapper(subjects, params), std::invalid_argument);
  params = {};
  params.segment_length = 0;
  EXPECT_THROW(JemMapper(subjects, params), std::invalid_argument);
  params = {};
  params.min_votes = 0;
  EXPECT_THROW(JemMapper(subjects, params), std::invalid_argument);
}

}  // namespace
}  // namespace jem::core
