#include "core/sketch_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace jem::core {
namespace {

TEST(SketchTable, RejectsNonPositiveTrials) {
  EXPECT_THROW(SketchTable(0), std::invalid_argument);
}

TEST(SketchTable, StartsEmpty) {
  const SketchTable table(5);
  EXPECT_EQ(table.trials(), 5);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.key_count(), 0u);
  EXPECT_TRUE(table.lookup(0, 123).empty());
}

TEST(SketchTable, InsertAndLookupSingleEntry) {
  SketchTable table(3);
  table.insert(1, 0xdeadu, 7);
  const auto subjects = table.lookup(1, 0xdeadu);
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0], 7u);
  EXPECT_TRUE(table.lookup(0, 0xdeadu).empty());  // other trials unaffected
  EXPECT_TRUE(table.lookup(2, 0xdeadu).empty());
}

TEST(SketchTable, CollapsesDuplicateTriples) {
  SketchTable table(2);
  table.insert(0, 42, 1);
  table.insert(0, 42, 1);
  table.insert(0, 42, 1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(0, 42).size(), 1u);
}

TEST(SketchTable, CollapsesOutOfOrderDuplicates) {
  SketchTable table(1);
  table.insert(0, 42, 1);
  table.insert(0, 42, 5);
  table.insert(0, 42, 1);  // out-of-order duplicate
  EXPECT_EQ(table.size(), 2u);
}

TEST(SketchTable, KeepsDistinctSubjectsPerKey) {
  SketchTable table(1);
  table.insert(0, 42, 1);
  table.insert(0, 42, 2);
  table.insert(0, 42, 3);
  const auto subjects = table.lookup(0, 42);
  ASSERT_EQ(subjects.size(), 3u);
  EXPECT_EQ(subjects[0], 1u);
  EXPECT_EQ(subjects[2], 3u);
}

TEST(SketchTable, InsertSketchInsertsAllTrials) {
  Sketch sketch;
  sketch.per_trial = {{10, 20}, {30}};
  SketchTable table(2);
  table.insert(sketch, 9);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.lookup(0, 10).size(), 1u);
  EXPECT_EQ(table.lookup(0, 20).size(), 1u);
  EXPECT_EQ(table.lookup(1, 30).size(), 1u);
}

TEST(SketchTable, InsertSketchRejectsTrialMismatch) {
  Sketch sketch;
  sketch.per_trial = {{1}};
  SketchTable table(2);
  EXPECT_THROW(table.insert(sketch, 0), std::invalid_argument);
}

TEST(SketchTable, EntriesRoundTrip) {
  SketchTable table(3);
  table.insert(0, 100, 1);
  table.insert(0, 100, 2);
  table.insert(1, 200, 3);
  table.insert(2, 300, 1);

  const auto entries = table.to_entries();
  EXPECT_EQ(entries.size(), 4u);

  const SketchTable rebuilt = SketchTable::from_entries(3, entries);
  EXPECT_EQ(rebuilt.size(), table.size());
  EXPECT_EQ(rebuilt.lookup(0, 100).size(), 2u);
  EXPECT_EQ(rebuilt.lookup(1, 200).size(), 1u);
  EXPECT_EQ(rebuilt.lookup(2, 300).size(), 1u);
}

TEST(SketchTable, FromEntriesRejectsBadTrial) {
  const std::vector<SketchEntry> entries{{1, 5, 0}};
  EXPECT_THROW((void)SketchTable::from_entries(3, entries),
               std::invalid_argument);
}

TEST(SketchTable, FromEntriesMergesMultipleRanksDeduplicated) {
  // Two "ranks" contributing overlapping entries (a subject split across
  // boundary should not duplicate).
  std::vector<SketchEntry> rank0{{7, 0, 1}, {8, 0, 1}};
  std::vector<SketchEntry> rank1{{7, 0, 2}, {7, 0, 1}};
  std::vector<SketchEntry> all;
  all.insert(all.end(), rank0.begin(), rank0.end());
  all.insert(all.end(), rank1.begin(), rank1.end());
  const SketchTable merged = SketchTable::from_entries(1, all);
  EXPECT_EQ(merged.lookup(0, 7).size(), 2u);
  EXPECT_EQ(merged.lookup(0, 8).size(), 1u);
}

TEST(SketchTable, KeyCountCountsDistinctKeys) {
  SketchTable table(2);
  table.insert(0, 1, 0);
  table.insert(0, 1, 1);  // same key
  table.insert(0, 2, 0);
  table.insert(1, 1, 0);  // same kmer, other trial -> distinct key
  EXPECT_EQ(table.key_count(), 3u);
}

TEST(SketchTableFrozen, FreezeIsIdempotentAndPreservesLookups) {
  SketchTable table(2);
  table.insert(0, 10, 1);
  table.insert(0, 10, 2);
  table.insert(1, 20, 3);
  table.freeze();
  EXPECT_TRUE(table.frozen());
  table.freeze();  // idempotent
  EXPECT_EQ(table.lookup(0, 10).size(), 2u);
  EXPECT_EQ(table.lookup(1, 20).size(), 1u);
  EXPECT_TRUE(table.lookup(0, 99).empty());
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.key_count(), 2u);
  EXPECT_EQ(table.trials(), 2);
}

TEST(SketchTableFrozen, InsertThrowsAfterFreeze) {
  SketchTable table(1);
  table.freeze();
  EXPECT_THROW(table.insert(0, 1, 0), std::logic_error);
}

TEST(SketchTableFrozen, FromEntriesProducesFrozenTable) {
  const std::vector<SketchEntry> entries{{5, 0, 1}, {5, 0, 2}, {7, 0, 0}};
  const SketchTable table = SketchTable::from_entries(1, entries);
  EXPECT_TRUE(table.frozen());
  EXPECT_EQ(table.lookup(0, 5).size(), 2u);
  EXPECT_EQ(table.lookup(0, 7).size(), 1u);
}

TEST(SketchTableFrozen, FromEntriesCollapsesDuplicateTriples) {
  const std::vector<SketchEntry> entries{{5, 0, 1}, {5, 0, 1}, {5, 0, 1}};
  const SketchTable table = SketchTable::from_entries(1, entries);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(0, 5).size(), 1u);
}

TEST(SketchTableFrozen, FrozenAndHashFormsAgreeOnRandomData) {
  // Property: lookups through the hash form and the frozen form of the
  // same contents must be identical sets.
  std::uint64_t state = 7;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  };
  SketchTable hash_form(4);
  std::vector<SketchEntry> entries;
  for (int i = 0; i < 2000; ++i) {
    const SketchEntry entry{next() % 97, static_cast<std::uint32_t>(next() % 4),
                            static_cast<io::SeqId>(next() % 23)};
    hash_form.insert(static_cast<int>(entry.trial), entry.kmer, entry.subject);
    entries.push_back(entry);
  }
  const SketchTable frozen_form = SketchTable::from_entries(4, entries);
  for (std::uint64_t kmer = 0; kmer < 97; ++kmer) {
    for (int t = 0; t < 4; ++t) {
      auto a = hash_form.lookup(t, kmer);
      auto b = frozen_form.lookup(t, kmer);
      std::vector<io::SeqId> va(a.begin(), a.end());
      std::vector<io::SeqId> vb(b.begin(), b.end());
      std::sort(va.begin(), va.end());
      std::sort(vb.begin(), vb.end());
      EXPECT_EQ(va, vb) << "kmer " << kmer << " trial " << t;
    }
  }
}

TEST(SketchTableFrozen, ToEntriesRoundTripsThroughFrozenForm) {
  SketchTable table(2);
  table.insert(0, 100, 1);
  table.insert(1, 200, 2);
  table.freeze();
  const auto entries = table.to_entries();
  EXPECT_EQ(entries.size(), 2u);
  const SketchTable rebuilt = SketchTable::from_entries(2, entries);
  EXPECT_EQ(rebuilt.lookup(0, 100).size(), 1u);
  EXPECT_EQ(rebuilt.lookup(1, 200).size(), 1u);
}

TEST(SketchTablePersistence, SaveLoadRoundTrips) {
  SketchTable table(3);
  table.insert(0, 100, 1);
  table.insert(0, 100, 2);
  table.insert(1, 200, 3);
  table.insert(2, 300, 1);

  std::stringstream buffer;
  table.save(buffer);
  const SketchTable loaded = SketchTable::load(buffer);
  EXPECT_TRUE(loaded.frozen());
  EXPECT_EQ(loaded.trials(), 3);
  EXPECT_EQ(loaded.size(), table.size());
  EXPECT_EQ(loaded.lookup(0, 100).size(), 2u);
  EXPECT_EQ(loaded.lookup(1, 200).size(), 1u);
  EXPECT_EQ(loaded.lookup(2, 300).size(), 1u);
}

TEST(SketchTablePersistence, SaveLoadEmptyTable) {
  SketchTable table(5);
  std::stringstream buffer;
  table.save(buffer);
  const SketchTable loaded = SketchTable::load(buffer);
  EXPECT_EQ(loaded.trials(), 5);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(SketchTablePersistence, LoadRejectsGarbage) {
  std::stringstream buffer("this is not a sketch table at all............");
  EXPECT_THROW((void)SketchTable::load(buffer), std::runtime_error);
}

TEST(SketchTablePersistence, LoadRejectsTruncation) {
  SketchTable table(2);
  table.insert(0, 1, 0);
  table.insert(1, 2, 1);
  std::stringstream buffer;
  table.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 8));
  EXPECT_THROW((void)SketchTable::load(truncated), std::runtime_error);
}

TEST(SketchEntry, WireSizeIsStable) {
  // The allgatherv volume accounting assumes 16-byte entries.
  EXPECT_EQ(sizeof(SketchEntry), 16u);
}

}  // namespace
}  // namespace jem::core
