#include "baseline/mashmap_like.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::baseline {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class MashmapLikeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(31415);
    genome_ = random_dna(rng, 60'000);
    for (int i = 0; i < 10; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 6000, 6000));
    }
    params_.k = 16;
    params_.sketch_size = 100;  // w ~ 19 at l=1000: denser than JEM for small tests
    params_.segment_length = 1000;
  }

  std::string genome_;
  io::SequenceSet subjects_;
  MashmapParams params_;
};

TEST_F(MashmapLikeTest, IndexesAllSubjectMinimizers) {
  const MashmapLikeMapper mapper(subjects_, params_);
  EXPECT_GT(mapper.index_postings(), 0u);
  // Density ~ 2/(w+1) per k-mer: ~5700 postings expected for 60 Kbp, w=20.
  EXPECT_GT(mapper.index_postings(), 2000u);
  EXPECT_LT(mapper.index_postings(), 12000u);
}

TEST_F(MashmapLikeTest, MapsExactSegmentToItsContig) {
  const MashmapLikeMapper mapper(subjects_, params_);
  for (int contig = 0; contig < 10; ++contig) {
    const std::string segment =
        genome_.substr(static_cast<std::size_t>(contig) * 6000 + 2500, 1000);
    const MashmapHit hit = mapper.map_segment(segment);
    ASSERT_TRUE(hit.mapped()) << "contig " << contig;
    EXPECT_EQ(hit.subject, static_cast<io::SeqId>(contig));
    EXPECT_GT(hit.jaccard, 0.5);
  }
}

TEST_F(MashmapLikeTest, ReportsPlausiblePosition) {
  const MashmapLikeMapper mapper(subjects_, params_);
  // Segment at offset 2500 of contig 4.
  const std::string segment = genome_.substr(4 * 6000 + 2500, 1000);
  const MashmapHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 4u);
  EXPECT_NEAR(static_cast<double>(hit.position), 2500.0, 300.0);
}

TEST_F(MashmapLikeTest, MapsReverseComplementSegment) {
  const MashmapLikeMapper mapper(subjects_, params_);
  const std::string segment =
      core::reverse_complement(genome_.substr(3 * 6000 + 1000, 1000));
  const MashmapHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 3u);
}

TEST_F(MashmapLikeTest, RandomSegmentDoesNotMap) {
  const MashmapLikeMapper mapper(subjects_, params_);
  util::Xoshiro256ss rng(161803);
  const MashmapHit hit = mapper.map_segment(random_dna(rng, 1000));
  EXPECT_FALSE(hit.mapped());
}

TEST_F(MashmapLikeTest, EmptySegmentDoesNotMap) {
  const MashmapLikeMapper mapper(subjects_, params_);
  EXPECT_FALSE(mapper.map_segment("").mapped());
  EXPECT_FALSE(mapper.map_segment("ACGT").mapped());  // shorter than k
}

TEST_F(MashmapLikeTest, MinSharedThresholdFilters) {
  MashmapParams strict = params_;
  strict.min_shared = 1000;  // unreachable for a 1000 bp segment
  const MashmapLikeMapper mapper(subjects_, strict);
  const std::string segment = genome_.substr(2500, 1000);
  EXPECT_FALSE(mapper.map_segment(segment).mapped());
}

TEST_F(MashmapLikeTest, MinJaccardThresholdFilters) {
  MashmapParams strict = params_;
  strict.min_jaccard = 1.01;  // impossible
  const MashmapLikeMapper mapper(subjects_, strict);
  const std::string segment = genome_.substr(2500, 1000);
  EXPECT_FALSE(mapper.map_segment(segment).mapped());
}

TEST_F(MashmapLikeTest, FrequencyMaskDropsRepetitiveMinimizers) {
  // A subject set that is one motif repeated everywhere: every minimizer
  // occurs in all contigs many times. With a tiny occurrence cap nothing
  // useful remains and mapping fails instead of going quadratic.
  io::SequenceSet repetitive;
  std::string motif = "ACGTGGCTAAGCTTGACCGT";  // 20 bp
  std::string unit;
  for (int i = 0; i < 200; ++i) unit += motif;
  for (int i = 0; i < 5; ++i) {
    repetitive.add("rep_" + std::to_string(i), unit);
  }
  MashmapParams masked = params_;
  masked.max_occurrences = 2;
  const MashmapLikeMapper mapper(repetitive, masked);
  const MashmapHit hit = mapper.map_segment(unit.substr(100, 1000));
  EXPECT_FALSE(hit.mapped());
}

TEST_F(MashmapLikeTest, MapReadsMatchesJemOutputShape) {
  const MashmapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("r0", genome_.substr(1000, 8000));
  reads.add("r1", genome_.substr(20'000, 500));  // short read: prefix only
  const auto mappings = mapper.map_reads(reads);
  ASSERT_EQ(mappings.size(), 3u);  // 2 segments + 1 segment
  EXPECT_EQ(mappings[0].read, 0u);
  EXPECT_EQ(mappings[2].read, 1u);
  EXPECT_EQ(mappings[2].end, core::ReadEnd::kPrefix);
}

TEST_F(MashmapLikeTest, ParallelMatchesSequential) {
  const MashmapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  util::Xoshiro256ss rng(2718);
  for (int i = 0; i < 12; ++i) {
    const std::size_t pos = rng.bounded(50'000);
    reads.add("read_" + std::to_string(i), genome_.substr(pos, 5000));
  }
  const auto sequential = mapper.map_reads(reads);
  util::ThreadPool pool(3);
  const auto parallel = mapper.map_reads_parallel(reads, pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].result.subject, parallel[i].result.subject);
  }
}

TEST_F(MashmapLikeTest, SegmentSpanningTwoContigsPicksBetterHalf) {
  const MashmapLikeMapper mapper(subjects_, params_);
  // Segment straddling the contig 0/1 boundary: 700 bp in contig 0,
  // 300 bp in contig 1 -> contig 0 should win.
  const std::string segment = genome_.substr(6000 - 700, 1000);
  const MashmapHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 0u);
}

}  // namespace
}  // namespace jem::baseline
