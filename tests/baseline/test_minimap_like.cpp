#include "baseline/minimap_like.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "sim/hifi_reads.hpp"
#include "util/prng.hpp"

namespace jem::baseline {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class MinimapLikeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(27182);
    genome_ = random_dna(rng, 60'000);
    for (int i = 0; i < 10; ++i) {
      subjects_.add("contig_" + std::to_string(i),
                    genome_.substr(static_cast<std::size_t>(i) * 6000, 6000));
    }
  }

  std::string genome_;
  io::SequenceSet subjects_;
  MinimapParams params_;
};

TEST_F(MinimapLikeTest, IndexesSubjects) {
  const MinimapLikeMapper mapper(subjects_, params_);
  // w=10 -> density ~2/11: ~10900 postings over 60 Kbp.
  EXPECT_GT(mapper.index_postings(), 6000u);
  EXPECT_LT(mapper.index_postings(), 16000u);
}

TEST_F(MinimapLikeTest, MapsExactSegmentToItsContig) {
  const MinimapLikeMapper mapper(subjects_, params_);
  for (int contig = 0; contig < 10; ++contig) {
    const std::string segment =
        genome_.substr(static_cast<std::size_t>(contig) * 6000 + 2500, 1000);
    const ChainHit hit = mapper.map_segment(segment);
    ASSERT_TRUE(hit.mapped()) << "contig " << contig;
    EXPECT_EQ(hit.subject, static_cast<io::SeqId>(contig));
    EXPECT_FALSE(hit.reverse);
    EXPECT_GE(hit.anchors, params_.min_chain_anchors);
  }
}

TEST_F(MinimapLikeTest, ChainSpanMatchesPlacement) {
  const MinimapLikeMapper mapper(subjects_, params_);
  const std::string segment = genome_.substr(4 * 6000 + 2500, 1000);
  const ChainHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 4u);
  EXPECT_NEAR(static_cast<double>(hit.subject_begin), 2500.0, 120.0);
  EXPECT_NEAR(static_cast<double>(hit.subject_end), 3500.0, 120.0);
}

TEST_F(MinimapLikeTest, DetectsReverseStrand) {
  const MinimapLikeMapper mapper(subjects_, params_);
  const std::string segment =
      core::reverse_complement(genome_.substr(2 * 6000 + 1500, 1000));
  const ChainHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 2u);
  EXPECT_TRUE(hit.reverse);
}

TEST_F(MinimapLikeTest, ToleratesHiFiErrors) {
  const MinimapLikeMapper mapper(subjects_, params_);
  sim::HiFiParams error_model;
  error_model.error_rate = 0.001;
  const std::string segment = sim::apply_hifi_errors(
      genome_.substr(7 * 6000 + 1000, 1000), error_model, 5);
  const ChainHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 7u);
}

TEST_F(MinimapLikeTest, RandomSegmentDoesNotMap) {
  const MinimapLikeMapper mapper(subjects_, params_);
  util::Xoshiro256ss rng(141421);
  const ChainHit hit = mapper.map_segment(random_dna(rng, 1000));
  EXPECT_FALSE(hit.mapped());
}

TEST_F(MinimapLikeTest, EmptyOrTinySegmentDoesNotMap) {
  const MinimapLikeMapper mapper(subjects_, params_);
  EXPECT_FALSE(mapper.map_segment("").mapped());
  EXPECT_FALSE(mapper.map_segment("ACGTACGT").mapped());
}

TEST_F(MinimapLikeTest, MinChainAnchorsFilters) {
  MinimapParams strict = params_;
  strict.min_chain_anchors = 100'000;
  const MinimapLikeMapper mapper(subjects_, strict);
  const std::string segment = genome_.substr(2500, 1000);
  EXPECT_FALSE(mapper.map_segment(segment).mapped());
}

TEST_F(MinimapLikeTest, SegmentSpanningContigsPicksLargerHalf) {
  const MinimapLikeMapper mapper(subjects_, params_);
  const std::string segment = genome_.substr(6000 - 700, 1000);
  const ChainHit hit = mapper.map_segment(segment);
  ASSERT_TRUE(hit.mapped());
  EXPECT_EQ(hit.subject, 0u);  // 700 bp in contig 0 vs 300 bp in contig 1
}

TEST_F(MinimapLikeTest, MapReadsSharesOutputShape) {
  const MinimapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("r0", genome_.substr(1000, 8000));
  const auto mappings = mapper.map_reads(reads);
  ASSERT_EQ(mappings.size(), 2u);
  EXPECT_EQ(mappings[0].end, core::ReadEnd::kPrefix);
  EXPECT_EQ(mappings[1].end, core::ReadEnd::kSuffix);
  EXPECT_TRUE(mappings[0].result.mapped());
  EXPECT_TRUE(mappings[1].result.mapped());
}

TEST_F(MinimapLikeTest, ParallelMatchesSequential) {
  const MinimapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  util::Xoshiro256ss rng(1618);
  for (int i = 0; i < 10; ++i) {
    const std::size_t pos = rng.bounded(50'000);
    reads.add("read_" + std::to_string(i), genome_.substr(pos, 5000));
  }
  const auto sequential = mapper.map_reads(reads);
  util::ThreadPool pool(3);
  const auto parallel = mapper.map_reads_parallel(reads, pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].result.subject, parallel[i].result.subject);
  }
}

TEST_F(MinimapLikeTest, PafRecordsCarryChainCoordinates) {
  const MinimapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  reads.add("r0", genome_.substr(4 * 6000 + 500, 4000));
  const auto records = mapper.map_reads_paf(reads);
  ASSERT_EQ(records.size(), 2u);  // prefix + suffix, both mapped
  const io::PafRecord& prefix = records[0];
  EXPECT_EQ(prefix.query_name, "r0");
  EXPECT_EQ(prefix.query_length, 4000u);
  EXPECT_EQ(prefix.query_begin, 0u);
  EXPECT_EQ(prefix.query_end, 1000u);
  EXPECT_EQ(prefix.strand, '+');
  EXPECT_EQ(prefix.target_name, "contig_4");
  EXPECT_EQ(prefix.target_length, 6000u);
  EXPECT_NEAR(static_cast<double>(prefix.target_begin), 500.0, 120.0);
  EXPECT_LE(prefix.target_end, 6000u);
  EXPECT_GT(prefix.matches, 0u);
}

TEST_F(MinimapLikeTest, PafOmitsUnmappedSegments) {
  const MinimapLikeMapper mapper(subjects_, params_);
  io::SequenceSet reads;
  util::Xoshiro256ss rng(7);
  reads.add("junk", random_dna(rng, 2500));
  EXPECT_TRUE(mapper.map_reads_paf(reads).empty());
}

TEST(WinnowIndex, MaskedLookupDropsFrequentKmers) {
  io::SequenceSet repetitive;
  std::string unit;
  for (int i = 0; i < 100; ++i) unit += "ACGTGGCTAAGCTTGACCGT";
  repetitive.add("rep0", unit);
  repetitive.add("rep1", unit);
  const WinnowIndex index(repetitive, {16, 5});
  // Some minimizer must occur many times; with cap 1 it is masked.
  bool any_masked = false;
  for (const core::Minimizer& m : core::minimizer_scan(unit, {16, 5})) {
    if (!index.lookup(m.kmer).empty() &&
        index.lookup_masked(m.kmer, 1).empty()) {
      any_masked = true;
      break;
    }
  }
  EXPECT_TRUE(any_masked);
}

TEST(WinnowIndex, CountInWindowMatchesPositions) {
  io::SequenceSet subjects;
  util::Xoshiro256ss rng(9);
  std::string seq(5000, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  subjects.add("s", seq);
  const WinnowIndex index(subjects, {12, 8});
  const auto positions = index.subject_positions(0);
  ASSERT_FALSE(positions.empty());
  EXPECT_EQ(index.count_in_window(0, 0, 5000),
            static_cast<std::uint32_t>(positions.size()));
  EXPECT_EQ(index.count_in_window(0, 4999, 4999),
            positions.back() == 4999 ? 1u : 0u);
}

}  // namespace
}  // namespace jem::baseline
