// Smoke tests for the public API surface: the umbrella header must expose
// everything a downstream user needs, and the derived-parameter helpers
// must stay consistent.
#include "core/jem.hpp"

#include <gtest/gtest.h>

#include "baseline/mashmap_like.hpp"

namespace jem {
namespace {

TEST(PublicApi, UmbrellaHeaderCoversTheQuickstartFlow) {
  // Everything below comes in via core/jem.hpp alone.
  io::SequenceSet contigs;
  contigs.add("c0", std::string(3000, 'A') + std::string(3000, 'C'));

  core::MapParams params;
  params.w = 10;
  params.trials = 4;
  const core::JemMapper mapper(contigs, params);

  io::SequenceSet reads;
  reads.add("r0", std::string(2500, 'A'));
  const auto mappings = mapper.map_reads(reads);
  ASSERT_EQ(mappings.size(), 2u);
  const auto lines = mapper.to_mapping_lines(reads, mappings);
  EXPECT_EQ(lines.size(), 2u);

  const core::DistributedResult distributed =
      core::run_distributed(contigs, reads, params, 2);
  EXPECT_EQ(distributed.mappings.size(), 2u);
}

TEST(PublicApi, MashmapWindowDerivesFromSketchSize) {
  baseline::MashmapParams params;
  params.segment_length = 1000;
  params.sketch_size = 200;
  // w ~ 2l/s - 1 = 9.
  EXPECT_EQ(params.minimizer().w, 9);
  params.sketch_size = 100;
  EXPECT_EQ(params.minimizer().w, 19);
  params.sketch_size = 10'000;  // denser than one-per-kmer: clamps to 1
  EXPECT_EQ(params.minimizer().w, 1);
  EXPECT_EQ(params.minimizer().k, params.k);
}

TEST(PublicApi, DefaultParamsMatchThePaper) {
  const core::MapParams params;
  EXPECT_EQ(params.k, 16);
  EXPECT_EQ(params.w, 100);
  EXPECT_EQ(params.trials, 30);
  EXPECT_EQ(params.segment_length, 1000u);
  EXPECT_EQ(params.ordering, core::MinimizerOrdering::kLexicographic);
}

}  // namespace
}  // namespace jem
