// End-to-end integration tests: simulate a dataset, run JEM-mapper and the
// Mashmap-like baseline through the full pipeline, and check the headline
// quality claims of the paper hold at test scale (both tools well above 90 %
// precision/recall on a simulated bacterial-like genome; JEM beats classic
// MinHash at equal trial budget).
#include <gtest/gtest.h>

#include <memory>

#include "align/identity.hpp"
#include "baseline/mashmap_like.hpp"
#include "core/jem.hpp"
#include "eval/metrics.hpp"
#include "eval/truth.hpp"
#include "sim/presets.hpp"

namespace jem {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::GenomeParams genome_params;
    genome_params.length = 400'000;
    genome_params.repeat_fraction = 0.05;
    genome_params.seed = 2023;
    genome_ = new std::string(sim::simulate_genome(genome_params));

    sim::ContigSimParams contig_params;
    contig_params.mean_length = 6000;
    contig_params.sd_length = 5000;
    contig_params.coverage_fraction = 0.95;
    contig_params.seed = 2024;
    contigs_ = new sim::SimulatedContigs(
        sim::simulate_contigs(*genome_, contig_params));

    sim::HiFiParams read_params;
    read_params.coverage = 3.0;
    read_params.seed = 2025;
    reads_ = new sim::SimulatedReads(
        sim::simulate_hifi_reads(*genome_, read_params));

    params_.k = 16;
    params_.w = 40;
    params_.trials = 30;
    params_.segment_length = 1000;
    params_.seed = 2026;

    truth_ = new eval::TruthSet(contigs_->truth, reads_->truth,
                                params_.segment_length,
                                static_cast<std::uint32_t>(params_.k));
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete reads_;
    delete contigs_;
    delete genome_;
    truth_ = nullptr;
    reads_ = nullptr;
    contigs_ = nullptr;
    genome_ = nullptr;
  }

  static std::string* genome_;
  static sim::SimulatedContigs* contigs_;
  static sim::SimulatedReads* reads_;
  static core::MapParams params_;
  static eval::TruthSet* truth_;
};

std::string* PipelineTest::genome_ = nullptr;
sim::SimulatedContigs* PipelineTest::contigs_ = nullptr;
sim::SimulatedReads* PipelineTest::reads_ = nullptr;
core::MapParams PipelineTest::params_;
eval::TruthSet* PipelineTest::truth_ = nullptr;

TEST_F(PipelineTest, JemMapperAchievesHighPrecisionAndRecall) {
  const core::JemMapper mapper(contigs_->contigs, params_);
  const auto mappings = mapper.map_reads(reads_->reads);
  const eval::QualityCounts counts = eval::evaluate(mappings, *truth_);
  EXPECT_GT(counts.precision(), 0.93) << "tp=" << counts.tp
                                      << " fp=" << counts.fp;
  EXPECT_GT(counts.recall(), 0.90) << "fn=" << counts.fn;
}

TEST_F(PipelineTest, MashmapLikeAchievesHighQualityToo) {
  baseline::MashmapParams mm_params;
  mm_params.k = params_.k;
  mm_params.segment_length = params_.segment_length;
  const baseline::MashmapLikeMapper mapper(contigs_->contigs, mm_params);
  const auto mappings = mapper.map_reads(reads_->reads);
  const eval::QualityCounts counts = eval::evaluate(mappings, *truth_);
  EXPECT_GT(counts.precision(), 0.93);
  EXPECT_GT(counts.recall(), 0.90);
}

TEST_F(PipelineTest, JemBeatsClassicMinhashAtEqualTrials) {
  const core::JemMapper jem(contigs_->contigs, params_);
  const core::JemMapper classic(contigs_->contigs, params_,
                                core::SketchScheme::kClassicMinhash);
  const auto jem_counts =
      eval::evaluate(jem.map_reads(reads_->reads), *truth_);
  const auto classic_counts =
      eval::evaluate(classic.map_reads(reads_->reads), *truth_);
  // Fig 6 of the paper: at T=30, JEM is far ahead of classical MinHash.
  EXPECT_GT(jem_counts.recall(), classic_counts.recall() + 0.05);
}

TEST_F(PipelineTest, DistributedRunMatchesSequentialQuality) {
  const core::JemMapper mapper(contigs_->contigs, params_);
  const auto sequential = mapper.map_reads(reads_->reads);
  const core::DistributedResult distributed =
      core::run_distributed(contigs_->contigs, reads_->reads, params_, 4);
  ASSERT_EQ(sequential.size(), distributed.mappings.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].result.subject,
              distributed.mappings[i].result.subject);
  }
}

TEST_F(PipelineTest, MappedPairsHaveHighPercentIdentity) {
  // The Fig 9 property: BLAST-style identity of mapped <segment, contig>
  // pairs concentrates in [0.95, 1.0].
  const core::JemMapper mapper(contigs_->contigs, params_);
  io::SequenceSet sample_reads;
  for (io::SeqId id = 0; id < 15 && id < reads_->reads.size(); ++id) {
    sample_reads.add(reads_->reads.name(id), reads_->reads.bases(id));
  }
  const auto mappings = mapper.map_reads(sample_reads);

  int verified = 0;
  int high_identity = 0;
  for (const core::SegmentMapping& mapping : mappings) {
    if (!mapping.result.mapped()) continue;
    const auto segments = core::extract_end_segments(
        mapping.read, sample_reads.bases(mapping.read),
        params_.segment_length);
    for (const core::EndSegment& segment : segments) {
      if (segment.end != mapping.end) continue;
      align::IdentityParams id_params;
      id_params.minimizer = {params_.k, params_.w};
      const auto identity = align::segment_identity(
          segment.bases, contigs_->contigs.bases(mapping.result.subject),
          id_params);
      if (!identity.has_value()) continue;
      ++verified;
      if (identity->identity >= 0.95) ++high_identity;
    }
  }
  // Fig 9 of the paper: the identity distribution concentrates in
  // [95, 100] with a small tail below (segments straddling contig
  // boundaries or planted repeats align partially).
  ASSERT_GT(verified, 10);
  EXPECT_GE(static_cast<double>(high_identity),
            0.7 * static_cast<double>(verified));
}

TEST_F(PipelineTest, MappingLinesRoundTripThroughWriter) {
  const core::JemMapper mapper(contigs_->contigs, params_);
  io::SequenceSet sample_reads;
  for (io::SeqId id = 0; id < 5; ++id) {
    sample_reads.add(reads_->reads.name(id), reads_->reads.bases(id));
  }
  const auto mappings = mapper.map_reads(sample_reads);
  const auto lines = mapper.to_mapping_lines(sample_reads, mappings);

  std::ostringstream out;
  io::write_mappings(out, lines);
  std::istringstream in(out.str());
  EXPECT_EQ(io::read_mappings(in), lines);
}

}  // namespace
}  // namespace jem
