#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "util/log.hpp"

namespace jem::cli {
namespace {

/// Runs a subcommand entry point with a shell-style argument list, capturing
/// log output so test runs stay quiet.
int run(int (*entry)(std::span<const char* const>, std::string_view),
        const std::vector<std::string>& args, std::string_view program) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  (void)util::Log::begin_capture();
  const int exit_code = entry({argv.data(), argv.size()}, program);
  (void)util::Log::end_capture();
  return exit_code;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CliDispatch, ListsCommandsAndRejectsUnknown) {
  EXPECT_FALSE(commands().empty());
  const std::string usage = main_usage();
  for (const Command& command : commands()) {
    EXPECT_NE(usage.find(command.name), std::string::npos);
  }
  const char* unknown[] = {"jem", "frobnicate"};
  EXPECT_EQ(dispatch(2, unknown), kExitUsage);
  const char* nothing[] = {"jem"};
  EXPECT_EQ(dispatch(1, nothing), kExitUsage);
  const char* help[] = {"jem", "--help"};
  EXPECT_EQ(dispatch(2, help), kExitOk);
}

TEST(CliExitCodes, UsageErrorsAreUniformlyTwo) {
  // Unknown option.
  EXPECT_EQ(run(run_map, {"--no-such-flag"}, "jem map"), kExitUsage);
  // Missing required inputs.
  EXPECT_EQ(run(run_map, {}, "jem map"), kExitUsage);
  EXPECT_EQ(run(run_build_index, {"--demo"}, "jem build-index"), kExitUsage);
  // Unknown enum values — the unified --ordering/--scheme contract: every
  // subcommand reports the structured diagnostic and exits 2, not 1.
  EXPECT_EQ(run(run_map, {"--demo", "--ordering", "zigzag"}, "jem map"),
            kExitUsage);
  EXPECT_EQ(run(run_map, {"--demo", "--scheme", "sha256"}, "jem map"),
            kExitUsage);
  EXPECT_EQ(run(run_build_index,
                {"--demo", "--output", "/tmp/x.idx", "--ordering", "zigzag"},
                "jem build-index"),
            kExitUsage);
  EXPECT_EQ(run(run_serve, {"--demo", "--scheme", "sha256"}, "jem serve"),
            kExitUsage);
  // Out-of-range numeric parameters go through the same validated builder.
  EXPECT_EQ(run(run_map, {"--demo", "--k", "99"}, "jem map"), kExitUsage);
  EXPECT_EQ(run(run_serve, {"--demo", "--port", "70000"}, "jem serve"),
            kExitUsage);
  EXPECT_EQ(run(run_probe, {"--port", "0"}, "jem probe"), kExitUsage);
}

TEST(CliMap, DemoRunWritesMappingsAndShimMatchesSubcommand) {
  const std::string dir = ::testing::TempDir();
  const std::string via_shim = dir + "/cli_shim.tsv";
  const std::string via_subcommand = dir + "/cli_subcommand.tsv";

  // The legacy jem_map binary and `jem map` are the same run_map body; a
  // demo run through each program name must produce identical mappings.
  ASSERT_EQ(run(run_map, {"--demo", "--output", via_shim}, "jem_map"),
            kExitOk);
  ASSERT_EQ(run(run_map, {"--demo", "--output", via_subcommand}, "jem map"),
            kExitOk);
  const std::string shim_bytes = read_file(via_shim);
  ASSERT_FALSE(shim_bytes.empty());
  EXPECT_EQ(shim_bytes, read_file(via_subcommand));
}

TEST(CliBuildIndex, ArtifactLoadsIntoTheService) {
  const std::string dir = ::testing::TempDir();
  const std::string index_path = dir + "/cli_demo.jemidx";
  ASSERT_EQ(run(run_build_index, {"--demo", "--output", index_path},
                "jem build-index"),
            kExitOk);

  // The artifact round-trips: from_index accepts it without rebuilding.
  io::SequenceSet subjects;
  io::SequenceSet reads;
  make_demo_dataset(20230517, subjects, reads);
  const core::ServiceConfig config = core::ServiceConfig::make().build();
  const core::MappingService service = core::MappingService::from_index(
      index_path, std::move(subjects), config);
  EXPECT_TRUE(service.load_report().loaded_from_artifact);
  EXPECT_TRUE(service.load_report().rejection.empty());
}

TEST(CliDemoDataset, IsDeterministicPerSeed) {
  io::SequenceSet subjects_a;
  io::SequenceSet reads_a;
  make_demo_dataset(99, subjects_a, reads_a);
  io::SequenceSet subjects_b;
  io::SequenceSet reads_b;
  make_demo_dataset(99, subjects_b, reads_b);
  ASSERT_EQ(subjects_a.size(), subjects_b.size());
  ASSERT_EQ(reads_a.size(), reads_b.size());
  ASSERT_GT(subjects_a.size(), 0u);
  for (io::SeqId id = 0; id < subjects_a.size(); ++id) {
    EXPECT_EQ(subjects_a.bases(id), subjects_b.bases(id));
  }
}

}  // namespace
}  // namespace jem::cli
