// Windowed SLO metrics: decay semantics (a latency spike leaves the 10-frame
// window once the clock moves past it, while the cumulative view keeps it
// forever), quantile estimation, ring lapping, and thread safety of the
// record path. Time is scripted through the now_ns overloads — no sleeps.
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace {

using jem::obs::WindowSnapshot;
using jem::obs::WindowedCounter;
using jem::obs::WindowedHistogram;
using std::chrono::nanoseconds;

constexpr std::uint64_t kFrame = 1000;  // 1 µs frames keep the math readable

TEST(WindowSnapshot, QuantileOfEmptyIsZero) {
  WindowSnapshot snap;
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.quantile(0.99), 0.0);
}

TEST(WindowSnapshot, MergeAddsCountsSumsAndBuckets) {
  WindowedHistogram h(nanoseconds(kFrame), 8);
  h.record(100, 0);
  h.record(200, 0);
  WindowSnapshot a = h.snapshot(nanoseconds(kFrame), 0);
  WindowSnapshot b = h.snapshot(nanoseconds(kFrame), 0);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 600u);
}

TEST(WindowedHistogram, QuantilesLandInTheRecordedBucketRange) {
  WindowedHistogram h(nanoseconds(kFrame), 8);
  // 90 fast records (~1000) and 10 slow ones (~1000000).
  for (int i = 0; i < 90; ++i) h.record(1000, 0);
  for (int i = 0; i < 10; ++i) h.record(1000000, 0);
  WindowSnapshot snap = h.snapshot(nanoseconds(kFrame), 0);
  EXPECT_EQ(snap.count, 100u);
  const double p50 = snap.quantile(0.50);
  const double p99 = snap.quantile(0.99);
  // Log2 buckets: p50 must sit in the fast bucket's range, p99 in the slow
  // one's — the property the SLO view depends on.
  EXPECT_GE(p50, 512.0);
  EXPECT_LT(p50, 2048.0);
  EXPECT_GE(p99, 524288.0);
  EXPECT_LT(p99, 2097152.0);
  EXPECT_LE(p50, p99);
}

TEST(WindowedHistogram, SpikeDecaysOutOfTheWindowButNotCumulative) {
  // 16-frame ring; the SLO window under test spans 4 frames.
  WindowedHistogram h(nanoseconds(kFrame), 16);
  const nanoseconds window(4 * kFrame);

  // Frame 0: a latency spike.
  for (int i = 0; i < 50; ++i) h.record(1u << 20, 0);
  WindowSnapshot during = h.snapshot(window, 0);
  EXPECT_EQ(during.count, 50u);
  EXPECT_GT(during.quantile(0.99), 500000.0);

  // Frames 1..2: healthy traffic.
  for (int i = 0; i < 50; ++i) h.record(1000, 1 * kFrame + 1);
  for (int i = 0; i < 50; ++i) h.record(1000, 2 * kFrame + 1);

  // At frame 3 the spike is still inside the 4-frame window...
  WindowSnapshot recent = h.snapshot(window, 3 * kFrame + 1);
  EXPECT_EQ(recent.count, 150u);
  EXPECT_GT(recent.quantile(0.99), 500000.0);

  // ...and at frame 8 it has aged out: the window holds only healthy
  // frames, so p99 recovers.
  WindowSnapshot later = h.snapshot(window, 8 * kFrame + 1);
  EXPECT_EQ(later.count, 0u);
  for (int i = 0; i < 50; ++i) h.record(1000, 8 * kFrame + 2);
  later = h.snapshot(window, 8 * kFrame + 2);
  EXPECT_EQ(later.count, 50u);
  EXPECT_LT(later.quantile(0.99), 10000.0);

  // The cumulative view never forgets the spike.
  WindowSnapshot all = h.cumulative();
  EXPECT_EQ(all.count, 200u);
  EXPECT_GT(all.quantile(0.99), 500000.0);
}

TEST(WindowedHistogram, CumulativeSurvivesRingLaps) {
  WindowedHistogram h(nanoseconds(kFrame), 4);
  // Lap the 4-frame ring several times over.
  for (std::uint64_t frame = 0; frame < 20; ++frame) {
    h.record(100, frame * kFrame + 1);
  }
  EXPECT_EQ(h.cumulative().count, 20u);
  EXPECT_EQ(h.cumulative().sum, 2000u);
  // Only the ring-resident frames answer a windowed query.
  WindowSnapshot windowed = h.snapshot(nanoseconds(4 * kFrame), 19 * kFrame + 1);
  EXPECT_LE(windowed.count, 4u);
}

TEST(WindowedHistogram, WindowWiderThanRingIsClamped) {
  WindowedHistogram h(nanoseconds(kFrame), 4);
  h.record(100, 0);
  WindowSnapshot snap = h.snapshot(nanoseconds(1000 * kFrame), 0);
  EXPECT_EQ(snap.count, 1u);
}

TEST(WindowedHistogram, GapFramesZeroOut) {
  WindowedHistogram h(nanoseconds(kFrame), 16);
  h.record(100, 0);
  // A long quiet gap: the records from frame 0 must not bleed into a
  // window queried much later.
  WindowSnapshot snap = h.snapshot(nanoseconds(4 * kFrame), 100 * kFrame);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(h.cumulative().count, 1u);
}

TEST(WindowedHistogram, DefaultClockPathRecordsIntoTheActiveFrame) {
  WindowedHistogram h;  // 1 s frames: everything lands in the open frame
  h.record(1234);
  h.record(5678);
  WindowSnapshot snap = h.snapshot(std::chrono::seconds(10));
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1234u + 5678u);
}

TEST(WindowedHistogram, ConcurrentRecordsAreAllCounted) {
  WindowedHistogram h(nanoseconds(kFrame), 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Mix scripted and live-clock records across threads while other
        // threads force frame rotations: no count may be lost.
        h.record(static_cast<std::uint64_t>(t) * 100 + 1,
                 static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(h.cumulative().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(WindowedCounter, WindowedTotalsDecayAndCumulativeDoesNot) {
  WindowedCounter c(nanoseconds(kFrame), 8);
  c.add(5, 0);
  EXPECT_EQ(c.total(nanoseconds(2 * kFrame), 0), 5u);
  c.add(3, 1 * kFrame + 1);
  EXPECT_EQ(c.total(nanoseconds(2 * kFrame), 1 * kFrame + 1), 8u);
  // Frame 0 out of a 2-frame window at frame 2.
  EXPECT_EQ(c.total(nanoseconds(2 * kFrame), 2 * kFrame + 1), 3u);
  // Everything out by frame 10.
  EXPECT_EQ(c.total(nanoseconds(2 * kFrame), 10 * kFrame), 0u);
  EXPECT_EQ(c.cumulative(), 8u);
}

TEST(WindowedCounter, ConcurrentAddsAreAllCounted) {
  WindowedCounter c(nanoseconds(kFrame), 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(c.cumulative(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
