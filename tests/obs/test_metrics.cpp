// Metrics registry tests (docs/observability.md): single-threaded
// semantics, log2 histogram bucket boundaries, concurrent updates with a
// racing snapshot (run under TSan by scripts/check.sh), and the golden
// byte-stable JSON contract that `to_json(false)` promises.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace jem::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetIsLastWriterWinsAndAddAdjusts) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(7);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
  gauge.add(10);
  EXPECT_EQ(gauge.value(), 7);
}

TEST(Histogram, BucketOfFollowsBitWidth) {
  // Bucket i holds values with bit_width == i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 62) - 1), 62u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(Histogram, BucketUpperIsInclusiveBoundOfEachBucket) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
  // Every bucket's upper bound maps back into that bucket, and the next
  // value starts the next bucket.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i)), i) << i;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i) + 1), i + 1)
        << i;
  }
}

TEST(Histogram, RecordsCountSumAndBuckets) {
  Histogram histogram;
  histogram.record(0);
  histogram.record(1);
  histogram.record(2);
  histogram.record(3);
  histogram.record(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 1030u);
  const auto buckets = histogram.buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[11], 1u);  // bit_width(1024) == 11
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  (void)registry.counter("events");
  EXPECT_THROW((void)registry.gauge("events"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("events"), std::logic_error);
}

TEST(Registry, UnitMismatchThrows) {
  Registry registry;
  (void)registry.counter("bytes", Unit::kBytes);
  EXPECT_THROW((void)registry.counter("bytes", Unit::kCount),
               std::logic_error);
}

TEST(Registry, HandlesAreStableAndSharedByName) {
  Registry registry;
  Counter& a = registry.counter("events");
  Counter& b = registry.counter("events");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(registry.snapshot().find("events")->value, 7u);
}

TEST(Registry, SnapshotFindIsNullOnMissingName) {
  Registry registry;
  (void)registry.counter("present");
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_NE(snapshot.find("present"), nullptr);
  EXPECT_EQ(snapshot.find("absent"), nullptr);
}

// Concurrent writers against a racing snapshot reader. The final total must
// be exact (no lost updates) and the run must be TSan-clean — scripts/
// check.sh runs this suite under -fsanitize=thread.
TEST(Registry, ConcurrentIncrementsAndSnapshotsAreExact) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  Histogram& histogram = registry.histogram("sizes");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
        histogram.record(i & 1023);
      }
    });
  }
  // Snapshot while writers run: totals may be partial but never torn, and
  // the reads must not race the relaxed writes.
  for (int i = 0; i < 100; ++i) {
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_LE(snapshot.find("hits")->value, kThreads * kPerThread);
  }
  for (std::thread& worker : workers) worker.join();

  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find("hits")->value, kThreads * kPerThread);
  EXPECT_EQ(snapshot.find("sizes")->count, kThreads * kPerThread);
}

// The golden contract: with include_timing = false the export of a fixed
// set of updates is one exact byte string — kNanos metrics are dropped,
// entries are name-sorted, integers print as digit strings.
TEST(MetricsSnapshot, GoldenJsonIsByteStable) {
  const auto build = [] {
    Registry registry;
    registry.counter("a.events").add(3);
    registry.counter("b.bytes", Unit::kBytes).add(4096);
    registry.counter("c.wall_ns", Unit::kNanos).add(123456789);
    registry.gauge("d.depth").set(-2);
    Histogram& histogram = registry.histogram("e.sizes");
    histogram.record(0);
    histogram.record(5);
    histogram.record(5);
    return registry.snapshot().to_json(/*include_timing=*/false);
  };
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"a.events\",\"kind\":\"counter\",\"unit\":\"count\","
      "\"value\":3},"
      "{\"name\":\"b.bytes\",\"kind\":\"counter\",\"unit\":\"bytes\","
      "\"value\":4096},"
      "{\"name\":\"d.depth\",\"kind\":\"gauge\",\"unit\":\"count\","
      "\"value\":-2},"
      "{\"name\":\"e.sizes\",\"kind\":\"histogram\",\"unit\":\"count\","
      "\"count\":3,\"sum\":10,\"buckets\":[[0,1],[3,2]]}"
      "]}";
  EXPECT_EQ(build(), expected);
  EXPECT_EQ(build(), build());  // byte-stable across repeat runs
}

TEST(MetricsSnapshot, IncludeTimingKeepsNanosMetrics) {
  Registry registry;
  registry.counter("wall_ns", Unit::kNanos).add(10);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_NE(snapshot.to_json(true).find("wall_ns"), std::string::npos);
  EXPECT_EQ(snapshot.to_json(false).find("wall_ns"), std::string::npos);
}

}  // namespace
}  // namespace jem::obs
