// Tests for the minimal JSON layer the exporters and validators share:
// exact RFC 8259 acceptance, ParseError offsets, member lookup, and the
// escaping helper.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace jem::obs::json {
namespace {

TEST(JsonParse, ScalarsAndNesting) {
  const Value doc = parse(R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->number, 1.0);
  const Value* b = doc.find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[1].kind, Value::Kind::kNull);
  EXPECT_EQ(b->array[2].str, "x");
  const Value* c = doc.find("c");
  ASSERT_TRUE(c != nullptr && c->is_object());
  EXPECT_DOUBLE_EQ(c->find("d")->number, -2.5);
}

TEST(JsonParse, StringEscapes) {
  const Value doc = parse(R"(["a\"b", "tab\there", "A"])");
  ASSERT_TRUE(doc.is_array());
  EXPECT_EQ(doc.array[0].str, "a\"b");
  EXPECT_EQ(doc.array[1].str, "tab\there");
  EXPECT_EQ(doc.array[2].str, "A");
}

TEST(JsonParse, WhitespaceAroundDocumentIsAllowed) {
  const Value doc = parse("  \n\t {\"k\": 1}  \n");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("k")->number, 1.0);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse(""), ParseError);
  EXPECT_THROW((void)parse("{"), ParseError);
  EXPECT_THROW((void)parse("{\"a\":}"), ParseError);
  EXPECT_THROW((void)parse("[1,]"), ParseError);
  EXPECT_THROW((void)parse("{\"a\":1} extra"), ParseError);
  EXPECT_THROW((void)parse("'single'"), ParseError);
  EXPECT_THROW((void)parse("nul"), ParseError);
}

TEST(JsonParse, ParseErrorCarriesByteOffset) {
  try {
    (void)parse("[1, x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.offset(), 4u);
  }
}

TEST(JsonParse, FindReturnsFirstMatchOrNull) {
  const Value doc = parse(R"({"k":1,"k":2})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("k")->number, 1.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape(std::string("a\nb\tc")), "a\\nb\\tc");
  // An escaped string embedded in quotes must parse back to the original.
  const std::string tricky = "quote\" slash\\ newline\n tab\t bell\x07";
  const Value round = parse("\"" + escape(tricky) + "\"");
  EXPECT_EQ(round.str, tricky);
}

}  // namespace
}  // namespace jem::obs::json
