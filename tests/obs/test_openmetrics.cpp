// OpenMetrics text exposition and W3C trace-context helpers.
#include "obs/openmetrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"

namespace {

using jem::obs::Registry;

bool contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(OpenMetricsFamily, PrefixesAndSanitizes) {
  EXPECT_EQ(jem::obs::openmetrics_family("serve.http.requests"),
            "jem_serve_http_requests");
  EXPECT_EQ(jem::obs::openmetrics_family("weird-name!x"), "jem_weird_name_x");
}

TEST(OpenMetricsSample, IntegersRenderWithoutDecimals) {
  EXPECT_EQ(jem::obs::openmetrics_sample("jem_x", "", 42.0), "jem_x 42\n");
  EXPECT_EQ(jem::obs::openmetrics_sample("jem_x", "le=\"+Inf\"", 7.0),
            "jem_x{le=\"+Inf\"} 7\n");
}

TEST(OpenMetrics, RendersCountersGaugesAndHistograms) {
  Registry registry;
  registry.counter("serve.http.requests").add(3);
  registry.gauge("serve.queue.depth").set(5);
  auto& histogram = registry.histogram("serve.lat");
  histogram.record(10);
  histogram.record(2000);
  histogram.record(2000);

  const std::string text = jem::obs::to_openmetrics(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE jem_serve_http_requests counter\n"));
  EXPECT_TRUE(contains(text, "jem_serve_http_requests_total 3\n"));
  EXPECT_TRUE(contains(text, "# TYPE jem_serve_queue_depth gauge\n"));
  EXPECT_TRUE(contains(text, "jem_serve_queue_depth 5\n"));
  EXPECT_TRUE(contains(text, "# TYPE jem_serve_lat histogram\n"));
  EXPECT_TRUE(contains(text, "jem_serve_lat_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(contains(text, "jem_serve_lat_sum 4010\n"));
  EXPECT_TRUE(contains(text, "jem_serve_lat_count 3\n"));
  // Mandatory terminator, exactly at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, BucketSeriesIsCumulative) {
  Registry registry;
  auto& histogram = registry.histogram("lat");
  histogram.record(1);     // bucket le="1"
  histogram.record(1000);  // a higher bucket
  const std::string text = jem::obs::to_openmetrics(registry.snapshot());
  // The later bucket's cumulative count includes the earlier record.
  const std::size_t low = text.find("jem_lat_bucket{le=\"1\"} 1\n");
  const std::size_t inf = text.find("jem_lat_bucket{le=\"+Inf\"} 2\n");
  EXPECT_NE(low, std::string::npos) << text;
  EXPECT_NE(inf, std::string::npos) << text;
  EXPECT_LT(low, inf);
}

TEST(OpenMetrics, ExtraTextLandsBeforeTheTerminator) {
  Registry registry;
  registry.counter("a").add();
  const std::string text = jem::obs::to_openmetrics(
      registry.snapshot(), "jem_custom{window=\"10s\"} 1\n");
  const std::size_t extra = text.find("jem_custom{window=\"10s\"} 1\n");
  const std::size_t eof = text.find("# EOF\n");
  ASSERT_NE(extra, std::string::npos);
  ASSERT_NE(eof, std::string::npos);
  EXPECT_LT(extra, eof);
}

// --- trace context ----------------------------------------------------------

TEST(TraceContext, GenerateMintsWellFormedIds) {
  const jem::obs::TraceContext a = jem::obs::generate_trace_context();
  const jem::obs::TraceContext b = jem::obs::generate_trace_context();
  EXPECT_EQ(a.trace_id.size(), 32u);
  EXPECT_EQ(a.span_id.size(), 16u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  for (char c : a.trace_id + a.span_id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(TraceContext, ChildKeepsTraceIdAndMintsSpanId) {
  const jem::obs::TraceContext parent = jem::obs::generate_trace_context();
  const jem::obs::TraceContext child = jem::obs::child_of(parent);
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_NE(child.span_id, parent.span_id);
  EXPECT_EQ(child.span_id.size(), 16u);
}

TEST(TraceContext, TraceparentRoundTrips) {
  const jem::obs::TraceContext ctx = jem::obs::generate_trace_context();
  const std::string header = jem::obs::to_traceparent(ctx);
  EXPECT_EQ(header.size(), 55u);
  EXPECT_EQ(header.substr(0, 3), "00-");
  const auto parsed = jem::obs::parse_traceparent(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
}

TEST(TraceContext, ParseRejectsMalformedHeaders) {
  using jem::obs::parse_traceparent;
  // Valid shape to mutate from.
  const std::string good =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  ASSERT_TRUE(parse_traceparent(good).has_value());
  EXPECT_FALSE(parse_traceparent("").has_value());
  EXPECT_FALSE(parse_traceparent("garbage").has_value());
  EXPECT_FALSE(parse_traceparent(good.substr(0, 54)).has_value());  // short
  EXPECT_FALSE(parse_traceparent(good + "0").has_value());          // long
  // Unsupported version ff.
  std::string bad = good;
  bad[0] = 'f';
  bad[1] = 'f';
  EXPECT_FALSE(parse_traceparent(bad).has_value());
  // Uppercase hex is invalid per spec.
  bad = good;
  bad[3] = 'A';
  EXPECT_FALSE(parse_traceparent(bad).has_value());
  // All-zero trace id.
  EXPECT_FALSE(
      parse_traceparent(
          "00-00000000000000000000000000000000-b7ad6b7169203331-01")
          .has_value());
  // All-zero span id.
  EXPECT_FALSE(
      parse_traceparent(
          "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01")
          .has_value());
  // Broken separator.
  bad = good;
  bad[2] = '_';
  EXPECT_FALSE(parse_traceparent(bad).has_value());
}

}  // namespace
