// Satellite of docs/observability.md: a 4-rank run_staged chaos run
// (injected delays plus one aborted rank) must export a Chrome trace that
// is well-formed JSON, keeps B/E pairs matched on every track, and shows
// the re-billed "recover:<step>" spans on the recovery track.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/dna.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

using std::chrono::milliseconds;

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(StagedChaosTrace, FourRankChaosRunExportsWellFormedChromeTrace) {
  constexpr int kRanks = 4;
  util::Xoshiro256ss rng(9001);
  const std::string genome = random_dna(rng, 24'000);
  io::SequenceSet subjects;
  for (int i = 0; i < 6; ++i) {
    subjects.add("contig_" + std::to_string(i),
                 genome.substr(static_cast<std::size_t>(i) * 4000, 4000));
  }
  io::SequenceSet reads;
  util::Xoshiro256ss read_rng(13);
  for (int i = 0; i < 12; ++i) {
    const std::size_t pos = read_rng.bounded(20'000);
    reads.add("read_" + std::to_string(i),
              genome.substr(pos, 1200 + read_rng.bounded(2000)));
  }
  const MapParams params = MapParams::make()
                               .k(16)
                               .window(20)
                               .trials(8)
                               .segment_length(800)
                               .seed(7)
                               .build();

  RobustnessOptions robust;
  robust.fault_plan
      .delay_at(util::FaultPlan::kAnyRank, "S2:sketch-subjects",
                util::FaultPlan::kAnyInvocation, milliseconds(1))
      .abort_at(1, "S4:map-queries", 0);

  obs::Registry registry;
  obs::Tracer tracer(1 << 14, "staged-chaos");
  obs::ObsHooks obs;
  obs.metrics = &registry;
  obs.tracer = &tracer;

  const DistributedResult result =
      run_staged(subjects, reads, params, kRanks, mpisim::NetworkModel{},
                 SketchScheme::kJem, robust, obs);
  ASSERT_EQ(result.report.failed_ranks, std::vector<int>{1});
  ASSERT_GT(result.report.recover_s, 0.0);

  // The modeled timeline parses as one well-formed Chrome trace document.
  const std::string text = tracer.snapshot().to_chrome_json();
  const obs::json::Value doc = obs::json::parse(text);
  ASSERT_TRUE(doc.is_object());
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_FALSE(events->array.empty());

  // Every track's B/E pairs are matched: no E before its B, none left open.
  std::map<double, int> depth_by_tid;
  std::map<double, std::string> open_name_by_tid;
  bool saw_recover_span = false;
  std::vector<std::string> track_names;
  for (const obs::json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const obs::json::Value* ph = event.find("ph");
    ASSERT_TRUE(ph != nullptr && ph->is_string());
    const obs::json::Value* tid = event.find("tid");
    if (ph->str == "B") {
      ASSERT_TRUE(tid != nullptr);
      ++depth_by_tid[tid->number];
      const std::string& name = event.find("name")->str;
      if (name.rfind("recover:", 0) == 0) saw_recover_span = true;
    } else if (ph->str == "E") {
      ASSERT_TRUE(tid != nullptr);
      --depth_by_tid[tid->number];
      ASSERT_GE(depth_by_tid[tid->number], 0)
          << "E without matching B on tid " << tid->number;
    } else if (ph->str == "M" && event.find("name")->str == "thread_name") {
      track_names.push_back(event.find("args")->find("name")->str);
    }
  }
  for (const auto& [tid, depth] : depth_by_tid) {
    EXPECT_EQ(depth, 0) << "unbalanced spans on tid " << tid;
  }
  EXPECT_TRUE(saw_recover_span) << "aborted rank left no recover:<step> span";

  // Tracks are labeled "rank 0".."rank 3" plus the recovery track.
  EXPECT_NE(std::find(track_names.begin(), track_names.end(), "rank 0"),
            track_names.end());
  EXPECT_NE(std::find(track_names.begin(), track_names.end(), "rank 3"),
            track_names.end());
  EXPECT_NE(std::find(track_names.begin(), track_names.end(), "recovery"),
            track_names.end());

  // The metrics side of the same run: recovery steps and injected delays
  // are visible in the staged.* counters.
  const obs::MetricsSnapshot metrics = registry.snapshot();
  ASSERT_NE(metrics.find("staged.recover_steps"), nullptr);
  EXPECT_GE(metrics.find("staged.recover_steps")->value, 1u);
  ASSERT_NE(metrics.find("staged.injected_delay_ns"), nullptr);
  EXPECT_GT(metrics.find("staged.injected_delay_ns")->value, 0u);
  ASSERT_NE(metrics.find("staged.faults_injected"), nullptr);
  EXPECT_GT(metrics.find("staged.faults_injected")->value, 0u);
}

}  // namespace
}  // namespace jem::core
