// Tracer tests: span nesting and ordering, drop-newest overflow, modeled
// timelines via record(), and the Chrome trace_event export contract —
// the output must parse with obs::json and keep B/E pairs matched per
// track (the invariant Perfetto needs to build flame charts).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace jem::obs {
namespace {

// Per-tid B/E balance of a parsed Chrome trace; every prefix must be
// non-negative (an E never precedes its B) and the final balance zero.
void expect_matched_pairs(const json::Value& doc) {
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  std::map<double, int> depth_by_tid;
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const json::Value* ph = event.find("ph");
    ASSERT_TRUE(ph != nullptr && ph->is_string());
    const double tid =
        event.find("tid") != nullptr ? event.find("tid")->number : -1;
    if (ph->str == "B") {
      ++depth_by_tid[tid];
    } else if (ph->str == "E") {
      --depth_by_tid[tid];
      EXPECT_GE(depth_by_tid[tid], 0) << "E without matching B on tid " << tid;
    }
  }
  for (const auto& [tid, depth] : depth_by_tid) {
    EXPECT_EQ(depth, 0) << "unbalanced spans on tid " << tid;
  }
}

TEST(Tracer, RecordsNestedSpansInOrder) {
  Tracer tracer(64, "test");
  {
    Span outer = tracer.span("outer");
    { Span inner = tracer.span("inner"); }
  }
  const TraceSnapshot snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.threads.size(), 1u);
  const auto& events = snapshot.threads[0].events;
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at end time: inner finishes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(Tracer, MovedFromSpanRecordsNothing) {
  Tracer tracer(64, "test");
  {
    Span span = tracer.span("once");
    Span moved = std::move(span);
  }
  EXPECT_EQ(tracer.snapshot().total_events(), 1u);
}

TEST(Tracer, DropsNewestBeyondCapacityAndCountsDrops) {
  Tracer tracer(4, "test");
  for (int i = 0; i < 10; ++i) {
    Span span = tracer.span("s" + std::to_string(i));
  }
  const TraceSnapshot snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.threads.size(), 1u);
  EXPECT_EQ(snapshot.threads[0].events.size(), 4u);
  EXPECT_EQ(snapshot.threads[0].dropped, 6u);
  EXPECT_EQ(snapshot.total_events(), 4u);
  EXPECT_EQ(snapshot.total_dropped(), 6u);
  // The retained events are the oldest, never overwritten.
  EXPECT_EQ(snapshot.threads[0].events[0].name, "s0");
  EXPECT_EQ(snapshot.threads[0].events[3].name, "s3");
}

// record() appends to the calling thread's buffer but tags the event with
// an explicit track id; the Chrome export groups by that id. The snapshot
// must surface the synthetic tracks' labels and the tagged events.
TEST(Tracer, RecordSynthesizesModeledTimeline) {
  Tracer tracer(64, "model");
  tracer.set_track_label(7, "rank 0");
  tracer.set_track_label(8, "rank 1");
  tracer.record("S2:sketch", 7, 0, 100);
  tracer.record("S2:sketch", 8, 0, 250);
  tracer.record("recover:S4", 8, 250, 50, /*depth=*/1);
  const TraceSnapshot snapshot = tracer.snapshot();

  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> labels;
  for (const auto& thread : snapshot.threads) {
    if (!thread.label.empty()) labels[thread.tid] = thread.label;
    events.insert(events.end(), thread.events.begin(), thread.events.end());
  }
  EXPECT_EQ(labels[7], "rank 0");
  EXPECT_EQ(labels[8], "rank 1");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].name, "recover:S4");
  EXPECT_EQ(events[2].tid, 8u);
  EXPECT_EQ(events[2].start_ns, 250u);
  EXPECT_EQ(events[2].dur_ns, 50u);
  EXPECT_EQ(events[2].depth, 1u);

  // The export places each event on its tagged track.
  const json::Value doc = json::parse(tracer.snapshot().to_chrome_json());
  bool recover_on_track_8 = false;
  for (const json::Value& event : doc.find("traceEvents")->array) {
    const json::Value* name = event.find("name");
    if (name != nullptr && name->str == "recover:S4") {
      recover_on_track_8 = event.find("tid")->number == 8.0;
    }
  }
  EXPECT_TRUE(recover_on_track_8);
}

TEST(Tracer, ThreadsGetDistinctTracksAndLabels) {
  Tracer tracer(64, "mt");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&tracer, t] {
      tracer.set_thread_label("worker " + std::to_string(t));
      for (int i = 0; i < 8; ++i) {
        Span span = tracer.span("work");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const TraceSnapshot snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.threads.size(), 4u);
  for (const auto& thread : snapshot.threads) {
    EXPECT_EQ(thread.events.size(), 8u);
    EXPECT_EQ(thread.label.rfind("worker ", 0), 0u) << thread.label;
  }
}

TEST(Tracer, ChromeExportParsesAndKeepsPairsMatched) {
  Tracer tracer(256, "export");
  tracer.set_thread_label("main");
  {
    Span outer = tracer.span("outer");
    { Span inner = tracer.span("inner"); }
    { Span inner = tracer.span("inner2"); }
    tracer.counter_sample("queue.depth", 3.0);
  }
  const std::string text = tracer.snapshot().to_chrome_json();
  const json::Value doc = json::parse(text);  // throws if malformed
  expect_matched_pairs(doc);

  const json::Value* events = doc.find("traceEvents");
  bool saw_counter = false;
  bool saw_thread_name = false;
  for (const json::Value& event : events->array) {
    const std::string& ph = event.find("ph")->str;
    if (ph == "C" && event.find("name")->str == "queue.depth") {
      saw_counter = true;
    }
    if (ph == "M" && event.find("name")->str == "thread_name") {
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_thread_name);
}

TEST(Tracer, SerialEventSequenceIsDeterministic) {
  const auto shape = [] {
    Tracer tracer(64, "det");
    {
      Span a = tracer.span("a");
      { Span b = tracer.span("b"); }
    }
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& thread : tracer.snapshot().threads) {
      for (const TraceEvent& event : thread.events) {
        out.emplace_back(event.name, event.seq);
      }
    }
    return out;
  };
  EXPECT_EQ(shape(), shape());
}

}  // namespace
}  // namespace jem::obs
