#include "scaffold/link_graph.hpp"

#include <gtest/gtest.h>

namespace jem::scaffold {
namespace {

core::SegmentMapping make_mapping(io::SeqId read, core::ReadEnd end,
                                  io::SeqId subject,
                                  bool mapped = true) {
  core::SegmentMapping mapping;
  mapping.read = read;
  mapping.end = end;
  mapping.segment_length = 1000;
  if (mapped) {
    mapping.result.subject = subject;
    mapping.result.votes = 10;
  }
  return mapping;
}

TEST(LinkGraph, StartsEmpty) {
  LinkGraph graph;
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_TRUE(graph.links().empty());
  EXPECT_EQ(graph.support(1, 2), 0u);
  EXPECT_TRUE(graph.neighbours(0).empty());
}

TEST(LinkGraph, AccumulatesSupport) {
  LinkGraph graph;
  graph.add_link(1, 2);
  graph.add_link(2, 1);  // unordered: same edge
  graph.add_link(1, 2);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.support(1, 2), 3u);
  EXPECT_EQ(graph.support(2, 1), 3u);
}

TEST(LinkGraph, IgnoresSelfLinks) {
  LinkGraph graph;
  graph.add_link(5, 5);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(LinkGraph, LinksFilterBySupport) {
  LinkGraph graph;
  graph.add_link(0, 1);
  graph.add_link(0, 1);
  graph.add_link(1, 2);
  const auto strong = graph.links(2);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0].a, 0u);
  EXPECT_EQ(strong[0].b, 1u);
  EXPECT_EQ(strong[0].support, 2u);
  EXPECT_EQ(graph.links(1).size(), 2u);
}

TEST(LinkGraph, NeighboursAreSortedAndFiltered) {
  LinkGraph graph;
  graph.add_link(5, 9);
  graph.add_link(5, 2);
  graph.add_link(5, 2);
  const auto all = graph.neighbours(5, 1);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], 2u);
  EXPECT_EQ(all[1], 9u);
  const auto strong = graph.neighbours(5, 2);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0], 2u);
  EXPECT_EQ(graph.degree(5, 2), 1u);
}

TEST(LinkGraph, FromMappingsPairsPrefixWithSuffix) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 1),
      make_mapping(0, core::ReadEnd::kSuffix, 2),
      make_mapping(1, core::ReadEnd::kPrefix, 2),
      make_mapping(1, core::ReadEnd::kSuffix, 3),
      make_mapping(2, core::ReadEnd::kPrefix, 1),
      make_mapping(2, core::ReadEnd::kSuffix, 2),
  };
  const LinkGraph graph = LinkGraph::from_mappings(mappings);
  EXPECT_EQ(graph.support(1, 2), 2u);
  EXPECT_EQ(graph.support(2, 3), 1u);
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(LinkGraph, FromMappingsSkipsSameContigAndUnmapped) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 4),
      make_mapping(0, core::ReadEnd::kSuffix, 4),  // same contig: no link
      make_mapping(1, core::ReadEnd::kPrefix, 1),
      make_mapping(1, core::ReadEnd::kSuffix, 0, /*mapped=*/false),
  };
  const LinkGraph graph = LinkGraph::from_mappings(mappings);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(LinkGraph, FromMappingsSkipsShortReadsWithOnlyPrefix) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 1),  // short read, no suffix
      make_mapping(1, core::ReadEnd::kPrefix, 2),
      make_mapping(1, core::ReadEnd::kSuffix, 3),
  };
  const LinkGraph graph = LinkGraph::from_mappings(mappings);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.support(2, 3), 1u);
}

}  // namespace
}  // namespace jem::scaffold
