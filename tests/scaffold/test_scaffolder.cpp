#include "scaffold/scaffolder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace jem::scaffold {
namespace {

/// Adds `support` copies of the link.
void link(LinkGraph& graph, io::SeqId a, io::SeqId b,
          std::uint64_t support = 2) {
  for (std::uint64_t i = 0; i < support; ++i) graph.add_link(a, b);
}

/// Asserts the scaffold set is a partition of [0, n).
void expect_partition(const ScaffoldSet& set, std::size_t n) {
  std::set<io::SeqId> seen;
  for (const Scaffold& scaffold : set.scaffolds) {
    for (io::SeqId contig : scaffold.contigs) {
      EXPECT_TRUE(seen.insert(contig).second) << "duplicate " << contig;
      EXPECT_LT(contig, n);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(Scaffolder, EmptyGraphYieldsSingletons) {
  const LinkGraph graph;
  const ScaffoldSet set = build_scaffolds(graph, 4);
  EXPECT_EQ(set.scaffolds.size(), 4u);
  EXPECT_EQ(set.multi_contig_count(), 0u);
  expect_partition(set, 4);
}

TEST(Scaffolder, SimpleChainIsRecovered) {
  LinkGraph graph;
  link(graph, 0, 1);
  link(graph, 1, 2);
  link(graph, 2, 3);
  const ScaffoldSet set = build_scaffolds(graph, 5);
  expect_partition(set, 5);
  EXPECT_EQ(set.largest(), 4u);
  EXPECT_EQ(set.multi_contig_count(), 1u);

  // The chain must appear in path order (either direction).
  const auto it = std::find_if(
      set.scaffolds.begin(), set.scaffolds.end(),
      [](const Scaffold& s) { return s.size() == 4; });
  ASSERT_NE(it, set.scaffolds.end());
  const std::vector<io::SeqId> fwd{0, 1, 2, 3};
  std::vector<io::SeqId> rev(fwd.rbegin(), fwd.rend());
  EXPECT_TRUE(it->contigs == fwd || it->contigs == rev);
}

TEST(Scaffolder, WeakLinksAreIgnored) {
  LinkGraph graph;
  link(graph, 0, 1, 1);  // below min_support = 2
  const ScaffoldSet set = build_scaffolds(graph, 2);
  EXPECT_EQ(set.multi_contig_count(), 0u);
  expect_partition(set, 2);
}

TEST(Scaffolder, BranchPointTerminatesChains) {
  // Star: contig 0 linked to 1, 2, 3 — no chain may pass through 0.
  LinkGraph graph;
  link(graph, 0, 1);
  link(graph, 0, 2);
  link(graph, 0, 3);
  const ScaffoldSet set = build_scaffolds(graph, 4);
  expect_partition(set, 4);
  EXPECT_EQ(set.largest(), 1u);  // everything singleton
}

TEST(Scaffolder, BranchInMiddleSplitsChain) {
  // 0-1-2 and 2-3, 2-4, 2-5: contig 2 is branchy; chains 0-1 and singletons.
  LinkGraph graph;
  link(graph, 0, 1);
  link(graph, 1, 2);
  link(graph, 2, 3);
  link(graph, 2, 4);
  link(graph, 2, 5);
  const ScaffoldSet set = build_scaffolds(graph, 6);
  expect_partition(set, 6);
  EXPECT_EQ(set.largest(), 2u);  // 0-1 survives; 2 blocks the rest
}

TEST(Scaffolder, CycleIsBrokenIntoOneChain) {
  LinkGraph graph;
  link(graph, 0, 1);
  link(graph, 1, 2);
  link(graph, 2, 0);
  const ScaffoldSet set = build_scaffolds(graph, 3);
  expect_partition(set, 3);
  EXPECT_EQ(set.scaffolds.size(), 1u);
  EXPECT_EQ(set.largest(), 3u);
}

TEST(Scaffolder, TwoIndependentChains) {
  LinkGraph graph;
  link(graph, 0, 1);
  link(graph, 2, 3);
  link(graph, 3, 4);
  const ScaffoldSet set = build_scaffolds(graph, 5);
  expect_partition(set, 5);
  EXPECT_EQ(set.multi_contig_count(), 2u);
  EXPECT_EQ(set.largest(), 3u);
}

TEST(Scaffolder, DeterministicOutput) {
  LinkGraph graph;
  link(graph, 4, 2);
  link(graph, 2, 7);
  link(graph, 7, 0);
  const ScaffoldSet a = build_scaffolds(graph, 8);
  const ScaffoldSet b = build_scaffolds(graph, 8);
  ASSERT_EQ(a.scaffolds.size(), b.scaffolds.size());
  for (std::size_t i = 0; i < a.scaffolds.size(); ++i) {
    EXPECT_EQ(a.scaffolds[i].contigs, b.scaffolds[i].contigs);
  }
}

TEST(ScaffoldSet, N50OverContigCounts) {
  ScaffoldSet set;
  set.scaffolds.push_back({{0, 1, 2, 3, 4}});   // 5
  set.scaffolds.push_back({{5, 6, 7}});         // 3
  set.scaffolds.push_back({{8}});               // 1
  set.scaffolds.push_back({{9}});               // 1
  // total 10; sorted sizes 5,3,1,1; cumulative 5 >= 5 -> N50 = 5.
  EXPECT_EQ(set.n50_contigs(), 5u);
  EXPECT_EQ(set.largest(), 5u);
  EXPECT_EQ(set.multi_contig_count(), 2u);
}

TEST(ScaffoldSet, N50EmptyIsZero) {
  ScaffoldSet set;
  EXPECT_EQ(set.n50_contigs(), 0u);
}

}  // namespace
}  // namespace jem::scaffold
