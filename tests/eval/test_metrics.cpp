#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace jem::eval {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two contigs [0,5000) and [6000,12000); reads positioned so truth is
    // unambiguous.
    contig_truth_ = {{0, 5000}, {6000, 12'000}};
    read_truth_ = {
        {{1000, 4000}, false},   // read 0: both ends in contig 0
        {{7000, 11'000}, false}, // read 1: both ends in contig 1
        {{5100, 5900}, false},   // read 2: entirely in the gap
    };
    truth_ = std::make_unique<TruthSet>(contig_truth_, read_truth_, 1000, 16);
  }

  core::SegmentMapping make_mapping(io::SeqId read, core::ReadEnd end,
                                    io::SeqId subject, bool mapped = true) {
    core::SegmentMapping mapping;
    mapping.read = read;
    mapping.end = end;
    mapping.segment_length = 1000;
    if (mapped) {
      mapping.result.subject = subject;
      mapping.result.votes = 10;
    }
    return mapping;
  }

  std::vector<sim::Interval> contig_truth_;
  std::vector<sim::ReadTruth> read_truth_;
  std::unique_ptr<TruthSet> truth_;
};

TEST_F(MetricsTest, AllCorrectGivesPerfectScores) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 0),
      make_mapping(0, core::ReadEnd::kSuffix, 0),
      make_mapping(1, core::ReadEnd::kPrefix, 1),
      make_mapping(1, core::ReadEnd::kSuffix, 1),
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.tp, 4u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.fn, 0u);
  EXPECT_DOUBLE_EQ(counts.precision(), 1.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 1.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 1.0);
}

TEST_F(MetricsTest, WrongSubjectIsBothFpAndFn) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 1),  // wrong contig
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);  // the paper: an FP implies an FN
}

TEST_F(MetricsTest, UnmappedWithTruthIsFn) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 0, /*mapped=*/false),
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.fn, 1u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.mapped, 0u);
}

TEST_F(MetricsTest, UnmappedGapSegmentIsTn) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(2, core::ReadEnd::kPrefix, 0, /*mapped=*/false),
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.tn, 1u);
  EXPECT_EQ(counts.fn, 0u);
}

TEST_F(MetricsTest, MappedGapSegmentIsFpOnly) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(2, core::ReadEnd::kPrefix, 0),  // nothing true exists
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 0u);  // no bench pair was missed
}

TEST_F(MetricsTest, RecallBoundedByPrecisionWhenAllEndsHaveTruth) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 0),   // TP
      make_mapping(0, core::ReadEnd::kSuffix, 1),   // FP (+FN)
      make_mapping(1, core::ReadEnd::kPrefix, 1),   // TP
      make_mapping(1, core::ReadEnd::kSuffix, 0, false),  // FN
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_LE(counts.recall(), counts.precision());
}

TEST_F(MetricsTest, EmptyMappingsYieldZeroMetrics) {
  const QualityCounts counts = evaluate({}, *truth_);
  EXPECT_EQ(counts.segments, 0u);
  EXPECT_DOUBLE_EQ(counts.precision(), 0.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 0.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 0.0);
}

TEST_F(MetricsTest, CountsSegmentsAndMapped) {
  std::vector<core::SegmentMapping> mappings{
      make_mapping(0, core::ReadEnd::kPrefix, 0),
      make_mapping(0, core::ReadEnd::kSuffix, 0, false),
      make_mapping(1, core::ReadEnd::kPrefix, 1),
  };
  const QualityCounts counts = evaluate(mappings, *truth_);
  EXPECT_EQ(counts.segments, 3u);
  EXPECT_EQ(counts.mapped, 2u);
}

TEST_F(MetricsTest, TopXRecallCountsAnyTrueCandidate) {
  core::SegmentTopX good;
  good.read = 0;
  good.end = core::ReadEnd::kPrefix;
  good.hits = {{1, 20}, {0, 15}};  // true contig (0) is second

  core::SegmentTopX bad;
  bad.read = 1;
  bad.end = core::ReadEnd::kPrefix;
  bad.hits = {{0, 9}};  // true contig is 1, not reported

  core::SegmentTopX gap;
  gap.read = 2;  // no truth exists
  gap.end = core::ReadEnd::kPrefix;
  gap.hits = {{0, 3}};

  const std::vector<core::SegmentTopX> mappings{good, bad, gap};
  const TopXRecall recall = evaluate_topx(mappings, *truth_);
  EXPECT_EQ(recall.with_truth, 2u);
  EXPECT_EQ(recall.recalled, 1u);
  EXPECT_DOUBLE_EQ(recall.recall(), 0.5);
}

TEST_F(MetricsTest, TopXRecallEmptyIsZero) {
  const TopXRecall recall = evaluate_topx({}, *truth_);
  EXPECT_DOUBLE_EQ(recall.recall(), 0.0);
}

TEST(QualityCounts, F1IsHarmonicMean) {
  QualityCounts counts;
  counts.tp = 80;
  counts.fp = 20;  // precision 0.8
  counts.fn = 80;  // recall 0.5
  EXPECT_NEAR(counts.f1(), 2 * 0.8 * 0.5 / 1.3, 1e-9);
}

}  // namespace
}  // namespace jem::eval
