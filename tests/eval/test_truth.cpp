#include "eval/truth.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace jem::eval {
namespace {

TEST(EndSegmentInterval, ForwardReadPrefixIsLeftEnd) {
  const sim::ReadTruth read{{1000, 11'000}, /*reverse=*/false};
  const sim::Interval prefix =
      end_segment_interval(read, core::ReadEnd::kPrefix, 1000);
  EXPECT_EQ(prefix.begin, 1000u);
  EXPECT_EQ(prefix.end, 2000u);
  const sim::Interval suffix =
      end_segment_interval(read, core::ReadEnd::kSuffix, 1000);
  EXPECT_EQ(suffix.begin, 10'000u);
  EXPECT_EQ(suffix.end, 11'000u);
}

TEST(EndSegmentInterval, ReverseReadPrefixIsRightEnd) {
  const sim::ReadTruth read{{1000, 11'000}, /*reverse=*/true};
  const sim::Interval prefix =
      end_segment_interval(read, core::ReadEnd::kPrefix, 1000);
  EXPECT_EQ(prefix.begin, 10'000u);
  EXPECT_EQ(prefix.end, 11'000u);
  const sim::Interval suffix =
      end_segment_interval(read, core::ReadEnd::kSuffix, 1000);
  EXPECT_EQ(suffix.begin, 1000u);
  EXPECT_EQ(suffix.end, 2000u);
}

TEST(EndSegmentInterval, ShortReadClampsToReadLength) {
  const sim::ReadTruth read{{500, 1100}, /*reverse=*/false};  // 600 bp read
  const sim::Interval prefix =
      end_segment_interval(read, core::ReadEnd::kPrefix, 1000);
  EXPECT_EQ(prefix.begin, 500u);
  EXPECT_EQ(prefix.end, 1100u);
}

class TruthSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three contigs with a gap between each: [0,5000), [6000,12000),
    // [13000,20000).
    contig_truth_ = {{0, 5000}, {6000, 12'000}, {13'000, 20'000}};
    // Read 0: forward, spanning contigs 0 and 1.
    // Read 1: reverse, inside contig 2.
    // Read 2: forward, prefix in the gap (maps nowhere).
    read_truth_ = {
        {{3000, 9000}, false},
        {{14'000, 19'000}, true},
        {{5200, 10'000}, false},
    };
    truth_ = std::make_unique<TruthSet>(contig_truth_, read_truth_,
                                        /*segment_length=*/1000,
                                        /*min_overlap=*/16);
  }

  std::vector<sim::Interval> contig_truth_;
  std::vector<sim::ReadTruth> read_truth_;
  std::unique_ptr<TruthSet> truth_;
};

TEST_F(TruthSetTest, ForwardReadEndsMapToSpannedContigs) {
  // Prefix [3000,4000) -> contig 0; suffix [8000,9000) -> contig 1.
  EXPECT_TRUE(truth_->is_true(0, core::ReadEnd::kPrefix, 0));
  EXPECT_FALSE(truth_->is_true(0, core::ReadEnd::kPrefix, 1));
  EXPECT_TRUE(truth_->is_true(0, core::ReadEnd::kSuffix, 1));
  EXPECT_FALSE(truth_->is_true(0, core::ReadEnd::kSuffix, 0));
}

TEST_F(TruthSetTest, ReverseReadEndsSwapGenomeSides) {
  // Read 1 is reverse on [14000,19000): prefix = right end [18000,19000)
  // -> contig 2; suffix = left end [14000,15000) -> contig 2 as well.
  EXPECT_TRUE(truth_->is_true(1, core::ReadEnd::kPrefix, 2));
  EXPECT_TRUE(truth_->is_true(1, core::ReadEnd::kSuffix, 2));
  EXPECT_FALSE(truth_->is_true(1, core::ReadEnd::kPrefix, 0));
}

TEST_F(TruthSetTest, GapSegmentsHaveNoTruth) {
  // Read 2 prefix [5200,6200): overlaps contig 1 by 200 >= 16 -> true.
  // Construct a reading entirely in the gap instead:
  std::vector<sim::ReadTruth> gap_read{{{5100, 5900}, false}};
  const TruthSet gap_truth(contig_truth_, gap_read, 1000, 16);
  EXPECT_FALSE(gap_truth.has_any(0, core::ReadEnd::kPrefix));
  EXPECT_TRUE(gap_truth.true_subjects(0, core::ReadEnd::kPrefix).empty());
}

TEST_F(TruthSetTest, MinOverlapThresholdIsRespected) {
  // Segment [5990,6990) overlaps contig 1 ([6000,12000)) by 990.
  std::vector<sim::ReadTruth> reads{{{5990, 12'000}, false}};
  const TruthSet truth_k16(contig_truth_, reads, 1000, 16);
  EXPECT_TRUE(truth_k16.is_true(0, core::ReadEnd::kPrefix, 1));
  const TruthSet truth_strict(contig_truth_, reads, 1000, 991);
  EXPECT_FALSE(truth_strict.is_true(0, core::ReadEnd::kPrefix, 1));
}

TEST_F(TruthSetTest, SegmentSpanningGapHasTwoTrueContigs) {
  // Prefix [4800,5800): 200 bp in contig 0... overlap(contig0)=200,
  // overlap(contig1)=0. Use [4990,5990+1010) instead: choose read at
  // [4500,...] with segment crossing both contig 0 and the gap edge of
  // contig 1? Gap is [5000,6000): a 1000 bp segment can touch both only if
  // it starts in (4000, 5000) and ends past 6000 — impossible for 1000 bp
  // (max end = 5999+1). Use a wider segment length.
  std::vector<sim::ReadTruth> reads{{{4500, 10'000}, false}};
  const TruthSet wide(contig_truth_, reads, 2000, 16);
  const auto subjects = wide.true_subjects(0, core::ReadEnd::kPrefix);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], 0u);
  EXPECT_EQ(subjects[1], 1u);
}

TEST_F(TruthSetTest, TotalPairsCountsEveryEnd) {
  // Read 0: prefix->1 contig, suffix->1. Read 1: 2. Read 2: prefix overlaps
  // contig 1 by 800 (true), suffix [9000,10000) in contig 1 (true).
  EXPECT_EQ(truth_->total_pairs(), 6u);
}

TEST_F(TruthSetTest, IsTrueRejectsOutOfRangeSubject) {
  EXPECT_FALSE(truth_->is_true(0, core::ReadEnd::kPrefix, 99));
}

TEST_F(TruthSetTest, NumReadsReflectsInput) {
  EXPECT_EQ(truth_->num_reads(), 3u);
}

TEST(SegmentIntervalAt, ForwardOffsetsMapDirectly) {
  const sim::ReadTruth read{{1000, 11'000}, /*reverse=*/false};
  const sim::Interval segment = segment_interval_at(read, 3000, 1000);
  EXPECT_EQ(segment.begin, 4000u);
  EXPECT_EQ(segment.end, 5000u);
}

TEST(SegmentIntervalAt, ReverseOffsetsMirror) {
  const sim::ReadTruth read{{1000, 11'000}, /*reverse=*/true};
  // Read positions [0, 1000) are the genome's last kilobase.
  const sim::Interval prefix = segment_interval_at(read, 0, 1000);
  EXPECT_EQ(prefix.begin, 10'000u);
  EXPECT_EQ(prefix.end, 11'000u);
  // Read positions [3000, 4000) map to genome [7000, 8000).
  const sim::Interval middle = segment_interval_at(read, 3000, 1000);
  EXPECT_EQ(middle.begin, 7000u);
  EXPECT_EQ(middle.end, 8000u);
}

TEST(SegmentIntervalAt, ClampsPastReadEnd) {
  const sim::ReadTruth read{{100, 600}, /*reverse=*/false};  // 500 bp read
  const sim::Interval tail = segment_interval_at(read, 400, 1000);
  EXPECT_EQ(tail.begin, 500u);
  EXPECT_EQ(tail.end, 600u);
  const sim::Interval beyond = segment_interval_at(read, 900, 100);
  EXPECT_EQ(beyond.length(), 0u);
}

TEST_F(TruthSetTest, TrueSubjectsAtMatchesEndSegmentForm) {
  // For a forward read, offset 0 must agree with the prefix-end lookup.
  EXPECT_EQ(truth_->true_subjects_at(0, 0, 1000),
            truth_->true_subjects(0, core::ReadEnd::kPrefix));
  // Read 0 spans [3000, 9000): an interior segment at offset 3000 covers
  // genome [6000, 7000), i.e. contig 1.
  const auto interior = truth_->true_subjects_at(0, 3000, 1000);
  ASSERT_EQ(interior.size(), 1u);
  EXPECT_EQ(interior[0], 1u);
}

TEST_F(TruthSetTest, WholeReadTruthListsAllOverlaps) {
  // Read 0 [3000, 9000) overlaps contigs 0 and 1.
  const auto subjects = truth_->true_subjects_whole_read(0);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], 0u);
  EXPECT_EQ(subjects[1], 1u);
  // Read 1 [14000, 19000) lies inside contig 2 only.
  const auto single = truth_->true_subjects_whole_read(1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 2u);
}

}  // namespace
}  // namespace jem::eval
