#include "eval/report.hpp"

#include <gtest/gtest.h>

namespace jem::eval {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"Input", "Precision", "Recall"});
  table.add_row({"E. coli", "99.61", "97.65"});
  table.add_row({"B. splendens", "99.31", "96.18"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("Input"), std::string::npos);
  EXPECT_NE(rendered.find("B. splendens"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "b"});
  table.add_row({"xxxxxxxx", "1"});
  table.add_row({"y", "2"});
  const std::string rendered = table.to_string();
  // Find the column of 'b' on the header row and of '1'/'2' on data rows.
  const auto lines_end = rendered.find('\n');
  const std::string header = rendered.substr(0, lines_end);
  const std::size_t b_col = header.find('b');
  std::size_t pos = rendered.find("xxxxxxxx");
  const std::size_t line2_start = rendered.rfind('\n', pos) + 1;
  const std::size_t one_col = rendered.find('1', pos) - line2_start;
  EXPECT_EQ(b_col, one_col);
}

TEST(TextTable, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(MakeHistogram, BinsValuesCorrectly) {
  const std::vector<double> values{0.05, 0.15, 0.15, 0.95, 1.0};
  const auto bins = make_histogram(values, 0.0, 1.0, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[0].count, 1u);   // 0.05
  EXPECT_EQ(bins[1].count, 2u);   // the 0.15s
  EXPECT_EQ(bins[9].count, 2u);   // 0.95 and the v==hi edge case 1.0
}

TEST(MakeHistogram, IgnoresOutOfRangeValues) {
  const std::vector<double> values{-0.5, 0.5, 1.5};
  const auto bins = make_histogram(values, 0.0, 1.0, 4);
  std::uint64_t total = 0;
  for (const auto& bin : bins) total += bin.count;
  EXPECT_EQ(total, 1u);
}

TEST(MakeHistogram, BinBoundsPartitionTheRange) {
  const auto bins = make_histogram({}, 80.0, 100.0, 4);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 80.0);
  EXPECT_DOUBLE_EQ(bins[0].hi, 85.0);
  EXPECT_DOUBLE_EQ(bins[3].hi, 100.0);
}

TEST(MakeHistogram, RejectsBadSpecification) {
  EXPECT_THROW((void)make_histogram({}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)make_histogram({}, 1.0, 0.0, 5), std::invalid_argument);
}

TEST(RenderHistogram, ScalesBarsToMaxCount) {
  std::vector<HistogramBin> bins{{0, 1, 10}, {1, 2, 5}, {2, 3, 0}};
  const std::string rendered = render_histogram(bins, 20);
  // Largest bin gets 20 hashes, half-size bin gets 10, empty gets none.
  EXPECT_NE(rendered.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(rendered.find(std::string(10, '#') + " 5"), std::string::npos);
}

TEST(RenderHistogram, HandlesAllEmptyBins) {
  std::vector<HistogramBin> bins{{0, 1, 0}, {1, 2, 0}};
  const std::string rendered = render_histogram(bins);
  EXPECT_EQ(rendered.find('#'), std::string::npos);
}

}  // namespace
}  // namespace jem::eval
