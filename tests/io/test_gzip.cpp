#include "io/gzip.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "io/fasta.hpp"
#include "util/prng.hpp"

namespace jem::io {
namespace {

TEST(Gzip, DetectsMagicBytes) {
  EXPECT_TRUE(is_gzip("\x1f\x8b\x08rest"));
  EXPECT_FALSE(is_gzip(">fasta"));
  EXPECT_FALSE(is_gzip(""));
  EXPECT_FALSE(is_gzip("\x1f"));
}

TEST(Gzip, RoundTripsText) {
  const std::string original = "hello gzip world\nsecond line\n";
  const std::string compressed = gzip_compress(original);
  EXPECT_TRUE(is_gzip(compressed));
  EXPECT_EQ(gzip_decompress(compressed), original);
}

TEST(Gzip, RoundTripsEmptyInput) {
  const std::string compressed = gzip_compress("");
  EXPECT_EQ(gzip_decompress(compressed), "");
}

TEST(Gzip, RoundTripsLargeRepetitiveData) {
  std::string original;
  for (int i = 0; i < 5000; ++i) original += "ACGTACGTACGT";
  const std::string compressed = gzip_compress(original);
  EXPECT_LT(compressed.size(), original.size() / 10);  // compresses well
  EXPECT_EQ(gzip_decompress(compressed), original);
}

TEST(Gzip, RoundTripsIncompressibleData) {
  util::Xoshiro256ss rng(1);
  std::string original(100'000, '\0');
  for (char& c : original) c = static_cast<char>(rng.bounded(256));
  EXPECT_EQ(gzip_decompress(gzip_compress(original)), original);
}

TEST(Gzip, ThrowsOnCorruptStream) {
  std::string compressed = gzip_compress("some payload");
  compressed[compressed.size() / 2] ^= char(0xff);
  compressed[compressed.size() / 2 + 1] ^= char(0xff);
  EXPECT_THROW((void)gzip_decompress(compressed), std::runtime_error);
}

TEST(Gzip, ThrowsOnTruncatedStream) {
  const std::string compressed = gzip_compress("some payload to truncate");
  const std::string truncated = compressed.substr(0, compressed.size() / 2);
  EXPECT_THROW((void)gzip_decompress(truncated), std::runtime_error);
}

TEST(Gzip, ReadFileAutoHandlesPlainFiles) {
  const std::string path = ::testing::TempDir() + "/jem_plain.txt";
  {
    std::ofstream out(path);
    out << "plain content";
  }
  EXPECT_EQ(read_file_auto(path), "plain content");
}

TEST(Gzip, ReadFileAutoHandlesGzipFiles) {
  const std::string path = ::testing::TempDir() + "/jem_test.gz";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string compressed = gzip_compress("compressed content");
    out.write(compressed.data(),
              static_cast<std::streamsize>(compressed.size()));
  }
  EXPECT_EQ(read_file_auto(path), "compressed content");
}

TEST(Gzip, ReadFileAutoThrowsOnMissingFile) {
  EXPECT_THROW((void)read_file_auto("/nonexistent/file.gz"),
               std::runtime_error);
}

TEST(Gzip, FastaReaderAcceptsGzippedFiles) {
  const std::string path = ::testing::TempDir() + "/jem_seqs.fa.gz";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string compressed =
        gzip_compress(">s1 desc\nACGTACGT\n>s2\nTTTT\n");
    out.write(compressed.data(),
              static_cast<std::streamsize>(compressed.size()));
  }
  const auto records = read_sequences_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "s1");
  EXPECT_EQ(records[0].bases, "ACGTACGT");
  EXPECT_EQ(records[1].bases, "TTTT");
}

// --- Structured corruption taxonomy (GzipError reasons) --------------------

GzipReason gzip_reason_of(const std::string& data) {
  try {
    (void)gzip_decompress(data);
  } catch (const GzipError& error) {
    return error.reason();
  }
  ADD_FAILURE() << "expected a GzipError";
  return GzipReason::kInitFailed;
}

TEST(Gzip, FlippedCrcTrailerIsBadCrc) {
  // Member trailer: CRC32 (last 8..5 bytes), then ISIZE (last 4 bytes).
  std::string compressed = gzip_compress("payload whose trailer we corrupt");
  compressed[compressed.size() - 8] ^= char(0x01);
  EXPECT_EQ(gzip_reason_of(compressed), GzipReason::kBadCrc);
}

TEST(Gzip, FlippedIsizeTrailerIsBadLength) {
  std::string compressed = gzip_compress("payload whose trailer we corrupt");
  compressed[compressed.size() - 1] ^= char(0x01);
  EXPECT_EQ(gzip_reason_of(compressed), GzipReason::kBadLength);
}

TEST(Gzip, TruncationMidMemberIsTruncated) {
  const std::string compressed = gzip_compress("payload that will be cut off");
  for (const std::size_t keep : {compressed.size() / 2, compressed.size() - 1,
                                 compressed.size() - 8}) {
    EXPECT_EQ(gzip_reason_of(compressed.substr(0, keep)),
              GzipReason::kTruncated)
        << "kept " << keep << " of " << compressed.size();
  }
}

TEST(Gzip, BytesAfterTheFinalMemberAreTrailingGarbage) {
  const std::string compressed = gzip_compress("clean member");
  EXPECT_EQ(gzip_reason_of(compressed + "not gzip"),
            GzipReason::kTrailingGarbage);
}

TEST(Gzip, ConcatenatedMembersDecodeLikeGzipCat) {
  const std::string both = gzip_compress("first half, ") +
                           gzip_compress("second half");
  EXPECT_EQ(gzip_decompress(both), "first half, second half");
}

TEST(Gzip, CorruptSecondMemberStillClassifies) {
  std::string both =
      gzip_compress("good member") + gzip_compress("bad member");
  both[both.size() - 1] ^= char(0x01);  // second member's ISIZE
  EXPECT_EQ(gzip_reason_of(both), GzipReason::kBadLength);
}

TEST(Gzip, ReasonNamesAreStable) {
  EXPECT_EQ(gzip_reason_name(GzipReason::kBadCrc), "bad-crc");
  EXPECT_EQ(gzip_reason_name(GzipReason::kTruncated), "truncated");
  EXPECT_EQ(gzip_reason_name(GzipReason::kTrailingGarbage),
            "trailing-garbage");
}

TEST(Gzip, FastqReaderAcceptsGzippedFiles) {
  const std::string path = ::testing::TempDir() + "/jem_reads.fq.gz";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string compressed =
        gzip_compress("@r1\nACGT\n+\nIIII\n");
    out.write(compressed.data(),
              static_cast<std::streamsize>(compressed.size()));
  }
  const auto records = read_sequences_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].quality, "IIII");
}

}  // namespace
}  // namespace jem::io
