#include "io/packed_sequence_set.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace jem::io {
namespace {

std::string random_dna_with_ns(util::Xoshiro256ss& rng, std::size_t length,
                               double n_fraction) {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = rng.uniform() < n_fraction
            ? 'N'
            : kBases[rng.bounded(4)];
  }
  return seq;
}

TEST(PackedSequenceSet, StartsEmpty) {
  PackedSequenceSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_bases(), 0u);
  EXPECT_EQ(set.payload_bytes(), 0u);
}

TEST(PackedSequenceSet, RoundTripsPureAcgt) {
  PackedSequenceSet set;
  const std::string bases = "ACGTACGTTTGGCCAA";
  const SeqId id = set.add("s", bases);
  EXPECT_EQ(set.decode(id), bases);
  EXPECT_EQ(set.length(id), bases.size());
  EXPECT_EQ(set.name(id), "s");
}

TEST(PackedSequenceSet, LowercaseNormalizesToUppercase) {
  PackedSequenceSet set;
  set.add("s", "acgt");
  EXPECT_EQ(set.decode(0), "ACGT");
}

TEST(PackedSequenceSet, PreservesNs) {
  PackedSequenceSet set;
  set.add("s", "ACGNNNTACGTN");
  EXPECT_EQ(set.decode(0), "ACGNNNTACGTN");
}

TEST(PackedSequenceSet, NonAcgtBecomesN) {
  PackedSequenceSet set;
  set.add("s", "ACRYGT");
  EXPECT_EQ(set.decode(0), "ACNNGT");
}

TEST(PackedSequenceSet, RoundTripsRandomSequencesAcrossWordBoundaries) {
  util::Xoshiro256ss rng(1);
  PackedSequenceSet set;
  std::vector<std::string> originals;
  // Lengths chosen to hit every word-boundary alignment.
  for (std::size_t length : {0u, 1u, 31u, 32u, 33u, 63u, 64u, 65u, 1000u}) {
    originals.push_back(random_dna_with_ns(rng, length, 0.05));
    set.add("s" + std::to_string(length), originals.back());
  }
  for (SeqId id = 0; id < set.size(); ++id) {
    EXPECT_EQ(set.decode(id), originals[id]) << "id " << id;
  }
}

TEST(PackedSequenceSet, SubrangeDecodeMatchesSubstr) {
  util::Xoshiro256ss rng(2);
  const std::string bases = random_dna_with_ns(rng, 500, 0.03);
  PackedSequenceSet set;
  set.add("s", bases);
  for (int i = 0; i < 50; ++i) {
    const std::size_t begin = rng.bounded(bases.size());
    const std::size_t count = rng.bounded(bases.size() - begin + 1);
    EXPECT_EQ(set.decode(0, begin, count), bases.substr(begin, count));
  }
}

TEST(PackedSequenceSet, SubrangeDecodeClampsOutOfRange) {
  PackedSequenceSet set;
  set.add("s", "ACGTACGT");
  EXPECT_EQ(set.decode(0, 6, 100), "GT");
  EXPECT_EQ(set.decode(0, 100, 5), "");
}

TEST(PackedSequenceSet, DecodeThrowsOnBadId) {
  PackedSequenceSet set;
  EXPECT_THROW((void)set.decode(0), std::out_of_range);
  EXPECT_THROW((void)set.length(3), std::out_of_range);
}

TEST(PackedSequenceSet, AchievesFourToOneCompression) {
  util::Xoshiro256ss rng(3);
  PackedSequenceSet set;
  const std::string bases = random_dna_with_ns(rng, 100'000, 0.0);
  set.add("big", bases);
  // 100k bases at 2 bits = 25 kB payload (plus one partial word).
  EXPECT_LE(set.payload_bytes(), bases.size() / 4 + 16);
}

TEST(PackedSequenceSet, ConvertsToAndFromSequenceSet) {
  util::Xoshiro256ss rng(4);
  SequenceSet plain;
  for (int i = 0; i < 20; ++i) {
    plain.add("s" + std::to_string(i),
              random_dna_with_ns(rng, 50 + rng.bounded(200), 0.02));
  }
  const PackedSequenceSet packed =
      PackedSequenceSet::from_sequence_set(plain);
  EXPECT_EQ(packed.size(), plain.size());
  EXPECT_EQ(packed.total_bases(), plain.total_bases());

  const SequenceSet back = packed.to_sequence_set();
  ASSERT_EQ(back.size(), plain.size());
  for (SeqId id = 0; id < plain.size(); ++id) {
    EXPECT_EQ(back.name(id), plain.name(id));
    EXPECT_EQ(back.bases(id), plain.bases(id));
  }
}

TEST(PackedSequenceSet, ManySequencesKeepIndependentExceptions) {
  PackedSequenceSet set;
  set.add("a", "NNAA");
  set.add("b", "AANN");
  EXPECT_EQ(set.decode(0), "NNAA");
  EXPECT_EQ(set.decode(1), "AANN");
}

}  // namespace
}  // namespace jem::io
