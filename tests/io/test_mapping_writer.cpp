#include "io/mapping_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace jem::io {
namespace {

TEST(MappingWriter, WritesTabSeparatedFields) {
  std::vector<MappingLine> lines;
  lines.push_back({"read_1", 'P', 1000, "contig_7", 28, 30});
  std::ostringstream out;
  write_mappings(out, lines);
  EXPECT_EQ(out.str(), "read_1\tP\t1000\tcontig_7\t28\t30\n");
}

TEST(MappingWriter, UnmappedUsesStar) {
  std::vector<MappingLine> lines;
  lines.push_back({"read_2", 'S', 1000, "", 0, 30});
  std::ostringstream out;
  write_mappings(out, lines);
  EXPECT_EQ(out.str(), "read_2\tS\t1000\t*\t0\t30\n");
}

TEST(MappingWriter, RoundTrips) {
  std::vector<MappingLine> lines;
  lines.push_back({"r1", 'P', 1000, "c1", 30, 30});
  lines.push_back({"r1", 'S', 1000, "", 0, 30});
  lines.push_back({"r2", 'P', 512, "c9", 3, 30});

  std::ostringstream out;
  write_mappings(out, lines);
  std::istringstream in(out.str());
  const auto parsed = read_mappings(in);
  EXPECT_EQ(parsed, lines);
}

TEST(MappingWriter, MappedPredicate) {
  MappingLine mapped{"r", 'P', 10, "c", 1, 30};
  MappingLine unmapped{"r", 'P', 10, "", 0, 30};
  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(unmapped.mapped());
}

TEST(MappingReader, SkipsEmptyLines) {
  std::istringstream in("\nr1\tP\t10\tc1\t5\t30\n\n");
  const auto parsed = read_mappings(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].query, "r1");
}

TEST(MappingReader, ThrowsOnWrongFieldCount) {
  std::istringstream in("r1\tP\t10\tc1\t5\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

TEST(MappingReader, ThrowsOnBadEndTag) {
  std::istringstream in("r1\tX\t10\tc1\t5\t30\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

TEST(MappingReader, ThrowsOnBadNumber) {
  std::istringstream in("r1\tP\tten\tc1\t5\t30\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

// --- Crash-safe output paths (docs/persistence.md) -------------------------

namespace {
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}
}  // namespace

TEST(MappingWriter, AtomicWriteMatchesStreamOutput) {
  std::vector<MappingLine> lines;
  lines.push_back({"r1", 'P', 1000, "c1", 30, 30});
  lines.push_back({"r2", 'S', 1000, "", 0, 30});
  const std::string path = ::testing::TempDir() + "/jem_atomic_map.tsv";
  write_mappings_atomic(path, lines);

  std::ostringstream expected;
  write_mappings(expected, lines);
  EXPECT_EQ(slurp(path), expected.str());
}

TEST(MappingOutput, AppendsTrackStateAndPublishAtomically) {
  const std::string path = ::testing::TempDir() + "/jem_out_publish.tsv";
  std::remove(path.c_str());
  MappingOutput out(path);
  out.append("line one\n");
  out.append("line two\n");
  out.sync();
  EXPECT_EQ(out.bytes_written(), 18u);
  EXPECT_EQ(out.digest(), xxh64("line one\nline two\n"));
  EXPECT_EQ(out.state().first, 18u);
  EXPECT_TRUE(exists(out.partial_path()));
  EXPECT_FALSE(exists(path));

  out.publish();
  EXPECT_FALSE(exists(out.partial_path()));
  EXPECT_EQ(slurp(path), "line one\nline two\n");
}

TEST(MappingOutput, ResumeTruncatesTheCrashRemainderAndContinues) {
  const std::string path = ::testing::TempDir() + "/jem_out_resume.tsv";
  std::uint64_t journaled_bytes = 0;
  std::uint64_t journaled_hash = 0;
  {
    MappingOutput out(path);
    out.append("durable batch\n");
    out.sync();
    journaled_bytes = out.state().first;
    journaled_hash = out.state().second;
    out.append("unjournaled crash remainder");
    // Destroyed without publish: the .partial file stays, as after SIGKILL.
  }
  MappingOutput resumed(path, journaled_bytes, journaled_hash);
  EXPECT_EQ(resumed.bytes_written(), journaled_bytes);
  EXPECT_EQ(resumed.digest(), journaled_hash);
  resumed.append("next batch\n");
  resumed.publish();
  EXPECT_EQ(slurp(path), "durable batch\nnext batch\n");
}

TEST(MappingOutput, ResumeRejectsAMismatchedPrefixDigest) {
  const std::string path = ::testing::TempDir() + "/jem_out_badhash.tsv";
  {
    MappingOutput out(path);
    out.append("actual bytes on disk\n");
  }
  try {
    MappingOutput resumed(path, 21, 0x1234);  // journal claims another hash
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.reason(), ArtifactReason::kStaleJournal);
  }
  std::remove((path + ".partial").c_str());
}

TEST(MappingOutput, ResumeRejectsAPartialShorterThanTheJournalClaims) {
  const std::string path = ::testing::TempDir() + "/jem_out_short.tsv";
  {
    MappingOutput out(path);
    out.append("tiny\n");
  }
  try {
    MappingOutput resumed(path, 1000, 0);
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.reason(), ArtifactReason::kStaleJournal);
  }
  std::remove((path + ".partial").c_str());
}

TEST(MappingOutput, ResumeWithoutAPartialFileIsOpenFailed) {
  const std::string path = ::testing::TempDir() + "/jem_out_missing.tsv";
  std::remove((path + ".partial").c_str());
  try {
    MappingOutput resumed(path, 10, 0);
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& error) {
    EXPECT_EQ(error.reason(), ArtifactReason::kOpenFailed);
  }
}

TEST(MappingOutput, DiscardRemovesThePartialFile) {
  const std::string path = ::testing::TempDir() + "/jem_out_discard.tsv";
  MappingOutput out(path);
  out.append("abandoned\n");
  EXPECT_TRUE(exists(out.partial_path()));
  out.discard();
  EXPECT_FALSE(exists(path + ".partial"));
  EXPECT_THROW(out.append("more"), ArtifactError);
}

}  // namespace
}  // namespace jem::io
