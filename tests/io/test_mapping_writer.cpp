#include "io/mapping_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jem::io {
namespace {

TEST(MappingWriter, WritesTabSeparatedFields) {
  std::vector<MappingLine> lines;
  lines.push_back({"read_1", 'P', 1000, "contig_7", 28, 30});
  std::ostringstream out;
  write_mappings(out, lines);
  EXPECT_EQ(out.str(), "read_1\tP\t1000\tcontig_7\t28\t30\n");
}

TEST(MappingWriter, UnmappedUsesStar) {
  std::vector<MappingLine> lines;
  lines.push_back({"read_2", 'S', 1000, "", 0, 30});
  std::ostringstream out;
  write_mappings(out, lines);
  EXPECT_EQ(out.str(), "read_2\tS\t1000\t*\t0\t30\n");
}

TEST(MappingWriter, RoundTrips) {
  std::vector<MappingLine> lines;
  lines.push_back({"r1", 'P', 1000, "c1", 30, 30});
  lines.push_back({"r1", 'S', 1000, "", 0, 30});
  lines.push_back({"r2", 'P', 512, "c9", 3, 30});

  std::ostringstream out;
  write_mappings(out, lines);
  std::istringstream in(out.str());
  const auto parsed = read_mappings(in);
  EXPECT_EQ(parsed, lines);
}

TEST(MappingWriter, MappedPredicate) {
  MappingLine mapped{"r", 'P', 10, "c", 1, 30};
  MappingLine unmapped{"r", 'P', 10, "", 0, 30};
  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(unmapped.mapped());
}

TEST(MappingReader, SkipsEmptyLines) {
  std::istringstream in("\nr1\tP\t10\tc1\t5\t30\n\n");
  const auto parsed = read_mappings(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].query, "r1");
}

TEST(MappingReader, ThrowsOnWrongFieldCount) {
  std::istringstream in("r1\tP\t10\tc1\t5\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

TEST(MappingReader, ThrowsOnBadEndTag) {
  std::istringstream in("r1\tX\t10\tc1\t5\t30\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

TEST(MappingReader, ThrowsOnBadNumber) {
  std::istringstream in("r1\tP\tten\tc1\t5\t30\n");
  EXPECT_THROW((void)read_mappings(in), std::runtime_error);
}

}  // namespace
}  // namespace jem::io
