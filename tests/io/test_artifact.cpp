#include "io/artifact.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace jem::io {
namespace {

constexpr std::uint64_t kMagic = 0x46545241544f4e41ULL;  // "ANOTARTF"
constexpr std::uint32_t kVersion = 7;

ArtifactReason reason_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ArtifactError& error) {
    return error.reason();
  }
  ADD_FAILURE() << "expected an ArtifactError";
  return ArtifactReason::kIoError;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

/// A small three-section artifact (one empty payload) used by the
/// corruption sweeps.
std::string sample_artifact() {
  ArtifactWriter writer(kMagic, kVersion);
  writer.add_section("PARAMS", std::string_view("\x01\x02\x03\x04", 4));
  util::Xoshiro256ss rng(99);
  std::string blob(64, '\0');
  for (char& c : blob) c = static_cast<char>(rng.bounded(256));
  writer.add_section("DATA", blob);
  writer.add_section("EMPTY", std::string_view());
  return writer.serialize();
}

// --- XXH64 -----------------------------------------------------------------

TEST(Xxh64, MatchesReferenceVectors) {
  // Published digests of Collet's reference implementation (seed 0).
  EXPECT_EQ(xxh64(""), 0xef46db3751d8e999ULL);
  EXPECT_EQ(xxh64("a"), 0xd24ec4f1a98c6e5bULL);
  EXPECT_EQ(xxh64("abc"), 0x44bc2cf5ad770999ULL);
  // 39 bytes: exercises the 32-byte accumulator loop + finalize tail.
  EXPECT_EQ(xxh64("Nobody inspects the spammish repetition"),
            0xfbcea83c8a378bf1ULL);
}

TEST(Xxh64, SeedChangesTheDigest) {
  EXPECT_NE(xxh64("abc", 1), xxh64("abc", 0));
  EXPECT_NE(xxh64("", 1), xxh64("", 0));
}

TEST(Xxh64, StreamingMatchesOneShotForEveryChunking) {
  util::Xoshiro256ss rng(7);
  std::string data(10'000, '\0');
  for (char& c : data) c = static_cast<char>(rng.bounded(256));
  const std::uint64_t expected = xxh64(data, 42);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{31}, std::size_t{32},
                                  std::size_t{33}, std::size_t{4096}}) {
    Xxh64Stream stream(42);
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
      stream.update(std::string_view(data).substr(pos, chunk));
    }
    EXPECT_EQ(stream.digest(), expected) << "chunk=" << chunk;
    EXPECT_EQ(stream.bytes(), data.size());
  }
}

TEST(Xxh64, StreamingDigestIsReadableMidStream) {
  Xxh64Stream stream;
  stream.update("hello ");
  EXPECT_EQ(stream.digest(), xxh64("hello "));
  stream.update("world");
  EXPECT_EQ(stream.digest(), xxh64("hello world"));
}

// --- Container framing -----------------------------------------------------

TEST(Artifact, RoundTripsSections) {
  const std::string bytes = sample_artifact();
  const ArtifactReader reader(bytes, kMagic, kVersion);
  EXPECT_EQ(reader.section_count(), 3u);
  EXPECT_TRUE(reader.has_section("PARAMS"));
  EXPECT_TRUE(reader.has_section("DATA"));
  EXPECT_TRUE(reader.has_section("EMPTY"));
  EXPECT_FALSE(reader.has_section("NOPE"));
  EXPECT_EQ(reader.section("PARAMS"), std::string_view("\x01\x02\x03\x04", 4));
  EXPECT_EQ(reader.section("DATA").size(), 64u);
  EXPECT_EQ(reader.section("EMPTY").size(), 0u);
}

TEST(Artifact, FixedSizeAccessorEnforcesTheSize) {
  const ArtifactReader reader(sample_artifact(), kMagic, kVersion);
  EXPECT_EQ(reader.section("PARAMS", 4).size(), 4u);
  EXPECT_EQ(reason_of([&] { (void)reader.section("PARAMS", 5); }),
            ArtifactReason::kBadSection);
}

TEST(Artifact, MissingSectionIsBadSection) {
  const ArtifactReader reader(sample_artifact(), kMagic, kVersion);
  EXPECT_EQ(reason_of([&] { (void)reader.section("NOPE"); }),
            ArtifactReason::kBadSection);
}

TEST(Artifact, RejectsForeignMagicAndVersion) {
  const std::string bytes = sample_artifact();
  EXPECT_EQ(reason_of([&] { ArtifactReader r(bytes, kMagic + 1, kVersion); }),
            ArtifactReason::kBadMagic);
  EXPECT_EQ(reason_of([&] { ArtifactReader r(bytes, kMagic, kVersion + 1); }),
            ArtifactReason::kBadVersion);
}

TEST(Artifact, RejectsTagsOutsideOneToEightBytes) {
  ArtifactWriter writer(kMagic, kVersion);
  EXPECT_THROW(writer.add_section("", "x"), ArtifactError);
  EXPECT_THROW(writer.add_section("NINECHARS", "x"), ArtifactError);
  writer.add_section("EIGHTCHR", "x");  // the full width is fine
  const ArtifactReader reader(writer.serialize(), kMagic, kVersion);
  EXPECT_EQ(reader.section("EIGHTCHR"), "x");
}

TEST(Artifact, EveryTruncationIsDetected) {
  const std::string bytes = sample_artifact();
  // Every proper prefix — cutting mid-header, at a section boundary, inside
  // a section header, inside a payload — must classify as truncation.
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_EQ(reason_of([&] {
                ArtifactReader r(bytes.substr(0, keep), kMagic, kVersion);
              }),
              ArtifactReason::kTruncated)
        << "prefix length " << keep;
  }
}

TEST(Artifact, TrailingBytesAreDetected) {
  EXPECT_EQ(reason_of([&] {
              ArtifactReader r(sample_artifact() + "x", kMagic, kVersion);
            }),
            ArtifactReason::kTruncated);
}

TEST(Artifact, EveryPayloadBitFlipIsAChecksumMismatch) {
  const std::string bytes = sample_artifact();
  // Walk the framing to find each payload's byte range, then flip one bit
  // at every position inside it.
  std::size_t cursor = 16;
  int sections_seen = 0;
  while (cursor < bytes.size()) {
    std::uint64_t size = 0;
    std::memcpy(&size, bytes.data() + cursor + 8, sizeof(size));
    const std::size_t payload = cursor + 24;
    for (std::size_t i = 0; i < size; ++i) {
      std::string corrupt = bytes;
      corrupt[payload + i] ^= char(0x10);
      EXPECT_EQ(
          reason_of([&] { ArtifactReader r(corrupt, kMagic, kVersion); }),
          ArtifactReason::kChecksumMismatch)
          << "payload byte " << i << " of section " << sections_seen;
    }
    // Flipping the stored checksum itself must also fail the section.
    std::string corrupt = bytes;
    corrupt[cursor + 16] ^= char(0x01);
    EXPECT_EQ(reason_of([&] { ArtifactReader r(corrupt, kMagic, kVersion); }),
              ArtifactReason::kChecksumMismatch);
    cursor = payload + size;
    ++sections_seen;
  }
  EXPECT_EQ(sections_seen, 3);
}

TEST(Artifact, ImplausibleSectionCountIsTruncation) {
  std::string bytes = sample_artifact();
  const std::uint32_t huge = 1u << 30;
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
  EXPECT_EQ(reason_of([&] { ArtifactReader r(bytes, kMagic, kVersion); }),
            ArtifactReason::kTruncated);
}

TEST(Artifact, OpenClassifiesAMissingFile) {
  EXPECT_EQ(reason_of([&] {
              (void)ArtifactReader::open("/nonexistent/dir/x.art", kMagic,
                                         kVersion);
            }),
            ArtifactReason::kOpenFailed);
}

TEST(Artifact, SaveAndOpenRoundTrip) {
  const std::string path = ::testing::TempDir() + "/jem_artifact_rt.art";
  ArtifactWriter writer(kMagic, kVersion);
  writer.add_section("DATA", "payload bytes");
  writer.save(path);
  const ArtifactReader reader = ArtifactReader::open(path, kMagic, kVersion);
  EXPECT_EQ(reader.section("DATA"), "payload bytes");
}

// --- Atomic publish --------------------------------------------------------

TEST(AtomicWriteFile, PublishesTheExactBytes) {
  const std::string path = ::testing::TempDir() + "/jem_atomic.bin";
  atomic_write_file(path, "first version");
  EXPECT_EQ(slurp(path), "first version");
  // Overwrite goes through the same temp+rename path.
  atomic_write_file(path, "second version");
  EXPECT_EQ(slurp(path), "second version");
}

TEST(AtomicWriteFile, LeavesNoTempFileBehind) {
  const std::string path = ::testing::TempDir() + "/jem_atomic_tmp.bin";
  atomic_write_file(path, "bytes");
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::ifstream leftover(tmp);
  EXPECT_FALSE(leftover.good());
}

TEST(AtomicWriteFile, UnwritableTargetIsIoError) {
  EXPECT_EQ(reason_of([&] {
              atomic_write_file("/nonexistent/dir/out.bin", "bytes");
            }),
            ArtifactReason::kIoError);
}

TEST(ArtifactError, CarriesReasonAndNameInMessage) {
  const ArtifactError error(ArtifactReason::kChecksumMismatch, "section 3");
  EXPECT_EQ(error.reason(), ArtifactReason::kChecksumMismatch);
  EXPECT_EQ(std::string(error.what()), "checksum-mismatch: section 3");
  EXPECT_EQ(artifact_reason_name(ArtifactReason::kStaleJournal),
            "stale-journal");
}

}  // namespace
}  // namespace jem::io
