#include "io/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jem::io {
namespace {

TEST(ReadFasta, ParsesSingleRecord) {
  std::istringstream in(">seq1 a comment\nACGT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "seq1");
  EXPECT_EQ(records[0].comment, "a comment");
  EXPECT_EQ(records[0].bases, "ACGT");
  EXPECT_TRUE(records[0].quality.empty());
}

TEST(ReadFasta, ParsesMultiLineSequences) {
  std::istringstream in(">s\nACGT\nACGT\nAC\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bases, "ACGTACGTAC");
}

TEST(ReadFasta, ParsesMultipleRecords) {
  std::istringstream in(">a\nAAAA\n>b\nCCCC\n>c\nGGGG\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[2].name, "c");
  EXPECT_EQ(records[2].bases, "GGGG");
}

TEST(ReadFasta, UppercasesBases) {
  std::istringstream in(">s\nacgtN\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].bases, "ACGTN");
}

TEST(ReadFasta, HandlesCrlfLineEndings) {
  std::istringstream in(">s desc\r\nACGT\r\nTT\r\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].name, "s");
  EXPECT_EQ(records[0].comment, "desc");
  EXPECT_EQ(records[0].bases, "ACGTTT");
}

TEST(ReadFasta, SkipsBlankLines) {
  std::istringstream in("\n>s\n\nACGT\n\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bases, "ACGT");
}

TEST(ReadFasta, ThrowsOnMissingHeader) {
  std::istringstream in("ACGT\n");
  EXPECT_THROW((void)read_fasta(in), ParseError);
}

TEST(ReadFasta, ThrowsOnEmptyRecord) {
  std::istringstream in(">a\n>b\nACGT\n");
  EXPECT_THROW((void)read_fasta(in), ParseError);
}

TEST(ReadFasta, ThrowsOnEmptyName) {
  std::istringstream in("> comment only\nACGT\n");
  EXPECT_THROW((void)read_fasta(in), ParseError);
}

TEST(ReadFastq, ParsesSingleRecord) {
  std::istringstream in("@r1 meta\nACGT\n+\nIIII\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "r1");
  EXPECT_EQ(records[0].comment, "meta");
  EXPECT_EQ(records[0].bases, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
}

TEST(ReadFastq, ParsesMultipleRecords) {
  std::istringstream in("@a\nAA\n+\nII\n@b\nCC\n+\nJJ\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[1].quality, "JJ");
}

TEST(ReadFastq, ThrowsOnLengthMismatch) {
  std::istringstream in("@a\nACGT\n+\nII\n");
  EXPECT_THROW((void)read_fastq(in), ParseError);
}

TEST(ReadFastq, ThrowsOnMissingPlusLine) {
  std::istringstream in("@a\nACGT\nIIII\n");
  EXPECT_THROW((void)read_fastq(in), ParseError);
}

TEST(ReadFastq, ThrowsOnTruncation) {
  std::istringstream in("@a\nACGT\n+\n");
  EXPECT_THROW((void)read_fastq(in), ParseError);
}

TEST(ReadSequences, AutoDetectsFasta) {
  std::istringstream in(">s\nACGT\n");
  const auto records = read_sequences(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].quality.empty());
}

TEST(ReadSequences, AutoDetectsFastq) {
  std::istringstream in("@s\nACGT\n+\nIIII\n");
  const auto records = read_sequences(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].quality, "IIII");
}

TEST(ReadSequences, EmptyInputYieldsNoRecords) {
  std::istringstream in("   \n  ");
  EXPECT_TRUE(read_sequences(in).empty());
}

TEST(ReadSequences, ThrowsOnUnknownFormat) {
  std::istringstream in("#comment\nACGT\n");
  EXPECT_THROW((void)read_sequences(in), ParseError);
}

TEST(WriteFasta, RoundTripsRecords) {
  std::vector<SequenceRecord> records;
  records.push_back({"a", "first", "ACGTACGT", ""});
  records.push_back({"b", "", "TTTT", ""});

  std::ostringstream out;
  write_fasta(out, records, 4);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "a");
  EXPECT_EQ(parsed[0].comment, "first");
  EXPECT_EQ(parsed[0].bases, "ACGTACGT");
  EXPECT_EQ(parsed[1].bases, "TTTT");
}

TEST(WriteFasta, WrapsLongLines) {
  std::vector<SequenceRecord> records{{"s", "", std::string(100, 'A'), ""}};
  std::ostringstream out;
  write_fasta(out, records, 30);
  // 100 bases at width 30 -> 4 sequence lines + header.
  int lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

TEST(WriteFasta, ZeroWidthMeansSingleLine) {
  std::vector<SequenceRecord> records{{"s", "", std::string(100, 'A'), ""}};
  std::ostringstream out;
  write_fasta(out, records, 0);
  int lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
}

TEST(WriteFastq, RoundTripsAndFillsQuality) {
  std::vector<SequenceRecord> records;
  records.push_back({"a", "", "ACGT", "FFFF"});
  records.push_back({"b", "", "GG", ""});  // no quality: filled with 'I'
  std::ostringstream out;
  write_fastq(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].quality, "FFFF");
  EXPECT_EQ(parsed[1].quality, "II");
}

TEST(FastaRoundTrip, RandomRecordsSurviveWriteReadCycles) {
  // Property: write_fasta . read_fasta is the identity on (name, comment,
  // bases) for arbitrary records and line widths.
  std::uint64_t state = 99;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  constexpr char kBases[] = {'A', 'C', 'G', 'T', 'N'};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SequenceRecord> records;
    const std::size_t count = 1 + next() % 10;
    for (std::size_t r = 0; r < count; ++r) {
      SequenceRecord rec;
      rec.name = "seq_" + std::to_string(trial) + "_" + std::to_string(r);
      if (next() % 2 == 0) rec.comment = "c" + std::to_string(next() % 100);
      const std::size_t length = 1 + next() % 300;
      for (std::size_t i = 0; i < length; ++i) {
        rec.bases.push_back(kBases[next() % 5]);
      }
      records.push_back(std::move(rec));
    }
    const std::size_t width = next() % 120;  // 0 = unwrapped

    std::ostringstream out;
    write_fasta(out, records, width);
    std::istringstream in(out.str());
    const auto parsed = read_fasta(in);
    ASSERT_EQ(parsed.size(), records.size()) << "trial " << trial;
    for (std::size_t r = 0; r < records.size(); ++r) {
      EXPECT_EQ(parsed[r].name, records[r].name);
      EXPECT_EQ(parsed[r].comment, records[r].comment);
      EXPECT_EQ(parsed[r].bases, records[r].bases);
    }
  }
}

TEST(ReadSequencesFile, ThrowsOnMissingFile) {
  EXPECT_THROW((void)read_sequences_file("/nonexistent/path.fa"), ParseError);
}

TEST(LoadInto, AppendsToSequenceSet) {
  const std::string path = ::testing::TempDir() + "/jem_io_test.fa";
  std::vector<SequenceRecord> records{{"x", "", "ACGTACGT", ""}};
  write_fasta_file(path, records);

  SequenceSet set;
  load_into(path, set);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.name(0), "x");
  EXPECT_EQ(set.bases(0), "ACGTACGT");
}

}  // namespace
}  // namespace jem::io
