#include "io/paf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jem::io {
namespace {

PafRecord sample_record() {
  PafRecord rec;
  rec.query_name = "read_1";
  rec.query_length = 10'000;
  rec.query_begin = 0;
  rec.query_end = 1000;
  rec.strand = '+';
  rec.target_name = "contig_7";
  rec.target_length = 4500;
  rec.target_begin = 1200;
  rec.target_end = 2200;
  rec.matches = 950;
  rec.alignment_length = 1000;
  rec.mapq = 60;
  return rec;
}

TEST(Paf, WritesTwelveTabSeparatedColumns) {
  std::ostringstream out;
  write_paf(out, {sample_record()});
  EXPECT_EQ(out.str(),
            "read_1\t10000\t0\t1000\t+\tcontig_7\t4500\t1200\t2200\t950\t"
            "1000\t60\n");
}

TEST(Paf, RoundTrips) {
  std::vector<PafRecord> records{sample_record()};
  records.push_back(sample_record());
  records[1].strand = '-';
  records[1].query_name = "read_2";

  std::ostringstream out;
  write_paf(out, records);
  std::istringstream in(out.str());
  EXPECT_EQ(read_paf(in), records);
}

TEST(Paf, SkipsEmptyLinesAndToleratesExtraTags) {
  std::istringstream in(
      "\nr\t100\t0\t50\t+\tt\t200\t10\t60\t45\t50\t30\ttp:A:P\tcm:i:12\n");
  const auto records = read_paf(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].matches, 45u);
  EXPECT_EQ(records[0].mapq, 30u);
}

TEST(Paf, ThrowsOnTooFewColumns) {
  std::istringstream in("r\t100\t0\t50\t+\tt\t200\t10\t60\t45\t50\n");
  EXPECT_THROW((void)read_paf(in), std::runtime_error);
}

TEST(Paf, ThrowsOnBadStrand) {
  std::istringstream in("r\t100\t0\t50\tx\tt\t200\t10\t60\t45\t50\t30\n");
  EXPECT_THROW((void)read_paf(in), std::runtime_error);
}

TEST(Paf, ThrowsOnNonNumericColumn) {
  std::istringstream in("r\tlen\t0\t50\t+\tt\t200\t10\t60\t45\t50\t30\n");
  EXPECT_THROW((void)read_paf(in), std::runtime_error);
}

}  // namespace
}  // namespace jem::io
