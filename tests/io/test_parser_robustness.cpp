// Failure-injection / robustness tests: the parsers must never crash or
// hang on arbitrary input — every byte stream either parses or throws the
// module's error type.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "io/fasta.hpp"
#include "io/gzip.hpp"
#include "io/mapping_writer.hpp"
#include "io/paf.hpp"
#include "util/prng.hpp"

namespace jem::io {
namespace {

std::string random_bytes(util::Xoshiro256ss& rng, std::size_t length) {
  std::string data(length, '\0');
  for (char& c : data) c = static_cast<char>(rng.bounded(256));
  return data;
}

std::string random_printable(util::Xoshiro256ss& rng, std::size_t length) {
  // Bias toward the structural characters the parsers care about.
  constexpr std::string_view kAlphabet =
      ">@+ACGTN\t\n 0123456789abcdefPS*-";
  std::string data(length, ' ');
  for (char& c : data) {
    c = kAlphabet[rng.bounded(kAlphabet.size())];
  }
  return data;
}

TEST(ParserRobustness, SequencesParserNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string data = trial % 2 == 0
                                 ? random_bytes(rng, rng.bounded(500))
                                 : random_printable(rng, rng.bounded(500));
    std::istringstream in(data);
    try {
      const auto records = read_sequences(in);
      for (const SequenceRecord& rec : records) {
        EXPECT_FALSE(rec.name.empty());
      }
    } catch (const ParseError&) {
      // Expected for malformed input.
    }
  }
}

TEST(ParserRobustness, MappingReaderNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_printable(rng, rng.bounded(400)));
    try {
      (void)read_mappings(in);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(ParserRobustness, PafReaderNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_printable(rng, rng.bounded(400)));
    try {
      (void)read_paf(in);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(ParserRobustness, GzipDecompressorNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string data = random_bytes(rng, 10 + rng.bounded(300));
    // Half the trials lead with the gzip magic to exercise the inflater.
    if (trial % 2 == 0 && data.size() >= 2) {
      data[0] = '\x1f';
      data[1] = '\x8b';
    }
    if (is_gzip(data)) {
      EXPECT_THROW((void)gzip_decompress(data), std::runtime_error);
    }
  }
}

TEST(ParserRobustness, TruncatedFastqAlwaysThrows) {
  const std::string full = "@r1\nACGT\n+\nIIII\n";
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    try {
      const auto records = read_fastq(in);
      // A prefix that happens to parse must contain at most the one record.
      EXPECT_LE(records.size(), 1u);
    } catch (const ParseError&) {
    }
  }
}

TEST(ParserRobustness, TruncatedGzipThrowsAtEveryCutPoint) {
  const std::string payload = ">r1\nACGTACGTACGTACGT\n>r2\nTTTTGGGGCCCCAAAA\n";
  const std::string full = gzip_compress(payload);
  ASSERT_EQ(gzip_decompress(full), payload);
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    EXPECT_THROW((void)gzip_decompress(full.substr(0, cut)),
                 std::runtime_error)
        << "cut at byte " << cut << " of " << full.size();
  }
}

TEST(ParserRobustness, ReadSequencesFileOnTruncatedGzipThrowsParseError) {
  const std::string payload = ">r1\nACGTACGTACGT\n";
  const std::string full = gzip_compress(payload);
  const std::string path = ::testing::TempDir() + "/jem_truncated.fa.gz";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(),
              static_cast<std::streamsize>(full.size() / 2));  // cut in half
  }
  EXPECT_THROW((void)read_sequences_file(path), ParseError);
}

TEST(ParserRobustness, CrlfFastaAndFastqParseIdenticallyToLf) {
  std::istringstream fasta("  \r\n>r1 extra\r\nACGT\r\nTTTT\r\n>r2\r\nGGGG\r\n");
  const auto fa = read_sequences(fasta);
  ASSERT_EQ(fa.size(), 2u);
  EXPECT_EQ(fa[0].name, "r1");
  EXPECT_EQ(fa[0].bases, "ACGTTTTT");
  EXPECT_EQ(fa[1].bases, "GGGG");

  std::istringstream fastq("@q1\r\nACGT\r\n+\r\nIIII\r\n");
  const auto fq = read_sequences(fastq);
  ASSERT_EQ(fq.size(), 1u);
  EXPECT_EQ(fq[0].name, "q1");
  EXPECT_EQ(fq[0].bases, "ACGT");
}

TEST(ParserRobustness, MidRecordEofFastaThrowsNeverAborts) {
  // A header with no sequence — at the end or the middle — is an error the
  // caller can catch, not a crash or a silently empty record.
  for (const char* broken : {">r1\n", ">r1\nACGT\n>r2\n", ">r1\n>r2\nACGT\n"}) {
    std::istringstream in(broken);
    EXPECT_THROW((void)read_fasta(in), ParseError) << "input: " << broken;
  }
  // But a final record missing only the trailing newline is fine.
  std::istringstream ok(">r1\nACGT");
  const auto records = read_fasta(ok);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bases, "ACGT");
}

}  // namespace
}  // namespace jem::io
