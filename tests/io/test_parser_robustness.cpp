// Failure-injection / robustness tests: the parsers must never crash or
// hang on arbitrary input — every byte stream either parses or throws the
// module's error type.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/fasta.hpp"
#include "io/gzip.hpp"
#include "io/mapping_writer.hpp"
#include "io/paf.hpp"
#include "util/prng.hpp"

namespace jem::io {
namespace {

std::string random_bytes(util::Xoshiro256ss& rng, std::size_t length) {
  std::string data(length, '\0');
  for (char& c : data) c = static_cast<char>(rng.bounded(256));
  return data;
}

std::string random_printable(util::Xoshiro256ss& rng, std::size_t length) {
  // Bias toward the structural characters the parsers care about.
  constexpr std::string_view kAlphabet =
      ">@+ACGTN\t\n 0123456789abcdefPS*-";
  std::string data(length, ' ');
  for (char& c : data) {
    c = kAlphabet[rng.bounded(kAlphabet.size())];
  }
  return data;
}

TEST(ParserRobustness, SequencesParserNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string data = trial % 2 == 0
                                 ? random_bytes(rng, rng.bounded(500))
                                 : random_printable(rng, rng.bounded(500));
    std::istringstream in(data);
    try {
      const auto records = read_sequences(in);
      for (const SequenceRecord& rec : records) {
        EXPECT_FALSE(rec.name.empty());
      }
    } catch (const ParseError&) {
      // Expected for malformed input.
    }
  }
}

TEST(ParserRobustness, MappingReaderNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_printable(rng, rng.bounded(400)));
    try {
      (void)read_mappings(in);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(ParserRobustness, PafReaderNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_printable(rng, rng.bounded(400)));
    try {
      (void)read_paf(in);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(ParserRobustness, GzipDecompressorNeverCrashesOnGarbage) {
  util::Xoshiro256ss rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string data = random_bytes(rng, 10 + rng.bounded(300));
    // Half the trials lead with the gzip magic to exercise the inflater.
    if (trial % 2 == 0 && data.size() >= 2) {
      data[0] = '\x1f';
      data[1] = '\x8b';
    }
    if (is_gzip(data)) {
      EXPECT_THROW((void)gzip_decompress(data), std::runtime_error);
    }
  }
}

TEST(ParserRobustness, TruncatedFastqAlwaysThrows) {
  const std::string full = "@r1\nACGT\n+\nIIII\n";
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    try {
      const auto records = read_fastq(in);
      // A prefix that happens to parse must contain at most the one record.
      EXPECT_LE(records.size(), 1u);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace jem::io
