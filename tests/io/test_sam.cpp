#include "io/sam.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/string_util.hpp"

namespace jem::io {
namespace {

TEST(Sam, HeaderListsEveryReference) {
  SequenceSet refs;
  refs.add("contig_0", "ACGTACGT");
  refs.add("contig_1", "ACGTACGTACGT");
  std::ostringstream out;
  write_sam_header(out, refs, "test-prog");
  const std::string header = out.str();
  EXPECT_NE(header.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(header.find("@SQ\tSN:contig_0\tLN:8"), std::string::npos);
  EXPECT_NE(header.find("@SQ\tSN:contig_1\tLN:12"), std::string::npos);
  EXPECT_NE(header.find("@PG\tID:test-prog"), std::string::npos);
}

TEST(Sam, RecordHasElevenMandatoryColumns) {
  SamRecord rec;
  rec.qname = "read_1/P";
  rec.flag = SamRecord::kReverse;
  rec.rname = "contig_3";
  rec.pos = 1201;
  rec.mapq = 60;
  rec.cigar = "5S95M";
  rec.seq = "ACGT";
  std::ostringstream out;
  write_sam_records(out, {rec});
  const std::string line = out.str();
  const auto fields =
      util::split(std::string_view(line).substr(0, line.size() - 1), '\t');
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(fields[0], "read_1/P");
  EXPECT_EQ(fields[1], "16");
  EXPECT_EQ(fields[2], "contig_3");
  EXPECT_EQ(fields[3], "1201");
  EXPECT_EQ(fields[4], "60");
  EXPECT_EQ(fields[5], "5S95M");
  EXPECT_EQ(fields[6], "*");
  EXPECT_EQ(fields[9], "ACGT");
  EXPECT_EQ(fields[10], "*");
}

TEST(Sam, DefaultsMarkUnplacedRecords) {
  SamRecord rec;
  rec.qname = "q";
  rec.flag = SamRecord::kUnmapped;
  std::ostringstream out;
  write_sam_records(out, {rec});
  EXPECT_NE(out.str().find("q\t4\t*\t0\t255\t*"), std::string::npos);
}

}  // namespace
}  // namespace jem::io
