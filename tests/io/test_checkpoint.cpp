#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "util/fault_plan.hpp"

namespace jem::io {
namespace {

constexpr std::size_t kHeaderSize = 56;
constexpr std::size_t kRecordSize = 40;

JournalFingerprint test_fp() {
  JournalFingerprint fp;
  fp.words = {0x1111, 0x2222, 0x3333, 0x4444};
  return fp;
}

JournalRecord make_record(std::uint64_t batch) {
  JournalRecord record;
  record.batch_index = batch;
  record.records_done = (batch + 1) * 10;
  record.output_bytes = (batch + 1) * 100;
  record.output_hash = 0xabc0 + batch;
  return record;
}

ArtifactReason reason_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ArtifactError& error) {
    return error.reason();
  }
  ADD_FAILURE() << "expected an ArtifactError";
  return ArtifactReason::kIoError;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void overwrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/jem_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    remove_journal(path_);
  }
  void TearDown() override { remove_journal(path_); }

  std::string path_;
};

TEST_F(CheckpointTest, FreshJournalResumesAtZero) {
  CheckpointWriter::create(path_, test_fp()).close();
  const ResumePoint resume = read_journal(path_, test_fp());
  EXPECT_TRUE(resume.fresh());
  EXPECT_EQ(resume.batches_done, 0u);
  EXPECT_EQ(resume.torn_records, 0u);
}

TEST_F(CheckpointTest, RecordsRoundTrip) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    for (std::uint64_t b = 0; b < 3; ++b) writer.append(make_record(b));
    EXPECT_EQ(writer.records_appended(), 3u);
  }
  const ResumePoint resume = read_journal(path_, test_fp());
  EXPECT_EQ(resume.batches_done, 3u);
  EXPECT_EQ(resume.records_done, 30u);
  EXPECT_EQ(resume.output_bytes, 300u);
  EXPECT_EQ(resume.output_hash, 0xabc2u);
  EXPECT_EQ(resume.torn_records, 0u);
}

TEST_F(CheckpointTest, MissingJournalIsOpenFailed) {
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kOpenFailed);
}

TEST_F(CheckpointTest, ForeignFileIsBadMagic) {
  overwrite(path_, std::string(kHeaderSize, 'x'));
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kBadMagic);
}

TEST_F(CheckpointTest, ShortHeaderIsTruncated) {
  overwrite(path_, "JEMCKPT1short");
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kTruncated);
}

TEST_F(CheckpointTest, CorruptHeaderFailsItsChecksum) {
  CheckpointWriter::create(path_, test_fp()).close();
  std::string bytes = slurp(path_);
  bytes[20] ^= char(0x01);  // inside the fingerprint words
  overwrite(path_, bytes);
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kChecksumMismatch);
}

TEST_F(CheckpointTest, WrongFingerprintIsStale) {
  CheckpointWriter::create(path_, test_fp()).close();
  JournalFingerprint other = test_fp();
  other.words[2] ^= 1;
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, other); }),
            ArtifactReason::kStaleJournal);
}

TEST_F(CheckpointTest, TornTailRecordIsDiscardedNotFatal) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    writer.append(make_record(0));
    writer.append(make_record(1));
  }
  // A crash mid-append leaves a short tail; whatever its length, the last
  // durable record wins.
  for (const std::size_t torn_len : {1ul, 17ul, kRecordSize - 1}) {
    std::string bytes = slurp(path_);
    bytes.resize(kHeaderSize + 2 * kRecordSize);  // reset to two records
    bytes.append(torn_len, '\x5a');
    overwrite(path_, bytes);
    const ResumePoint resume = read_journal(path_, test_fp());
    EXPECT_EQ(resume.batches_done, 2u) << "torn tail of " << torn_len;
    EXPECT_EQ(resume.torn_records, 1u);
    EXPECT_EQ(resume.output_bytes, 200u);
  }
}

TEST_F(CheckpointTest, FullSizeCorruptTailIsAlsoDiscarded) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    writer.append(make_record(0));
    writer.append(make_record(1));
  }
  std::string bytes = slurp(path_);
  bytes.back() ^= char(0x01);  // last record's checksum no longer matches
  overwrite(path_, bytes);
  const ResumePoint resume = read_journal(path_, test_fp());
  EXPECT_EQ(resume.batches_done, 1u);
  EXPECT_EQ(resume.torn_records, 1u);
}

TEST_F(CheckpointTest, MidFileCorruptionIsFatal) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    for (std::uint64_t b = 0; b < 3; ++b) writer.append(make_record(b));
  }
  std::string bytes = slurp(path_);
  bytes[kHeaderSize + kRecordSize + 3] ^= char(0x01);  // record #1, not tail
  overwrite(path_, bytes);
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kChecksumMismatch);
}

TEST_F(CheckpointTest, NonContiguousBatchesAreStale) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    writer.append(make_record(0));
    writer.append(make_record(2));  // batch 1 never journaled
  }
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kStaleJournal);
}

TEST_F(CheckpointTest, ReopenContinuesOnARecordBoundary) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    writer.append(make_record(0));
    writer.append(make_record(1));
  }
  {  // simulate the crash remainder reopen() must truncate away
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("torn", 4);
  }
  const ResumePoint resume = read_journal(path_, test_fp());
  ASSERT_EQ(resume.batches_done, 2u);
  ASSERT_EQ(resume.torn_records, 1u);
  {
    CheckpointWriter writer =
        CheckpointWriter::reopen(path_, test_fp(), resume);
    EXPECT_EQ(writer.records_appended(), 2u);
    writer.append(make_record(2));
  }
  const ResumePoint after = read_journal(path_, test_fp());
  EXPECT_EQ(after.batches_done, 3u);
  EXPECT_EQ(after.torn_records, 0u);
  EXPECT_EQ(after.output_bytes, 300u);
}

TEST_F(CheckpointTest, ReopenRejectsAJournalThatChangedSinceValidation) {
  CheckpointWriter::create(path_, test_fp()).close();
  ResumePoint claimed;
  claimed.batches_done = 5;  // the journal on disk has zero records
  EXPECT_EQ(reason_of([&] {
              (void)CheckpointWriter::reopen(path_, test_fp(), claimed);
            }),
            ArtifactReason::kStaleJournal);
}

TEST_F(CheckpointTest, AppendAfterCloseIsIoError) {
  CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
  writer.close();
  EXPECT_EQ(reason_of([&] { writer.append(make_record(0)); }),
            ArtifactReason::kIoError);
}

TEST_F(CheckpointTest, OutputStateProviderFillsRecords) {
  {
    CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
    writer.set_output_state([] {
      return std::pair<std::uint64_t, std::uint64_t>{777, 0xdeadULL};
    });
    writer.append_batch(0, 12);
  }
  const ResumePoint resume = read_journal(path_, test_fp());
  EXPECT_EQ(resume.records_done, 12u);
  EXPECT_EQ(resume.output_bytes, 777u);
  EXPECT_EQ(resume.output_hash, 0xdeadULL);
}

// --- "ckpt.write" fault site -----------------------------------------------

TEST_F(CheckpointTest, AbortFaultTearsAPartialRecord) {
  util::FaultPlan plan;
  plan.abort_at(0, "ckpt.write", 1);
  util::FaultInjector injector(&plan, 0);

  CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
  writer.set_fault_injector(&injector);
  writer.append(make_record(0));
  EXPECT_THROW(writer.append(make_record(1)), util::FaultAbort);
  writer.close();

  // Half a record reached the disk — exactly the crash artifact resume
  // tolerates.
  EXPECT_EQ(slurp(path_).size(), kHeaderSize + kRecordSize + kRecordSize / 2);
  const ResumePoint resume = read_journal(path_, test_fp());
  EXPECT_EQ(resume.batches_done, 1u);
  EXPECT_EQ(resume.torn_records, 1u);
}

TEST_F(CheckpointTest, DropFaultMakesTheJournalFailClosed) {
  util::FaultPlan plan;
  plan.drop_at(0, "ckpt.write", 1);
  util::FaultInjector injector(&plan, 0);

  CheckpointWriter writer = CheckpointWriter::create(path_, test_fp());
  writer.set_fault_injector(&injector);
  writer.append(make_record(0));
  writer.append(make_record(1));  // silently lost
  writer.append(make_record(2));
  EXPECT_EQ(writer.records_appended(), 2u);
  writer.close();

  // The hole (batch 0, then batch 2) must refuse to resume — splicing over
  // a missing batch would drop its output.
  EXPECT_EQ(reason_of([&] { (void)read_journal(path_, test_fp()); }),
            ArtifactReason::kStaleJournal);
}

}  // namespace
}  // namespace jem::io
