#include "io/stream_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jem::io {
namespace {

TEST(StreamReader, ReadsFastaRecordsOneByOne) {
  std::istringstream in(">a first\nACGT\nAC\n>b\nTTTT\n");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "a");
  EXPECT_EQ(rec.comment, "first");
  EXPECT_EQ(rec.bases, "ACGTAC");
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "b");
  EXPECT_EQ(rec.bases, "TTTT");
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(StreamReader, ReadsFastqRecordsOneByOne) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nGG\n+\nJJ\n");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "r1");
  EXPECT_EQ(rec.quality, "IIII");
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.name, "r2");
  EXPECT_FALSE(reader.next(rec));
}

TEST(StreamReader, MatchesWholeFileReader) {
  std::ostringstream data;
  for (int i = 0; i < 50; ++i) {
    data << ">seq" << i << "\nACGTACGTACGT\nGG\n";
  }
  std::istringstream whole(data.str());
  const auto expected = read_fasta(whole);

  std::istringstream streamed(data.str());
  SequenceStreamReader reader(streamed);
  SequenceRecord rec;
  std::size_t index = 0;
  while (reader.next(rec)) {
    ASSERT_LT(index, expected.size());
    EXPECT_EQ(rec.name, expected[index].name);
    EXPECT_EQ(rec.bases, expected[index].bases);
    ++index;
  }
  EXPECT_EQ(index, expected.size());
}

TEST(StreamReader, BatchesRespectLimit) {
  std::ostringstream data;
  for (int i = 0; i < 25; ++i) data << ">s" << i << "\nACGT\n";
  std::istringstream in(data.str());
  SequenceStreamReader reader(in);

  std::size_t total = 0;
  std::size_t batches = 0;
  while (true) {
    const SequenceSet batch = reader.next_batch(10);
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 10u);
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(batches, 3u);  // 10 + 10 + 5
}

TEST(StreamReader, EmptyInputYieldsNothing) {
  std::istringstream in("   \n ");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  EXPECT_FALSE(reader.next(rec));
  EXPECT_TRUE(reader.next_batch(10).empty());
}

TEST(StreamReader, ThrowsOnUnknownFormat) {
  std::istringstream in("#comment\n");
  EXPECT_THROW(SequenceStreamReader reader(in), ParseError);
}

TEST(StreamReader, ThrowsOnTruncatedFastq) {
  std::istringstream in("@r1\nACGT\n+\n");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  EXPECT_THROW((void)reader.next(rec), ParseError);
}

TEST(StreamReader, ThrowsOnEmptyFastaRecord) {
  std::istringstream in(">a\n>b\nACGT\n");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  EXPECT_THROW((void)reader.next(rec), ParseError);
}

TEST(StreamReader, HandlesCrlf) {
  std::istringstream in(">a\r\nACGT\r\n");
  SequenceStreamReader reader(in);
  SequenceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.bases, "ACGT");
}

}  // namespace
}  // namespace jem::io
