#include "io/sequence_set.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jem::io {
namespace {

TEST(SequenceSet, StartsEmpty) {
  SequenceSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.total_bases(), 0u);
}

TEST(SequenceSet, AddReturnsDenseIds) {
  SequenceSet set;
  EXPECT_EQ(set.add("a", "ACGT"), 0u);
  EXPECT_EQ(set.add("b", "GG"), 1u);
  EXPECT_EQ(set.add("c", "T"), 2u);
  EXPECT_EQ(set.size(), 3u);
}

TEST(SequenceSet, RetrievesNamesAndBases) {
  SequenceSet set;
  set.add("a", "ACGT");
  set.add("b", "GGCC");
  EXPECT_EQ(set.name(0), "a");
  EXPECT_EQ(set.bases(0), "ACGT");
  EXPECT_EQ(set.name(1), "b");
  EXPECT_EQ(set.bases(1), "GGCC");
}

TEST(SequenceSet, TracksLengthsAndTotals) {
  SequenceSet set;
  set.add("a", "ACGT");
  set.add("b", "GG");
  EXPECT_EQ(set.length(0), 4u);
  EXPECT_EQ(set.length(1), 2u);
  EXPECT_EQ(set.total_bases(), 6u);
}

TEST(SequenceSet, ThrowsOnBadId) {
  SequenceSet set;
  set.add("a", "ACGT");
  EXPECT_THROW((void)set.bases(1), std::out_of_range);
  EXPECT_THROW((void)set.length(5), std::out_of_range);
}

TEST(SequenceSet, FindLocatesByName) {
  SequenceSet set;
  set.add("alpha", "A");
  set.add("beta", "C");
  EXPECT_EQ(set.find("beta"), 1u);
  EXPECT_EQ(set.find("gamma"), kInvalidSeqId);
}

TEST(SequenceSet, LengthStatsMatchHandComputation) {
  SequenceSet set;
  set.add("a", std::string(2, 'A'));
  set.add("b", std::string(4, 'C'));
  set.add("c", std::string(6, 'G'));
  const auto stats = set.length_stats();
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_NEAR(stats.stddev, 1.632993, 1e-5);  // population stddev
  EXPECT_EQ(stats.min, 2u);
  EXPECT_EQ(stats.max, 6u);
}

TEST(SequenceSet, LengthStatsEmptySetIsZero) {
  SequenceSet set;
  const auto stats = set.length_stats();
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(SequenceSet, AddAllCopiesRecords) {
  std::vector<SequenceRecord> records;
  records.push_back({"a", "", "AC", ""});
  records.push_back({"b", "", "GT", ""});
  SequenceSet set;
  set.add_all(records);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.bases(1), "GT");
}

TEST(SequenceSet, ViewsStableAfterLoadingCompletes) {
  SequenceSet set;
  set.reserve(3, 12);
  set.add("a", "AAAA");
  set.add("b", "CCCC");
  set.add("c", "GGGG");
  const auto view_a = set.bases(0);
  const auto view_c = set.bases(2);
  EXPECT_EQ(view_a, "AAAA");
  EXPECT_EQ(view_c, "GGGG");
}

TEST(SequenceSet, HandlesManySmallSequences) {
  SequenceSet set;
  for (int i = 0; i < 10000; ++i) {
    set.add("s" + std::to_string(i), "ACGT");
  }
  EXPECT_EQ(set.size(), 10000u);
  EXPECT_EQ(set.total_bases(), 40000u);
  EXPECT_EQ(set.bases(9999), "ACGT");
}

}  // namespace
}  // namespace jem::io
