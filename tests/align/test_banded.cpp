#include "align/banded.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::align {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("ACGT", "AGGT"), 1u);
  EXPECT_EQ(edit_distance("ACGT", "CGT"), 1u);
  EXPECT_EQ(edit_distance("ACGT", "ACGGT"), 1u);
}

TEST(EditDistance, IsSymmetric) {
  util::Xoshiro256ss rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::string a = random_dna(rng, 30 + rng.bounded(40));
    const std::string b = random_dna(rng, 30 + rng.bounded(40));
    EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  }
}

TEST(EditDistance, SatisfiesTriangleInequalityOnSamples) {
  util::Xoshiro256ss rng(2);
  for (int i = 0; i < 10; ++i) {
    const std::string a = random_dna(rng, 25);
    const std::string b = random_dna(rng, 25);
    const std::string c = random_dna(rng, 25);
    EXPECT_LE(edit_distance(a, c),
              edit_distance(a, b) + edit_distance(b, c));
  }
}

TEST(EditDistance, BoundedByLengthDifferenceAndMaxLength) {
  util::Xoshiro256ss rng(3);
  const std::string a = random_dna(rng, 40);
  const std::string b = random_dna(rng, 55);
  const std::uint64_t d = edit_distance(a, b);
  EXPECT_GE(d, 15u);  // length difference lower bound
  EXPECT_LE(d, 55u);  // max length upper bound
}

TEST(BandedEditDistance, MatchesFullDpWithinBand) {
  util::Xoshiro256ss rng(4);
  for (int i = 0; i < 25; ++i) {
    std::string a = random_dna(rng, 60);
    std::string b = a;
    // Introduce a handful of edits.
    const int edits = static_cast<int>(rng.bounded(6));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.bounded(b.size());
      b[pos] = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
    }
    const std::uint64_t exact = edit_distance(a, b);
    const auto banded = banded_edit_distance(a, b, 10);
    ASSERT_TRUE(banded.has_value());
    EXPECT_EQ(*banded, exact);
  }
}

TEST(BandedEditDistance, ReturnsNulloptWhenDistanceExceedsBand) {
  const std::string a(50, 'A');
  const std::string b(50, 'T');
  EXPECT_FALSE(banded_edit_distance(a, b, 10).has_value());
}

TEST(BandedEditDistance, LengthGapBeyondBandShortCircuits) {
  const std::string a(10, 'A');
  const std::string b(40, 'A');
  EXPECT_FALSE(banded_edit_distance(a, b, 5).has_value());
}

TEST(BandedEditDistance, ZeroBandIsHammingLikeExactMatch) {
  EXPECT_EQ(banded_edit_distance("ACGT", "ACGT", 0).value(), 0u);
  EXPECT_FALSE(banded_edit_distance("ACGT", "ACGA", 0).has_value());
}

TEST(SemiglobalAlign, FindsExactSubstring) {
  util::Xoshiro256ss rng(5);
  const std::string subject = random_dna(rng, 500);
  const std::string query = subject.substr(200, 100);
  const SemiglobalResult result = semiglobal_align(query, subject);
  EXPECT_EQ(result.edit_distance, 0u);
  EXPECT_DOUBLE_EQ(result.identity, 1.0);
  EXPECT_EQ(result.subject_begin, 200u);
  EXPECT_EQ(result.subject_end, 300u);
}

TEST(SemiglobalAlign, ToleratesMutationsInQuery) {
  util::Xoshiro256ss rng(6);
  const std::string subject = random_dna(rng, 400);
  std::string query = subject.substr(100, 120);
  query[10] = query[10] == 'A' ? 'C' : 'A';
  query[60] = query[60] == 'G' ? 'T' : 'G';
  const SemiglobalResult result = semiglobal_align(query, subject);
  EXPECT_EQ(result.edit_distance, 2u);
  EXPECT_NEAR(result.identity, 1.0 - 2.0 / 120.0, 1e-9);
}

TEST(SemiglobalAlign, HandlesIndels) {
  util::Xoshiro256ss rng(7);
  const std::string subject = random_dna(rng, 300);
  std::string query = subject.substr(50, 100);
  query.erase(30, 1);          // deletion
  query.insert(70, 1, 'A');    // insertion
  const SemiglobalResult result = semiglobal_align(query, subject);
  EXPECT_LE(result.edit_distance, 3u);
  EXPECT_GT(result.identity, 0.95);
}

TEST(SemiglobalAlign, EmptyQueryIsPerfect) {
  const SemiglobalResult result = semiglobal_align("", "ACGT");
  EXPECT_EQ(result.edit_distance, 0u);
  EXPECT_DOUBLE_EQ(result.identity, 1.0);
}

TEST(SemiglobalAlign, EmptySubjectCostsWholeQuery) {
  const SemiglobalResult result = semiglobal_align("ACGT", "");
  EXPECT_EQ(result.edit_distance, 4u);
}

TEST(SemiglobalAlign, UnrelatedSequencesScoreLow) {
  util::Xoshiro256ss rng(8);
  const std::string subject = random_dna(rng, 300);
  const std::string query = random_dna(rng, 100);
  const SemiglobalResult result = semiglobal_align(query, subject);
  EXPECT_LT(result.identity, 0.75);
}

TEST(LocalAlign, FindsExactSubstring) {
  util::Xoshiro256ss rng(20);
  const std::string subject = random_dna(rng, 400);
  const std::string query = subject.substr(150, 100);
  const LocalResult result = local_align(query, subject);
  EXPECT_EQ(result.score, 100);
  EXPECT_EQ(result.matches, 100u);
  EXPECT_EQ(result.columns, 100u);
  EXPECT_DOUBLE_EQ(result.identity(), 1.0);
  EXPECT_EQ(result.subject_begin, 150u);
  EXPECT_EQ(result.subject_end, 250u);
  EXPECT_EQ(result.query_begin, 0u);
  EXPECT_EQ(result.query_end, 100u);
}

TEST(LocalAlign, PartialOverlapScoresOnlyTheOverlap) {
  // Query = 50 bp of subject + 50 bp of unrelated sequence. The local
  // alignment must cover (roughly) the shared half at ~100 % identity —
  // BLAST semantics, unlike semiglobal which would force the junk to align.
  util::Xoshiro256ss rng(21);
  const std::string subject = random_dna(rng, 300);
  const std::string query = subject.substr(100, 50) + random_dna(rng, 50);
  const LocalResult result = local_align(query, subject);
  EXPECT_GE(result.matches, 45u);
  EXPECT_GT(result.identity(), 0.9);
  EXPECT_LE(result.query_begin, 5u);
  EXPECT_LE(result.query_end, 70u);  // junk half mostly excluded
}

TEST(LocalAlign, ToleratesScatteredMismatches) {
  util::Xoshiro256ss rng(22);
  const std::string subject = random_dna(rng, 500);
  std::string query = subject.substr(100, 200);
  for (std::size_t pos : {20u, 80u, 150u}) {
    query[pos] = query[pos] == 'A' ? 'C' : 'A';
  }
  const LocalResult result = local_align(query, subject);
  EXPECT_GT(result.identity(), 0.95);
  EXPECT_GE(result.columns, 180u);
}

TEST(LocalAlign, UnrelatedSequencesGiveLowIdentity) {
  util::Xoshiro256ss rng(23);
  const std::string a = random_dna(rng, 200);
  const std::string b = random_dna(rng, 200);
  const LocalResult result = local_align(a, b);
  // Random DNA can chain matches through gaps (net ~0 score per skip), so
  // alignments may be long — but their identity stays far below that of a
  // true homolog.
  EXPECT_LT(result.identity(), 0.8);
  EXPECT_LT(result.score, 60);
}

TEST(LocalAlign, EmptyInputsScoreZero) {
  EXPECT_EQ(local_align("", "ACGT").score, 0);
  EXPECT_EQ(local_align("ACGT", "").score, 0);
  EXPECT_DOUBLE_EQ(local_align("", "").identity(), 0.0);
}

TEST(LocalAlign, MatchesCannotExceedColumns) {
  util::Xoshiro256ss rng(24);
  for (int i = 0; i < 10; ++i) {
    const std::string a = random_dna(rng, 100);
    const std::string b = random_dna(rng, 120);
    const LocalResult result = local_align(a, b);
    EXPECT_LE(result.matches, result.columns);
    EXPECT_LE(result.query_begin, result.query_end);
    EXPECT_LE(result.subject_begin, result.subject_end);
    EXPECT_LE(result.query_end, a.size());
    EXPECT_LE(result.subject_end, b.size());
  }
}

TEST(LocalAlign, HandlesIndelInQuery) {
  util::Xoshiro256ss rng(25);
  const std::string subject = random_dna(rng, 300);
  std::string query = subject.substr(50, 150);
  query.erase(75, 2);  // 2 bp deletion
  const LocalResult result = local_align(query, subject);
  EXPECT_GT(result.identity(), 0.95);
  EXPECT_GE(result.columns, 140u);
}

TEST(CigarAlign, ExactMatchIsPureM) {
  util::Xoshiro256ss rng(30);
  const std::string subject = random_dna(rng, 300);
  const std::string query = subject.substr(100, 80);
  const CigarResult result = local_align_cigar(query, subject);
  ASSERT_EQ(result.cigar.size(), 1u);
  EXPECT_EQ(result.cigar[0].op, 'M');
  EXPECT_EQ(result.cigar[0].length, 80u);
  EXPECT_EQ(cigar_string(result.cigar), "80M");
}

TEST(CigarAlign, SoftClipsCoverUnalignedQueryEnds) {
  util::Xoshiro256ss rng(31);
  const std::string subject = random_dna(rng, 300);
  // Flanks of 'N' can never match an ACGT subject, so the clips are exact.
  const std::string query =
      std::string(30, 'N') + subject.substr(50, 80) + std::string(20, 'N');
  const CigarResult result = local_align_cigar(query, subject);
  ASSERT_EQ(result.cigar.size(), 3u);
  EXPECT_EQ(result.cigar.front().op, 'S');
  EXPECT_EQ(result.cigar.front().length, 30u);
  EXPECT_EQ(result.cigar[1].op, 'M');
  EXPECT_EQ(result.cigar[1].length, 80u);
  EXPECT_EQ(result.cigar.back().op, 'S');
  EXPECT_EQ(result.cigar.back().length, 20u);
  EXPECT_EQ(cigar_query_span(result.cigar), query.size());
}

TEST(CigarAlign, RandomFlanksStillMostlyClipped) {
  // With random (alignable) flanks the local alignment may creep a few
  // columns past the homology, but most of each flank must stay clipped.
  util::Xoshiro256ss rng(34);
  const std::string subject = random_dna(rng, 300);
  const std::string query =
      random_dna(rng, 30) + subject.substr(50, 80) + random_dna(rng, 20);
  const CigarResult result = local_align_cigar(query, subject);
  EXPECT_EQ(cigar_query_span(result.cigar), query.size());
  EXPECT_GT(result.local.identity(), 0.8);
  EXPECT_LE(result.local.query_begin, 30u);
  EXPECT_GE(result.local.query_end, 110u);
}

TEST(CigarAlign, IndelsAppearAsIAndD) {
  util::Xoshiro256ss rng(32);
  const std::string subject = random_dna(rng, 400);
  std::string query = subject.substr(100, 150);
  query.erase(50, 3);          // 3 bp deletion -> D
  query.insert(100, "ACGT");   // 4 bp insertion -> I
  const CigarResult result = local_align_cigar(query, subject);
  bool has_i = false;
  bool has_d = false;
  for (const CigarOp& op : result.cigar) {
    if (op.op == 'I') has_i = true;
    if (op.op == 'D') has_d = true;
  }
  EXPECT_TRUE(has_i);
  EXPECT_TRUE(has_d);
  EXPECT_EQ(cigar_query_span(result.cigar), query.size());
  // Subject span equals the aligned window on the subject.
  EXPECT_EQ(cigar_subject_span(result.cigar),
            result.local.subject_end - result.local.subject_begin);
}

TEST(CigarAlign, SpansAreConsistentOnRandomPairs) {
  util::Xoshiro256ss rng(33);
  for (int i = 0; i < 20; ++i) {
    const std::string a = random_dna(rng, 50 + rng.bounded(150));
    const std::string b = random_dna(rng, 50 + rng.bounded(150));
    const CigarResult result = local_align_cigar(a, b);
    if (result.cigar.empty()) continue;  // score-0 alignment
    EXPECT_EQ(cigar_query_span(result.cigar), a.size());
    EXPECT_EQ(cigar_subject_span(result.cigar),
              result.local.subject_end - result.local.subject_begin);
  }
}

TEST(CigarAlign, EmptyCigarRendersAsStar) {
  EXPECT_EQ(cigar_string({}), "*");
  EXPECT_EQ(cigar_string({{'S', 5}, {'M', 90}, {'I', 1}}), "5S90M1I");
}

TEST(SemiglobalAlign, WindowBoundsAreConsistent) {
  util::Xoshiro256ss rng(9);
  const std::string subject = random_dna(rng, 400);
  const std::string query = subject.substr(120, 80);
  const SemiglobalResult result = semiglobal_align(query, subject);
  EXPECT_LE(result.subject_begin, result.subject_end);
  EXPECT_LE(result.subject_end, subject.size());
}

}  // namespace
}  // namespace jem::align
