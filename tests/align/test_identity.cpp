#include "align/identity.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/dna.hpp"
#include "sim/hifi_reads.hpp"
#include "util/prng.hpp"

namespace jem::align {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

IdentityParams dense_params() {
  IdentityParams params;
  params.minimizer = {16, 10};  // denser minimizers for short test subjects
  return params;
}

TEST(SegmentIdentity, ExactSegmentScoresNearOne) {
  util::Xoshiro256ss rng(101);
  const std::string subject = random_dna(rng, 5000);
  const std::string segment = subject.substr(2000, 1000);
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->identity, 1.0);
  EXPECT_FALSE(result->reverse);
  EXPECT_NEAR(static_cast<double>(result->subject_begin), 2000.0, 50.0);
}

TEST(SegmentIdentity, ReverseComplementSegmentIsDetected) {
  util::Xoshiro256ss rng(102);
  const std::string subject = random_dna(rng, 5000);
  const std::string segment =
      core::reverse_complement(subject.substr(1500, 1000));
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->reverse);
  EXPECT_DOUBLE_EQ(result->identity, 1.0);
}

TEST(SegmentIdentity, HiFiErrorsGiveHighIdentity) {
  util::Xoshiro256ss rng(103);
  const std::string subject = random_dna(rng, 6000);
  sim::HiFiParams error_model;
  error_model.error_rate = 0.001;
  const std::string segment =
      sim::apply_hifi_errors(subject.substr(2500, 1000), error_model, 7);
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->identity, 0.99);
}

TEST(SegmentIdentity, ModeratelyDivergedSegmentScoresBetween) {
  util::Xoshiro256ss rng(104);
  const std::string subject = random_dna(rng, 5000);
  sim::HiFiParams error_model;
  error_model.error_rate = 0.05;  // 5 % divergence
  const std::string segment =
      sim::apply_hifi_errors(subject.substr(1000, 1000), error_model, 8);
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->identity, 0.85);
  EXPECT_LT(result->identity, 0.99);
}

TEST(SegmentIdentity, UnrelatedSegmentHasNoAnchor) {
  util::Xoshiro256ss rng(105);
  const std::string subject = random_dna(rng, 3000);
  const std::string segment = random_dna(rng, 1000);
  const auto result = segment_identity(segment, subject, dense_params());
  // No shared 16-mers (w.h.p.): no anchor, or an anchored-but-poor score.
  if (result.has_value()) {
    EXPECT_LT(result->identity, 0.7);
  }
}

TEST(SegmentIdentity, EmptySegmentHasNoAnchor) {
  EXPECT_FALSE(segment_identity("", "ACGTACGTACGTACGTACGT", dense_params())
                   .has_value());
}

TEST(SegmentIdentity, CigarAccompaniesTheAlignment) {
  util::Xoshiro256ss rng(107);
  const std::string subject = random_dna(rng, 4000);
  const std::string segment = subject.substr(1200, 1000);
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->cigar.empty());
  EXPECT_EQ(cigar_query_span(result->cigar), segment.size());
  EXPECT_EQ(cigar_subject_span(result->cigar),
            result->subject_end - result->subject_begin);
  EXPECT_EQ(cigar_string(result->cigar), "1000M");
}

TEST(SegmentIdentity, BoundsStayInsideSubject) {
  util::Xoshiro256ss rng(106);
  const std::string subject = random_dna(rng, 4000);
  const std::string segment = subject.substr(3200, 800);  // near the end
  const auto result = segment_identity(segment, subject, dense_params());
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->subject_end, subject.size());
  EXPECT_LE(result->subject_begin, result->subject_end);
}

}  // namespace
}  // namespace jem::align
