#include "core/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dna.hpp"
#include "core/index_serde.hpp"
#include "util/prng.hpp"

namespace jem::core {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

/// Expects `fn` to throw ServiceError(kInvalidArgument) naming `field`.
template <typename Fn>
void expect_invalid(Fn&& fn, std::string_view field) {
  try {
    (void)fn();
    FAIL() << "expected ServiceError naming field '" << field << "'";
  } catch (const ServiceError& error) {
    EXPECT_EQ(error.code(), ServiceErrorCode::kInvalidArgument);
    EXPECT_EQ(error.field(), field);
  }
}

TEST(ServiceConfigBuilder, DefaultsMatchThePaper) {
  const ServiceConfig config = ServiceConfig::make().build();
  EXPECT_EQ(config.params.k, 16);
  EXPECT_EQ(config.params.w, 100);
  EXPECT_EQ(config.params.trials, 30);
  EXPECT_EQ(config.params.segment_length, 1000u);
  EXPECT_EQ(config.scheme, SketchScheme::kJem);
  EXPECT_EQ(config.params.ordering, MinimizerOrdering::kLexicographic);
}

TEST(ServiceConfigBuilder, EveryInvalidFieldIsNamed) {
  expect_invalid([] { return ServiceConfig::make().k(0).build(); }, "k");
  expect_invalid([] { return ServiceConfig::make().k(33).build(); }, "k");
  expect_invalid([] { return ServiceConfig::make().window(0).build(); }, "w");
  expect_invalid([] { return ServiceConfig::make().trials(0).build(); },
                 "trials");
  expect_invalid([] { return ServiceConfig::make().trials(5000).build(); },
                 "trials");
  expect_invalid(
      [] { return ServiceConfig::make().segment_length(0).build(); },
      "segment");
  expect_invalid([] { return ServiceConfig::make().min_votes(0).build(); },
                 "min-votes");
  expect_invalid(
      [] { return ServiceConfig::make().trials(8).min_votes(9).build(); },
      "min-votes");
  expect_invalid(
      [] { return ServiceConfig::make().ordering("zigzag").build(); },
      "ordering");
  expect_invalid([] { return ServiceConfig::make().scheme("sha256").build(); },
                 "scheme");
}

TEST(ServiceConfigBuilder, StringKnobsMatchTheCli) {
  const ServiceConfig hashed =
      ServiceConfig::make().ordering("hash").scheme("minhash").build();
  EXPECT_EQ(hashed.params.ordering, MinimizerOrdering::kRandomHash);
  EXPECT_EQ(hashed.scheme, SketchScheme::kClassicMinhash);
}

TEST(MapServiceRequestBuilder, ValidatesShape) {
  expect_invalid([] { return MapServiceRequest::make().build(); }, "sequence");
  expect_invalid(
      [] {
        return MapServiceRequest::make().sequence("ACGT").top_x(0).build();
      },
      "top_x");
  const MapServiceRequest request =
      MapServiceRequest::make().sequence("ACGT").top_x(3).min_votes(2).build();
  EXPECT_EQ(request.sequence, "ACGT");
  EXPECT_EQ(request.top_x, 3u);
  ASSERT_TRUE(request.min_votes.has_value());
  EXPECT_EQ(*request.min_votes, 2u);
}

/// Small deterministic genome/contigs/queries shared by the service tests.
class MappingServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(4242);
    genome_ = random_dna(rng, 40'000);
    io::SequenceSet subjects;
    for (int i = 0; i < 8; ++i) {
      subjects.add("contig_" + std::to_string(i),
                   genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    subjects_copy_ = subjects;
    config_ = ServiceConfig::make()
                  .k(16)
                  .window(20)
                  .trials(16)
                  .segment_length(800)
                  .seed(7)
                  .build();
    service_.emplace(std::move(subjects), config_);

    util::Xoshiro256ss query_rng(9);
    for (int i = 0; i < 12; ++i) {
      const std::size_t pos = query_rng.bounded(35'000);
      queries_.push_back(genome_.substr(pos, 800));
    }
  }

  std::string genome_;
  io::SequenceSet subjects_copy_;
  ServiceConfig config_;
  std::optional<MappingService> service_;
  std::vector<std::string> queries_;
};

TEST_F(MappingServiceTest, MapMatchesMapSegmentBitIdentically) {
  const JemMapper& mapper = service_->engine().mapper();
  MapScratch scratch = service_->make_scratch();
  for (const std::string& query : queries_) {
    const MapResult expected = mapper.map_segment(query, scratch);
    const MapServiceResponse response =
        service_->map(MapServiceRequest::make().sequence(query).build());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.trials, 16u);
    if (expected.mapped()) {
      ASSERT_EQ(response.hits.size(), 1u);
      EXPECT_EQ(response.hits[0].subject, expected.subject);
      EXPECT_EQ(response.hits[0].votes, expected.votes);
      EXPECT_EQ(response.hits[0].subject_name,
                service_->subjects().name(expected.subject));
    } else {
      EXPECT_TRUE(response.hits.empty());
    }
  }
}

TEST_F(MappingServiceTest, BatchIsBitIdenticalToSingleShot) {
  std::vector<MapServiceRequest> requests;
  for (const std::string& query : queries_) {
    requests.push_back(MapServiceRequest::make().sequence(query).build());
  }
  const std::vector<MapServiceResponse> batched =
      service_->map_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const MapServiceResponse single = service_->map(requests[i]);
    EXPECT_EQ(batched[i], single) << "request " << i;
  }
}

TEST_F(MappingServiceTest, TopXRespectsMinVotesOverride) {
  const JemMapper& mapper = service_->engine().mapper();
  MapScratch scratch = service_->make_scratch();
  for (const std::string& query : queries_) {
    const std::vector<MapResult> expected =
        mapper.map_segment_topx(query, 4, scratch);
    const MapServiceResponse response = service_->map(
        MapServiceRequest::make().sequence(query).top_x(4).build());
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.hits.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.hits[i].subject, expected[i].subject);
      EXPECT_EQ(response.hits[i].votes, expected[i].votes);
    }

    // A min_votes override must trim exactly the below-threshold suffix.
    if (!expected.empty()) {
      const std::uint32_t floor = expected.front().votes;
      const MapServiceResponse trimmed =
          service_->map(MapServiceRequest::make()
                            .sequence(query)
                            .top_x(4)
                            .min_votes(floor)
                            .build());
      ASSERT_TRUE(trimmed.ok());
      for (const MapServiceHit& hit : trimmed.hits) {
        EXPECT_GE(hit.votes, floor);
      }
    }
  }
}

TEST_F(MappingServiceTest, MinVotesBelowConfiguredFloorIsRejected) {
  ServiceConfig strict = ServiceConfig::make()
                             .k(16)
                             .window(20)
                             .trials(16)
                             .segment_length(800)
                             .seed(7)
                             .min_votes(3)
                             .build();
  const MappingService strict_service(subjects_copy_, strict);
  MapServiceRequest request =
      MapServiceRequest::make().sequence(queries_[0]).build();
  request.min_votes = 2;  // below the configured floor of 3
  expect_invalid([&] { return strict_service.map(request); }, "min_votes");
}

TEST_F(MappingServiceTest, ExpiredDeadlineIsAContainedFailure) {
  MapScratch scratch = service_->make_scratch();
  const MapServiceRequest request =
      MapServiceRequest::make().sequence(queries_[0]).build();
  const MapServiceResponse response = service_->map(
      request, scratch,
      MappingService::Clock::now() - std::chrono::milliseconds(1));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.failure->code, ServiceErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(response.hits.empty());

  // Per-entry deadlines in a batch: only the expired entry fails.
  std::vector<MapServiceRequest> requests(2, request);
  const std::vector<MappingService::Clock::time_point> deadlines = {
      MappingService::Clock::now() - std::chrono::milliseconds(1),
      MappingService::Clock::time_point::max()};
  const auto responses = service_->map_batch(requests, deadlines);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok());
  EXPECT_EQ(responses[0].failure->code, ServiceErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(responses[1].ok());
}

TEST_F(MappingServiceTest, FromIndexLoadsAndFallsBackGracefully) {
  const std::string dir = ::testing::TempDir();
  const std::string index_path = dir + "/service_test.jemidx";
  save_index(index_path, service_->engine().mapper().table(), config_.params,
             config_.scheme, service_->subjects());

  MappingService loaded =
      MappingService::from_index(index_path, subjects_copy_, config_);
  EXPECT_TRUE(loaded.load_report().loaded_from_artifact);
  EXPECT_TRUE(loaded.load_report().rejection.empty());

  const std::string bogus_path = dir + "/service_test_bogus.jemidx";
  {
    std::ofstream out(bogus_path);
    out << "this is not an index artifact";
  }
  MappingService rebuilt =
      MappingService::from_index(bogus_path, subjects_copy_, config_);
  EXPECT_FALSE(rebuilt.load_report().loaded_from_artifact);
  EXPECT_FALSE(rebuilt.load_report().rejection.empty());

  // Loaded, rebuilt, and fresh services answer bit-identically.
  for (const std::string& query : queries_) {
    const MapServiceRequest request =
        MapServiceRequest::make().sequence(query).build();
    const MapServiceResponse fresh = service_->map(request);
    EXPECT_EQ(loaded.map(request), fresh);
    EXPECT_EQ(rebuilt.map(request), fresh);
  }
}

}  // namespace
}  // namespace jem::core
