#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dna.hpp"
#include "core/service.hpp"
#include "serve/client.hpp"
#include "util/prng.hpp"

namespace jem::serve {
namespace {

using core::MapServiceRequest;
using core::MapServiceResponse;

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

/// A small service + live loopback server per fixture. Every test talks to
/// it through the real client, so the socket path is exercised end to end.
class MappingServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(321);
    genome_ = random_dna(rng, 30'000);
    io::SequenceSet subjects;
    for (int i = 0; i < 6; ++i) {
      subjects.add("contig_" + std::to_string(i),
                   genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    config_ = core::ServiceConfig::make()
                  .k(16)
                  .window(20)
                  .trials(16)
                  .segment_length(800)
                  .seed(11)
                  .build();
    service_.emplace(std::move(subjects), config_);

    util::Xoshiro256ss query_rng(17);
    for (int i = 0; i < 8; ++i) {
      const std::size_t pos = query_rng.bounded(25'000);
      queries_.push_back(genome_.substr(pos, 800));
    }
  }

  void start_server(ServerConfig config = {}) {
    config.port = 0;  // ephemeral
    server_.emplace(*service_, config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  [[nodiscard]] HttpResponse post_map(const std::string& sequence,
                                      const std::string& params = "") {
    return http_post("127.0.0.1", server_->port(), "/map" + params, sequence);
  }

  std::string genome_;
  core::ServiceConfig config_;
  std::optional<core::MappingService> service_;
  std::optional<MappingServer> server_;
  std::vector<std::string> queries_;
};

TEST_F(MappingServerTest, HealthzReportsServiceState) {
  start_server();
  const HttpResponse response =
      http_get("127.0.0.1", server_->port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"subjects\":6"), std::string::npos);
  EXPECT_NE(response.body.find("\"index\":\"rebuilt\""), std::string::npos);
}

TEST_F(MappingServerTest, MetricsServeTheRegistrySnapshot) {
  start_server();
  (void)post_map(queries_[0]);
  const HttpResponse response =
      http_get("127.0.0.1", server_->port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(response.body.find("serve.http.requests"), std::string::npos);
  EXPECT_NE(response.body.find("serve.endpoint.map.latency_ns"),
            std::string::npos);
}

TEST_F(MappingServerTest, MapResponseMatchesSingleShotService) {
  start_server();
  for (const std::string& query : queries_) {
    const MapServiceResponse expected =
        service_->map(MapServiceRequest::make().sequence(query).build());
    const HttpResponse response = post_map(query);
    ASSERT_EQ(response.status, 200);
    if (expected.mapped()) {
      const std::string fragment =
          "{\"subject\":\"" + expected.hits[0].subject_name +
          "\",\"votes\":" + std::to_string(expected.hits[0].votes) + "}";
      EXPECT_NE(response.body.find(fragment), std::string::npos)
          << response.body;
      EXPECT_NE(response.body.find("\"mapped\":true"), std::string::npos);
    } else {
      EXPECT_NE(response.body.find("\"mapped\":false"), std::string::npos);
    }
  }
}

TEST_F(MappingServerTest, MicroBatchedResponsesAreBitIdentical) {
  ServerConfig config;
  config.max_batch = 8;
  config.batch_window = std::chrono::microseconds(2000);
  start_server(config);

  // Fire every query concurrently so the batcher actually coalesces, then
  // check each response against the single-shot service answer.
  std::vector<HttpResponse> responses(queries_.size());
  std::vector<std::thread> clients;
  clients.reserve(queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = post_map(queries_[i]); });
  }
  for (std::thread& client : clients) client.join();

  for (std::size_t i = 0; i < queries_.size(); ++i) {
    ASSERT_EQ(responses[i].status, 200) << responses[i].body;
    const MapServiceResponse expected = service_->map(
        MapServiceRequest::make().sequence(queries_[i]).build());
    if (expected.mapped()) {
      const std::string fragment =
          "{\"subject\":\"" + expected.hits[0].subject_name +
          "\",\"votes\":" + std::to_string(expected.hits[0].votes) + "}";
      EXPECT_NE(responses[i].body.find(fragment), std::string::npos)
          << responses[i].body;
    }
  }
  const auto snapshot = server_->registry().snapshot();
  const auto* batches = snapshot.find("serve.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_GE(batches->value, 1u);
}

TEST_F(MappingServerTest, RoutingErrorsAreStructured) {
  start_server();
  const HttpResponse missing =
      http_get("127.0.0.1", server_->port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("\"error\":\"invalid-argument\""),
            std::string::npos);

  const HttpResponse wrong_method =
      http_get("127.0.0.1", server_->port(), "/map");
  EXPECT_EQ(wrong_method.status, 405);

  const HttpResponse empty_body = post_map("");
  EXPECT_EQ(empty_body.status, 400);
  EXPECT_NE(empty_body.body.find("\"field\":\"sequence\""), std::string::npos);

  const HttpResponse bad_param = post_map(queries_[0], "?top_x=banana");
  EXPECT_EQ(bad_param.status, 400);
  EXPECT_NE(bad_param.body.find("\"field\":\"top_x\""), std::string::npos);
}

TEST_F(MappingServerTest, ExpiredDeadlineIsGatewayTimeout) {
  // Gate the batcher so the deadline lapses while the request is queued.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  ServerConfig config;
  config.batch_hook = [&] {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  start_server(config);

  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    {
      std::lock_guard lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
  });
  const HttpResponse response = post_map(queries_[0], "?deadline_ms=1");
  opener.join();
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("\"error\":\"deadline-exceeded\""),
            std::string::npos);

  const auto snapshot = server_->registry().snapshot();
  const auto* expired = snapshot.find("serve.deadline.expired");
  ASSERT_NE(expired, nullptr);
  EXPECT_GE(expired->value, 1u);
}

TEST_F(MappingServerTest, FullWorkQueueShedsWith503RetryAfter) {
  // max_batch 1 + gated batcher: request A blocks inside the hook, request
  // B fills the capacity-1 work queue, request C must shed.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> in_hook{0};
  ServerConfig config;
  config.max_batch = 1;
  config.work_capacity = 1;
  config.retry_after_s = 7;
  config.batch_hook = [&] {
    in_hook.fetch_add(1);
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  start_server(config);

  std::thread first([&] { (void)post_map(queries_[0]); });
  // Wait until A is inside the hook, so B deterministically lands in the
  // work queue instead of being popped by the batcher.
  while (in_hook.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread second([&] { (void)post_map(queries_[1]); });
  // B's enqueue is visible as the work-depth gauge going to 1.
  const auto depth_is_one = [&] {
    const auto snapshot = server_->registry().snapshot();
    const auto* depth = snapshot.find("serve.work.depth");
    return depth != nullptr && depth->level >= 1;
  };
  for (int i = 0; i < 2000 && !depth_is_one(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(depth_is_one());

  const HttpResponse shed = post_map(queries_[2]);
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("\"error\":\"overloaded\""), std::string::npos);
  bool has_retry_after = false;
  for (const auto& [name, value] : shed.headers) {
    if (name == "retry-after") {
      has_retry_after = true;
      EXPECT_EQ(value, "7");
    }
  }
  EXPECT_TRUE(has_retry_after);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  first.join();
  second.join();

  const auto snapshot = server_->registry().snapshot();
  const auto* sheds = snapshot.find("serve.http.shed");
  ASSERT_NE(sheds, nullptr);
  EXPECT_GE(sheds->value, 1u);
}

TEST_F(MappingServerTest, CacheHitsEvictionsAndCollisionKeying) {
  ServerConfig config;
  config.cache_capacity = 2;
  start_server(config);

  const HttpResponse miss = post_map(queries_[0]);
  ASSERT_EQ(miss.status, 200);
  EXPECT_NE(miss.body.find("\"cache\":\"miss\""), std::string::npos);

  const HttpResponse hit = post_map(queries_[0]);
  ASSERT_EQ(hit.status, 200);
  EXPECT_NE(hit.body.find("\"cache\":\"hit\""), std::string::npos);
  // Apart from the cache marker, hit and miss answers are byte-identical.
  std::string normalized_miss = miss.body;
  std::string normalized_hit = hit.body;
  const auto strip = [](std::string& text) {
    const std::size_t at = text.find("\"cache\":\"");
    const std::size_t end = text.find('"', at + 9);
    text.erase(at, end - at + 1);
  };
  strip(normalized_miss);
  strip(normalized_hit);
  EXPECT_EQ(normalized_miss, normalized_hit);

  // Same sequence, different top_x: a distinct cache key, so no false hit.
  const HttpResponse other_key = post_map(queries_[0], "?top_x=3");
  ASSERT_EQ(other_key.status, 200);
  EXPECT_NE(other_key.body.find("\"cache\":\"miss\""), std::string::npos);

  // Capacity 2: two more distinct keys evict the oldest entry.
  (void)post_map(queries_[1]);
  const HttpResponse evicted = post_map(queries_[0]);
  EXPECT_NE(evicted.body.find("\"cache\":\"miss\""), std::string::npos);

  const auto snapshot = server_->registry().snapshot();
  const auto* hits = snapshot.find("serve.cache.hits");
  const auto* evictions = snapshot.find("serve.cache.evictions");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(evictions, nullptr);
  EXPECT_GE(hits->value, 1u);
  EXPECT_GE(evictions->value, 1u);
}

/// Many clients, mixed endpoints, while the server micro-batches — the test
/// the TSan configuration leans on for the serve layer's thread safety.
TEST_F(MappingServerTest, ConcurrentClientsAllSucceed) {
  ServerConfig config;
  config.workers = 4;
  config.max_batch = 4;
  start_server(config);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        try {
          if (i % 3 == 2) {
            const HttpResponse response =
                http_get("127.0.0.1", server_->port(), "/healthz");
            if (response.status != 200) failures.fetch_add(1);
          } else {
            const HttpResponse response = post_map(
                queries_[static_cast<std::size_t>(t + i) % queries_.size()]);
            if (response.status != 200) failures.fetch_add(1);
          }
        } catch (const ClientError&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);

  server_->stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(MappingServerTest, StopIsGracefulAndIdempotent) {
  start_server();
  ASSERT_TRUE(server_->running());
  (void)post_map(queries_[0]);
  server_->stop();
  EXPECT_FALSE(server_->running());
  server_->stop();  // idempotent
  // The port is released: a fresh server can bind and serve again.
  server_.reset();
  start_server();
  EXPECT_EQ(post_map(queries_[0]).status, 200);
}

}  // namespace
}  // namespace jem::serve
