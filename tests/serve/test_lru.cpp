#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>

namespace jem::serve {
namespace {

TEST(LruCache, HitMissAndTallies) {
  LruCache<std::string, int> cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", 1);
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  ASSERT_TRUE(cache.get("a").has_value());  // a becomes most recent
  cache.put("c", 3);                        // evicts b, not a
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutOverwritesAndRefreshes) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // overwrite refreshes recency; no eviction
  cache.put("c", 3);   // evicts b
  EXPECT_EQ(cache.size(), 2u);
  const auto value = cache.get("a");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 10);
  EXPECT_FALSE(cache.contains("b"));
}

/// Every key lands in the same bucket: correctness must come from full-key
/// comparison, never from the digest (the collision-safety contract the
/// serve layer's sequence-digest keying depends on).
struct CollidingHash {
  std::size_t operator()(const std::string&) const noexcept { return 42; }
};

TEST(LruCache, DigestCollisionsNeverCrossWires) {
  LruCache<std::string, std::string, CollidingHash> cache(8);
  cache.put("ACGT", "subject_1");
  cache.put("TGCA", "subject_2");
  cache.put("AAAA", "subject_3");

  const auto first = cache.get("ACGT");
  const auto second = cache.get("TGCA");
  const auto third = cache.get("AAAA");
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(*first, "subject_1");
  EXPECT_EQ(*second, "subject_2");
  EXPECT_EQ(*third, "subject_3");
  EXPECT_FALSE(cache.get("GGGG").has_value());  // same bucket, no false hit
}

TEST(LruCache, ClearDropsEverything) {
  LruCache<std::string, int> cache(4);
  cache.put("a", 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains("a"));
}

TEST(LruCache, ZeroCapacityClampsToOne) {
  LruCache<std::string, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("b"));
}

}  // namespace
}  // namespace jem::serve
