// Resilience of the serve path's socket edge and the resilient client
// (docs/serve.md "Failure modes & recovery"):
//  * byte-dribbled requests and mid-request disconnects at every byte
//    boundary — the server's read loop must tolerate arbitrary TCP
//    segmentation and abandoned connections without leaking a worker;
//  * parser rejections are answered over the wire (431/413/400) before the
//    connection closes, and tallied in serve.http.rejected.*;
//  * CircuitBreaker state machine, scripted with injected time (no sleeps);
//  * serve::Client retry semantics against a server running an explicit
//    fault plan: resets retried only when idempotent, 500s retried, a dead
//    server trips the breaker open.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dna.hpp"
#include "core/service.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "util/fault_plan.hpp"
#include "util/prng.hpp"

namespace jem::serve {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// CircuitBreaker: pure state machine, scripted time.

CircuitBreaker::Clock::time_point at_ms(std::int64_t ms) {
  return CircuitBreaker::Clock::time_point(milliseconds(ms));
}

TEST(CircuitBreakerTest, ClosedTripsToOpenAtThreshold) {
  CircuitBreaker breaker({.failure_threshold = 3,
                          .cooldown = milliseconds(100),
                          .half_open_successes = 1});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(at_ms(0)));
  breaker.on_failure(at_ms(1));
  breaker.on_failure(at_ms(2));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  breaker.on_failure(at_ms(3));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  // Open: nothing is admitted before the cooldown lapses.
  EXPECT_FALSE(breaker.allow(at_ms(50)));
  EXPECT_FALSE(breaker.allow(at_ms(102)));
  EXPECT_EQ(breaker.retry_at(), at_ms(103));
}

TEST(CircuitBreakerTest, OpenAdmitsHalfOpenProbeAfterCooldown) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .cooldown = milliseconds(100),
                          .half_open_successes = 1});
  breaker.on_failure(at_ms(0));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.allow(at_ms(100)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_success(at_ms(101));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensWithFreshCooldown) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .cooldown = milliseconds(100),
                          .half_open_successes = 1});
  breaker.on_failure(at_ms(0));
  ASSERT_TRUE(breaker.allow(at_ms(100)));
  breaker.on_failure(at_ms(105));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // The cooldown restarts from the re-open instant, not the original trip.
  EXPECT_FALSE(breaker.allow(at_ms(150)));
  EXPECT_EQ(breaker.retry_at(), at_ms(205));
  EXPECT_TRUE(breaker.allow(at_ms(205)));
}

TEST(CircuitBreakerTest, HalfOpenNeedsConfiguredSuccessesToClose) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .cooldown = milliseconds(10),
                          .half_open_successes = 2});
  breaker.on_failure(at_ms(0));
  ASSERT_TRUE(breaker.allow(at_ms(10)));
  breaker.on_success(at_ms(11));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.on_success(at_ms(12));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, SuccessResetsClosedFailureCount) {
  CircuitBreaker breaker({.failure_threshold = 3,
                          .cooldown = milliseconds(10),
                          .half_open_successes = 1});
  breaker.on_failure(at_ms(0));
  breaker.on_failure(at_ms(1));
  breaker.on_success(at_ms(2));
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.on_failure(at_ms(3));
  breaker.on_failure(at_ms(4));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(CircuitBreaker::state_name(CircuitBreaker::State::kClosed),
            "closed");
  EXPECT_EQ(CircuitBreaker::state_name(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(CircuitBreaker::state_name(CircuitBreaker::State::kHalfOpen),
            "half-open");
}

// ---------------------------------------------------------------------------
// Live-server tests: raw socket helpers for byte-level control.

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

/// Blocking loopback connect; returns -1 on failure.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_bytes(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string recv_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

class ServeResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(321);
    genome_ = random_dna(rng, 30'000);
    io::SequenceSet subjects;
    for (int i = 0; i < 6; ++i) {
      subjects.add("contig_" + std::to_string(i),
                   genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    const core::ServiceConfig config = core::ServiceConfig::make()
                                           .k(16)
                                           .window(20)
                                           .trials(16)
                                           .segment_length(800)
                                           .seed(11)
                                           .build();
    service_.emplace(std::move(subjects), config);
    query_ = genome_.substr(2000, 800);
  }

  void start_server(ServerConfig config = {}) {
    config.port = 0;
    server_.emplace(*service_, config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  [[nodiscard]] std::string map_wire(std::string_view body) const {
    HttpRequest request;
    request.method = "POST";
    request.target = "/map";
    request.body = std::string(body);
    return serialize_request(request, "127.0.0.1");
  }

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) {
    const auto snapshot = server_->registry().snapshot();
    const auto* metric = snapshot.find(std::string(name));
    return metric == nullptr ? 0 : metric->value;
  }

  std::string genome_;
  std::string query_;
  std::optional<core::MappingService> service_;
  std::optional<MappingServer> server_;
};

TEST_F(ServeResilienceTest, ByteDribbledRequestStillParses) {
  start_server();
  const std::string wire = map_wire(query_);
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  // One byte per send: the worst TCP segmentation a client can produce.
  for (char byte : wire) {
    ASSERT_TRUE(send_bytes(fd, std::string_view(&byte, 1)));
  }
  const std::string raw = recv_to_eof(fd);
  ::close(fd);
  const ResponseParse parsed = parse_response(raw, /*eof=*/true);
  ASSERT_EQ(parsed.status, ParseStatus::kComplete) << parsed.error;
  EXPECT_EQ(parsed.response.status, 200);
  EXPECT_NE(parsed.response.body.find("\"mapped\""), std::string::npos);
}

TEST_F(ServeResilienceTest, DisconnectAtEveryByteBoundaryLeaksNothing) {
  start_server();
  // Short query keeps the wire small enough to cut at every boundary.
  const std::string wire = map_wire(query_.substr(0, 48));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const int fd = connect_to(server_->port());
    ASSERT_GE(fd, 0) << "cut=" << cut;
    ASSERT_TRUE(send_bytes(fd, std::string_view(wire).substr(0, cut)))
        << "cut=" << cut;
    ::close(fd);  // abandon mid-request
  }
  // Every worker survived: a complete request still round-trips, and the
  // server still drains cleanly.
  const HttpResponse response =
      http_post("127.0.0.1", server_->port(), "/map", query_);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(server_->worker_restarts(), 0u);
  server_->stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServeResilienceTest, OversizedHeaderBlockIsAnswered431) {
  start_server();
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  const std::string head =
      "GET /healthz HTTP/1.1\r\nx-pad: " + std::string(70'000, 'a');
  ASSERT_TRUE(send_bytes(fd, head));
  const std::string raw = recv_to_eof(fd);
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 431", 0), 0u) << raw.substr(0, 64);
  EXPECT_NE(raw.find("\"error\":\"invalid-argument\""), std::string::npos);
  EXPECT_EQ(counter_value("serve.http.rejected.head"), 1u);
}

TEST_F(ServeResilienceTest, OversizedDeclaredBodyIsAnswered413) {
  start_server();
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  // Declared length over the 1 MiB limit: rejected from the head alone,
  // before any body bytes are transferred.
  ASSERT_TRUE(send_bytes(fd,
                         "POST /map HTTP/1.1\r\nhost: x\r\n"
                         "content-length: 2097152\r\n\r\n"));
  const std::string raw = recv_to_eof(fd);
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 413", 0), 0u) << raw.substr(0, 64);
  EXPECT_EQ(counter_value("serve.http.rejected.body"), 1u);
}

TEST_F(ServeResilienceTest, MalformedRequestLineIsAnswered400) {
  start_server();
  const int fd = connect_to(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_bytes(fd, "BOGUS\r\n\r\n"));
  const std::string raw = recv_to_eof(fd);
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 400", 0), 0u) << raw.substr(0, 64);
  EXPECT_EQ(counter_value("serve.http.rejected.malformed"), 1u);
}

// ---------------------------------------------------------------------------
// Resilient client against scripted server faults.

TEST_F(ServeResilienceTest, ClientRetriesConnectionResetWhenIdempotent) {
  util::FaultPlan plan;
  plan.drop_at(util::FaultPlan::kAnyRank, "serve.read", 0);  // first conn RST
  ServerConfig config;
  config.fault_plan = &plan;
  start_server(config);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(10);
  Client client("127.0.0.1", server_->port(), policy);
  const HttpResponse response = client.post("/map", query_);
  EXPECT_EQ(response.status, 200);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(counter_value("serve.chaos.injected.reset"), 1u);
  server_.reset();  // the plan is a test-body local: join workers first
}

TEST_F(ServeResilienceTest, ClientDoesNotRetryResetWhenNonIdempotent) {
  util::FaultPlan plan;
  plan.drop_at(util::FaultPlan::kAnyRank, "serve.read", 0);
  ServerConfig config;
  config.fault_plan = &plan;
  start_server(config);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = milliseconds(1);
  Client client("127.0.0.1", server_->port(), policy);
  EXPECT_THROW((void)client.post("/map", query_, /*idempotent=*/false),
               ClientError);
  EXPECT_EQ(client.retries(), 0u);
  // The same client still works once the scripted fault is spent.
  EXPECT_EQ(client.post("/map", query_).status, 200);
  server_.reset();  // the plan is a test-body local: join workers first
}

TEST_F(ServeResilienceTest, ClientRetriesInjected500FromWorkerAbort) {
  util::FaultPlan plan;
  plan.abort_at(util::FaultPlan::kAnyRank, "serve.write", 0);
  ServerConfig config;
  config.fault_plan = &plan;
  start_server(config);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(1);
  obs::Registry client_metrics;
  Client client("127.0.0.1", server_->port(), policy, {}, &client_metrics);
  // First response is replaced by a structured 500 and the worker dies;
  // the retry lands on a healthy (or respawned) worker.
  const HttpResponse response = client.post("/map", query_);
  EXPECT_EQ(response.status, 200);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(client.attempts(), 2u);
  // The supervisor respawns the aborted worker.
  for (int i = 0; i < 2000 && server_->worker_restarts() == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_GE(server_->worker_restarts(), 1u);
  const auto snapshot = client_metrics.snapshot();
  const auto* attempts = snapshot.find("serve.client.attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_GE(attempts->value, 2u);
  server_.reset();  // the plan is a test-body local: join workers first
}

TEST_F(ServeResilienceTest, BreakerOpensWhenEveryConnectionDies) {
  util::FaultPlan plan;
  plan.drop_at(util::FaultPlan::kAnyRank, "serve.read",
               util::FaultPlan::kAnyInvocation);  // every connection RST
  ServerConfig config;
  config.fault_plan = &plan;
  start_server(config);

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(5);
  policy.overall_deadline = milliseconds(500);
  CircuitBreaker::Config breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown = milliseconds(60'000);  // will not lapse in-test
  Client client("127.0.0.1", server_->port(), policy, breaker);

  EXPECT_THROW((void)client.get("/healthz"), ClientError);
  EXPECT_EQ(client.breaker_state(), CircuitBreaker::State::kOpen);
  // An open breaker whose cooldown outlasts the deadline fails fast
  // instead of hammering the dead dependency.
  const auto before = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.get("/healthz"), ClientError);
  EXPECT_LT(std::chrono::steady_clock::now() - before, milliseconds(5'000));
  server_.reset();  // the plan is a test-body local: join workers first
}

}  // namespace
}  // namespace jem::serve
