// End-to-end request observability on a live loopback server: trace-context
// propagation (client log, server access log, flight record and response
// header all naming the same trace id), the Chrome-trace span tree, the
// /debug/requests flight endpoint, /metrics content negotiation, and the
// windowed SLO section of /healthz decaying after a load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dna.hpp"
#include "core/service.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"

namespace jem::serve {
namespace {

std::string random_dna(util::Xoshiro256ss& rng, std::size_t length) {
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

class ServeObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256ss rng(321);
    genome_ = random_dna(rng, 30'000);
    io::SequenceSet subjects;
    for (int i = 0; i < 6; ++i) {
      subjects.add("contig_" + std::to_string(i),
                   genome_.substr(static_cast<std::size_t>(i) * 5000, 5000));
    }
    const core::ServiceConfig config = core::ServiceConfig::make()
                                           .k(16)
                                           .window(20)
                                           .trials(16)
                                           .segment_length(800)
                                           .seed(11)
                                           .build();
    service_.emplace(std::move(subjects), config);
    util::Xoshiro256ss query_rng(17);
    for (int i = 0; i < 8; ++i) {
      const std::size_t pos = query_rng.bounded(25'000);
      queries_.push_back(genome_.substr(pos, 800));
    }
  }

  void start_server(ServerConfig config = {}) {
    config.port = 0;  // ephemeral
    server_.emplace(*service_, config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  [[nodiscard]] HttpResponse get(const std::string& target,
                                 std::vector<std::pair<std::string,
                                                       std::string>>
                                     headers = {}) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    request.headers = std::move(headers);
    return http_request("127.0.0.1", server_->port(), request);
  }

  std::string genome_;
  std::optional<core::MappingService> service_;
  std::optional<MappingServer> server_;
  std::vector<std::string> queries_;
};

/// Extracts `"key":{...}` (one nesting level) from a JSON body.
std::string json_section(const std::string& body, const std::string& key) {
  const std::size_t at = body.find("\"" + key + "\":{");
  if (at == std::string::npos) return {};
  const std::size_t open = body.find('{', at);
  const std::size_t close = body.find('}', open);
  return body.substr(open, close - open + 1);
}

// The acceptance test of the tentpole: ONE trace id in the client's debug
// log, the server's access log, the flight-recorder record, and the
// x-jem-request-id response header.
TEST_F(ServeObservabilityTest, TraceIdFlowsThroughClientServerFlightAndHeader) {
  start_server();
  const util::LogLevel saved = util::Log::level();
  util::Log::set_level(util::LogLevel::kDebug);
  (void)util::Log::begin_capture();

  Client client("127.0.0.1", server_->port());
  const HttpResponse response = client.post("/map?top_x=1", queries_[0]);
  const std::string captured = util::Log::end_capture();
  util::Log::set_level(saved);

  ASSERT_EQ(response.status, 200);
  const obs::TraceContext trace = client.last_trace();
  ASSERT_EQ(trace.trace_id.size(), 32u);

  // Client log line.
  EXPECT_NE(captured.find("serve client: POST /map?top_x=1 200 trace=" +
                          trace.trace_id),
            std::string::npos)
      << captured;
  // Server access log line (same trace, server-minted request id).
  EXPECT_NE(captured.find("serve: POST /map 200 trace=" + trace.trace_id),
            std::string::npos)
      << captured;

  // Response header: <trace_id>-<request_id>, trace id preserved.
  const std::string* echoed = response.header("x-jem-request-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(echoed->substr(0, 32), trace.trace_id);
  ASSERT_EQ(echoed->size(), 32u + 1 + 16u);
  const std::string request_id = echoed->substr(33);

  // Flight record carries both ids.
  const HttpResponse flight = get("/debug/requests");
  ASSERT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("\"trace_id\":\"" + trace.trace_id + "\""),
            std::string::npos)
      << flight.body;
  EXPECT_NE(flight.body.find("\"request_id\":\"" + request_id + "\""),
            std::string::npos);
}

TEST_F(ServeObservabilityTest, ChromeTraceExportShowsOneConnectedSpanTree) {
  obs::Tracer tracer;
  ServerConfig config;
  config.tracer = &tracer;
  start_server(config);

  Client client("127.0.0.1", server_->port());
  client.set_tracer(&tracer);
  const HttpResponse response = client.post("/map?top_x=1", queries_[0]);
  ASSERT_EQ(response.status, 200);
  const std::string id = client.last_trace().trace_id;

  const obs::TraceSnapshot snapshot = tracer.snapshot();
  // Every hop of the request shows up, tied together by the trace id in the
  // span names: client -> server request -> queue wait -> batch -> map ->
  // serialize.
  std::map<std::string, int> seen;
  for (const auto& thread : snapshot.threads) {
    for (const auto& event : thread.events) {
      ++seen[event.name];
    }
  }
  for (const std::string& name :
       {"client.request[" + id + "]", "serve.request[" + id + "]",
        "serve.queue.wait[" + id + "]", "serve.batch[" + id + "]",
        "serve.map[" + id + "]", "serve.serialize[" + id + "]"}) {
    EXPECT_EQ(seen.count(name), 1u) << "missing span " << name;
  }

  // The export is well-formed Chrome JSON with pair-matched B/E per track.
  const std::string chrome = snapshot.to_chrome_json();
  const obs::json::Value doc = obs::json::parse(chrome);
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, int> depth;
  for (const obs::json::Value& event : events->array) {
    const obs::json::Value* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "B") ++depth[event.find("tid")->number];
    if (ph->str == "E") {
      ASSERT_GE(--depth[event.find("tid")->number], 0);
    }
  }
  for (const auto& [tid, open] : depth) EXPECT_EQ(open, 0) << "tid " << tid;
}

TEST_F(ServeObservabilityTest, ForwardedTraceparentIsHonored) {
  start_server();
  const std::string parent_trace = "0af7651916cd43dd8448eb211c80319c";
  HttpRequest request;
  request.method = "POST";
  request.target = "/map?top_x=1";
  request.body = queries_[0];
  request.headers.emplace_back(
      "traceparent", "00-" + parent_trace + "-b7ad6b7169203331-01");
  const HttpResponse response =
      http_request("127.0.0.1", server_->port(), request);
  ASSERT_EQ(response.status, 200);
  const std::string* echoed = response.header("x-jem-request-id");
  ASSERT_NE(echoed, nullptr);
  // Same trace, fresh server-side span id.
  EXPECT_EQ(echoed->substr(0, 32), parent_trace);
  EXPECT_NE(echoed->substr(33), "b7ad6b7169203331");
}

TEST_F(ServeObservabilityTest, ErrorBodiesCarryTraceAndRequestIds) {
  start_server();
  const HttpResponse response = get("/no/such/endpoint");
  EXPECT_EQ(response.status, 404);
  const std::string* echoed = response.header("x-jem-request-id");
  ASSERT_NE(echoed, nullptr);
  const std::string trace_id = echoed->substr(0, 32);
  const std::string request_id = echoed->substr(33);
  EXPECT_NE(response.body.find("\"trace_id\":\"" + trace_id + "\""),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"request_id\":\"" + request_id + "\""),
            std::string::npos);
}

TEST_F(ServeObservabilityTest, FlightEndpointIsNewestFirstAndFilters) {
  start_server();
  for (int i = 0; i < 4; ++i) {
    (void)http_post("127.0.0.1", server_->port(), "/map?top_x=1",
                    queries_[static_cast<std::size_t>(i) % queries_.size()]);
  }
  (void)get("/no/such/endpoint");  // one 404 record

  const HttpResponse all = get("/debug/requests");
  ASSERT_EQ(all.status, 200);
  const obs::json::Value doc = obs::json::parse(all.body);
  const obs::json::Value* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_GE(requests->array.size(), 5u);
  double previous = -1.0;
  for (const obs::json::Value& record : requests->array) {
    const double seq = record.find("seq")->number;
    if (previous >= 0) {
      EXPECT_LT(seq, previous);  // newest first
    }
    previous = seq;
  }

  // Status filter: only the 404.
  const HttpResponse not_found = get("/debug/requests?status=404");
  const obs::json::Value filtered = obs::json::parse(not_found.body);
  ASSERT_GE(filtered.find("requests")->array.size(), 1u);
  for (const obs::json::Value& record : filtered.find("requests")->array) {
    EXPECT_EQ(record.find("status")->number, 404.0);
  }

  // Limit caps the dump.
  const HttpResponse limited = get("/debug/requests?limit=2");
  EXPECT_EQ(obs::json::parse(limited.body).find("requests")->array.size(), 2u);

  // A latency floor nothing reaches filters everything out.
  const HttpResponse slow = get("/debug/requests?min_latency_ms=600000");
  EXPECT_EQ(obs::json::parse(slow.body).find("requests")->array.size(), 0u);

  // Garbage parameters are a structured 400.
  EXPECT_EQ(get("/debug/requests?limit=banana").status, 400);
}

TEST_F(ServeObservabilityTest, FlightRecorderCanBeDisabled) {
  ServerConfig config;
  config.flight_recorder_size = 0;
  start_server(config);
  EXPECT_EQ(get("/debug/requests").status, 404);
  EXPECT_TRUE(server_->flight_recorder_text().empty());
}

TEST_F(ServeObservabilityTest, MetricsNegotiateOpenMetricsAndKeepJsonDefault) {
  start_server();
  (void)http_post("127.0.0.1", server_->port(), "/map?top_x=1", queries_[0]);

  // Default stays the JSON snapshot.
  const HttpResponse json = get("/metrics");
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_EQ(json.body.rfind("{\"metrics\":[", 0), 0u);

  // Accept negotiation flips to the OpenMetrics exposition.
  const HttpResponse om =
      get("/metrics", {{"accept", "application/openmetrics-text"}});
  ASSERT_EQ(om.status, 200);
  EXPECT_EQ(om.content_type,
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  EXPECT_EQ(om.body.rfind("# TYPE ", 0), 0u);
  EXPECT_NE(om.body.find("jem_serve_http_requests_total"), std::string::npos);
  EXPECT_NE(om.body.find("jem_serve_endpoint_map_latency_ns_bucket"),
            std::string::npos);
  EXPECT_NE(om.body.find("jem_serve_slo_latency_ns{window=\"10s\","
                         "quantile=\"0.99\"}"),
            std::string::npos);
  ASSERT_GE(om.body.size(), 6u);
  EXPECT_EQ(om.body.substr(om.body.size() - 6), "# EOF\n");

  // ?format=openmetrics is the curl-friendly alias.
  const HttpResponse aliased = get("/metrics?format=openmetrics");
  EXPECT_EQ(aliased.body.rfind("# TYPE ", 0), 0u);
}

TEST_F(ServeObservabilityTest, HealthzWindowedSloDecaysWhileCumulativeKeeps) {
  ServerConfig config;
  config.slo_frame = std::chrono::milliseconds(50);  // "10s" tier = 500 ms
  start_server(config);
  for (int i = 0; i < 4; ++i) {
    (void)http_post("127.0.0.1", server_->port(), "/map?top_x=1",
                    queries_[static_cast<std::size_t>(i) % queries_.size()]);
  }

  const HttpResponse during = get("/healthz");
  ASSERT_EQ(during.status, 200);
  const std::string tier_during = json_section(during.body, "10s");
  EXPECT_NE(tier_during.find("\"requests\":4"), std::string::npos)
      << during.body;
  EXPECT_EQ(tier_during.find("\"p50_ms\":0.000"), std::string::npos);

  // Let the spike age past the shrunken 10s window (plus slack); the
  // windowed tier empties while the cumulative section never forgets.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const HttpResponse after = get("/healthz");
  const std::string tier_after = json_section(after.body, "10s");
  EXPECT_NE(tier_after.find("\"requests\":0"), std::string::npos)
      << after.body;
  EXPECT_NE(tier_after.find("\"p50_ms\":0.000"), std::string::npos);
  const std::string cumulative = json_section(after.body, "cumulative");
  EXPECT_NE(cumulative.find("\"requests\":4"), std::string::npos)
      << after.body;
  EXPECT_EQ(cumulative.find("\"p50_ms\":0.000"), std::string::npos);
}

TEST_F(ServeObservabilityTest, SlowRequestExemplarIsLoggedAboveThreshold) {
  ServerConfig config;
  config.slow_threshold = std::chrono::microseconds(0);
  start_server(config);
  // Threshold 0 disables exemplars entirely.
  (void)util::Log::begin_capture();
  (void)http_post("127.0.0.1", server_->port(), "/map?top_x=1", queries_[0]);
  std::string captured = util::Log::end_capture();
  EXPECT_EQ(captured.find("slow request"), std::string::npos);

  server_.reset();
  ServerConfig armed;
  armed.slow_threshold = std::chrono::microseconds(1);  // everything is slow
  start_server(armed);
  (void)util::Log::begin_capture();
  const HttpResponse response =
      http_post("127.0.0.1", server_->port(), "/map?top_x=1", queries_[1]);
  captured = util::Log::end_capture();
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(captured.find("serve: slow request trace="), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("queue_wait_us="), std::string::npos);
  EXPECT_NE(captured.find("map_us="), std::string::npos);
  EXPECT_NE(captured.find("serialize_us="), std::string::npos);
}

// TSan target: concurrent /map load with concurrent trace exports must stay
// race-free and every export must be a well-formed, pair-matched trace.
TEST_F(ServeObservabilityTest, ConcurrentTraceExportUnderLoad) {
  obs::Tracer tracer;
  ServerConfig config;
  config.tracer = &tracer;
  start_server(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          const HttpResponse response = http_post(
              "127.0.0.1", server_->port(), "/map?top_x=1",
              queries_[static_cast<std::size_t>(t * kPerThread + i) %
                       queries_.size()]);
          if (response.status != 200) failures.fetch_add(1);
        } catch (const ClientError&) {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Export repeatedly while the load runs.
  std::string last_export;
  for (int round = 0; round < 8; ++round) {
    last_export = tracer.snapshot().to_chrome_json();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& thread : pool) thread.join();
  last_export = tracer.snapshot().to_chrome_json();
  EXPECT_EQ(failures.load(), 0);

  // The final export is parseable with matched B/E pairs per track, and
  // per-request span trees share one trace id across tracks.
  const obs::json::Value doc = obs::json::parse(last_export);
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, int> depth;
  std::map<std::string, int> by_trace;  // spans seen per trace id
  for (const obs::json::Value& event : events->array) {
    const obs::json::Value* ph = event.find("ph");
    if (ph == nullptr) continue;
    if (ph->str == "B") {
      ++depth[event.find("tid")->number];
      const obs::json::Value* name = event.find("name");
      const std::size_t open = name->str.find('[');
      const std::size_t close = name->str.find(']');
      if (open != std::string::npos && close == open + 33) {
        ++by_trace[name->str.substr(open + 1, 32)];
      }
    } else if (ph->str == "E") {
      ASSERT_GE(--depth[event.find("tid")->number], 0);
    }
  }
  for (const auto& [tid, open] : depth) EXPECT_EQ(open, 0) << "tid " << tid;
  // Every completed request leaves its whole tree under one id: request,
  // queue wait, batch, map, serialize (client spans not in play here).
  int full_trees = 0;
  for (const auto& [id, spans] : by_trace) {
    if (spans >= 5) ++full_trees;
  }
  EXPECT_GT(full_trees, 0) << last_export.substr(0, 2000);
}

}  // namespace
}  // namespace jem::serve
