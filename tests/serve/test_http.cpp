#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace jem::serve {
namespace {

TEST(HttpParse, CompletePostWithQueryAndBody) {
  const std::string wire =
      "POST /map?top_x=3&min_votes=5 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 6\r\n"
      "\r\n"
      "ACGTAC";
  const RequestParse parsed = parse_request(wire);
  ASSERT_EQ(parsed.status, ParseStatus::kComplete);
  EXPECT_EQ(parsed.consumed, wire.size());
  EXPECT_EQ(parsed.request.method, "POST");
  EXPECT_EQ(parsed.request.path, "/map");
  EXPECT_EQ(parsed.request.target, "/map?top_x=3&min_votes=5");
  EXPECT_EQ(parsed.request.version, "HTTP/1.1");
  EXPECT_EQ(parsed.request.body, "ACGTAC");
  ASSERT_NE(parsed.request.query_param("top_x"), nullptr);
  EXPECT_EQ(*parsed.request.query_param("top_x"), "3");
  ASSERT_NE(parsed.request.query_param("min_votes"), nullptr);
  EXPECT_EQ(*parsed.request.query_param("min_votes"), "5");
  EXPECT_EQ(parsed.request.query_param("absent"), nullptr);
}

TEST(HttpParse, HeaderNamesAreCaseInsensitive) {
  const RequestParse parsed = parse_request(
      "GET /healthz HTTP/1.1\r\nX-Custom-Header:  spaced value \r\n\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kComplete);
  ASSERT_NE(parsed.request.header("x-custom-header"), nullptr);
  EXPECT_EQ(*parsed.request.header("X-CUSTOM-HEADER"), "spaced value");
}

TEST(HttpParse, IncrementalFeedReachesComplete) {
  const std::string wire =
      "POST /map HTTP/1.1\r\nContent-Length: 4\r\n\r\nACGT";
  // Every proper prefix must report kIncomplete, never kBad.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const RequestParse partial = parse_request(wire.substr(0, cut));
    EXPECT_EQ(partial.status, ParseStatus::kIncomplete) << "cut=" << cut;
  }
  EXPECT_EQ(parse_request(wire).status, ParseStatus::kComplete);
}

TEST(HttpParse, MalformedInputsAreBad) {
  EXPECT_EQ(parse_request("GARBAGE\r\n\r\n").status, ParseStatus::kBad);
  EXPECT_EQ(parse_request("GET /x SPDY/99\r\n\r\n").status, ParseStatus::kBad);
  EXPECT_EQ(parse_request("GET /x HTTP/1.1\r\nno-colon-line\r\n\r\n").status,
            ParseStatus::kBad);
  EXPECT_EQ(
      parse_request("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
          .status,
      ParseStatus::kBad);
}

TEST(HttpParse, OversizedBodyIsRejectedNotBuffered) {
  const RequestParse parsed = parse_request(
      "POST /map HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
      /*max_body=*/1 << 20);
  ASSERT_EQ(parsed.status, ParseStatus::kBad);
  EXPECT_NE(parsed.error.find("exceeds"), std::string::npos);
  EXPECT_EQ(parsed.reject_status, 413);
}

TEST(HttpParse, UnboundedHeadIsRejected) {
  std::string runaway = "GET / HTTP/1.1\r\n";
  runaway.append(70u << 10, 'x');  // no terminating blank line, ever
  const RequestParse parsed = parse_request(runaway);
  EXPECT_EQ(parsed.status, ParseStatus::kBad);
  EXPECT_EQ(parsed.reject_status, 431);
}

TEST(HttpParse, RejectStatusDefaultsTo400ForGenericMalformation) {
  EXPECT_EQ(parse_request("GARBAGE\r\n\r\n").reject_status, 400);
  EXPECT_EQ(parse_request("GET /x SPDY/99\r\n\r\n").reject_status, 400);
  EXPECT_EQ(
      parse_request("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
          .reject_status,
      400);
}

TEST(HttpParse, RejectionReasonPhrasesAreRegistered) {
  EXPECT_EQ(status_reason(409), "Conflict");
  EXPECT_EQ(status_reason(413), "Payload Too Large");
  EXPECT_EQ(status_reason(431), "Request Header Fields Too Large");
}

TEST(HttpSerialize, ResponseRoundTripsThroughParseResponse) {
  HttpResponse response;
  response.status = 503;
  response.headers.emplace_back("Retry-After", "1");
  response.body = "{\"error\":\"overloaded\"}";
  const std::string wire = serialize_response(response);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);

  const ResponseParse parsed = parse_response(wire, /*eof=*/true);
  ASSERT_EQ(parsed.status, ParseStatus::kComplete);
  EXPECT_EQ(parsed.response.status, 503);
  EXPECT_EQ(parsed.response.body, response.body);
}

TEST(HttpSerialize, RequestRoundTripsThroughParseRequest) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/map?top_x=2";
  request.body = "ACGT";
  const RequestParse parsed =
      parse_request(serialize_request(request, "127.0.0.1:80"));
  ASSERT_EQ(parsed.status, ParseStatus::kComplete);
  EXPECT_EQ(parsed.request.method, "POST");
  EXPECT_EQ(parsed.request.path, "/map");
  EXPECT_EQ(parsed.request.body, "ACGT");
  ASSERT_NE(parsed.request.header("host"), nullptr);
}

TEST(HttpParseResponse, TruncationIsIncompleteUntilEof) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
  EXPECT_EQ(parse_response(wire, /*eof=*/false).status,
            ParseStatus::kIncomplete);
  EXPECT_EQ(parse_response(wire, /*eof=*/true).status, ParseStatus::kBad);
}

}  // namespace
}  // namespace jem::serve
