#include "util/options.hpp"

#include <gtest/gtest.h>

#include <array>

namespace jem::util {
namespace {

std::vector<std::string> parse(const Options& options,
                               std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return options.parse(std::span<const char* const>(argv.data(), argv.size()));
}

TEST(Options, ParsesSeparateValueForm) {
  Options options;
  std::uint64_t k = 0;
  options.add_uint("k", k, "k-mer size");
  (void)parse(options, {"--k", "16"});
  EXPECT_EQ(k, 16u);
}

TEST(Options, ParsesEqualsForm) {
  Options options;
  std::uint64_t k = 0;
  options.add_uint("k", k, "k-mer size");
  (void)parse(options, {"--k=21"});
  EXPECT_EQ(k, 21u);
}

TEST(Options, KeepsDefaultWhenAbsent) {
  Options options;
  std::uint64_t k = 16;
  options.add_uint("k", k, "k-mer size");
  (void)parse(options, {});
  EXPECT_EQ(k, 16u);
}

TEST(Options, ParsesFlagsAndNegatedFlags) {
  Options options;
  bool verbose = false;
  bool color = true;
  options.add_flag("verbose", verbose, "be loud");
  options.add_flag("color", color, "use color");
  (void)parse(options, {"--verbose", "--no-color"});
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(color);
}

TEST(Options, ParsesSignedAndDoubleAndString) {
  Options options;
  std::int64_t delta = 0;
  double rate = 0.0;
  std::string name;
  options.add_int("delta", delta, "signed");
  options.add_double("rate", rate, "float");
  options.add_string("name", name, "string");
  (void)parse(options, {"--delta", "-5", "--rate", "0.125", "--name", "abc"});
  EXPECT_EQ(delta, -5);
  EXPECT_DOUBLE_EQ(rate, 0.125);
  EXPECT_EQ(name, "abc");
}

TEST(Options, CollectsPositionalArguments) {
  Options options;
  bool flag = false;
  options.add_flag("flag", flag, "a flag");
  const auto positional = parse(options, {"input.fa", "--flag", "output.fa"});
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "input.fa");
  EXPECT_EQ(positional[1], "output.fa");
}

TEST(Options, ThrowsOnUnknownOption) {
  Options options;
  EXPECT_THROW((void)parse(options, {"--nope"}), OptionError);
}

TEST(Options, ThrowsOnMissingValue) {
  Options options;
  std::uint64_t k = 0;
  options.add_uint("k", k, "k");
  EXPECT_THROW((void)parse(options, {"--k"}), OptionError);
}

TEST(Options, ThrowsOnBadNumber) {
  Options options;
  std::uint64_t k = 0;
  options.add_uint("k", k, "k");
  EXPECT_THROW((void)parse(options, {"--k", "abc"}), OptionError);
  EXPECT_THROW((void)parse(options, {"--k", "12x"}), OptionError);
}

TEST(Options, ThrowsWhenFlagGivenValue) {
  Options options;
  bool flag = false;
  options.add_flag("flag", flag, "a flag");
  EXPECT_THROW((void)parse(options, {"--flag=1"}), OptionError);
}

TEST(Options, ThrowsOnDuplicateRegistration) {
  Options options;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  options.add_uint("k", a, "first");
  EXPECT_THROW(options.add_uint("k", b, "second"), OptionError);
}

TEST(Options, UsageListsAllOptions) {
  Options options;
  std::uint64_t k = 0;
  bool flag = false;
  options.add_uint("k", k, "the k-mer size");
  options.add_flag("verbose", flag, "noisy output");
  const std::string usage = options.usage("prog");
  EXPECT_NE(usage.find("--k <uint>"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("the k-mer size"), std::string::npos);
}

TEST(Options, NegativeNumberAsValueIsNotAnOption) {
  Options options;
  std::int64_t x = 0;
  options.add_int("x", x, "signed");
  (void)parse(options, {"--x", "-42"});
  EXPECT_EQ(x, -42);
}

}  // namespace
}  // namespace jem::util
