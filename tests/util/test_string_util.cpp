#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace jem::util {
namespace {

TEST(Split, SplitsOnDelimiter) {
  const auto parts = split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWhenNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, MatchesPrefixes) {
  EXPECT_TRUE(starts_with("contig_12", "contig_"));
  EXPECT_FALSE(starts_with("con", "contig_"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(4641652), "4,641,652");
  EXPECT_EQ(with_commas(1234567890123ULL), "1,234,567,890,123");
}

TEST(Fixed, RendersFixedPointDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(99.315, 1), "99.3");
  EXPECT_EQ(fixed(0.0, 3), "0.000");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(HumanBp, PicksScaleUnits) {
  EXPECT_EQ(human_bp(512), "512 bp");
  EXPECT_EQ(human_bp(12388), "12.39 Kbp");
  EXPECT_EQ(human_bp(4641652), "4.64 Mbp");
  EXPECT_EQ(human_bp(4371221619ULL), "4.37 Gbp");
}

TEST(ToUpper, UppercasesAscii) {
  EXPECT_EQ(to_upper("acgtN"), "ACGTN");
  EXPECT_EQ(to_upper(""), "");
  EXPECT_EQ(to_upper("AcGt123"), "ACGT123");
}

}  // namespace
}  // namespace jem::util
