#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace jem::util {
namespace {

TEST(SplitMix64, IsDeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference values for seed 1234567 from the published SplitMix64
  // reference implementation.
  SplitMix64 rng(1234567);
  const std::uint64_t first = rng();
  SplitMix64 rng2(1234567);
  EXPECT_EQ(first, rng2());
  EXPECT_NE(first, rng());  // stream advances
}

TEST(Mix64, IsAPermutationOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, ZeroDoesNotMapToZero) { EXPECT_NE(mix64(0), 0u); }

TEST(Xoshiro256ss, IsDeterministicForSameSeed) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, BoundedStaysInRange) {
  Xoshiro256ss rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256ss, BoundedOneAlwaysZero) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256ss, BoundedIsRoughlyUniform) {
  Xoshiro256ss rng(123);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.bounded(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Xoshiro256ss, UniformInHalfOpenUnitInterval) {
  Xoshiro256ss rng(321);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256ss, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256ss>);
  SUCCEED();
}

TEST(Xoshiro256ss, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace jem::util
