#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace jem::util {
namespace {

using namespace std::chrono_literals;

/// Polls until `predicate` holds or ~2 s elapse (far beyond any scheduler
/// hiccup); returns whether it held.
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueueTest, CapacityZeroClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.push(7));
  EXPECT_EQ(queue.pop(), 7);
}

TEST(BoundedQueueTest, ProducerBlocksWhenFullAndResumesAfterPop) {
  BoundedQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(queue.push(i));
      ++pushed;
    }
  });

  // The producer lands exactly `capacity` pushes, then blocks on the full
  // queue: the count must hold at 2 for as long as nobody pops.
  ASSERT_TRUE(eventually([&] { return pushed.load() == 2; }));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(pushed.load(), 2);
  EXPECT_EQ(queue.size(), queue.capacity());

  // Each pop frees one slot; draining unblocks the producer completely.
  EXPECT_EQ(queue.pop(), 0);
  ASSERT_TRUE(eventually([&] { return pushed.load() >= 3; }));
  for (int expected = 1; expected < 5; ++expected) {
    EXPECT_EQ(queue.pop(), expected);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 5);
}

TEST(BoundedQueueTest, CloseDrainsPendingItemsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(10));
  EXPECT_TRUE(queue.push(11));
  queue.close();
  EXPECT_FALSE(queue.push(12));  // rejected after close
  EXPECT_EQ(queue.pop(), 10);    // but accepted items still drain
  EXPECT_EQ(queue.pop(), 11);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays terminal
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  std::thread producer([&] { EXPECT_FALSE(full.push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_EQ(empty.pop(), std::nullopt); });
  std::this_thread::sleep_for(20ms);  // let both block
  full.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, NoDeadlockWhenConsumerStartsLate) {
  // The engine's failure mode this guards: the reader fills the queue
  // before any map worker has started popping. The producer must simply
  // wait, and the late consumer must receive every item in order.
  BoundedQueue<int> queue(1);
  constexpr int kItems = 20;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
    queue.close();
  });
  std::this_thread::sleep_for(50ms);  // producer is long since blocked

  std::vector<int> received;
  while (auto item = queue.pop()) received.push_back(*item);
  producer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(3);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }

  std::mutex collect_mutex;
  std::vector<int> collected;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> local;
      while (auto item = queue.pop()) local.push_back(*item);
      std::lock_guard lock(collect_mutex);
      collected.insert(collected.end(), local.begin(), local.end());
    });
  }

  for (std::thread& producer : producers) producer.join();
  queue.close();
  for (std::thread& consumer : consumers) consumer.join();

  ASSERT_EQ(collected.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(collected.begin(), collected.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(collected[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace jem::util
