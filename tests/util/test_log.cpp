#include "util/log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

namespace jem::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_level(LogLevel::kDebug);
    (void)Log::begin_capture();
  }
  void TearDown() override {
    (void)Log::end_capture();
    Log::set_level(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LogTest, CapturesMessagesWithLevelTags) {
  log_info() << "hello " << 42;
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("[info ] hello 42"), std::string::npos);
}

TEST_F(LogTest, FiltersBelowThreshold) {
  Log::set_level(LogLevel::kWarn);
  log_debug() << "quiet";
  log_info() << "also quiet";
  log_warn() << "loud";
  const std::string captured = Log::end_capture();
  EXPECT_EQ(captured.find("quiet"), std::string::npos);
  EXPECT_NE(captured.find("loud"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysPassesDefaultLevels) {
  Log::set_level(LogLevel::kError);
  log_error() << "bad";
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("[error] bad"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  log_error() << "nothing";
  const std::string captured = Log::end_capture();
  EXPECT_TRUE(captured.empty());
}

TEST_F(LogTest, ChainsMultipleValues) {
  log_info() << "a=" << 1 << " b=" << 2.5 << " c=" << 'x';
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("a=1 b=2.5 c=x"), std::string::npos);
}

TEST_F(LogTest, CapturedHumanFormatStaysByteCompatible) {
  // The legacy contract: captured human lines are exactly `[level] msg`
  // with no timestamp — CLI tests grep for these bytes.
  log_warn() << "legacy";
  const std::string captured = Log::end_capture();
  EXPECT_EQ(captured, "[warn ] legacy\n");
}

class JsonLogTest : public LogTest {
 protected:
  void SetUp() override {
    LogTest::SetUp();
    Log::set_format(LogFormat::kJson);
  }
  void TearDown() override {
    Log::set_format(LogFormat::kHuman);
    LogTest::TearDown();
  }
};

TEST_F(JsonLogTest, EmitsOneJsonObjectPerLine) {
  log_info() << "structured";
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(captured.find("\"msg\":\"structured\""), std::string::npos);
  EXPECT_NE(captured.find("\"ts\":\""), std::string::npos);
  EXPECT_EQ(captured.front(), '{');
  EXPECT_EQ(captured.substr(captured.size() - 2), "}\n");
}

TEST_F(JsonLogTest, EscapesQuotesAndControlCharacters) {
  log_warn() << "a \"quoted\"\nline\tend";
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("a \\\"quoted\\\"\\nline\\tend"), std::string::npos);
}

TEST(LogTimestamp, IsIso8601UtcWithMillis) {
  const std::string ts = Log::timestamp();
  ASSERT_EQ(ts.size(), 24u);  // 2026-08-08T12:34:56.789Z
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(LogRateLimiterTest, AllowsFirstThenSuppressesWithinPeriod) {
  using Clock = LogRateLimiter::Clock;
  LogRateLimiter limiter(std::chrono::seconds(1));
  const Clock::time_point t0 = Clock::now();
  std::uint64_t suppressed = 0;

  EXPECT_TRUE(limiter.allow(t0, suppressed));
  EXPECT_EQ(suppressed, 0u);
  // Burst inside the period: every call suppressed.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limiter.allow(t0 + std::chrono::milliseconds(100 * (i + 1)),
                               suppressed));
  }
  // Past the period: allowed again, reporting the 5 suppressed calls.
  EXPECT_TRUE(limiter.allow(t0 + std::chrono::milliseconds(1100), suppressed));
  EXPECT_EQ(suppressed, 5u);
  // The counter resets after being reported.
  EXPECT_TRUE(limiter.allow(t0 + std::chrono::milliseconds(2200), suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST(LogRateLimiterTest, SuffixFormatsSuppressedCount) {
  EXPECT_EQ(LogRateLimiter::suffix(0), "");
  EXPECT_EQ(LogRateLimiter::suffix(7), " (7 suppressed)");
}

}  // namespace
}  // namespace jem::util
