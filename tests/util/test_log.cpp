#include "util/log.hpp"

#include <gtest/gtest.h>

namespace jem::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_level(LogLevel::kDebug);
    (void)Log::begin_capture();
  }
  void TearDown() override {
    (void)Log::end_capture();
    Log::set_level(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LogTest, CapturesMessagesWithLevelTags) {
  log_info() << "hello " << 42;
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("[info ] hello 42"), std::string::npos);
}

TEST_F(LogTest, FiltersBelowThreshold) {
  Log::set_level(LogLevel::kWarn);
  log_debug() << "quiet";
  log_info() << "also quiet";
  log_warn() << "loud";
  const std::string captured = Log::end_capture();
  EXPECT_EQ(captured.find("quiet"), std::string::npos);
  EXPECT_NE(captured.find("loud"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysPassesDefaultLevels) {
  Log::set_level(LogLevel::kError);
  log_error() << "bad";
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("[error] bad"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  log_error() << "nothing";
  const std::string captured = Log::end_capture();
  EXPECT_TRUE(captured.empty());
}

TEST_F(LogTest, ChainsMultipleValues) {
  log_info() << "a=" << 1 << " b=" << 2.5 << " c=" << 'x';
  const std::string captured = Log::end_capture();
  EXPECT_NE(captured.find("a=1 b=2.5 c=x"), std::string::npos);
}

}  // namespace
}  // namespace jem::util
