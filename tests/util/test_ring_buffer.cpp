#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "util/prng.hpp"

namespace jem::util {
namespace {

TEST(RingDeque, StartsEmpty) {
  RingDeque<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);
}

TEST(RingDeque, PushPopBackFront) {
  RingDeque<int> ring;
  ring.push_back(1);
  ring.push_back(2);
  ring.push_back(3);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.front(), 1);
  EXPECT_EQ(ring.back(), 3);
  ring.pop_front();
  EXPECT_EQ(ring.front(), 2);
  ring.pop_back();
  EXPECT_EQ(ring.back(), 2);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(RingDeque, ClearKeepsCapacity) {
  RingDeque<int> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  const std::size_t capacity = ring.capacity();
  EXPECT_GE(capacity, 100u);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), capacity);  // storage survives the clear
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.capacity(), capacity);
}

TEST(RingDeque, ReserveRoundsUpAndPreventsGrowth) {
  RingDeque<int> ring;
  ring.reserve(20);
  const std::size_t capacity = ring.capacity();
  EXPECT_GE(capacity, 20u);
  for (int i = 0; i < 20; ++i) ring.push_back(i);
  EXPECT_EQ(ring.capacity(), capacity);
}

TEST(RingDeque, GrowthPreservesOrderAcrossWrap) {
  RingDeque<int> ring;
  // Force the live range to wrap: fill, drain the front, refill past the
  // old capacity.
  for (int i = 0; i < 16; ++i) ring.push_back(i);
  for (int i = 0; i < 10; ++i) ring.pop_front();
  for (int i = 16; i < 40; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 30u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 10);
  }
}

TEST(RingDeque, FuzzAgainstStdDeque) {
  Xoshiro256ss rng(99);
  RingDeque<std::uint64_t> ring;
  std::deque<std::uint64_t> reference;
  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t op = rng.bounded(5);
    if (op <= 2 || reference.empty()) {  // bias toward growth
      const std::uint64_t value = rng();
      ring.push_back(value);
      reference.push_back(value);
    } else if (op == 3) {
      ring.pop_front();
      reference.pop_front();
    } else {
      ring.pop_back();
      reference.pop_back();
    }
    ASSERT_EQ(ring.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(ring.front(), reference.front());
      ASSERT_EQ(ring.back(), reference.back());
    }
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(ring[i], reference[i]);
  }
}

}  // namespace
}  // namespace jem::util
