#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace jem::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.submit([] {});
  future.get();
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    (void)pool.submit([&done] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(BlockRange, CoversExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 100u}) {
    for (std::size_t p : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t b = 0; b < p; ++b) {
        const BlockRange range = block_range(n, p, b);
        EXPECT_EQ(range.begin, prev_end);
        EXPECT_LE(range.begin, range.end);
        covered += range.end - range.begin;
        prev_end = range.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(BlockRange, SizesDifferByAtMostOne) {
  const std::size_t n = 103;
  const std::size_t p = 8;
  std::size_t min_size = n;
  std::size_t max_size = 0;
  for (std::size_t b = 0; b < p; ++b) {
    const BlockRange range = block_range(n, p, b);
    const std::size_t size = range.end - range.begin;
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ParallelForBlocks, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_blocks(pool, 0, n, 8,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          ++visits[i];
                        }
                      });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForBlocks, HandlesOffsetRanges) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for_blocks(pool, 10, 20, 3,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) sum += i;
                      });
  // 10 + 11 + ... + 19 = 145.
  EXPECT_EQ(sum.load(), 145u);
}

TEST(ParallelForBlocks, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for_blocks(pool, 5, 5, 4,
                      [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace jem::util
