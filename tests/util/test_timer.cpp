#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace jem::util {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotonic) {
  WallTimer timer;
  const double t1 = timer.elapsed_s();
  const double t2 = timer.elapsed_s();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimer, MeasuresSleepsApproximately) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_ms(), 15.0);
}

TEST(WallTimer, StartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.start();
  EXPECT_LT(timer.elapsed_ms(), 10.0);
}

TEST(ScopedAccumulator, AddsElapsedOnDestruction) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, 0.0);
  const double first = sink;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, first);  // accumulates, not overwrites
}

TEST(Timed, ReturnsResultAndDuration) {
  const auto [value, seconds] = timed([] { return 41 + 1; });
  EXPECT_EQ(value, 42);
  EXPECT_GE(seconds, 0.0);
}

TEST(TimeVoid, ReturnsDuration) {
  const double seconds = time_void(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  EXPECT_GT(seconds, 0.0);
}

}  // namespace
}  // namespace jem::util
