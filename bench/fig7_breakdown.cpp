// Fig 7 — (a) runtime breakdown by algorithm step at p = 16, and
// (b) querying throughput (queries/second) as a function of p.
//
// The paper's claims to reproduce: query processing dominates the runtime
// (sketching queries + table lookup + reporting), and query throughput
// scales almost linearly with p, roughly independent of the input.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 2'000'000;
  std::uint64_t seed = 8;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("fig7_breakdown");
    return 1;
  }

  const std::vector<std::string> inputs{"C. elegans", "Human chr 7",
                                        "B. splendens",
                                        "O. sativa chr 8 (real)"};
  core::MapParams params;
  params.seed = seed;

  std::cout << "=== Fig 7a: runtime breakdown by step at p = 16 ===\n\n";
  eval::TextTable breakdown({"Input", "load %", "sketch-subj %",
                             "allgather %", "build-global %",
                             "map-queries %", "total s"});
  std::vector<sim::Dataset> datasets;
  for (const std::string& name : inputs) {
    datasets.push_back(
        bench::make_scaled(sim::preset_by_name(name), cap_bp, seed));
    const sim::Dataset& dataset = datasets.back();
    const core::DistributedResult result = core::run_staged(
        dataset.contigs.contigs, dataset.reads.reads, params, 16);
    const auto& r = result.report;
    const double total = r.total_s();
    const auto share = [&](double x) {
      return util::fixed(100.0 * x / total, 1);
    };
    breakdown.add_row({name, share(r.load_s), share(r.sketch_subjects_s),
                       share(r.allgather_s), share(r.build_global_s),
                       share(r.map_queries_s), util::fixed(total, 3)});
  }
  std::cout << breakdown.to_string() << '\n';
  std::cout << "Paper reference: query processing (sketch queries + search + "
               "report) dominates the runtime at p = 16.\n\n";

  std::cout << "=== Fig 7b: querying throughput (end segments / s of S4 "
               "time) vs p ===\n\n";
  eval::TextTable throughput({"Input", "p=4", "p=8", "p=16", "p=32", "p=64"});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const sim::Dataset& dataset = datasets[i];
    std::vector<std::string> row{inputs[i]};
    for (int ranks : {4, 8, 16, 32, 64}) {
      const core::DistributedResult result = core::run_staged(
          dataset.contigs.contigs, dataset.reads.reads, params, ranks);
      row.push_back(util::fixed(result.report.query_throughput(), 0));
    }
    throughput.add_row(row);
  }
  std::cout << throughput.to_string() << '\n';
  std::cout << "Paper reference: throughput grows almost linearly with p and "
               "is nearly input-independent (except the real O. sativa input "
               "with its longer reads).\n";
  return 0;
}
