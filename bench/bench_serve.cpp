// bench_serve — serving-path benchmark (docs/serve.md): stands up an
// in-process MappingServer over the demo subject set, fires concurrent /map
// requests through the real loopback client, and reports request latency
// percentiles (p50/p99) and throughput.
//
// The default run is deliberately small so the check.sh bench sweep stays
// fast; scripts/bench_serve.sh drives the real measurement and writes
// BENCH_serve.json.
//
//   bench_serve [--requests 200] [--clients 4] [--workers 4]
//               [--max-batch 16] [--batch-window-us 200] [--cache 1024]
//               [--seed N] [--out BENCH_serve.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "core/service.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

double percentile_ms(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

}  // namespace

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t requests = 200;
  std::uint64_t clients = 4;
  std::uint64_t workers = 4;
  std::uint64_t max_batch = 16;
  std::uint64_t batch_window_us = 200;
  std::uint64_t cache = 1024;
  std::uint64_t seed = 20230517;
  std::string out_path;

  util::Options options;
  options.add_uint("requests", requests, "total /map requests (default 200)");
  options.add_uint("clients", clients, "concurrent client threads (default 4)");
  options.add_uint("workers", workers, "server worker threads (default 4)");
  options.add_uint("max-batch", max_batch, "micro-batch cap (default 16)");
  options.add_uint("batch-window-us", batch_window_us,
                   "micro-batch window in µs (default 200)");
  options.add_uint("cache", cache, "LRU cache entries, 0 disables");
  options.add_uint("seed", seed, "demo dataset seed");
  options.add_string("out", out_path, "write a JSON summary here");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("bench_serve");
    return 2;
  }

  io::SequenceSet subjects;
  io::SequenceSet reads;
  cli::make_demo_dataset(seed, subjects, reads);
  const std::size_t num_subjects = subjects.size();

  const core::ServiceConfig config = core::ServiceConfig::make().seed(seed).build();
  util::WallTimer index_timer;
  const core::MappingService service(std::move(subjects), config);
  const double index_s = index_timer.elapsed_s();

  serve::ServerConfig server_config;
  server_config.port = 0;
  server_config.workers = workers;
  server_config.max_batch = max_batch;
  server_config.batch_window = std::chrono::microseconds(batch_window_us);
  server_config.cache_capacity = cache;
  serve::MappingServer server(service, server_config);
  server.start();

  std::vector<std::string> bodies;
  bodies.reserve(reads.size());
  for (io::SeqId id = 0; id < reads.size(); ++id) {
    bodies.emplace_back(reads.bases(id));
  }

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> failures{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests);

  util::WallTimer wall;
  std::vector<std::thread> pool;
  const std::uint64_t nclients = std::max<std::uint64_t>(1, clients);
  pool.reserve(nclients);
  for (std::uint64_t c = 0; c < nclients; ++c) {
    pool.emplace_back([&] {
      std::vector<double> local_ms;
      while (true) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= requests) break;
        const std::string& body = bodies[i % bodies.size()];
        util::WallTimer timer;
        try {
          const serve::HttpResponse response =
              serve::http_post("127.0.0.1", server.port(), "/map", body);
          if (response.status != 200) failures.fetch_add(1);
        } catch (const serve::ClientError&) {
          failures.fetch_add(1);
        }
        local_ms.push_back(timer.elapsed_s() * 1e3);
      }
      std::lock_guard lock(latencies_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (std::thread& thread : pool) thread.join();
  const double elapsed_s = wall.elapsed_s();
  server.stop();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile_ms(latencies_ms, 0.50);
  const double p99 = percentile_ms(latencies_ms, 0.99);
  const double throughput =
      elapsed_s > 0.0 ? static_cast<double>(requests) / elapsed_s : 0.0;

  const auto snapshot = server.registry().snapshot();
  const auto metric = [&](const char* name) -> std::uint64_t {
    const auto* entry = snapshot.find(name);
    return entry != nullptr ? entry->value : 0;
  };
  const std::uint64_t batches = metric("serve.batches");
  const std::uint64_t cache_hits = metric("serve.cache.hits");
  const std::uint64_t shed = metric("serve.http.shed");

  std::cout << "bench_serve: " << requests << " requests, " << nclients
            << " clients, " << num_subjects << " subjects (index " << index_s
            << " s)\n"
            << "  p50 " << p50 << " ms, p99 " << p99 << " ms, "
            << throughput << " req/s\n"
            << "  " << batches << " micro-batches, " << cache_hits
            << " cache hits, " << shed << " shed, " << failures.load()
            << " failures\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"benchmark\": \"serve\",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"clients\": " << nclients << ",\n"
        << "  \"workers\": " << workers << ",\n"
        << "  \"max_batch\": " << max_batch << ",\n"
        << "  \"subjects\": " << num_subjects << ",\n"
        << "  \"index_s\": " << index_s << ",\n"
        << "  \"p50_ms\": " << p50 << ",\n"
        << "  \"p99_ms\": " << p99 << ",\n"
        << "  \"throughput_rps\": " << throughput << ",\n"
        << "  \"micro_batches\": " << batches << ",\n"
        << "  \"cache_hits\": " << cache_hits << ",\n"
        << "  \"shed\": " << shed << ",\n"
        << "  \"failures\": " << failures.load() << "\n"
        << "}\n";
    if (!out) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return failures.load() == 0 ? 0 : 1;
}
