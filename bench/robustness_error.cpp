// Robustness — read error rate. The paper's premise (§I) is that HiFi reads
// (99.9 % accuracy) make sketch-based mapping viable where first-generation
// long reads (11-14 % error, PacBio CLR / ONT) would not: a 16-mer survives
// HiFi errors with probability ~0.98 but an 12 %-error read corrupts almost
// every k-mer. This sweep quantifies exactly that cliff for JEM-mapper.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 600'000;
  std::uint64_t seed = 23;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("robustness_error");
    return 1;
  }

  std::cout << "=== Robustness: read error rate (HiFi vs first-generation "
               "long reads) ===\n\n";

  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs =
      sim::simulate_contigs(genome, contig_params);

  core::MapParams params;
  params.seed = seed;
  const core::JemMapper mapper(contigs.contigs, params);

  eval::TextTable table({"Error %", "Technology class", "Precision %",
                         "Recall %", "Mapped %"});
  const struct {
    double rate;
    const char* label;
  } kRows[] = {
      {0.000, "perfect"},
      {0.001, "PacBio HiFi (99.9%)"},
      {0.01, "corrected CLR (~99%)"},
      {0.05, "ONT duplex-era (~95%)"},
      {0.12, "PacBio CLR / ONT (88%)"},
  };
  for (const auto& row : kRows) {
    sim::HiFiParams read_params;
    read_params.coverage = 4.0;
    read_params.error_rate = row.rate;
    read_params.seed = seed + 2;  // same sampling, different error draws
    const sim::SimulatedReads reads =
        sim::simulate_hifi_reads(genome, read_params);

    const auto mappings = mapper.map_reads(reads.reads);
    const eval::TruthSet truth(contigs.truth, reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));
    const eval::QualityCounts counts = eval::evaluate(mappings, truth);
    table.add_row({util::fixed(100.0 * row.rate, 1), row.label,
                   bench::pct(counts.precision()), bench::pct(counts.recall()),
                   bench::pct(static_cast<double>(counts.mapped) /
                              static_cast<double>(counts.segments))});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: quality is flat through HiFi-grade error "
               "and collapses toward the first-generation error rates — "
               "the k-mer survival cliff that motivates the paper's focus "
               "on high-fidelity reads.\n";
  return 0;
}
