// Micro-benchmarks (google-benchmark) for the hot kernels of the library:
// k-mer codec, minimizer scan, hash family, JEM sketch (fast vs the literal
// Algorithm 1 loop — the interval-sliding ablation), classical MinHash,
// sketch-table operations, single-segment mapping, the mpisim allgatherv,
// and the alignment kernels.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "align/banded.hpp"
#include "baseline/mashmap_like.hpp"
#include "baseline/minimap_like.hpp"
#include "core/index_serde.hpp"
#include "core/jem.hpp"
#include "io/artifact.hpp"
#include "io/gzip.hpp"
#include "io/packed_sequence_set.hpp"
#include "mpisim/communicator.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace jem;

std::string random_dna(std::uint64_t seed, std::size_t length) {
  util::Xoshiro256ss rng(seed);
  std::string seq(length, 'A');
  for (char& c : seq) {
    c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
  }
  return seq;
}

void BM_KmerEncode(benchmark::State& state) {
  const core::KmerCodec codec(16);
  const std::string seq = random_dna(1, 1000);
  for (auto _ : state) {
    for (std::size_t i = 0; i + 16 <= seq.size(); i += 16) {
      benchmark::DoNotOptimize(codec.encode(std::string_view(seq).substr(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(seq.size() / 16));
}
BENCHMARK(BM_KmerEncode);

void BM_KmerReverseComplement(benchmark::State& state) {
  const core::KmerCodec codec(16);
  util::Xoshiro256ss rng(2);
  std::vector<core::KmerCode> codes(1024);
  for (auto& code : codes) code = rng() & codec.mask();
  for (auto _ : state) {
    for (core::KmerCode code : codes) {
      benchmark::DoNotOptimize(codec.reverse_complement(code));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KmerReverseComplement);

void BM_MinimizerScan(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const std::string seq = random_dna(3, 100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::minimizer_scan(seq, {16, w}));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(seq.size()));
}
BENCHMARK(BM_MinimizerScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_LcgHashFamily(benchmark::State& state) {
  const core::HashFamily hashes(30, 4);
  util::Xoshiro256ss rng(5);
  std::vector<core::KmerCode> codes(256);
  for (auto& code : codes) code = rng() & 0xffffffffu;
  for (auto _ : state) {
    for (core::KmerCode code : codes) {
      for (int t = 0; t < 30; ++t) {
        benchmark::DoNotOptimize(hashes.hash(t, code));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 256 * 30);
}
BENCHMARK(BM_LcgHashFamily);

// Interval-sliding ablation: the T-deque sliding-window-minimum
// implementation vs the literal per-interval argmin of Algorithm 1.
void BM_SketchByJemFast(benchmark::State& state) {
  const std::string seq = random_dna(6, 50'000);
  const auto minimizers = core::minimizer_scan(seq, {16, 100});
  const core::HashFamily hashes(30, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sketch_by_jem(minimizers, 1000, hashes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(minimizers.size()));
}
BENCHMARK(BM_SketchByJemFast);

void BM_SketchByJemNaive(benchmark::State& state) {
  const std::string seq = random_dna(6, 50'000);
  const auto minimizers = core::minimizer_scan(seq, {16, 100});
  const core::HashFamily hashes(30, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sketch_by_jem_naive(minimizers, 1000, hashes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(minimizers.size()));
}
BENCHMARK(BM_SketchByJemNaive);

void BM_ClassicMinhash(benchmark::State& state) {
  const std::string seq = random_dna(8, 10'000);
  const core::HashFamily hashes(30, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classic_minhash(seq, 16, hashes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(seq.size()));
}
BENCHMARK(BM_ClassicMinhash);

void BM_SketchTableInsert(benchmark::State& state) {
  util::Xoshiro256ss rng(10);
  std::vector<core::KmerCode> kmers(10'000);
  for (auto& kmer : kmers) kmer = rng();
  for (auto _ : state) {
    core::SketchTable table(30);
    for (std::size_t i = 0; i < kmers.size(); ++i) {
      table.insert(static_cast<int>(i % 30), kmers[i],
                   static_cast<io::SeqId>(i % 97));
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SketchTableInsert);

void BM_SketchTableLookup(benchmark::State& state) {
  util::Xoshiro256ss rng(11);
  std::vector<core::KmerCode> kmers(10'000);
  core::SketchTable table(30);
  for (std::size_t i = 0; i < kmers.size(); ++i) {
    kmers[i] = rng();
    table.insert(static_cast<int>(i % 30), kmers[i],
                 static_cast<io::SeqId>(i % 97));
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < kmers.size(); ++i) {
      benchmark::DoNotOptimize(table.lookup(static_cast<int>(i % 30),
                                            kmers[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SketchTableLookup);

void BM_MapSegment(benchmark::State& state) {
  const std::string genome = random_dna(12, 200'000);
  io::SequenceSet subjects;
  for (int i = 0; i < 40; ++i) {
    subjects.add("c" + std::to_string(i),
                 genome.substr(static_cast<std::size_t>(i) * 5000, 5000));
  }
  core::MapParams params;
  params.seed = 13;
  const core::JemMapper mapper(subjects, params);
  core::MapScratch scratch(subjects.size());
  const std::string segment = genome.substr(101'000, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_segment(segment, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapSegment);

// Whole-set mapping: the deprecated ThreadPool entry point vs the engine's
// batched pool backend on the same input. The engine's dynamic batch
// scheduling should match or beat the old static block partitioning.
struct EngineBenchData {
  io::SequenceSet subjects;
  io::SequenceSet reads;
};

const EngineBenchData& engine_bench_data() {
  static const EngineBenchData data = [] {
    EngineBenchData d;
    const std::string genome = random_dna(21, 400'000);
    for (int i = 0; i < 40; ++i) {
      d.subjects.add(
          "c" + std::to_string(i),
          genome.substr(static_cast<std::size_t>(i) * 10'000, 10'000));
    }
    util::Xoshiro256ss rng(22);
    for (int r = 0; r < 96; ++r) {
      const std::size_t length = 4000 + rng.bounded(8000);
      const std::size_t start = rng.bounded(genome.size() - length);
      d.reads.add("r" + std::to_string(r), genome.substr(start, length));
    }
    return d;
  }();
  return data;
}

void BM_MapReadsParallel(benchmark::State& state) {
  const EngineBenchData& data = engine_bench_data();
  core::MapParams params;
  params.seed = 23;
  const core::JemMapper mapper(data.subjects, params);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::int64_t mapped = 0;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  for (auto _ : state) {
    const auto mappings = mapper.map_reads_parallel(data.reads, pool);
    mapped = static_cast<std::int64_t>(mappings.size());
    benchmark::DoNotOptimize(mapped);
  }
#pragma GCC diagnostic pop
  state.SetItemsProcessed(state.iterations() * mapped);
}
BENCHMARK(BM_MapReadsParallel)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EngineMapReads(benchmark::State& state) {
  const EngineBenchData& data = engine_bench_data();
  const core::MapParams params = core::MapParams::make().seed(23).build();
  const core::MappingEngine engine(data.subjects, params);
  core::MapRequest request;
  request.backend = core::MapBackend::kPool;
  request.threads = static_cast<std::size_t>(state.range(0));
  std::int64_t mapped = 0;
  for (auto _ : state) {
    const core::MapReport report = engine.run(data.reads, request);
    mapped = static_cast<std::int64_t>(report.mappings.size());
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations() * mapped);
}
BENCHMARK(BM_EngineMapReads)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Query hot-path benches -------------------------------------------
// The BM_Hotpath* family quantifies the flat-index + scratch-reuse query
// path against the pre-overhaul CSR + allocating path at the paper's
// parameters (k=16, w=100, T=30, l=1000). scripts/bench_hotpath.sh runs
// exactly this family and records the speedups in BENCH_hotpath.json.

struct HotpathData {
  io::SequenceSet subjects;
  io::SequenceSet reads;
  std::vector<std::string> segments;
  core::MapParams params;
};

const HotpathData& hotpath_data() {
  static const HotpathData data = [] {
    HotpathData d;
    d.params = core::MapParams::make().seed(41).build();  // paper defaults
    const std::string genome = random_dna(40, 600'000);
    for (int i = 0; i < 60; ++i) {
      d.subjects.add(
          "c" + std::to_string(i),
          genome.substr(static_cast<std::size_t>(i) * 10'000, 10'000));
    }
    util::Xoshiro256ss rng(42);
    for (int s = 0; s < 64; ++s) {
      const std::size_t start = rng.bounded(genome.size() - 1000);
      d.segments.push_back(genome.substr(start, 1000));
    }
    for (int r = 0; r < 48; ++r) {
      const std::size_t length = 5000 + rng.bounded(5000);
      const std::size_t start = rng.bounded(genome.size() - length);
      d.reads.add("r" + std::to_string(r), genome.substr(start, length));
    }
    return d;
  }();
  return data;
}

const core::JemMapper& hotpath_mapper() {
  static const core::JemMapper mapper(hotpath_data().subjects,
                                      hotpath_data().params);
  return mapper;
}

/// A realistic frozen table plus a query key mix (~2/3 hits) shared by the
/// lookup benches.
struct HotpathIndexData {
  core::SketchTable table{30};
  std::vector<core::KmerCode> queries;

  HotpathIndexData() {
    util::Xoshiro256ss rng(43);
    std::vector<core::KmerCode> keys(200'000);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = rng();
      table.insert(static_cast<int>(i % 30), keys[i],
                   static_cast<io::SeqId>(rng.bounded(500)));
    }
    table.freeze();
    for (int i = 0; i < 10'000; ++i) {
      queries.push_back(rng.bounded(3) == 0 ? rng()
                                            : keys[rng.bounded(keys.size())]);
    }
  }
};

const HotpathIndexData& hotpath_index_data() {
  static const HotpathIndexData data;
  return data;
}

void BM_HotpathCsrLookup(benchmark::State& state) {
  const HotpathIndexData& data = hotpath_index_data();
  for (auto _ : state) {
    for (std::size_t i = 0; i < data.queries.size(); ++i) {
      benchmark::DoNotOptimize(
          data.table.lookup(static_cast<int>(i % 30), data.queries[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.queries.size()));
}
BENCHMARK(BM_HotpathCsrLookup);

void BM_HotpathFlatIndexLookup(benchmark::State& state) {
  const HotpathIndexData& data = hotpath_index_data();
  const core::FlatSketchIndex& index = data.table.flat();
  for (auto _ : state) {
    for (std::size_t i = 0; i < data.queries.size(); ++i) {
      benchmark::DoNotOptimize(
          index.lookup(static_cast<int>(i % 30), data.queries[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.queries.size()));
}
BENCHMARK(BM_HotpathFlatIndexLookup);

void BM_HotpathFlatIndexLookupMany(benchmark::State& state) {
  const HotpathIndexData& data = hotpath_index_data();
  const core::FlatSketchIndex& index = data.table.flat();
  std::vector<std::span<const io::SeqId>> out(data.queries.size());
  for (auto _ : state) {
    for (int t = 0; t < 30; ++t) {
      index.lookup_many(t, data.queries, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 30 *
                          static_cast<std::int64_t>(data.queries.size()));
}
BENCHMARK(BM_HotpathFlatIndexLookupMany);

void BM_HotpathSketchReference(benchmark::State& state) {
  const HotpathData& data = hotpath_data();
  const core::HashFamily hashes(data.params.trials, data.params.seed);
  const core::MinimizerParams mp{data.params.k, data.params.w,
                                 data.params.ordering};
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Sketch sketch = core::sketch_by_jem_reference(
        core::minimizer_scan(data.segments[i], mp),
        data.params.segment_length, hashes);
    benchmark::DoNotOptimize(sketch.total_entries());
    i = (i + 1) % data.segments.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathSketchReference);

void BM_HotpathSketchAlloc(benchmark::State& state) {
  const HotpathData& data = hotpath_data();
  const core::HashFamily hashes(data.params.trials, data.params.seed);
  std::size_t i = 0;
  for (auto _ : state) {
    const core::Sketch sketch = core::make_sketch(
        data.segments[i], data.params, core::SketchScheme::kJem, hashes);
    benchmark::DoNotOptimize(sketch.total_entries());
    i = (i + 1) % data.segments.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathSketchAlloc);

void BM_HotpathSketchScratch(benchmark::State& state) {
  const HotpathData& data = hotpath_data();
  const core::HashFamily hashes(data.params.trials, data.params.seed);
  core::SketchScratch scratch;
  core::FlatSketch sketch;
  std::size_t i = 0;
  for (auto _ : state) {
    core::make_sketch(data.segments[i], data.params,
                      core::SketchScheme::kJem, hashes, scratch, sketch);
    benchmark::DoNotOptimize(sketch.total_entries());
    i = (i + 1) % data.segments.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathSketchScratch);

// The end-to-end pair the BENCH_hotpath.json speedup criterion reads: one
// query segment mapped start to finish, pre-overhaul path vs hot path.
void BM_HotpathMapSegmentReference(benchmark::State& state) {
  const core::JemMapper& mapper = hotpath_mapper();
  const HotpathData& data = hotpath_data();
  core::MapScratch scratch(data.subjects.size());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.map_segment_reference(data.segments[i], scratch));
    i = (i + 1) % data.segments.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathMapSegmentReference);

void BM_HotpathMapSegment(benchmark::State& state) {
  const core::JemMapper& mapper = hotpath_mapper();
  const HotpathData& data = hotpath_data();
  core::MapScratch scratch(data.subjects.size());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_segment(data.segments[i], scratch));
    i = (i + 1) % data.segments.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotpathMapSegment);

void BM_HotpathEngineSegmentsPerSec(benchmark::State& state) {
  const HotpathData& data = hotpath_data();
  const core::MappingEngine engine(data.subjects, data.params);
  core::MapRequest request;  // serial end-segment mapping
  std::int64_t segments = 0;
  for (auto _ : state) {
    const core::MapReport report = engine.run(data.reads, request);
    segments = static_cast<std::int64_t>(report.stats.segments);
    benchmark::DoNotOptimize(segments);
  }
  state.SetItemsProcessed(state.iterations() * segments);
  state.SetLabel("segments/s via items_per_second");
}
BENCHMARK(BM_HotpathEngineSegmentsPerSec)->Unit(benchmark::kMillisecond);

void BM_MashmapMapSegment(benchmark::State& state) {
  const std::string genome = random_dna(12, 200'000);
  io::SequenceSet subjects;
  for (int i = 0; i < 40; ++i) {
    subjects.add("c" + std::to_string(i),
                 genome.substr(static_cast<std::size_t>(i) * 5000, 5000));
  }
  const baseline::MashmapLikeMapper mapper(subjects, {});
  const std::string segment = genome.substr(101'000, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_segment(segment));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MashmapMapSegment);

void BM_MinimapChainSegment(benchmark::State& state) {
  const std::string genome = random_dna(12, 200'000);
  io::SequenceSet subjects;
  for (int i = 0; i < 40; ++i) {
    subjects.add("c" + std::to_string(i),
                 genome.substr(static_cast<std::size_t>(i) * 5000, 5000));
  }
  const baseline::MinimapLikeMapper mapper(subjects, {});
  const std::string segment = genome.substr(101'000, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_segment(segment));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinimapChainSegment);

void BM_PackedDecode(benchmark::State& state) {
  io::PackedSequenceSet packed;
  packed.add("s", random_dna(19, 100'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packed.decode(0, 40'000, 10'000));
  }
  state.SetBytesProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PackedDecode);

void BM_GzipRoundTrip(benchmark::State& state) {
  const std::string data = random_dna(20, 100'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::gzip_decompress(io::gzip_compress(data, 1)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_GzipRoundTrip);

void BM_Allgatherv(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t elements = 4096;
  for (auto _ : state) {
    mpisim::run_spmd(ranks, [&](mpisim::Comm& comm) {
      std::vector<std::uint64_t> local(elements,
                                       static_cast<std::uint64_t>(comm.rank()));
      benchmark::DoNotOptimize(comm.allgatherv(local));
    });
  }
  state.SetBytesProcessed(state.iterations() * ranks *
                          static_cast<std::int64_t>(elements * 8));
}
BENCHMARK(BM_Allgatherv)->Arg(2)->Arg(4)->Arg(8);

// BM_IndexLoad*: the index persistence trade-off (docs/persistence.md) —
// what --load-index buys over rebuilding the sketch index from FASTA.
// The subject set is shared across the family so the numbers compare.
struct IndexLoadFixture {
  io::SequenceSet subjects;
  core::MapParams params;
  std::string bytes;  // serialized artifact

  IndexLoadFixture() {
    const std::string genome = random_dna(23, 800'000);
    for (int i = 0; i < 16; ++i) {
      subjects.add("c" + std::to_string(i),
                   genome.substr(static_cast<std::size_t>(i) * 50'000,
                                 50'000));
    }
    params = core::MapParams::make()
                 .k(16)
                 .window(20)
                 .trials(8)
                 .segment_length(800)
                 .seed(7)
                 .build();
    const core::JemMapper mapper(subjects, params);
    bytes = core::serialize_index(mapper.table(), params,
                                  core::SketchScheme::kJem, subjects);
  }
};

const IndexLoadFixture& index_load_fixture() {
  static const IndexLoadFixture fixture;
  return fixture;
}

void BM_IndexLoadBuildFromFasta(benchmark::State& state) {
  const IndexLoadFixture& fx = index_load_fixture();
  for (auto _ : state) {
    const core::JemMapper mapper(fx.subjects, fx.params);
    benchmark::DoNotOptimize(mapper.table().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexLoadBuildFromFasta);

void BM_IndexLoadSerialize(benchmark::State& state) {
  const IndexLoadFixture& fx = index_load_fixture();
  const core::JemMapper mapper(fx.subjects, fx.params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::serialize_index(
        mapper.table(), fx.params, core::SketchScheme::kJem, fx.subjects));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.bytes.size()));
}
BENCHMARK(BM_IndexLoadSerialize);

void BM_IndexLoadDeserialize(benchmark::State& state) {
  const IndexLoadFixture& fx = index_load_fixture();
  for (auto _ : state) {
    core::SketchTable table = core::deserialize_index(
        fx.bytes, fx.params, core::SketchScheme::kJem, fx.subjects);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.bytes.size()));
}
BENCHMARK(BM_IndexLoadDeserialize);

void BM_IndexLoadFromDisk(benchmark::State& state) {
  const IndexLoadFixture& fx = index_load_fixture();
  const std::string path = "/tmp/jem_bench_index.jemidx";
  io::atomic_write_file(path, fx.bytes);
  for (auto _ : state) {
    core::SketchTable table = core::load_index(
        path, fx.params, core::SketchScheme::kJem, fx.subjects);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.bytes.size()));
  std::remove(path.c_str());
}
BENCHMARK(BM_IndexLoadFromDisk);

void BM_EditDistance(benchmark::State& state) {
  const std::string a = random_dna(14, 1000);
  const std::string b = random_dna(15, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::edit_distance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_BandedEditDistance(benchmark::State& state) {
  std::string a = random_dna(16, 1000);
  std::string b = a;
  b[100] = b[100] == 'A' ? 'C' : 'A';
  b[500] = b[500] == 'G' ? 'T' : 'G';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_edit_distance(a, b, 32));
  }
}
BENCHMARK(BM_BandedEditDistance);

void BM_SemiglobalAlign(benchmark::State& state) {
  const std::string subject = random_dna(17, 1800);
  const std::string query = subject.substr(400, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::semiglobal_align(query, subject));
  }
}
BENCHMARK(BM_SemiglobalAlign);

}  // namespace

BENCHMARK_MAIN();
