// Appendix — three-way comparison of the mappers discussed in the paper:
// JEM-mapper, the Mashmap algorithm (its head-to-head comparator), and a
// Minimap2-style seed-and-chain mapper (discussed in §IV-A but not compared
// head-to-head there because the binary reports multiple hits per query;
// our reimplementation reduces the best chain to a top hit, making the
// three directly comparable on the same truth).
#include <iostream>

#include "baseline/minimap_like.hpp"
#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 800'000;
  std::uint64_t seed = 19;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n'
              << options.usage("appendix_three_mappers");
    return 1;
  }

  std::cout << "=== Appendix: JEM vs Mashmap-like vs Minimap2-like ===\n\n";

  core::MapParams params;
  params.seed = seed;

  eval::TextTable table({"Input", "Mapper", "Precision %", "Recall %",
                         "Build s", "Map s"});
  for (const char* name : {"E. coli", "C. elegans", "Human chr 7"}) {
    const sim::Dataset dataset =
        bench::make_scaled(sim::preset_by_name(name), cap_bp, seed);
    const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));

    {
      const bench::QualityResult result =
          bench::run_jem_quality(dataset, params, core::SketchScheme::kJem);
      table.add_row({name, "JEM-mapper", bench::pct(result.counts.precision()),
                     bench::pct(result.counts.recall()),
                     util::fixed(result.build_s, 2),
                     util::fixed(result.map_s, 2)});
    }
    {
      const bench::QualityResult result =
          bench::run_mashmap_quality(dataset, params);
      table.add_row({name, "Mashmap-like",
                     bench::pct(result.counts.precision()),
                     bench::pct(result.counts.recall()),
                     util::fixed(result.build_s, 2),
                     util::fixed(result.map_s, 2)});
    }
    {
      baseline::MinimapParams mm_params;
      mm_params.segment_length = params.segment_length;
      util::WallTimer build_timer;
      const baseline::MinimapLikeMapper mapper(dataset.contigs.contigs,
                                               mm_params);
      const double build_s = build_timer.elapsed_s();
      util::WallTimer map_timer;
      const auto mappings = mapper.map_reads(dataset.reads.reads);
      const double map_s = map_timer.elapsed_s();
      const auto counts = eval::evaluate(mappings, truth);
      table.add_row({name, "Minimap2-like", bench::pct(counts.precision()),
                     bench::pct(counts.recall()), util::fixed(build_s, 2),
                     util::fixed(map_s, 2)});
    }
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: all three mappers exceed 95 % on the easy "
               "inputs; the chain-based mapper pays the densest index "
               "(w = 10) and the heaviest per-query work, which is why the "
               "alignment-free sketch approaches exist at all.\n";
  return 0;
}
