// Ablation — lazy-update hit counters vs O(n)-reset counters (the paper's
// S4 implementation note). With n subjects and only a handful of hits per
// query, resetting an n-slot array per query dominates; the lazy epoch
// scheme makes per-query cost proportional to the hits alone.
#include <benchmark/benchmark.h>

#include "core/hit_counter.hpp"
#include "util/prng.hpp"

namespace {

using namespace jem;

// One "query": bump the round, apply `hits` increments to random subjects.
template <typename Counter>
void run_queries(Counter& counter, std::size_t n, int hits,
                 benchmark::State& state) {
  util::Xoshiro256ss rng(42);
  for (auto _ : state) {
    counter.new_round();
    std::uint32_t last = 0;
    for (int h = 0; h < hits; ++h) {
      last = counter.increment(
          static_cast<io::SeqId>(rng.bounded(n)));
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * hits);
}

void BM_LazyCounter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int hits = static_cast<int>(state.range(1));
  core::LazyHitCounter counter(n);
  run_queries(counter, n, hits, state);
}
BENCHMARK(BM_LazyCounter)
    ->Args({1'000, 64})
    ->Args({100'000, 64})
    ->Args({1'000'000, 64});

void BM_ResettingCounter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int hits = static_cast<int>(state.range(1));
  core::ResettingHitCounter counter(n);
  run_queries(counter, n, hits, state);
}
BENCHMARK(BM_ResettingCounter)
    ->Args({1'000, 64})
    ->Args({100'000, 64})
    ->Args({1'000'000, 64});

}  // namespace

BENCHMARK_MAIN();
