// Shared plumbing for the table/figure drivers: scaled dataset generation
// and the quality-evaluation runner both Fig 5 and Fig 6 use.
//
// Every driver accepts --cap-bp (maximum simulated genome size; presets
// larger than the cap are scaled down, densities preserved — see
// EXPERIMENTS.md) and --seed. The drivers print the paper's reference
// numbers next to the measured ones wherever the paper states them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>

#include "baseline/mashmap_like.hpp"
#include "core/jem.hpp"
#include "eval/metrics.hpp"
#include "eval/truth.hpp"
#include "sim/presets.hpp"
#include "util/options.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace jem::bench {

/// Generates a preset capped at `cap_bp` simulated genome bases.
inline sim::Dataset make_scaled(const sim::DatasetPreset& preset,
                                std::uint64_t cap_bp, std::uint64_t seed) {
  const double scale = std::min(
      1.0, static_cast<double>(cap_bp) /
               static_cast<double>(preset.genome_length));
  return sim::generate_dataset(preset, scale, seed);
}

struct QualityResult {
  eval::QualityCounts counts;
  double build_s = 0.0;
  double map_s = 0.0;
};

/// Runs JemMapper (any scheme) over a dataset and scores it.
inline QualityResult run_jem_quality(const sim::Dataset& dataset,
                                     const core::MapParams& params,
                                     core::SketchScheme scheme) {
  QualityResult result;
  util::WallTimer build_timer;
  const core::JemMapper mapper(dataset.contigs.contigs, params, scheme);
  result.build_s = build_timer.elapsed_s();

  util::WallTimer map_timer;
  const auto mappings = mapper.map_reads(dataset.reads.reads);
  result.map_s = map_timer.elapsed_s();

  const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                             params.segment_length,
                             static_cast<std::uint32_t>(params.k));
  result.counts = eval::evaluate(mappings, truth);
  return result;
}

/// Runs the Mashmap-like baseline over a dataset and scores it.
inline QualityResult run_mashmap_quality(const sim::Dataset& dataset,
                                         const core::MapParams& params) {
  QualityResult result;
  baseline::MashmapParams mm_params;
  mm_params.k = params.k;
  mm_params.segment_length = params.segment_length;
  mm_params.segment_length = params.segment_length;

  util::WallTimer build_timer;
  const baseline::MashmapLikeMapper mapper(dataset.contigs.contigs,
                                           mm_params);
  result.build_s = build_timer.elapsed_s();

  util::WallTimer map_timer;
  const auto mappings = mapper.map_reads(dataset.reads.reads);
  result.map_s = map_timer.elapsed_s();

  const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                             params.segment_length,
                             static_cast<std::uint32_t>(params.k));
  result.counts = eval::evaluate(mappings, truth);
  return result;
}

/// Percentage with two decimals.
inline std::string pct(double fraction) {
  return util::fixed(100.0 * fraction, 2);
}

}  // namespace jem::bench
