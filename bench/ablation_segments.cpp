// Ablation — end-segment mapping vs whole-read mapping (paper §III-B1).
//
// The paper argues that sketching only the two ℓ-length end segments of a
// long read (a) improves quality by avoiding sketches from interior regions
// and (b) reduces work. This driver maps the same reads both ways and
// reports quality, query time, and per-read sketch work.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 600'000;
  std::uint64_t seed = 12;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("ablation_segments");
    return 1;
  }

  std::cout << "=== Ablation: end-segment mapping vs whole-read mapping ===\n\n";

  const sim::DatasetPreset& preset = sim::preset_by_name("C. elegans");
  const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);

  eval::TextTable table({"Mode", "Precision %", "Recall %", "Query s",
                         "Segments"});

  // End-segment mode: the paper's configuration.
  {
    core::MapParams params;
    params.seed = seed;
    const core::JemMapper mapper(dataset.contigs.contigs, params);
    util::WallTimer timer;
    const auto mappings = mapper.map_reads(dataset.reads.reads);
    const double map_s = timer.elapsed_s();
    const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));
    const auto counts = eval::evaluate(mappings, truth);
    table.add_row({"end segments (l=1000)", bench::pct(counts.precision()),
                   bench::pct(counts.recall()), util::fixed(map_s, 2),
                   std::to_string(mappings.size())});
  }

  // Whole-read mode: segment length larger than any read, so each read is
  // sketched in full as a single query (and the truth interval is the whole
  // read span).
  {
    core::MapParams params;
    params.seed = seed;
    params.segment_length = 40'000;
    const core::JemMapper mapper(dataset.contigs.contigs, params);
    util::WallTimer timer;
    const auto mappings = mapper.map_reads(dataset.reads.reads);
    const double map_s = timer.elapsed_s();
    const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));
    const auto counts = eval::evaluate(mappings, truth);
    table.add_row({"whole read", bench::pct(counts.precision()),
                   bench::pct(counts.recall()), util::fixed(map_s, 2),
                   std::to_string(mappings.size())});
  }

  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape (paper §III-B1): end-segment mapping does "
               "less query work per read; whole-read mapping wastes sketch "
               "hits on interior regions, diluting the vote toward any one "
               "contig when reads span several. Note the two rows use "
               "different truth definitions (per-end vs per-read), so quality "
               "is comparable in shape, not in exact value.\n";
  return 0;
}
