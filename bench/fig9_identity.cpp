// Fig 9 — percent-identity distribution of JEM-mapper's mappings on the
// O. sativa (rice) real-data stand-in: for every mapped <read end, contig>
// pair, compute percent identity by exact banded alignment (the paper used
// BLAST) and print the histogram.
//
// The paper's claim to reproduce: the bulk of the distribution lies in
// [95 %, 100 %].
#include <iostream>
#include <vector>

#include "align/identity.hpp"
#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 400'000;
  std::uint64_t seed = 10;
  std::uint64_t max_segments = 600;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("max-segments", max_segments,
                   "alignment sample size (0 = all)");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("fig9_identity");
    return 1;
  }

  std::cout << "=== Fig 9: percent identity of mapped long-read ends "
               "(O. sativa) ===\n\n";

  const sim::DatasetPreset& preset =
      sim::preset_by_name("O. sativa chr 8 (real)");
  const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);

  core::MapParams params;
  params.seed = seed;
  const core::JemMapper mapper(dataset.contigs.contigs, params);
  const auto mappings = mapper.map_reads(dataset.reads.reads);

  align::IdentityParams id_params;
  id_params.minimizer = {params.k, params.w};

  std::vector<double> identities;
  std::uint64_t anchored = 0;
  std::uint64_t examined = 0;
  for (const core::SegmentMapping& mapping : mappings) {
    if (!mapping.result.mapped()) continue;
    if (max_segments != 0 && examined >= max_segments) break;
    ++examined;
    for (const core::EndSegment& segment : core::extract_end_segments(
             mapping.read, dataset.reads.reads.bases(mapping.read),
             params.segment_length)) {
      if (segment.end != mapping.end) continue;
      const auto result = align::segment_identity(
          segment.bases, dataset.contigs.contigs.bases(mapping.result.subject),
          id_params);
      if (!result.has_value()) continue;
      ++anchored;
      identities.push_back(100.0 * result->identity);
    }
  }

  const auto bins = eval::make_histogram(identities, 80.0, 100.0, 10);
  std::cout << eval::render_histogram(bins) << '\n';

  std::uint64_t above95 = 0;
  for (double identity : identities) {
    if (identity >= 95.0) ++above95;
  }
  std::cout << "segments examined: " << examined << ", aligned: " << anchored
            << ", identity >= 95 %: " << above95 << " ("
            << util::fixed(identities.empty()
                               ? 0.0
                               : 100.0 * static_cast<double>(above95) /
                                     static_cast<double>(identities.size()),
                           1)
            << " %)\n\n";
  std::cout << "Paper reference: the percent-identity distribution "
               "concentrates between 95 % and 100 %.\n";
  return 0;
}
