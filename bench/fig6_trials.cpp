// Fig 6 — effect of the number of trials T on quality, JEM sketch vs the
// classical MinHash sketch, on the B. splendens input. The paper's claim:
// JEM reaches > 95 % precision/recall with only 20-30 trials and saturates;
// classical MinHash remains far behind even at 100-150 trials.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 500'000;
  std::uint64_t seed = 6;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("fig6_trials");
    return 1;
  }

  std::cout << "=== Fig 6: quality vs number of trials T "
               "(B. splendens, JEM vs classical MinHash) ===\n\n";

  const sim::DatasetPreset& preset = sim::preset_by_name("B. splendens");
  const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);

  eval::TextTable table({"T", "JEM prec %", "JEM rec %", "MinHash prec %",
                         "MinHash rec %"});
  for (int trials : {5, 10, 20, 30, 50, 100, 150}) {
    core::MapParams params;
    params.trials = trials;
    params.seed = seed;
    const bench::QualityResult jem =
        bench::run_jem_quality(dataset, params, core::SketchScheme::kJem);
    const bench::QualityResult classic = bench::run_jem_quality(
        dataset, params, core::SketchScheme::kClassicMinhash);
    table.add_row({std::to_string(trials), bench::pct(jem.counts.precision()),
                   bench::pct(jem.counts.recall()),
                   bench::pct(classic.counts.precision()),
                   bench::pct(classic.counts.recall())});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Paper reference: JEM exceeds 95 % precision and recall by "
               "T = 20-30 and saturates; classical MinHash stays well below "
               "even at T = 150 (the paper needed ~150 MinHash trials to "
               "approach JEM at 30).\n";
  return 0;
}
