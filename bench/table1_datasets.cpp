// Table I — input data sets. Regenerates the paper's dataset-statistics
// table from the simulators: subject statistics (contig count/size/length
// distribution) and query statistics (read count/size/length distribution)
// for all eight inputs, at the configured scale cap.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 1'000'000;
  std::uint64_t seed = 1;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("table1_datasets");
    return 1;
  }

  std::cout << "=== Table I: input data sets (scaled to <= "
            << util::human_bp(cap_bp) << " genomes) ===\n\n";

  eval::TextTable table({"Input", "Genome bp", "No. contigs",
                         "Subject bp", "Contig len (avg+-sd)", "No. reads",
                         "Query bp", "Read len (avg+-sd)"});
  for (const sim::DatasetPreset& preset : sim::table1_presets()) {
    const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);
    const auto contig_stats = dataset.contigs.contigs.length_stats();
    const auto read_stats = dataset.reads.reads.length_stats();
    table.add_row({
        preset.name,
        util::with_commas(dataset.genome.size()),
        util::with_commas(dataset.contigs.contigs.size()),
        util::with_commas(dataset.contigs.contigs.total_bases()),
        util::fixed(contig_stats.mean, 0) + " +- " +
            util::fixed(contig_stats.stddev, 0),
        util::with_commas(dataset.reads.reads.size()),
        util::with_commas(dataset.reads.reads.total_bases()),
        util::fixed(read_stats.mean, 0) + " +- " +
            util::fixed(read_stats.stddev, 0),
    });
  }
  std::cout << table.to_string() << '\n';

  std::cout << "Paper reference (full scale): e.g. E. coli 4,641,652 bp, "
               "365 contigs (12388 +- 13997 bp), 4,541 reads "
               "(10205 +- 3418 bp); B. splendens 339,050,970 bp, 98,160 "
               "contigs, 429,520 reads.\n"
               "Scaled rows preserve the per-base densities (subject "
               "coverage, read coverage, length distributions).\n";
  return 0;
}
