// Robustness — mapping reads from a structurally divergent donor genome.
//
// Hybrid workflows rarely map reads against an assembly of the *same*
// individual: the donor differs by structural variants. This study derives
// donor genomes at increasing SV density (Sim-it's domain, the paper's read
// simulator reference [26]), simulates HiFi reads from the donor, maps them
// to contigs built from the original genome, and verifies every reported
// mapping by exact local alignment. The mapper should degrade gracefully:
// mapped fraction dips only where segments land inside SV events, and the
// verified-identity rate of what *is* reported stays high.
#include <iostream>

#include "align/identity.hpp"
#include "driver_common.hpp"
#include "eval/report.hpp"
#include "sim/variants.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 500'000;
  std::uint64_t seed = 18;
  std::uint64_t verify_sample = 300;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_uint("seed", seed, "experiment seed");
  options.add_uint("verify-sample", verify_sample,
                   "mappings to verify by alignment per configuration");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("robustness_sv");
    return 1;
  }

  std::cout << "=== Robustness: donor genomes with structural variants ===\n\n";

  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs =
      sim::simulate_contigs(genome, contig_params);

  core::MapParams params;
  params.seed = seed;
  const core::JemMapper mapper(contigs.contigs, params);

  align::IdentityParams id_params;
  id_params.minimizer = {params.k, params.w};

  eval::TextTable table({"SV events/Mbp", "Mapped %", "Verified >=90% id %",
                         "Segments"});
  for (double rate : {0.0, 20.0, 100.0, 400.0}) {
    std::string donor_genome;
    if (rate == 0.0) {
      donor_genome = genome;
    } else {
      sim::VariantParams sv;
      sv.events_per_mbp = rate;
      sv.seed = seed + static_cast<std::uint64_t>(rate);
      donor_genome = sim::apply_structural_variants(genome, sv).genome;
    }

    sim::HiFiParams read_params;
    read_params.coverage = 4.0;
    read_params.seed = seed + 2;
    const sim::SimulatedReads reads =
        sim::simulate_hifi_reads(donor_genome, read_params);

    const auto mappings = mapper.map_reads(reads.reads);
    std::uint64_t mapped = 0;
    std::uint64_t verified = 0;
    std::uint64_t aligned = 0;
    for (const core::SegmentMapping& mapping : mappings) {
      if (!mapping.result.mapped()) continue;
      ++mapped;
      if (aligned >= verify_sample) continue;
      for (const core::EndSegment& segment : core::extract_end_segments(
               mapping.read, reads.reads.bases(mapping.read),
               params.segment_length)) {
        if (segment.end != mapping.end) continue;
        const auto identity = align::segment_identity(
            segment.bases, contigs.contigs.bases(mapping.result.subject),
            id_params);
        if (!identity.has_value()) continue;
        ++aligned;
        if (identity->identity >= 0.90) ++verified;
      }
    }

    table.add_row(
        {util::fixed(rate, 0),
         bench::pct(static_cast<double>(mapped) /
                    static_cast<double>(mappings.size())),
         aligned == 0 ? "-"
                      : bench::pct(static_cast<double>(verified) /
                                   static_cast<double>(aligned)),
         std::to_string(mappings.size())});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: mapped fraction declines only modestly with "
               "SV density (segments overlapping an event lose their "
               "anchor), while the alignment-verified quality of reported "
               "mappings stays high — the sketch never invents hits.\n";
  return 0;
}
