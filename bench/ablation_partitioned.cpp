// Ablation — replicated vs partitioned sketch table (the memory/
// communication tradeoff behind the paper's space-complexity note,
// §III-C1: S_global costs O(n·m_s·T) at *every* process).
//
// Replicated (the paper's S3): one allgather, then queries are answered
// locally; per-rank memory is the whole table. Partitioned: the table is
// sharded by k-mer hash; queries are routed with two all-to-alls; per-rank
// memory is ~1/p of the table. Mappings are identical by construction (the
// test suite checks bit-equality); this driver quantifies the tradeoff.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"
#include "mpisim/network_model.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 1'000'000;
  std::uint64_t seed = 20;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n'
              << options.usage("ablation_partitioned");
    return 1;
  }

  std::cout << "=== Ablation: replicated vs partitioned sketch table ===\n\n";

  const sim::Dataset dataset =
      bench::make_scaled(sim::preset_by_name("B. splendens"), cap_bp, seed);
  core::MapParams params;
  params.seed = seed;

  eval::TextTable table({"p", "replicated entries/rank",
                         "partitioned entries/rank", "memory ratio",
                         "repl comm B", "part comm B",
                         "identical mappings"});
  for (int ranks : {2, 4, 8, 16}) {
    const core::DistributedResult replicated = core::run_distributed(
        dataset.contigs.contigs, dataset.reads.reads, params, ranks);
    const core::DistributedResult partitioned =
        core::run_distributed_partitioned(dataset.contigs.contigs,
                                          dataset.reads.reads, params, ranks);

    bool identical = replicated.mappings.size() == partitioned.mappings.size();
    if (identical) {
      for (std::size_t i = 0; i < replicated.mappings.size(); ++i) {
        if (replicated.mappings[i].result.subject !=
                partitioned.mappings[i].result.subject ||
            replicated.mappings[i].result.votes !=
                partitioned.mappings[i].result.votes) {
          identical = false;
          break;
        }
      }
    }

    const double ratio =
        static_cast<double>(replicated.report.table_entries_max) /
        static_cast<double>(partitioned.report.table_entries_max);
    table.add_row({std::to_string(ranks),
                   util::with_commas(replicated.report.table_entries_max),
                   util::with_commas(partitioned.report.table_entries_max),
                   util::fixed(ratio, 2) + "x",
                   util::with_commas(replicated.report.sketch_bytes * ranks),
                   util::with_commas(partitioned.report.sketch_bytes),
                   identical ? "yes" : "NO"});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: partitioned per-rank table entries fall as "
               "~1/p while the replicated strategy stays flat; outputs are "
               "identical. The price (not shown on a 1-core host) is the "
               "query phase's two all-to-all exchanges, which the paper's "
               "replicated design avoids entirely.\n";
  return 0;
}
