// Ablation — minimizer window size w. The window controls the density of
// the minimizer list the JEM sketch is built from (expected density
// 2/(w+1)): smaller w means denser minimizers, bigger sketch tables and more
// work; larger w means sparser sampling and eventually lost sensitivity.
// The paper fixes w = 100; this driver shows the tradeoff around it.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 600'000;
  std::uint64_t seed = 13;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("ablation_window");
    return 1;
  }

  std::cout << "=== Ablation: minimizer window size w ===\n\n";

  const sim::DatasetPreset& preset = sim::preset_by_name("Human chr 8");
  const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);

  eval::TextTable table({"w", "Precision %", "Recall %", "Table entries",
                         "Build s", "Query s"});
  for (int w : {10, 25, 50, 100, 200, 400}) {
    core::MapParams params;
    params.w = w;
    params.seed = seed;

    util::WallTimer build_timer;
    const core::JemMapper mapper(dataset.contigs.contigs, params);
    const double build_s = build_timer.elapsed_s();

    util::WallTimer map_timer;
    const auto mappings = mapper.map_reads(dataset.reads.reads);
    const double map_s = map_timer.elapsed_s();

    const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));
    const auto counts = eval::evaluate(mappings, truth);
    table.add_row({std::to_string(w), bench::pct(counts.precision()),
                   bench::pct(counts.recall()),
                   util::with_commas(mapper.table().size()),
                   util::fixed(build_s, 2), util::fixed(map_s, 2)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: table size shrinks roughly as 2/(w+1); "
               "quality holds across a broad plateau around the paper's "
               "w = 100 and degrades once sampling gets too sparse.\n";
  return 0;
}
