// Fig 8 — computation vs communication fraction for Human chr 7 and
// B. splendens as p grows from 4 to 64.
//
// The paper's claim to reproduce: the communication share rises with p but
// stays well under 25 % up to p = 64.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 2'000'000;
  std::uint64_t seed = 9;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("fig8_comm");
    return 1;
  }

  std::cout << "=== Fig 8: computation vs communication time fractions ===\n\n";

  core::MapParams params;
  params.seed = seed;

  for (const char* name : {"Human chr 7", "B. splendens"}) {
    const sim::Dataset dataset =
        bench::make_scaled(sim::preset_by_name(name), cap_bp, seed);
    std::cout << name << ":\n";
    eval::TextTable table({"p", "compute %", "comm %", "total s",
                           "allgather bytes"});
    for (int ranks : {4, 8, 16, 32, 64}) {
      const core::DistributedResult result = core::run_staged(
          dataset.contigs.contigs, dataset.reads.reads, params, ranks);
      const auto& r = result.report;
      const double total = r.total_s();
      table.add_row({std::to_string(ranks),
                     util::fixed(100.0 * r.compute_s() / total, 1),
                     util::fixed(100.0 * r.allgather_s / total, 1),
                     util::fixed(total, 3),
                     util::with_commas(r.sketch_bytes)});
    }
    std::cout << table.to_string() << '\n';
  }

  std::cout << "Paper reference: communication overhead increases with p but "
               "stays well under 25 % through p = 64 on both inputs.\n";
  return 0;
}
