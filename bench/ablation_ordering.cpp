// Ablation — minimizer ordering: lexicographic (the paper's choice,
// "consistent with previous works") vs random-hash ordering (Marçais et al.
// 2017, the paper's ref [24] and its future-work item i). Lexicographic
// ordering over-selects low-complexity k-mers (poly-A prefixes), inflating
// density on AT-rich sequence; hash ordering is bias-free.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 600'000;
  std::uint64_t seed = 16;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("ablation_ordering");
    return 1;
  }

  std::cout << "=== Ablation: lexicographic vs random-hash minimizer "
               "ordering ===\n\n";

  eval::TextTable table({"Input", "Ordering", "Precision %", "Recall %",
                         "Minimizer density", "Query s"});
  for (const char* name : {"C. elegans", "Human chr 7"}) {
    const sim::Dataset dataset =
        bench::make_scaled(sim::preset_by_name(name), cap_bp, seed);
    for (const auto ordering : {core::MinimizerOrdering::kLexicographic,
                                core::MinimizerOrdering::kRandomHash}) {
      core::MapParams params;
      params.seed = seed;
      params.ordering = ordering;

      // Density over the genome (positions per k-mer site).
      const auto minimizers = core::minimizer_scan(
          dataset.genome, {params.k, params.w, ordering});
      const double density =
          static_cast<double>(minimizers.size()) /
          static_cast<double>(dataset.genome.size() - params.k + 1);

      const core::JemMapper mapper(dataset.contigs.contigs, params);
      util::WallTimer timer;
      const auto mappings = mapper.map_reads(dataset.reads.reads);
      const double map_s = timer.elapsed_s();
      const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                                 params.segment_length,
                                 static_cast<std::uint32_t>(params.k));
      const auto counts = eval::evaluate(mappings, truth);
      table.add_row({name,
                     ordering == core::MinimizerOrdering::kLexicographic
                         ? "lexicographic"
                         : "random-hash",
                     bench::pct(counts.precision()),
                     bench::pct(counts.recall()),
                     util::fixed(density, 4), util::fixed(map_s, 2)});
    }
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Theoretical density for w = 100: "
            << util::fixed(core::expected_minimizer_density(100), 4)
            << ". Expected shape: random-hash ordering lands closer to the "
               "theoretical density and matches or improves quality — the "
               "optimization the paper's future-work item (i) anticipates.\n";
  return 0;
}
