// Extension — top-x hit reporting (paper §IV-C: "Note that if we are to
// extend our method to report a fixed number, say top x hits per read, then
// several of the missing contig hits could possibly be recovered").
//
// This driver implements that extension and quantifies it: recall@x for
// x = 1..5 on the two repeat-rich presets where top-1 recall is lowest.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 800'000;
  std::uint64_t seed = 14;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("extension_topx");
    return 1;
  }

  std::cout << "=== Extension (paper SIV-C): recall at top-x hits ===\n\n";

  core::MapParams params;
  params.seed = seed;

  eval::TextTable table(
      {"Input", "recall@1 %", "recall@2 %", "recall@3 %", "recall@5 %"});
  for (const char* name : {"Human chr 7", "Human chr 8", "C. elegans"}) {
    const sim::Dataset dataset =
        bench::make_scaled(sim::preset_by_name(name), cap_bp, seed);
    const core::JemMapper mapper(dataset.contigs.contigs, params);
    const eval::TruthSet truth(dataset.contigs.truth, dataset.reads.truth,
                               params.segment_length,
                               static_cast<std::uint32_t>(params.k));

    const auto topx = mapper.map_reads_topx(
        dataset.reads.reads, 5, 0,
        static_cast<io::SeqId>(dataset.reads.reads.size()));
    std::vector<std::string> row{name};
    for (std::size_t x : {1u, 2u, 3u, 5u}) {
      // Truncate the candidate lists to x and evaluate.
      std::vector<core::SegmentTopX> truncated = topx;
      for (auto& mapping : truncated) {
        if (mapping.hits.size() > x) mapping.hits.resize(x);
      }
      const eval::TopXRecall recall = eval::evaluate_topx(truncated, truth);
      row.push_back(bench::pct(recall.recall()));
    }
    table.add_row(row);
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: recall rises with x — the true contig is "
               "usually among the top few candidates even when a repeat "
               "copy wins the top-1 vote.\n";
  return 0;
}
