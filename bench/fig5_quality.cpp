// Fig 5 — mapping quality (precision and recall) of JEM-mapper vs Mashmap
// on the seven simulated-read inputs. The paper's claim: both tools exceed
// 95 % on essentially all inputs; JEM-mapper has equal-or-better precision
// (especially on repeat-rich eukaryotic genomes) while Mashmap has
// marginally better recall.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 800'000;
  std::uint64_t seed = 5;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("fig5_quality");
    return 1;
  }

  std::cout << "=== Fig 5: precision/recall, JEM-mapper vs Mashmap "
               "(simulated HiFi reads) ===\n\n";

  core::MapParams params;  // paper defaults: k=16, w=100, T=30, l=1000
  params.seed = seed;

  eval::TextTable table({"Input", "JEM prec %", "JEM rec %", "MM prec %",
                         "MM rec %", "JEM map s", "MM map s"});
  double jem_prec_sum = 0.0;
  double mm_prec_sum = 0.0;
  double jem_rec_sum = 0.0;
  double mm_rec_sum = 0.0;
  int rows = 0;
  for (const sim::DatasetPreset& preset : sim::table1_presets()) {
    if (preset.real_data) continue;  // Fig 5 covers the simulated inputs
    const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);
    const bench::QualityResult jem =
        bench::run_jem_quality(dataset, params, core::SketchScheme::kJem);
    const bench::QualityResult mashmap =
        bench::run_mashmap_quality(dataset, params);
    table.add_row({preset.name, bench::pct(jem.counts.precision()),
                   bench::pct(jem.counts.recall()),
                   bench::pct(mashmap.counts.precision()),
                   bench::pct(mashmap.counts.recall()),
                   util::fixed(jem.map_s, 2), util::fixed(mashmap.map_s, 2)});
    jem_prec_sum += jem.counts.precision();
    mm_prec_sum += mashmap.counts.precision();
    jem_rec_sum += jem.counts.recall();
    mm_rec_sum += mashmap.counts.recall();
    ++rows;
  }
  std::cout << table.to_string() << '\n';

  std::cout << "means: JEM precision " << bench::pct(jem_prec_sum / rows)
            << " %, Mashmap precision " << bench::pct(mm_prec_sum / rows)
            << " %; JEM recall " << bench::pct(jem_rec_sum / rows)
            << " %, Mashmap recall " << bench::pct(mm_rec_sum / rows)
            << " %\n\n";
  std::cout << "Paper reference: both tools > 95 % precision on all inputs; "
               "JEM precision >= Mashmap on the larger eukaryotic inputs "
               "(B. splendens: 99.31 % precision / 96.18 % recall for JEM); "
               "Mashmap recall marginally higher throughout.\n";
  return 0;
}
