// Table II — strong scaling of JEM-mapper (p = 4..64) vs Mashmap with 64
// threads, on the six larger inputs.
//
// Execution model on this host: the container exposes a single CPU core, so
// the bulk-synchronous staged executor measures each rank's compute share in
// isolation and charges communication with the α-β network model (see
// mpisim/staged_executor.hpp). Mashmap's 64-thread runtime is modeled
// optimistically as perfect scaling of its measured sequential time — a
// *conservative* comparison (it can only understate JEM-mapper's advantage,
// since real Mashmap threading is sub-linear).
//
// The paper's claims to reproduce: runtime decreases with p but with
// flattening relative speedup (1.81x at p=8 to ~4.1x at p=64 on
// B. splendens), and JEM-mapper at p=64 is 5.6x-13x faster than Mashmap
// at t=64.
#include <iostream>
#include <map>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 2'000'000;
  std::uint64_t seed = 7;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases per input");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("table2_scaling");
    return 1;
  }

  std::cout << "=== Table II: strong scaling, JEM-mapper p=4..64 vs "
               "Mashmap t=64 (staged BSP model) ===\n\n";

  const std::vector<std::string> inputs{"C. elegans",    "D. busckii",
                                        "Human chr 7",   "Human chr 8",
                                        "B. splendens",  "O. sativa chr 8 (real)"};
  const std::vector<int> rank_counts{4, 8, 16, 32, 64};

  core::MapParams params;
  params.seed = seed;

  eval::TextTable table({"Input", "p=4 s", "p=8 s", "p=16 s", "p=32 s",
                         "p=64 s", "JEM seq s", "MM seq s", "MM t=64 s"});
  eval::TextTable relative({"Input", "p=8/p=4", "p=16/p=4", "p=32/p=4",
                            "p=64/p=4"});

  for (const std::string& name : inputs) {
    const sim::DatasetPreset& preset = sim::preset_by_name(name);
    const sim::Dataset dataset = bench::make_scaled(preset, cap_bp, seed);

    std::map<int, double> jem_times;
    for (int ranks : rank_counts) {
      const core::DistributedResult result = core::run_staged(
          dataset.contigs.contigs, dataset.reads.reads, params, ranks);
      jem_times[ranks] = result.report.total_s();
    }

    // Sequential (per-core) reference times for both tools, plus the
    // optimistically modeled Mashmap t=64 (perfect thread scaling).
    const bench::QualityResult jem_seq =
        bench::run_jem_quality(dataset, params, core::SketchScheme::kJem);
    const bench::QualityResult mashmap =
        bench::run_mashmap_quality(dataset, params);
    const double jem_seq_s = jem_seq.build_s + jem_seq.map_s;
    const double mashmap_seq_s = mashmap.build_s + mashmap.map_s;
    const double mashmap_t64 = mashmap_seq_s / 64.0;

    std::vector<std::string> row{name};
    for (int ranks : rank_counts) {
      row.push_back(util::fixed(jem_times[ranks], 3));
    }
    row.push_back(util::fixed(jem_seq_s, 3));
    row.push_back(util::fixed(mashmap_seq_s, 3));
    row.push_back(util::fixed(mashmap_t64, 3));
    table.add_row(row);

    relative.add_row({name, util::fixed(jem_times[4] / jem_times[8], 2) + "x",
                      util::fixed(jem_times[4] / jem_times[16], 2) + "x",
                      util::fixed(jem_times[4] / jem_times[32], 2) + "x",
                      util::fixed(jem_times[4] / jem_times[64], 2) + "x"});
  }

  std::cout << table.to_string() << '\n';
  std::cout << "Relative speedups (vs p=4):\n" << relative.to_string() << '\n';
  std::cout
      << "Paper reference (full scale, B. splendens): 518 s at p=4 -> 126 s "
         "at p=64, a 4.11x relative speedup = 26% parallel efficiency at 16x "
         "more processes; Mashmap t=64 took 899 s (5.6x-13x slower than JEM "
         "p=64 across inputs).\n"
         "Reproduced shape: runtime falls monotonically with p and the "
         "relative speedup flattens to a comparable parallel efficiency; "
         "JEM is cheaper per core than the Mashmap algorithm (JEM seq < MM "
         "seq). The paper's absolute 5.6x-13x gap against the Mashmap "
         "*binary* also reflects that implementation's constant factors, "
         "which this lean reimplementation of its algorithm does not carry "
         "— see EXPERIMENTS.md.\n";
  return 0;
}
