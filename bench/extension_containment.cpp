// Extension — containment mapping (paper §III-B1: "this segment-based
// approach may not apply to cases where a contig may be completely contained
// within an interior region of a long read. In such cases, an extension of
// the approach will be needed.")
//
// This driver implements that extension (whole-read tiling with ℓ-length
// segments, JemMapper::map_reads_tiled) and quantifies what it recovers:
// the fraction of true <read, contig> pairs found, overall and restricted
// to *interior-contained* contigs that end segments cannot reach by design.
#include <iostream>
#include <set>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t genome_bp = 600'000;
  std::uint64_t seed = 15;
  util::Options options;
  options.add_uint("genome-bp", genome_bp, "simulated genome length");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n'
              << options.usage("extension_containment");
    return 1;
  }

  std::cout << "=== Extension (paper SIII-B1): containment mapping via "
               "whole-read tiling ===\n\n";

  // Short contigs + long reads maximize interior containment.
  sim::GenomeParams genome_params;
  genome_params.length = genome_bp;
  genome_params.seed = seed;
  const std::string genome = sim::simulate_genome(genome_params);

  sim::ContigSimParams contig_params;
  contig_params.mean_length = 2000;
  contig_params.sd_length = 1500;
  contig_params.coverage_fraction = 0.9;
  contig_params.seed = seed + 1;
  const sim::SimulatedContigs contigs =
      sim::simulate_contigs(genome, contig_params);

  sim::HiFiParams read_params;
  read_params.coverage = 5.0;
  read_params.mean_length = 15'000;
  read_params.seed = seed + 2;
  const sim::SimulatedReads reads =
      sim::simulate_hifi_reads(genome, read_params);

  core::MapParams params;
  params.seed = seed;
  const core::JemMapper mapper(contigs.contigs, params);
  const eval::TruthSet truth(contigs.truth, reads.truth,
                             params.segment_length,
                             static_cast<std::uint32_t>(params.k));

  // Benchmark: all true <read, contig> pairs, and the subset where the
  // contig lies strictly inside the read interior (more than l away from
  // both read ends, so end segments cannot overlap it at all).
  std::set<std::pair<io::SeqId, io::SeqId>> all_pairs;
  std::set<std::pair<io::SeqId, io::SeqId>> contained_pairs;
  for (io::SeqId read = 0; read < reads.reads.size(); ++read) {
    const sim::Interval& span = reads.truth[read].interval;
    for (io::SeqId contig : truth.true_subjects_whole_read(read)) {
      all_pairs.insert({read, contig});
      const sim::Interval& c = contigs.truth[contig];
      if (span.length() > 2ull * params.segment_length &&
          c.begin >= span.begin + params.segment_length &&
          c.end <= span.end - params.segment_length) {
        contained_pairs.insert({read, contig});
      }
    }
  }

  const auto recovered_pairs =
      [&](const std::vector<core::SegmentMapping>& mappings) {
        std::set<std::pair<io::SeqId, io::SeqId>> pairs;
        for (const core::SegmentMapping& m : mappings) {
          if (!m.result.mapped()) continue;
          if (truth.true_subjects_at(m.read, m.offset, m.segment_length)
                  .empty()) {
            continue;  // off-target hit; pair recovery counts true hits only
          }
          pairs.insert({m.read, m.result.subject});
        }
        return pairs;
      };

  const auto count_in = [](const auto& found, const auto& bench) {
    std::uint64_t n = 0;
    for (const auto& pair : found) {
      if (bench.contains(pair)) ++n;
    }
    return n;
  };

  eval::TextTable table({"Mode", "pairs found", "pair recall %",
                         "contained recall %", "segments", "map s"});
  for (const bool tiled : {false, true}) {
    util::WallTimer timer;
    const auto mappings =
        tiled ? mapper.map_reads_tiled(
                    reads.reads, 0,
                    static_cast<io::SeqId>(reads.reads.size()))
              : mapper.map_reads(reads.reads);
    const double map_s = timer.elapsed_s();
    const auto found = recovered_pairs(mappings);
    const std::uint64_t in_bench = count_in(found, all_pairs);
    const std::uint64_t contained = count_in(found, contained_pairs);
    table.add_row(
        {tiled ? "tiled (containment)" : "end segments",
         std::to_string(in_bench),
         util::fixed(100.0 * static_cast<double>(in_bench) /
                         static_cast<double>(all_pairs.size()),
                     1),
         util::fixed(contained_pairs.empty()
                         ? 0.0
                         : 100.0 * static_cast<double>(contained) /
                               static_cast<double>(contained_pairs.size()),
                     1),
         std::to_string(mappings.size()), util::fixed(map_s, 2)});
  }
  std::cout << "true <read, contig> pairs: " << all_pairs.size()
            << " (interior-contained: " << contained_pairs.size() << ")\n\n";
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: end-segment mapping recovers ~0 % of "
               "interior-contained pairs (unreachable by design); tiling "
               "recovers most of them at proportionally higher query cost.\n";
  return 0;
}
