// Ablation — the reporting threshold min_votes: how the precision/recall
// tradeoff moves as the required number of supporting trials grows. The
// paper reports the unfiltered best hit (min_votes = 1); this sweep shows
// how much precision a downstream pipeline can buy by requiring stronger
// agreement across trials, and what it costs in recall.
#include <iostream>

#include "driver_common.hpp"
#include "eval/report.hpp"

int main(int argc, const char** argv) {
  using namespace jem;

  std::uint64_t cap_bp = 800'000;
  std::uint64_t seed = 17;
  util::Options options;
  options.add_uint("cap-bp", cap_bp, "max simulated genome bases");
  options.add_uint("seed", seed, "experiment seed");
  try {
    (void)options.parse(argc, argv);
  } catch (const util::OptionError& error) {
    std::cerr << error.what() << '\n' << options.usage("ablation_minvotes");
    return 1;
  }

  std::cout << "=== Ablation: reporting threshold min_votes "
               "(Human chr 7, T = 30) ===\n\n";

  const sim::Dataset dataset =
      bench::make_scaled(sim::preset_by_name("Human chr 7"), cap_bp, seed);

  eval::TextTable table({"min_votes", "Precision %", "Recall %", "Mapped %"});
  for (std::uint32_t min_votes : {1u, 2u, 5u, 10u, 15u, 20u, 25u}) {
    core::MapParams params;
    params.seed = seed;
    params.min_votes = min_votes;
    const bench::QualityResult result =
        bench::run_jem_quality(dataset, params, core::SketchScheme::kJem);
    table.add_row(
        {std::to_string(min_votes), bench::pct(result.counts.precision()),
         bench::pct(result.counts.recall()),
         bench::pct(static_cast<double>(result.counts.mapped) /
                    static_cast<double>(result.counts.segments))});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "Expected shape: precision rises monotonically with the "
               "threshold while recall falls — weak single-trial hits are "
               "where most false positives live.\n";
  return 0;
}
