// k-mer encoding: 2-bit packed, MSB-first, k <= 32 in a std::uint64_t.
//
// The encoded value of a k-mer *is* its rank x in the canonical
// lexicographic ordering Π*_k of all |Σ|^k k-mers (§III-A of the paper),
// because base codes preserve lexicographic order and packing is MSB-first.
// The JEM hash family h_t(x) = (A_t·x + B_t) mod P_t operates directly on
// these ranks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/dna.hpp"

namespace jem::core {

using KmerCode = std::uint64_t;

inline constexpr int kMaxK = 32;

/// Stateless codec for a fixed k.
class KmerCodec {
 public:
  /// k must be in [1, 32].
  explicit KmerCodec(int k);

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Mask with the low 2k bits set.
  [[nodiscard]] KmerCode mask() const noexcept { return mask_; }

  /// Encodes seq[0..k); returns nullopt if any base is not ACGT or the view
  /// is shorter than k.
  [[nodiscard]] std::optional<KmerCode> encode(
      std::string_view seq) const noexcept;

  /// Decodes a code back to an ACGT string of length k.
  [[nodiscard]] std::string decode(KmerCode code) const;

  /// Rolls one base onto the 3' end: (prev << 2 | code) & mask. `base_code`
  /// must be a valid 2-bit code.
  [[nodiscard]] KmerCode roll(KmerCode prev,
                              std::uint8_t base_code) const noexcept {
    return ((prev << 2) | base_code) & mask_;
  }

  /// Rolls one base onto the 5' end of the reverse-complement track:
  /// prev >> 2 | complement(code) << 2(k-1).
  [[nodiscard]] KmerCode roll_rc(KmerCode prev,
                                 std::uint8_t base_code) const noexcept {
    return (prev >> 2) |
           (static_cast<KmerCode>(complement_code(base_code)) << rc_shift_);
  }

  /// Reverse complement of an encoded k-mer.
  [[nodiscard]] KmerCode reverse_complement(KmerCode code) const noexcept;

  /// Canonical form: min(code, reverse_complement(code)) — lexicographically
  /// smaller of the k-mer and its reverse complement, as in the paper's
  /// "canonical minimizer" definition.
  [[nodiscard]] KmerCode canonical(KmerCode code) const noexcept {
    const KmerCode rc = reverse_complement(code);
    return code < rc ? code : rc;
  }

 private:
  int k_;
  int rc_shift_;  // 2*(k-1)
  KmerCode mask_;
};

}  // namespace jem::core
