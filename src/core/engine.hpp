// MappingEngine — the unified batched/streaming execution layer over
// JemMapper (Algorithm 2). One MapRequest selects what to map (end
// segments, whole-read tiling, or top-x candidate lists) and how to run it
// (serial, thread pool, OpenMP; batch size; thread count), replacing the
// near-duplicate map_reads_* entrypoints, which remain as thin deprecated
// wrappers for one release.
//
// Two execution shapes share the same per-batch kernels:
//  * run()        — in-memory: the query set is already loaded; batches are
//    index ranges over it, mapped in parallel and concatenated in order.
//    Output is bit-identical to sequential JemMapper::map_reads for every
//    (mode, backend, batch size) combination (golden-tested).
//  * run_stream() — streaming: a three-stage pipeline in the shape minimap2
//    uses for heavy traffic. The caller's thread parses ReadBatches and
//    pushes them into a BoundedQueue (backpressure: parsing stalls when the
//    mappers fall behind), pool workers map batches with a reused per-thread
//    MapScratch, and an in-order emitter hands results to the sink in batch
//    order. Memory is O(queue_depth · batch) in the query set.
//
// Every run fills an EngineStats observability block (batches, segments/s,
// queue-wait, per-stage times) that examples/jem_map prints and bench/
// records.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "core/params.hpp"
#include "io/batch_stream.hpp"
#include "obs/obs.hpp"
#include "util/fault_plan.hpp"
#include "util/thread_pool.hpp"

namespace jem::io {
class CheckpointWriter;  // io/checkpoint.hpp
}  // namespace jem::io

namespace jem::core {

/// What to map per read.
enum class MapMode {
  kEnds,   // the paper's two l-length end segments per read
  kTiled,  // containment mode: tile the whole read with l-length segments
  kTopX,   // end segments, reporting up to top_x candidates each
};

/// Where the map stage runs.
enum class MapBackend {
  kSerial,  // caller's thread
  kPool,    // util::ThreadPool workers
  kOpenMP,  // OpenMP parallel-for (falls back to serial without OpenMP)
};

/// One mapping job description — the single configuration point for every
/// execution mode the deprecated map_reads_* family used to cover.
struct MapRequest {
  MapMode mode = MapMode::kEnds;
  MapBackend backend = MapBackend::kSerial;

  /// Reads per batch. 0 = auto: one batch for kSerial, ~4 batches per
  /// worker otherwise (in-memory), and the BatchStream's size (streaming).
  std::size_t batch_size = 0;

  /// Worker count for kPool (and the streaming pipeline). 0 = hardware
  /// concurrency. Ignored by kSerial; kOpenMP uses the OpenMP runtime's
  /// thread count.
  std::size_t threads = 0;

  /// Candidates per segment in kTopX mode.
  std::size_t top_x = 3;

  /// Optional tightening of MapParams::min_votes for this run only. Must be
  /// >= the mapper's configured min_votes (the sketch table cannot recover
  /// hits below the threshold it was queried with).
  std::optional<std::uint32_t> min_votes;

  /// Streaming only: ReadBatches buffered between reader and mappers.
  /// Bounds memory and provides backpressure.
  std::size_t queue_depth = 4;

  /// Streaming only: upper bound on any single queue wait (producer push,
  /// worker pop). 0 = wait forever (the pre-robustness semantics). With a
  /// timeout set, each wait is retried up to `max_retries` times with the
  /// allowance doubling per attempt; exhaustion throws EngineTimeout, which
  /// run_stream_guarded converts into a structured MapReport failure
  /// instead of a deadlocked pipeline.
  std::chrono::milliseconds stage_timeout{0};
  int max_retries = 3;

  /// Deterministic fault schedule for chaos testing (docs/robustness.md).
  /// Streaming only; decisions are keyed by batch index at sites
  /// "stream.next", "queue.push", "map" and "sink", so the same plan
  /// replays the same schedule regardless of thread interleaving. An empty
  /// plan (the default) costs nothing.
  util::FaultPlan fault_plan;

  /// Streaming only: run journal for checkpointed resumable runs (not
  /// owned; null = no checkpointing). After each batch is handed to the
  /// sink — at the in-order emit point, so "journaled" always means "its
  /// output and every predecessor's output are in the sink" — the engine
  /// appends one durable record. The driver resumes by reading the journal
  /// (io::read_journal), fast-forwarding the stream (BatchStream::skip) and
  /// attaching a reopened writer (docs/persistence.md).
  io::CheckpointWriter* checkpoint = nullptr;

  /// Optional observability sinks (not owned; docs/observability.md). With
  /// a metrics registry attached the run publishes engine.* metrics,
  /// per-batch histograms, and the mapper's sampled core.hotpath.*
  /// counters; with a tracer attached every pipeline stage records spans.
  /// A default ObsHooks{} disables all of it.
  obs::ObsHooks obs;

  /// Hot-path sampling period for core.hotpath.* counters: every Nth
  /// segment is measured in full. Only active when obs.metrics is set.
  std::uint32_t hotpath_sample_every = 16;

  void validate() const;
};

/// Observability block of one engine run. Since the obs layer landed this
/// struct is a *view*: the run accumulates into the same counters that feed
/// `MapRequest::obs.metrics`, and the struct is materialized from them at
/// run end (publish() writes the identical values into a registry under
/// `engine.*` names, so struct consumers and metrics consumers can never
/// disagree). The field layout is unchanged — existing tests and callers
/// compile and behave as before.
///
/// Units, precisely (the old comments drifted here):
///  * read_s is wall-clock seconds spent inside stream parsing, measured on
///    the reader thread only.
///  * map_s / emit_s / queue_wait_s are CPU-seconds *summed across all
///    workers* (and, for queue_wait_s, the producer's push waits too). With
///    N workers each may legitimately exceed wall_s by up to a factor of N
///    — they are utilization numbers, not elapsed time.
///  * wall_s is elapsed wall-clock time of the whole run; segments_per_s()
///    is the only throughput derived from it.
struct EngineStats {
  std::uint64_t batches = 0;
  std::uint64_t reads = 0;
  std::uint64_t segments = 0;   // mapped units emitted (incl. unmapped rows)
  double read_s = 0.0;          // parsing, reader-thread wall seconds
  double map_s = 0.0;           // map stage, CPU-seconds summed over workers
  double emit_s = 0.0;          // emit + sink, CPU-seconds summed over workers
  double queue_wait_s = 0.0;    // producer full-waits + worker empty-waits,
                                // CPU-seconds summed over all threads
  double wall_s = 0.0;          // whole-run elapsed wall clock

  // Robustness counters (streaming runs with a fault plan / timeouts).
  std::uint64_t faults_injected = 0;  // fault decisions that fired
  std::uint64_t batches_dropped = 0;  // batches lost to injected drops
  std::uint64_t timeouts = 0;         // queue waits that expired
  std::uint64_t retries = 0;          // expired waits that were retried

  // Persistence counters (checkpointed / resumed streaming runs).
  std::uint64_t batches_skipped = 0;  // resume fast-forward past the journal
  std::uint64_t journal_appends = 0;  // checkpoint records written this run

  /// End-to-end throughput in segments per second of *wall* time (not
  /// summed CPU time — on an N-worker run this is N-fold smaller than
  /// segments divided by map_s).
  [[nodiscard]] double segments_per_s() const noexcept {
    return wall_s > 0.0 ? static_cast<double>(segments) / wall_s : 0.0;
  }

  /// Adds this run's values to `registry` under `engine.*` metric names
  /// (counters for the tallies, kNanos counters for the stage times, and
  /// the derived throughput as a gauge). This is the single mapping between
  /// the struct view and the registry view.
  void publish(obs::Registry& registry) const;
};

/// A queue wait in the streaming pipeline exhausted its retry budget.
class EngineTimeout : public std::runtime_error {
 public:
  explicit EngineTimeout(std::string site)
      : std::runtime_error("engine: stage timed out at " + site),
        site_(std::move(site)) {}

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// Structured description of a failed streaming run: the pipeline site that
/// failed ("stream.next", "queue.push", "map", "sink", "pipeline") and the
/// underlying exception text.
struct EngineFailure {
  std::string site;
  std::string message;
};

/// Result of an in-memory run. Exactly one of `mappings` (kEnds / kTiled)
/// and `topx` (kTopX) is populated, matching the request's mode.
/// run_stream_guarded reuses this shape with only `stats` and `failure`
/// populated (results went to the sink).
struct MapReport {
  std::vector<SegmentMapping> mappings;
  std::vector<SegmentTopX> topx;
  EngineStats stats;

  /// Set when a guarded streaming run failed (aborted, timed out, or threw)
  /// instead of completing; empty on success.
  std::optional<EngineFailure> failure;

  [[nodiscard]] bool ok() const noexcept { return !failure.has_value(); }
};

class MappingEngine;

namespace detail {
/// The shared in-memory executor behind MappingEngine::run and the
/// deprecated JemMapper::map_reads_* wrappers. `external_pool` (may be
/// null) overrides request.threads for the kPool backend.
[[nodiscard]] MapReport run_request(const JemMapper& mapper,
                                    const io::SequenceSet& reads,
                                    const MapRequest& request,
                                    util::ThreadPool* external_pool = nullptr);
}  // namespace detail

class MappingEngine {
 public:
  /// Sketches all subjects into an owned JemMapper (sequential S2).
  MappingEngine(const io::SequenceSet& subjects, MapParams params,
                SketchScheme scheme = SketchScheme::kJem);

  /// Adopts a pre-built (e.g. loaded or allgathered) sketch table.
  MappingEngine(const io::SequenceSet& subjects, MapParams params,
                SketchScheme scheme, SketchTable table);

  [[nodiscard]] const JemMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] const MapParams& params() const noexcept {
    return mapper_.params();
  }

  /// In-memory batched run over an already-loaded query set. Read ids in
  /// the report are global (indices into `reads`).
  [[nodiscard]] MapReport run(const io::SequenceSet& reads,
                              const MapRequest& request) const;

  /// One mapped batch handed to the streaming sink. Read ids inside
  /// `mappings` / `topx` are local to `batch.reads`; add
  /// `batch.first_record` to globalize them.
  struct BatchResult {
    io::ReadBatch batch;
    std::vector<SegmentMapping> mappings;
    std::vector<SegmentTopX> topx;
  };
  using BatchSink = std::function<void(const BatchResult&)>;

  /// Streaming pipelined run: reader (caller's thread) -> bounded queue ->
  /// map workers -> in-order emitter. The sink is invoked in batch order,
  /// one batch at a time, never concurrently. request.batch_size is ignored
  /// here (the stream's own batch size applies). Exceptions from parsing,
  /// mapping, or the sink propagate to the caller after the pipeline shuts
  /// down.
  EngineStats run_stream(io::BatchStream& stream, const MapRequest& request,
                         const BatchSink& sink) const;

  /// run_stream with failures contained: injected aborts, stage timeouts,
  /// parse errors and sink exceptions shut the pipeline down cleanly and
  /// come back as report.failure instead of propagating (programming errors
  /// — e.g. an invalid request — still throw). Stats reflect the work done
  /// up to the failure.
  [[nodiscard]] MapReport run_stream_guarded(io::BatchStream& stream,
                                             const MapRequest& request,
                                             const BatchSink& sink) const;

 private:
  EngineStats run_stream_impl(io::BatchStream& stream,
                              const MapRequest& request, const BatchSink& sink,
                              EngineFailure* failure_out) const;

  JemMapper mapper_;
};

}  // namespace jem::core
