#include "core/engine.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/bounded_queue.hpp"
#include "util/timer.hpp"

namespace jem::core {

void MapRequest::validate() const {
  if (queue_depth == 0) {
    throw std::invalid_argument("MapRequest: queue_depth must be >= 1");
  }
  if (min_votes && *min_votes < 1) {
    throw std::invalid_argument("MapRequest: min_votes must be >= 1");
  }
}

namespace {

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t effective_batch_size(const MapRequest& request, std::size_t n,
                                 std::size_t threads) {
  if (request.batch_size > 0) return request.batch_size;
  if (request.backend == MapBackend::kSerial) {
    return std::max<std::size_t>(n, 1);
  }
  // Auto: ~4 batches per worker — load balance without per-read task
  // overhead.
  const std::size_t chunks = std::max<std::size_t>(1, threads * 4);
  return std::max<std::size_t>(1, (n + chunks - 1) / chunks);
}

void check_min_votes(const MapRequest& request, const MapParams& params) {
  if (request.min_votes && *request.min_votes < params.min_votes) {
    throw std::invalid_argument(
        "MapRequest: min_votes override below MapParams::min_votes");
  }
}

void apply_min_votes(std::uint32_t threshold,
                     std::vector<SegmentMapping>& mappings) {
  for (SegmentMapping& mapping : mappings) {
    if (mapping.result.mapped() && mapping.result.votes < threshold) {
      mapping.result = MapResult{};
    }
  }
}

void apply_min_votes(std::uint32_t threshold,
                     std::vector<SegmentTopX>& topx) {
  // Hits are sorted by votes descending: the filtered tail is a suffix.
  for (SegmentTopX& mapping : topx) {
    while (!mapping.hits.empty() && mapping.hits.back().votes < threshold) {
      mapping.hits.pop_back();
    }
  }
}

struct BatchOutput {
  std::vector<SegmentMapping> mappings;
  std::vector<SegmentTopX> topx;
};

/// The per-batch kernel every backend shares: sequential mapping of reads
/// [begin, end) in the requested mode, min_votes override applied.
BatchOutput map_range(const JemMapper& mapper, const io::SequenceSet& reads,
                      io::SeqId begin, io::SeqId end,
                      const MapRequest& request, MapScratch& scratch) {
  BatchOutput out;
  switch (request.mode) {
    case MapMode::kEnds:
      out.mappings = mapper.map_reads(reads, begin, end, scratch);
      break;
    case MapMode::kTiled:
      out.mappings = mapper.map_reads_tiled(reads, begin, end, scratch);
      break;
    case MapMode::kTopX:
      out.topx =
          mapper.map_reads_topx(reads, request.top_x, begin, end, scratch);
      break;
  }
  if (request.min_votes) {
    apply_min_votes(*request.min_votes, out.mappings);
    apply_min_votes(*request.min_votes, out.topx);
  }
  return out;
}

/// Recycles MapScratch instances across pool tasks so the kPool backend
/// allocates one scratch per worker, not one per batch.
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t num_subjects)
      : num_subjects_(num_subjects) {}

  [[nodiscard]] std::unique_ptr<MapScratch> acquire() {
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<MapScratch> scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<MapScratch>(num_subjects_);
  }

  void release(std::unique_ptr<MapScratch> scratch) {
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(scratch));
  }

 private:
  std::size_t num_subjects_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<MapScratch>> free_;
};

}  // namespace

namespace detail {

MapReport run_request(const JemMapper& mapper, const io::SequenceSet& reads,
                      const MapRequest& request,
                      util::ThreadPool* external_pool) {
  request.validate();
  check_min_votes(request, mapper.params());

  const util::WallTimer wall;
  MapReport report;

  const std::size_t n = reads.size();
  std::size_t threads = external_pool ? external_pool->size()
                                      : default_threads(request.threads);
#ifdef _OPENMP
  if (request.backend == MapBackend::kOpenMP && request.threads == 0) {
    threads = static_cast<std::size_t>(omp_get_max_threads());
  }
#endif
  const std::size_t batch = effective_batch_size(request, n, threads);
  const std::size_t num_batches = n == 0 ? 0 : (n + batch - 1) / batch;

  std::vector<BatchOutput> outputs(num_batches);
  std::atomic<std::uint64_t> map_ns{0};

  const auto run_batch = [&](std::size_t b, MapScratch& scratch) {
    const util::WallTimer timer;
    const auto begin = static_cast<io::SeqId>(b * batch);
    const auto end = static_cast<io::SeqId>(std::min(n, (b + 1) * batch));
    outputs[b] = map_range(mapper, reads, begin, end, request, scratch);
    map_ns += timer.elapsed_ns();
  };

  switch (request.backend) {
    case MapBackend::kSerial: {
      MapScratch scratch(mapper.subjects().size());
      for (std::size_t b = 0; b < num_batches; ++b) run_batch(b, scratch);
      break;
    }
    case MapBackend::kPool: {
      std::optional<util::ThreadPool> owned;
      util::ThreadPool* pool = external_pool;
      if (pool == nullptr) {
        owned.emplace(threads);
        pool = &*owned;
      }
      ScratchPool scratches(mapper.subjects().size());
      std::vector<std::future<void>> futures;
      futures.reserve(num_batches);
      for (std::size_t b = 0; b < num_batches; ++b) {
        futures.push_back(pool->submit([&, b] {
          std::unique_ptr<MapScratch> scratch = scratches.acquire();
          run_batch(b, *scratch);
          scratches.release(std::move(scratch));
        }));
      }
      for (std::future<void>& future : futures) future.get();
      break;
    }
    case MapBackend::kOpenMP: {
#ifdef _OPENMP
      const auto batches = static_cast<std::int64_t>(num_batches);
#pragma omp parallel
      {
        MapScratch scratch(mapper.subjects().size());
#pragma omp for schedule(dynamic)
        for (std::int64_t b = 0; b < batches; ++b) {
          run_batch(static_cast<std::size_t>(b), scratch);
        }
      }
#else
      MapScratch scratch(mapper.subjects().size());
      for (std::size_t b = 0; b < num_batches; ++b) run_batch(b, scratch);
#endif
      break;
    }
  }

  // In-order concatenation restores the sequential output exactly.
  for (BatchOutput& out : outputs) {
    report.mappings.insert(report.mappings.end(),
                           std::make_move_iterator(out.mappings.begin()),
                           std::make_move_iterator(out.mappings.end()));
    report.topx.insert(report.topx.end(),
                       std::make_move_iterator(out.topx.begin()),
                       std::make_move_iterator(out.topx.end()));
  }

  EngineStats& stats = report.stats;
  stats.batches = num_batches;
  stats.reads = n;
  stats.segments = report.mappings.size() + report.topx.size();
  stats.map_s = static_cast<double>(map_ns.load()) * 1e-9;
  stats.wall_s = wall.elapsed_s();
  return report;
}

}  // namespace detail

MappingEngine::MappingEngine(const io::SequenceSet& subjects, MapParams params,
                             SketchScheme scheme)
    : mapper_(subjects, params, scheme) {}

MappingEngine::MappingEngine(const io::SequenceSet& subjects, MapParams params,
                             SketchScheme scheme, SketchTable table)
    : mapper_(subjects, params, scheme, std::move(table)) {}

MapReport MappingEngine::run(const io::SequenceSet& reads,
                             const MapRequest& request) const {
  return detail::run_request(mapper_, reads, request);
}

EngineStats MappingEngine::run_stream(io::BatchStream& stream,
                                      const MapRequest& request,
                                      const BatchSink& sink) const {
  request.validate();
  check_min_votes(request, mapper_.params());

  const util::WallTimer wall;
  EngineStats stats;

  const auto map_batch = [&](io::ReadBatch&& batch, MapScratch& scratch) {
    BatchResult result;
    result.batch = std::move(batch);
    const auto n = static_cast<io::SeqId>(result.batch.reads.size());
    BatchOutput out =
        map_range(mapper_, result.batch.reads, 0, n, request, scratch);
    result.mappings = std::move(out.mappings);
    result.topx = std::move(out.topx);
    return result;
  };

  if (request.backend != MapBackend::kPool) {
    // Single-threaded pipeline (kOpenMP parallelizes inside each batch).
    MapScratch scratch(mapper_.subjects().size());
    io::ReadBatch batch;
    while (true) {
      const util::WallTimer read_timer;
      const bool more = stream.next(batch);
      stats.read_s += read_timer.elapsed_s();
      if (!more) break;
      const util::WallTimer map_timer;
      BatchResult result;
      if (request.backend == MapBackend::kOpenMP) {
        result.batch = std::move(batch);
        MapRequest sub = request;
        sub.batch_size = 0;  // auto-chunk the batch across OpenMP threads
        MapReport sub_report =
            detail::run_request(mapper_, result.batch.reads, sub);
        result.mappings = std::move(sub_report.mappings);
        result.topx = std::move(sub_report.topx);
      } else {
        result = map_batch(std::move(batch), scratch);
      }
      stats.map_s += map_timer.elapsed_s();
      stats.batches += 1;
      stats.reads += result.batch.reads.size();
      stats.segments += result.mappings.size() + result.topx.size();
      const util::WallTimer emit_timer;
      sink(result);
      stats.emit_s += emit_timer.elapsed_s();
    }
    stats.wall_s = wall.elapsed_s();
    return stats;
  }

  // Three-stage pipeline: this thread parses and pushes ReadBatches into a
  // bounded queue (backpressure), pool workers map them, and whichever
  // worker completes the next in-order batch flushes it to the sink.
  const std::size_t workers = default_threads(request.threads);
  util::BoundedQueue<io::ReadBatch> queue(request.queue_depth);

  std::atomic<std::uint64_t> map_ns{0};
  std::atomic<std::uint64_t> pop_wait_ns{0};
  std::atomic<std::uint64_t> emit_ns{0};
  std::atomic<std::uint64_t> reads_mapped{0};
  std::atomic<std::uint64_t> segments{0};

  std::mutex emit_mutex;
  std::map<std::uint64_t, BatchResult> pending;  // guarded by emit_mutex
  std::uint64_t next_emit = 0;                   // guarded by emit_mutex
  std::exception_ptr sink_error;                 // guarded by emit_mutex

  const auto worker = [&] {
    MapScratch scratch(mapper_.subjects().size());
    while (true) {
      const util::WallTimer pop_timer;
      std::optional<io::ReadBatch> batch = queue.pop();
      pop_wait_ns += pop_timer.elapsed_ns();
      if (!batch) break;

      const util::WallTimer map_timer;
      BatchResult result = map_batch(std::move(*batch), scratch);
      map_ns += map_timer.elapsed_ns();
      reads_mapped += result.batch.reads.size();
      segments += result.mappings.size() + result.topx.size();

      const util::WallTimer emit_timer;
      {
        std::lock_guard lock(emit_mutex);
        pending.emplace(result.batch.index, std::move(result));
        // Flush the ready in-order prefix. Holding the lock serializes
        // sink calls and keeps them in batch order.
        for (auto it = pending.find(next_emit);
             it != pending.end() && sink_error == nullptr;
             it = pending.find(next_emit)) {
          try {
            sink(it->second);
          } catch (...) {
            sink_error = std::current_exception();
            queue.close();  // aborts the producer and idle workers
          }
          pending.erase(it);
          ++next_emit;
        }
      }
      emit_ns += emit_timer.elapsed_ns();
    }
  };

  util::ThreadPool pool(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    futures.push_back(pool.submit(worker));
  }

  std::exception_ptr read_error;
  std::uint64_t push_wait_ns = 0;
  try {
    io::ReadBatch batch;
    while (true) {
      const util::WallTimer read_timer;
      const bool more = stream.next(batch);
      stats.read_s += read_timer.elapsed_s();
      if (!more) break;
      const util::WallTimer push_timer;
      const bool pushed = queue.push(std::move(batch));
      push_wait_ns += push_timer.elapsed_ns();
      if (!pushed) break;  // pipeline aborted by a sink failure
    }
  } catch (...) {
    read_error = std::current_exception();  // rethrown after shutdown
  }
  queue.close();
  for (std::future<void>& future : futures) future.get();

  if (read_error) std::rethrow_exception(read_error);
  if (sink_error) std::rethrow_exception(sink_error);

  stats.batches = next_emit;
  stats.reads = reads_mapped.load();
  stats.segments = segments.load();
  stats.map_s = static_cast<double>(map_ns.load()) * 1e-9;
  stats.emit_s = static_cast<double>(emit_ns.load()) * 1e-9;
  stats.queue_wait_s =
      static_cast<double>(pop_wait_ns.load() + push_wait_ns) * 1e-9;
  stats.wall_s = wall.elapsed_s();
  return stats;
}

}  // namespace jem::core
