#include "core/engine.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "io/checkpoint.hpp"
#include "io/fasta.hpp"
#include "util/bounded_queue.hpp"
#include "util/timer.hpp"

namespace jem::core {

void EngineStats::publish(obs::Registry& registry) const {
  using obs::Unit;
  const auto ns = [](double s) {
    return s > 0.0 ? static_cast<std::uint64_t>(s * 1e9) : 0;
  };
  registry.counter("engine.batches").add(batches);
  registry.counter("engine.reads").add(reads);
  registry.counter("engine.segments").add(segments);
  registry.counter("engine.read_ns", Unit::kNanos).add(ns(read_s));
  registry.counter("engine.map_ns", Unit::kNanos).add(ns(map_s));
  registry.counter("engine.emit_ns", Unit::kNanos).add(ns(emit_s));
  registry.counter("engine.queue_wait_ns", Unit::kNanos)
      .add(ns(queue_wait_s));
  registry.counter("engine.wall_ns", Unit::kNanos).add(ns(wall_s));
  registry.counter("engine.faults_injected").add(faults_injected);
  registry.counter("engine.batches_dropped").add(batches_dropped);
  registry.counter("engine.timeouts").add(timeouts);
  registry.counter("engine.retries").add(retries);
  registry.counter("engine.batches_skipped").add(batches_skipped);
  registry.counter("engine.journal_appends").add(journal_appends);
}

void MapRequest::validate() const {
  if (queue_depth == 0) {
    throw std::invalid_argument("MapRequest: queue_depth must be >= 1");
  }
  if (min_votes && *min_votes < 1) {
    throw std::invalid_argument("MapRequest: min_votes must be >= 1");
  }
  if (stage_timeout.count() < 0) {
    throw std::invalid_argument("MapRequest: stage_timeout must be >= 0");
  }
  if (max_retries < 0) {
    throw std::invalid_argument("MapRequest: max_retries must be >= 0");
  }
}

namespace {

/// Live metric handles an instrumented run resolves once up front, so the
/// per-batch path never does a name lookup. All null when no registry is
/// attached.
struct EngineMetrics {
  obs::Histogram* batch_reads = nullptr;
  obs::Histogram* batch_map_ns = nullptr;
  obs::Gauge* queue_depth = nullptr;

  explicit EngineMetrics(obs::Registry* registry) {
    if (registry == nullptr) return;
    batch_reads = &registry->histogram("engine.batch.reads");
    batch_map_ns =
        &registry->histogram("engine.batch.map_ns", obs::Unit::kNanos);
    queue_depth = &registry->gauge("engine.queue.depth");
  }

  void record_batch(std::size_t reads, std::uint64_t map_ns) const {
    if (batch_reads == nullptr) return;
    batch_reads->record(reads);
    batch_map_ns->record(map_ns);
  }
};

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t effective_batch_size(const MapRequest& request, std::size_t n,
                                 std::size_t threads) {
  if (request.batch_size > 0) return request.batch_size;
  if (request.backend == MapBackend::kSerial) {
    return std::max<std::size_t>(n, 1);
  }
  // Auto: ~4 batches per worker — load balance without per-read task
  // overhead.
  const std::size_t chunks = std::max<std::size_t>(1, threads * 4);
  return std::max<std::size_t>(1, (n + chunks - 1) / chunks);
}

void check_min_votes(const MapRequest& request, const MapParams& params) {
  if (request.min_votes && *request.min_votes < params.min_votes) {
    throw std::invalid_argument(
        "MapRequest: min_votes override below MapParams::min_votes");
  }
}

void apply_min_votes(std::uint32_t threshold,
                     std::vector<SegmentMapping>& mappings) {
  for (SegmentMapping& mapping : mappings) {
    if (mapping.result.mapped() && mapping.result.votes < threshold) {
      mapping.result = MapResult{};
    }
  }
}

void apply_min_votes(std::uint32_t threshold,
                     std::vector<SegmentTopX>& topx) {
  // Hits are sorted by votes descending: the filtered tail is a suffix.
  for (SegmentTopX& mapping : topx) {
    while (!mapping.hits.empty() && mapping.hits.back().votes < threshold) {
      mapping.hits.pop_back();
    }
  }
}

struct BatchOutput {
  std::vector<SegmentMapping> mappings;
  std::vector<SegmentTopX> topx;
};

/// The per-batch kernel every backend shares: sequential mapping of reads
/// [begin, end) in the requested mode, min_votes override applied.
BatchOutput map_range(const JemMapper& mapper, const io::SequenceSet& reads,
                      io::SeqId begin, io::SeqId end,
                      const MapRequest& request, MapScratch& scratch) {
  BatchOutput out;
  switch (request.mode) {
    case MapMode::kEnds:
      out.mappings = mapper.map_reads(reads, begin, end, scratch);
      break;
    case MapMode::kTiled:
      out.mappings = mapper.map_reads_tiled(reads, begin, end, scratch);
      break;
    case MapMode::kTopX:
      out.topx =
          mapper.map_reads_topx(reads, request.top_x, begin, end, scratch);
      break;
  }
  if (request.min_votes) {
    apply_min_votes(*request.min_votes, out.mappings);
    apply_min_votes(*request.min_votes, out.topx);
  }
  return out;
}

/// Detaches the pipeline's fault injector from the stream on every exit
/// path (the stream outlives the run and must not keep a dangling pointer).
class StreamInjectorGuard {
 public:
  StreamInjectorGuard(io::BatchStream& stream, util::FaultInjector* injector)
      : stream_(stream) {
    stream_.set_fault_injector(
        injector != nullptr && injector->active() ? injector : nullptr);
  }
  ~StreamInjectorGuard() { stream_.set_fault_injector(nullptr); }

  StreamInjectorGuard(const StreamInjectorGuard&) = delete;
  StreamInjectorGuard& operator=(const StreamInjectorGuard&) = delete;

 private:
  io::BatchStream& stream_;
};

/// Same contract for the checkpoint writer's "ckpt.write" fault site: the
/// writer belongs to the driver and outlives the run.
class CheckpointInjectorGuard {
 public:
  CheckpointInjectorGuard(io::CheckpointWriter* writer,
                          util::FaultInjector* injector)
      : writer_(writer) {
    if (writer_ != nullptr) {
      writer_->set_fault_injector(
          injector != nullptr && injector->active() ? injector : nullptr);
    }
  }
  ~CheckpointInjectorGuard() {
    if (writer_ != nullptr) writer_->set_fault_injector(nullptr);
  }

  CheckpointInjectorGuard(const CheckpointInjectorGuard&) = delete;
  CheckpointInjectorGuard& operator=(const CheckpointInjectorGuard&) = delete;

 private:
  io::CheckpointWriter* writer_;
};

/// Maps a contained pipeline exception to its structured description.
/// With no `out` the exception propagates unchanged (run_stream semantics).
void resolve_failure(const std::exception_ptr& error, EngineFailure* out) {
  if (error == nullptr) return;
  if (out == nullptr) std::rethrow_exception(error);
  try {
    std::rethrow_exception(error);
  } catch (const util::FaultAbort& abort) {
    *out = {abort.site(), abort.what()};
  } catch (const EngineTimeout& timeout) {
    *out = {timeout.site(), timeout.what()};
  } catch (const io::ParseError& parse) {
    *out = {"stream.next", parse.what()};
  } catch (const std::exception& other) {
    *out = {"pipeline", other.what()};
  }
}

/// Recycles MapScratch instances across pool tasks so the kPool backend
/// allocates one scratch per worker, not one per batch.
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t num_subjects)
      : num_subjects_(num_subjects) {}

  [[nodiscard]] std::unique_ptr<MapScratch> acquire() {
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<MapScratch> scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<MapScratch>(num_subjects_);
  }

  void release(std::unique_ptr<MapScratch> scratch) {
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(scratch));
  }

  /// Visits every pooled scratch (all are back in the free list once the
  /// batch futures have completed) — the hotpath-counter publish point.
  template <typename F>
  void for_each(F&& visit) {
    std::lock_guard lock(mutex_);
    for (auto& scratch : free_) visit(*scratch);
  }

 private:
  std::size_t num_subjects_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<MapScratch>> free_;
};

}  // namespace

namespace detail {

MapReport run_request(const JemMapper& mapper, const io::SequenceSet& reads,
                      const MapRequest& request,
                      util::ThreadPool* external_pool) {
  request.validate();
  check_min_votes(request, mapper.params());

  const obs::ObsHooks& obs = request.obs;
  const EngineMetrics metrics(obs.metrics);
  obs::StageSpan run_span(obs, "engine.run");

  const util::WallTimer wall;
  MapReport report;

  const std::size_t n = reads.size();
  std::size_t threads = external_pool ? external_pool->size()
                                      : default_threads(request.threads);
#ifdef _OPENMP
  if (request.backend == MapBackend::kOpenMP && request.threads == 0) {
    threads = static_cast<std::size_t>(omp_get_max_threads());
  }
#endif
  const std::size_t batch = effective_batch_size(request, n, threads);
  const std::size_t num_batches = n == 0 ? 0 : (n + batch - 1) / batch;

  std::vector<BatchOutput> outputs(num_batches);
  std::atomic<std::uint64_t> map_ns{0};

  const auto run_batch = [&](std::size_t b, MapScratch& scratch) {
    if (obs.metrics != nullptr) {
      scratch.hotpath().sample_every = request.hotpath_sample_every;
    }
    obs::StageSpan span(obs, "map.batch", &map_ns);
    const auto begin = static_cast<io::SeqId>(b * batch);
    const auto end = static_cast<io::SeqId>(std::min(n, (b + 1) * batch));
    outputs[b] = map_range(mapper, reads, begin, end, request, scratch);
    metrics.record_batch(end - begin, span.finish());
  };

  const auto publish_hotpath = [&](MapScratch& scratch) {
    if (obs.metrics != nullptr) scratch.hotpath().publish(*obs.metrics);
  };

  switch (request.backend) {
    case MapBackend::kSerial: {
      MapScratch scratch(mapper.subjects().size());
      for (std::size_t b = 0; b < num_batches; ++b) run_batch(b, scratch);
      publish_hotpath(scratch);
      break;
    }
    case MapBackend::kPool: {
      std::optional<util::ThreadPool> owned;
      util::ThreadPool* pool = external_pool;
      if (pool == nullptr) {
        owned.emplace(threads);
        pool = &*owned;
      }
      ScratchPool scratches(mapper.subjects().size());
      std::vector<std::future<void>> futures;
      futures.reserve(num_batches);
      for (std::size_t b = 0; b < num_batches; ++b) {
        futures.push_back(pool->submit([&, b] {
          std::unique_ptr<MapScratch> scratch = scratches.acquire();
          run_batch(b, *scratch);
          scratches.release(std::move(scratch));
        }));
      }
      for (std::future<void>& future : futures) future.get();
      scratches.for_each(publish_hotpath);
      break;
    }
    case MapBackend::kOpenMP: {
#ifdef _OPENMP
      const auto batches = static_cast<std::int64_t>(num_batches);
#pragma omp parallel
      {
        MapScratch scratch(mapper.subjects().size());
#pragma omp for schedule(dynamic)
        for (std::int64_t b = 0; b < batches; ++b) {
          run_batch(static_cast<std::size_t>(b), scratch);
        }
        publish_hotpath(scratch);  // registry updates are thread-safe
      }
#else
      MapScratch scratch(mapper.subjects().size());
      for (std::size_t b = 0; b < num_batches; ++b) run_batch(b, scratch);
      publish_hotpath(scratch);
#endif
      break;
    }
  }

  // In-order concatenation restores the sequential output exactly.
  for (BatchOutput& out : outputs) {
    report.mappings.insert(report.mappings.end(),
                           std::make_move_iterator(out.mappings.begin()),
                           std::make_move_iterator(out.mappings.end()));
    report.topx.insert(report.topx.end(),
                       std::make_move_iterator(out.topx.begin()),
                       std::make_move_iterator(out.topx.end()));
  }

  EngineStats& stats = report.stats;
  stats.batches = num_batches;
  stats.reads = n;
  stats.segments = report.mappings.size() + report.topx.size();
  stats.map_s = static_cast<double>(map_ns.load()) * 1e-9;
  run_span.finish();
  stats.wall_s = wall.elapsed_s();
  if (obs.metrics != nullptr) stats.publish(*obs.metrics);
  return report;
}

}  // namespace detail

MappingEngine::MappingEngine(const io::SequenceSet& subjects, MapParams params,
                             SketchScheme scheme)
    : mapper_(subjects, params, scheme) {}

MappingEngine::MappingEngine(const io::SequenceSet& subjects, MapParams params,
                             SketchScheme scheme, SketchTable table)
    : mapper_(subjects, params, scheme, std::move(table)) {}

MapReport MappingEngine::run(const io::SequenceSet& reads,
                             const MapRequest& request) const {
  return detail::run_request(mapper_, reads, request);
}

EngineStats MappingEngine::run_stream(io::BatchStream& stream,
                                      const MapRequest& request,
                                      const BatchSink& sink) const {
  return run_stream_impl(stream, request, sink, nullptr);
}

MapReport MappingEngine::run_stream_guarded(io::BatchStream& stream,
                                            const MapRequest& request,
                                            const BatchSink& sink) const {
  MapReport report;
  EngineFailure failure;  // site stays empty unless a failure is resolved
  report.stats = run_stream_impl(stream, request, sink, &failure);
  if (!failure.site.empty()) report.failure = std::move(failure);
  return report;
}

EngineStats MappingEngine::run_stream_impl(io::BatchStream& stream,
                                           const MapRequest& request,
                                           const BatchSink& sink,
                                           EngineFailure* failure_out) const {
  request.validate();
  check_min_votes(request, mapper_.params());

  const obs::ObsHooks& obs = request.obs;
  const EngineMetrics metrics(obs.metrics);
  if (obs.tracer != nullptr) obs.tracer->set_thread_label("reader");
  obs::StageSpan run_span(obs, "engine.run_stream");

  const util::WallTimer wall;
  EngineStats stats;

  // Fault wiring. The reader injector rides inside stream.next (site
  // "stream.next"); the other sites are keyed directly by batch index so
  // decisions are independent of worker interleaving.
  const util::FaultPlan& plan = request.fault_plan;
  const bool faults = !plan.empty();
  util::FaultInjector io_injector(&plan, 0);
  const StreamInjectorGuard injector_guard(stream, &io_injector);
  const CheckpointInjectorGuard ckpt_guard(request.checkpoint, &io_injector);
  std::atomic<std::uint64_t> faults_fired{0};
  const auto batch_fault = [&](std::string_view site,
                               std::uint64_t index) -> util::FaultDecision {
    if (!faults) return {};
    const util::FaultDecision decision = plan.decide(0, site, index);
    if (decision.action != util::FaultAction::kNone) ++faults_fired;
    return decision;
  };

  const auto map_batch = [&](io::ReadBatch&& batch, MapScratch& scratch) {
    BatchResult result;
    result.batch = std::move(batch);
    const auto n = static_cast<io::SeqId>(result.batch.reads.size());
    BatchOutput out =
        map_range(mapper_, result.batch.reads, 0, n, request, scratch);
    result.mappings = std::move(out.mappings);
    result.topx = std::move(out.topx);
    return result;
  };

  if (request.backend != MapBackend::kPool) {
    // Single-threaded pipeline (kOpenMP parallelizes inside each batch).
    MapScratch scratch(mapper_.subjects().size());
    if (obs.metrics != nullptr) {
      scratch.hotpath().sample_every = request.hotpath_sample_every;
    }
    std::atomic<std::uint64_t> read_ns{0};
    std::atomic<std::uint64_t> map_ns{0};
    std::atomic<std::uint64_t> emit_ns{0};
    std::exception_ptr error;
    try {
      io::ReadBatch batch;
      while (true) {
        obs::StageSpan read_span(obs, "read", &read_ns);
        const bool more = stream.next(batch);
        read_span.finish();
        if (!more) break;
        const util::FaultDecision map_fault = batch_fault("map", batch.index);
        if (map_fault.action == util::FaultAction::kAbort) {
          throw util::FaultAbort(0, "map");
        }
        if (map_fault.action == util::FaultAction::kDrop) {
          ++stats.batches_dropped;
          continue;
        }
        if (map_fault.action == util::FaultAction::kDelay) {
          std::this_thread::sleep_for(map_fault.delay);
        }
        obs::StageSpan map_span(obs, "map.batch", &map_ns);
        BatchResult result;
        if (request.backend == MapBackend::kOpenMP) {
          result.batch = std::move(batch);
          MapRequest sub = request;
          sub.batch_size = 0;  // auto-chunk the batch across OpenMP threads
          sub.fault_plan = {};  // faults are this pipeline's, not the kernel's
          // The kernel must not publish engine.* on top of this pipeline's
          // own publish (the tracer nests fine, so it stays attached).
          sub.obs.metrics = nullptr;
          MapReport sub_report =
              detail::run_request(mapper_, result.batch.reads, sub);
          result.mappings = std::move(sub_report.mappings);
          result.topx = std::move(sub_report.topx);
        } else {
          result = map_batch(std::move(batch), scratch);
        }
        metrics.record_batch(result.batch.reads.size(), map_span.finish());
        stats.batches += 1;
        stats.reads += result.batch.reads.size();
        stats.segments += result.mappings.size() + result.topx.size();
        const util::FaultDecision sink_fault =
            batch_fault("sink", result.batch.index);
        if (sink_fault.action == util::FaultAction::kAbort) {
          throw util::FaultAbort(0, "sink");
        }
        if (sink_fault.action == util::FaultAction::kDrop) {
          ++stats.batches_dropped;
          continue;
        }
        if (sink_fault.action == util::FaultAction::kDelay) {
          std::this_thread::sleep_for(sink_fault.delay);
        }
        obs::StageSpan emit_span(obs, "emit", &emit_ns);
        sink(result);
        emit_span.finish();
        if (request.checkpoint != nullptr) {
          // The sink has the batch's output: journal it. records_done is
          // cumulative via first_record so fault-dropped batches never
          // shrink it.
          request.checkpoint->append_batch(
              result.batch.index,
              result.batch.first_record + result.batch.reads.size());
          ++stats.journal_appends;
        }
      }
    } catch (...) {
      error = std::current_exception();
    }
    stats.read_s = static_cast<double>(read_ns.load()) * 1e-9;
    stats.map_s = static_cast<double>(map_ns.load()) * 1e-9;
    stats.emit_s = static_cast<double>(emit_ns.load()) * 1e-9;
    stats.faults_injected =
        faults_fired.load() + io_injector.faults_injected();
    stats.batches_dropped += io_injector.drops_injected();
    stats.batches_skipped = stream.batches_skipped();
    run_span.finish();
    stats.wall_s = wall.elapsed_s();
    if (obs.metrics != nullptr) {
      scratch.hotpath().publish(*obs.metrics);
      stats.publish(*obs.metrics);
    }
    resolve_failure(error, failure_out);
    return stats;
  }

  // Three-stage pipeline: this thread parses and pushes ReadBatches into a
  // bounded queue (backpressure), pool workers map them, and whichever
  // worker completes the next in-order batch flushes it to the sink.
  const std::size_t workers = default_threads(request.threads);
  util::BoundedQueue<io::ReadBatch> queue(request.queue_depth);

  std::atomic<std::uint64_t> map_ns{0};
  std::atomic<std::uint64_t> pop_wait_ns{0};
  std::atomic<std::uint64_t> emit_ns{0};
  std::atomic<std::uint64_t> reads_mapped{0};
  std::atomic<std::uint64_t> segments{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> retries{0};

  std::mutex emit_mutex;
  std::map<std::uint64_t, BatchResult> pending;  // guarded by emit_mutex
  std::set<std::uint64_t> dropped_set;           // guarded by emit_mutex
  // First batch index this run will see: a resumed stream has already
  // consumed the journaled prefix, so the in-order emitter starts there.
  std::uint64_t next_emit = stream.batches_read();  // guarded by emit_mutex
  std::uint64_t dropped_count = 0;               // guarded by emit_mutex
  std::uint64_t journal_appends = 0;             // guarded by emit_mutex
  std::exception_ptr sink_error;                 // guarded by emit_mutex
  std::exception_ptr worker_error;               // guarded by emit_mutex

  // Flushes the ready in-order prefix, skipping over indices whose batch
  // was dropped by a fault (the holes must advance next_emit or the
  // emitter would wait forever for a batch that never comes). Holding the
  // lock serializes sink calls and keeps them in batch order.
  const auto flush_locked = [&] {
    while (sink_error == nullptr) {
      if (dropped_set.erase(next_emit) > 0) {
        ++next_emit;
        continue;
      }
      const auto it = pending.find(next_emit);
      if (it == pending.end()) break;
      const util::FaultDecision fault = batch_fault("sink", next_emit);
      if (fault.action == util::FaultAction::kAbort) {
        sink_error = std::make_exception_ptr(util::FaultAbort(0, "sink"));
        queue.close();
        break;
      }
      if (fault.action == util::FaultAction::kDrop) {
        ++dropped_count;
        pending.erase(it);
        ++next_emit;
        continue;
      }
      if (fault.action == util::FaultAction::kDelay) {
        std::this_thread::sleep_for(fault.delay);
      }
      try {
        sink(it->second);
        if (request.checkpoint != nullptr) {
          // In-order emit point: batches [0, next_emit] are now in the
          // sink, which is exactly what the journal record asserts.
          request.checkpoint->append_batch(
              it->second.batch.index,
              it->second.batch.first_record + it->second.batch.reads.size());
          ++journal_appends;
        }
      } catch (...) {
        sink_error = std::current_exception();
        queue.close();  // aborts the producer and idle workers
      }
      pending.erase(it);
      ++next_emit;
    }
  };

  // Timed pop honoring the retry budget. Returns false once the queue is
  // closed and drained; throws EngineTimeout when the budget runs out.
  const auto timed_pop = [&](io::ReadBatch& out) -> bool {
    if (request.stage_timeout.count() == 0) {
      std::optional<io::ReadBatch> batch = queue.pop();
      if (!batch) return false;
      out = std::move(*batch);
      return true;
    }
    auto allowance = request.stage_timeout;
    for (int attempt = 0;; ++attempt) {
      switch (queue.pop_wait_for(out, allowance)) {
        case util::QueueOpResult::kSuccess:
          return true;
        case util::QueueOpResult::kClosed:
          return false;
        case util::QueueOpResult::kTimeout:
          break;
      }
      ++timeouts;
      if (attempt >= request.max_retries) throw EngineTimeout("queue.pop");
      ++retries;
      allowance *= 2;
    }
  };

  const auto worker = [&] {
    MapScratch scratch(mapper_.subjects().size());
    if (obs.metrics != nullptr) {
      scratch.hotpath().sample_every = request.hotpath_sample_every;
    }
    try {
      io::ReadBatch raw;
      while (true) {
        obs::StageSpan pop_span(obs, "queue.wait", &pop_wait_ns);
        const bool more = timed_pop(raw);
        pop_span.finish();
        if (!more) break;

        const util::FaultDecision fault = batch_fault("map", raw.index);
        if (fault.action == util::FaultAction::kAbort) {
          throw util::FaultAbort(0, "map");
        }
        if (fault.action == util::FaultAction::kDrop) {
          std::lock_guard lock(emit_mutex);
          dropped_set.insert(raw.index);
          ++dropped_count;
          flush_locked();
          continue;
        }
        if (fault.action == util::FaultAction::kDelay) {
          std::this_thread::sleep_for(fault.delay);
        }

        obs::StageSpan map_span(obs, "map.batch", &map_ns);
        BatchResult result = map_batch(std::move(raw), scratch);
        const std::size_t batch_reads = result.batch.reads.size();
        metrics.record_batch(batch_reads, map_span.finish());
        reads_mapped += batch_reads;
        segments += result.mappings.size() + result.topx.size();

        obs::StageSpan emit_span(obs, "emit", &emit_ns);
        {
          std::lock_guard lock(emit_mutex);
          pending.emplace(result.batch.index, std::move(result));
          flush_locked();
        }
        emit_span.finish();
      }
      if (obs.metrics != nullptr) scratch.hotpath().publish(*obs.metrics);
    } catch (...) {
      // A dying worker must shut the whole pipeline down: without the
      // close() the producer could block forever on a full queue.
      {
        std::lock_guard lock(emit_mutex);
        if (worker_error == nullptr) worker_error = std::current_exception();
      }
      queue.close();
    }
  };

  util::ThreadPool pool(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    futures.push_back(pool.submit([&, i] {
      if (obs.tracer != nullptr) {
        obs.tracer->set_thread_label("worker " + std::to_string(i));
      }
      worker();
    }));
  }

  std::exception_ptr read_error;
  std::atomic<std::uint64_t> read_ns{0};
  std::atomic<std::uint64_t> push_wait_ns{0};
  try {
    io::ReadBatch batch;
    while (true) {
      obs::StageSpan read_span(obs, "read", &read_ns);
      const bool more = stream.next(batch);
      read_span.finish();
      if (!more) break;

      const util::FaultDecision fault = batch_fault("queue.push", batch.index);
      if (fault.action == util::FaultAction::kAbort) {
        throw util::FaultAbort(0, "queue.push");
      }
      if (fault.action == util::FaultAction::kDrop) {
        std::lock_guard lock(emit_mutex);
        dropped_set.insert(batch.index);
        ++dropped_count;
        flush_locked();
        continue;
      }
      if (fault.action == util::FaultAction::kDelay) {
        std::this_thread::sleep_for(fault.delay);
      }

      obs::StageSpan push_span(obs, "queue.push", &push_wait_ns);
      bool pushed = false;
      if (request.stage_timeout.count() == 0) {
        pushed = queue.push(std::move(batch));
      } else {
        auto allowance = request.stage_timeout;
        for (int attempt = 0;; ++attempt) {
          const util::QueueOpResult outcome =
              queue.push_wait_for(batch, allowance);
          if (outcome == util::QueueOpResult::kSuccess) {
            pushed = true;
            break;
          }
          if (outcome == util::QueueOpResult::kClosed) break;
          ++timeouts;
          if (attempt >= request.max_retries) {
            throw EngineTimeout("queue.push");
          }
          ++retries;
          allowance *= 2;
        }
      }
      push_span.finish();
      if (pushed && obs.enabled()) {
        // Depth after our own push: 0 means the workers are keeping up,
        // pinned at capacity means the mappers are the bottleneck.
        const auto depth = static_cast<std::int64_t>(queue.size());
        if (metrics.queue_depth != nullptr) metrics.queue_depth->set(depth);
        if (obs.tracer != nullptr) {
          obs.tracer->counter_sample("engine.queue.depth",
                                     static_cast<double>(depth));
        }
      }
      if (!pushed) break;  // pipeline aborted by a sink or worker failure
    }
  } catch (...) {
    read_error = std::current_exception();  // resolved after shutdown
  }
  queue.close();
  for (std::future<void>& future : futures) future.get();

  stats.batches = next_emit - stream.batches_skipped();
  stats.reads = reads_mapped.load();
  stats.segments = segments.load();
  stats.read_s = static_cast<double>(read_ns.load()) * 1e-9;
  stats.map_s = static_cast<double>(map_ns.load()) * 1e-9;
  stats.emit_s = static_cast<double>(emit_ns.load()) * 1e-9;
  stats.queue_wait_s =
      static_cast<double>(pop_wait_ns.load() + push_wait_ns.load()) * 1e-9;
  stats.faults_injected =
      faults_fired.load() + io_injector.faults_injected();
  stats.batches_dropped = dropped_count + io_injector.drops_injected();
  stats.batches_skipped = stream.batches_skipped();
  stats.journal_appends = journal_appends;
  stats.timeouts = timeouts.load();
  stats.retries = retries.load();
  run_span.finish();
  stats.wall_s = wall.elapsed_s();
  if (obs.metrics != nullptr) stats.publish(*obs.metrics);
  if (metrics.queue_depth != nullptr) metrics.queue_depth->set(0);

  // Failure priority: the reader saw the error first, then the sink, then
  // any worker. Exactly one is resolved (or rethrown).
  if (read_error != nullptr) {
    resolve_failure(read_error, failure_out);
  } else if (sink_error != nullptr) {
    resolve_failure(sink_error, failure_out);
  } else {
    resolve_failure(worker_error, failure_out);
  }
  return stats;
}

}  // namespace jem::core
