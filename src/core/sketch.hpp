// Sketch generation — the paper's Algorithm 1 (Sketch_byJEM) and the
// classical MinHash scheme it is compared against in Fig 6.
//
// Sketch_byJEM(s, ℓ, H):
//   M_o(s, w) = position-sorted distinct minimizers of s
//   for each minimizer tuple <k_i, p_i>:
//     M_i = { <k_j, p_j> : p_i <= p_j <= p_i + ℓ }       (the interval)
//     for each trial t: emit argmin_{x ∈ M_i} h_t(x)
//
// The result, per trial, is the SET of interval minhashes (duplicate emits
// of the same k-mer collapse: the sketch table keys on the k-mer, and
// Algorithm 2 counts at most one hit per (trial, subject)).
//
// Two implementations are provided:
//  * sketch_by_jem        — O(|M_o|·T) amortized via T simultaneous
//                           sliding-window-minimum deques;
//  * sketch_by_jem_naive  — the literal per-interval argmin loop of
//                           Algorithm 1 (O(|M_o|·I·T)); used for validation
//                           and as the ablation baseline.
//
// Classical MinHash (classic_minhash): per trial, the single argmin of h_t
// over ALL canonical k-mers of the sequence — no minimizer thinning, no
// interval resolution. This is the scheme Fig 6 shows needing ~150 trials
// to match JEM's 30.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/hash_family.hpp"
#include "core/minimizer.hpp"

namespace jem::core {

/// Per-trial sketch sets: per_trial[t] is the sorted, deduplicated list of
/// minhash k-mer codes for trial t.
struct Sketch {
  std::vector<std::vector<KmerCode>> per_trial;

  [[nodiscard]] int trials() const noexcept {
    return static_cast<int>(per_trial.size());
  }

  /// Total number of (trial, kmer) entries.
  [[nodiscard]] std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& v : per_trial) n += v.size();
    return n;
  }
};

struct SketchParams {
  MinimizerParams minimizer;          // k and w
  std::uint32_t interval_length = 1000;  // ℓ, in bp
};

/// Algorithm 1 over a precomputed minimizer list (fast path).
[[nodiscard]] Sketch sketch_by_jem(std::span<const Minimizer> minimizers,
                                   std::uint32_t interval_length,
                                   const HashFamily& hashes);

/// Algorithm 1 from the raw sequence (runs the minimizer scan first).
[[nodiscard]] Sketch sketch_by_jem(std::string_view seq,
                                   const SketchParams& params,
                                   const HashFamily& hashes);

/// Literal per-interval reference implementation.
[[nodiscard]] Sketch sketch_by_jem_naive(std::span<const Minimizer> minimizers,
                                         std::uint32_t interval_length,
                                         const HashFamily& hashes);

/// Classical MinHash over all canonical k-mers of `seq`. per_trial[t] has
/// exactly one k-mer (or zero if the sequence has no valid k-mer).
[[nodiscard]] Sketch classic_minhash(std::string_view seq, int k,
                                     const HashFamily& hashes);

}  // namespace jem::core
