// Sketch generation — the paper's Algorithm 1 (Sketch_byJEM) and the
// classical MinHash scheme it is compared against in Fig 6.
//
// Sketch_byJEM(s, ℓ, H):
//   M_o(s, w) = position-sorted distinct minimizers of s
//   for each minimizer tuple <k_i, p_i>:
//     M_i = { <k_j, p_j> : p_i <= p_j <= p_i + ℓ }       (the interval)
//     for each trial t: emit argmin_{x ∈ M_i} h_t(x)
//
// The result, per trial, is the SET of interval minhashes (duplicate emits
// of the same k-mer collapse: the sketch table keys on the k-mer, and
// Algorithm 2 counts at most one hit per (trial, subject)).
//
// Two implementations are provided:
//  * sketch_by_jem        — O(|M_o|·T) amortized via T simultaneous
//                           sliding-window-minimum deques;
//  * sketch_by_jem_naive  — the literal per-interval argmin loop of
//                           Algorithm 1 (O(|M_o|·I·T)); used for validation
//                           and as the ablation baseline.
//
// Classical MinHash (classic_minhash): per trial, the single argmin of h_t
// over ALL canonical k-mers of the sequence — no minimizer thinning, no
// interval resolution. This is the scheme Fig 6 shows needing ~150 trials
// to match JEM's 30.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/hash_family.hpp"
#include "core/minimizer.hpp"
#include "util/ring_buffer.hpp"

namespace jem::core {

/// Per-trial sketch sets: per_trial[t] is the sorted, deduplicated list of
/// minhash k-mer codes for trial t.
struct Sketch {
  std::vector<std::vector<KmerCode>> per_trial;

  [[nodiscard]] int trials() const noexcept {
    return static_cast<int>(per_trial.size());
  }

  /// Total number of (trial, kmer) entries.
  [[nodiscard]] std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& v : per_trial) n += v.size();
    return n;
  }
};

/// The query-side sketch layout: all trials' k-mer lists concatenated in one
/// flat array with a trials+1 offset table. trial(t) is sorted and
/// deduplicated, element-for-element equal to Sketch::per_trial[t] — but the
/// storage is two reusable vectors instead of T+1 heap blocks, which is what
/// makes the map_segment steady state allocation-free.
struct FlatSketch {
  std::vector<KmerCode> kmers;           // trial-major concatenation
  std::vector<std::uint32_t> offsets;    // trials() + 1 entries

  [[nodiscard]] int trials() const noexcept {
    return offsets.empty() ? 0 : static_cast<int>(offsets.size()) - 1;
  }

  [[nodiscard]] std::span<const KmerCode> trial(int t) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    return std::span<const KmerCode>(kmers).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
  }

  [[nodiscard]] std::size_t total_entries() const noexcept {
    return kmers.size();
  }

  void clear() noexcept {
    kmers.clear();
    offsets.clear();
  }
};

namespace detail {
/// One per-trial sliding-window-minimum entry of Algorithm 1's fast path:
/// the trial hash, the k-mer, and the index of the minimizer it came from.
struct JemWindowEntry {
  std::uint64_t hash;
  KmerCode kmer;
  std::uint32_t index;
};
}  // namespace detail

/// Reusable state of the sketch kernels. Hold one per thread (MapScratch
/// embeds one) and every buffer converges to its high-water capacity: the
/// minimizer list, the scan window, the T interval-minimum rings (replacing
/// T std::deques per call), and the flat emission buffers.
struct SketchScratch {
  MinimizerScratch scan;                  // minimizer_scan window
  std::vector<Minimizer> minimizers;      // M_o(s, w) of the segment
  std::vector<util::RingDeque<detail::JemWindowEntry>> windows;  // T rings
  std::vector<KmerCode> emitted;  // interval minima, minimizer-major (|M|*T)
  std::vector<KmerCode> trial_tmp;        // one trial's column, for sort
  std::vector<std::uint64_t> best_hash;   // classic MinHash running argmin
  std::vector<KmerCode> best_kmer;
};

struct SketchParams {
  MinimizerParams minimizer;          // k and w
  std::uint32_t interval_length = 1000;  // ℓ, in bp
};

/// Algorithm 1 over a precomputed minimizer list (fast path).
[[nodiscard]] Sketch sketch_by_jem(std::span<const Minimizer> minimizers,
                                   std::uint32_t interval_length,
                                   const HashFamily& hashes);

/// Allocation-free (at steady state) form of the fast path: fills `out`
/// reusing `scratch`. trial lists are bit-identical to the allocating
/// overload's per_trial vectors.
void sketch_by_jem(std::span<const Minimizer> minimizers,
                   std::uint32_t interval_length, const HashFamily& hashes,
                   SketchScratch& scratch, FlatSketch& out);

/// Algorithm 1 from the raw sequence (runs the minimizer scan first).
[[nodiscard]] Sketch sketch_by_jem(std::string_view seq,
                                   const SketchParams& params,
                                   const HashFamily& hashes);

/// Literal per-interval reference implementation.
[[nodiscard]] Sketch sketch_by_jem_naive(std::span<const Minimizer> minimizers,
                                         std::uint32_t interval_length,
                                         const HashFamily& hashes);

/// The pre-overhaul production kernel, kept verbatim: per-trial
/// std::deque sliding windows allocated per call, no suffix shortcut.
/// Serves as the golden-equivalence oracle for the scratch kernel and as
/// the baseline the BM_Hotpath* benches (and BENCH_hotpath.json) compare
/// against. Do not optimize this function.
[[nodiscard]] Sketch sketch_by_jem_reference(
    std::span<const Minimizer> minimizers, std::uint32_t interval_length,
    const HashFamily& hashes);

/// Classical MinHash over all canonical k-mers of `seq`. per_trial[t] has
/// exactly one k-mer (or zero if the sequence has no valid k-mer).
[[nodiscard]] Sketch classic_minhash(std::string_view seq, int k,
                                     const HashFamily& hashes);

/// Scratch-reusing form of classic_minhash (same trial lists).
void classic_minhash(std::string_view seq, int k, const HashFamily& hashes,
                     SketchScratch& scratch, FlatSketch& out);

}  // namespace jem::core
