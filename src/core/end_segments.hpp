// End-segment extraction (paper §III-B1): only the first and last ℓ bases of
// a long read are mapped. A read shorter than 2ℓ yields overlapping (or for
// reads <= ℓ, identical) segments; in the degenerate case of len <= ℓ only
// the prefix segment is emitted, covering the whole read.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "io/sequence.hpp"

namespace jem::core {

enum class ReadEnd : std::uint8_t { kPrefix = 0, kSuffix = 1, kInterior = 2 };

[[nodiscard]] constexpr char read_end_tag(ReadEnd end) noexcept {
  switch (end) {
    case ReadEnd::kPrefix: return 'P';
    case ReadEnd::kSuffix: return 'S';
    case ReadEnd::kInterior: return 'I';
  }
  return '?';
}

/// One end segment: a view into the read plus its provenance.
struct EndSegment {
  io::SeqId read = 0;
  ReadEnd end = ReadEnd::kPrefix;
  std::uint32_t offset = 0;  // start of the segment within the read
  std::string_view bases;
};

/// Extracts prefix/suffix segments of length ℓ from one read.
[[nodiscard]] std::vector<EndSegment> extract_end_segments(
    io::SeqId read, std::string_view bases, std::uint32_t segment_length);

/// The containment extension the paper notes in §III-B1: tiles the *whole*
/// read with consecutive ℓ-length segments (the last one right-aligned so
/// the read end is always covered), tagging the first as kPrefix, the last
/// as kSuffix, and the rest kInterior. This recovers contigs completely
/// contained in the interior of a long read, which end-segment mapping
/// misses by design.
[[nodiscard]] std::vector<EndSegment> extract_tiled_segments(
    io::SeqId read, std::string_view bases, std::uint32_t segment_length);

}  // namespace jem::core
