#include "core/end_segments.hpp"

namespace jem::core {

std::vector<EndSegment> extract_end_segments(io::SeqId read,
                                             std::string_view bases,
                                             std::uint32_t segment_length) {
  std::vector<EndSegment> segments;
  if (bases.empty() || segment_length == 0) return segments;

  if (bases.size() <= segment_length) {
    segments.push_back({read, ReadEnd::kPrefix, 0, bases});
    return segments;
  }

  segments.push_back(
      {read, ReadEnd::kPrefix, 0, bases.substr(0, segment_length)});
  const auto suffix_offset =
      static_cast<std::uint32_t>(bases.size() - segment_length);
  segments.push_back({read, ReadEnd::kSuffix, suffix_offset,
                      bases.substr(suffix_offset, segment_length)});
  return segments;
}

std::vector<EndSegment> extract_tiled_segments(io::SeqId read,
                                               std::string_view bases,
                                               std::uint32_t segment_length) {
  std::vector<EndSegment> segments;
  if (bases.empty() || segment_length == 0) return segments;

  if (bases.size() <= segment_length) {
    segments.push_back({read, ReadEnd::kPrefix, 0, bases});
    return segments;
  }

  // Full tiles from the left; the final tile is right-aligned (it may
  // overlap its predecessor) so no read suffix is left unsampled.
  std::uint32_t offset = 0;
  const auto length = static_cast<std::uint32_t>(bases.size());
  while (offset + segment_length < length) {
    const ReadEnd tag = offset == 0 ? ReadEnd::kPrefix : ReadEnd::kInterior;
    segments.push_back(
        {read, tag, offset, bases.substr(offset, segment_length)});
    offset += segment_length;
  }
  const std::uint32_t last_offset = length - segment_length;
  segments.push_back({read, ReadEnd::kSuffix, last_offset,
                      bases.substr(last_offset, segment_length)});
  return segments;
}

}  // namespace jem::core
