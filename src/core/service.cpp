#include "core/service.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/index_serde.hpp"
#include "io/artifact.hpp"

namespace jem::core {

std::string_view service_error_name(ServiceErrorCode code) noexcept {
  switch (code) {
    case ServiceErrorCode::kInvalidArgument: return "invalid-argument";
    case ServiceErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ServiceErrorCode::kOverloaded: return "overloaded";
    case ServiceErrorCode::kIndexUnavailable: return "index-unavailable";
    case ServiceErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

ServiceError::ServiceError(ServiceErrorCode code, std::string field,
                           std::string detail)
    : std::runtime_error(std::string(service_error_name(code)) + ": " + field +
                         ": " + detail),
      code_(code),
      field_(std::move(field)) {}

// --- ServiceConfig::Builder -------------------------------------------------

ServiceConfig::Builder ServiceConfig::make() { return {}; }

ServiceConfig::Builder& ServiceConfig::Builder::k(std::uint64_t value) {
  k_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::window(std::uint64_t value) {
  w_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::trials(std::uint64_t value) {
  trials_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::segment_length(
    std::uint64_t value) {
  segment_length_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::seed(std::uint64_t value) {
  seed_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::min_votes(
    std::uint64_t value) {
  min_votes_ = value;
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::ordering(
    MinimizerOrdering value) {
  ordering_name_ =
      value == MinimizerOrdering::kRandomHash ? "hash" : "lex";
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::ordering(
    std::string_view name) {
  ordering_name_ = std::string(name);
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::scheme(SketchScheme value) {
  scheme_name_ = value == SketchScheme::kClassicMinhash ? "minhash" : "jem";
  return *this;
}
ServiceConfig::Builder& ServiceConfig::Builder::scheme(std::string_view name) {
  scheme_name_ = std::string(name);
  return *this;
}

ServiceConfig ServiceConfig::Builder::build() const {
  const auto bad = [](std::string field, std::string detail) {
    return ServiceError(ServiceErrorCode::kInvalidArgument, std::move(field),
                        std::move(detail));
  };
  if (k_ < 1 || k_ > 32) {
    throw bad("k", "k-mer size must be in [1, 32], got " +
                       std::to_string(k_));
  }
  if (w_ < 1 || w_ > (1u << 20)) {
    throw bad("w", "minimizer window must be in [1, 2^20], got " +
                       std::to_string(w_));
  }
  if (trials_ < 1 || trials_ > 4096) {
    throw bad("trials", "trial count T must be in [1, 4096], got " +
                            std::to_string(trials_));
  }
  if (segment_length_ < 1 || segment_length_ > (1ull << 31)) {
    throw bad("segment", "segment length must be in [1, 2^31], got " +
                             std::to_string(segment_length_));
  }
  if (min_votes_ < 1 || min_votes_ > trials_) {
    throw bad("min-votes", "min_votes must be in [1, trials=" +
                               std::to_string(trials_) + "], got " +
                               std::to_string(min_votes_));
  }

  ServiceConfig config;
  config.params.k = static_cast<int>(k_);
  config.params.w = static_cast<int>(w_);
  config.params.trials = static_cast<int>(trials_);
  config.params.segment_length = static_cast<std::uint32_t>(segment_length_);
  config.params.seed = seed_;
  config.params.min_votes = static_cast<std::uint32_t>(min_votes_);

  if (ordering_name_ == "lex") {
    config.params.ordering = MinimizerOrdering::kLexicographic;
  } else if (ordering_name_ == "hash") {
    config.params.ordering = MinimizerOrdering::kRandomHash;
  } else {
    throw bad("ordering", "unknown minimizer ordering '" + ordering_name_ +
                              "' (expected lex | hash)");
  }

  if (scheme_name_ == "jem") {
    config.scheme = SketchScheme::kJem;
  } else if (scheme_name_ == "minhash") {
    config.scheme = SketchScheme::kClassicMinhash;
  } else {
    throw bad("scheme", "unknown sketch scheme '" + scheme_name_ +
                            "' (expected jem | minhash)");
  }

  config.params.validate();  // belt and braces; field checks above are finer
  return config;
}

// --- MapServiceRequest ------------------------------------------------------

MapServiceRequest::Builder MapServiceRequest::make() { return {}; }

MapServiceRequest::Builder& MapServiceRequest::Builder::sequence(
    std::string bases) {
  request_.sequence = std::move(bases);
  return *this;
}
MapServiceRequest::Builder& MapServiceRequest::Builder::top_x(
    std::size_t value) {
  request_.top_x = value;
  return *this;
}
MapServiceRequest::Builder& MapServiceRequest::Builder::min_votes(
    std::uint32_t value) {
  request_.min_votes = value;
  return *this;
}
MapServiceRequest::Builder& MapServiceRequest::Builder::deadline(
    std::chrono::milliseconds value) {
  request_.deadline = value;
  return *this;
}

MapServiceRequest MapServiceRequest::Builder::build() const {
  if (request_.sequence.empty()) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "sequence",
                       "query sequence must not be empty");
  }
  if (request_.top_x < 1) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "top_x",
                       "top_x must be >= 1");
  }
  if (request_.min_votes && *request_.min_votes < 1) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "min_votes",
                       "min_votes must be >= 1");
  }
  if (request_.deadline.count() < 0) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "deadline_ms",
                       "deadline must be >= 0");
  }
  return request_;
}

void MapServiceRequest::validate(const MapParams& params) const {
  if (sequence.empty()) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "sequence",
                       "query sequence must not be empty");
  }
  if (top_x < 1) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "top_x",
                       "top_x must be >= 1");
  }
  if (deadline.count() < 0) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "deadline_ms",
                       "deadline must be >= 0");
  }
  // Same contract as MapRequest::min_votes: the sketch table cannot recover
  // hits below the threshold it was built to report.
  if (min_votes && *min_votes < params.min_votes) {
    throw ServiceError(
        ServiceErrorCode::kInvalidArgument, "min_votes",
        "override " + std::to_string(*min_votes) +
            " is below the configured MapParams::min_votes floor " +
            std::to_string(params.min_votes));
  }
}

// --- MappingService ---------------------------------------------------------

MappingService::MappingService(io::SequenceSet subjects, ServiceConfig config)
    : subjects_(std::make_unique<io::SequenceSet>(std::move(subjects))),
      config_(config) {
  config_.params.validate();
  engine_ = std::make_unique<MappingEngine>(*subjects_, config_.params,
                                            config_.scheme);
}

MappingService::MappingService(io::SequenceSet subjects, ServiceConfig config,
                               SketchTable table)
    : subjects_(std::make_unique<io::SequenceSet>(std::move(subjects))),
      config_(config) {
  config_.params.validate();
  engine_ = std::make_unique<MappingEngine>(*subjects_, config_.params,
                                            config_.scheme, std::move(table));
}

MappingService MappingService::from_index(const std::string& index_path,
                                          io::SequenceSet subjects,
                                          ServiceConfig config) {
  // Load against a stable copy of the subject set first: the artifact's
  // SUBJSET digest binds it to these exact sequences.
  io::SequenceSet owned = std::move(subjects);
  try {
    SketchTable table =
        load_index(index_path, config.params, config.scheme, owned);
    MappingService service(std::move(owned), config, std::move(table));
    service.load_report_.loaded_from_artifact = true;
    return service;
  } catch (const io::ArtifactError& error) {
    // Never fatal: record why and rebuild from the subject sequences.
    MappingService service(std::move(owned), config);
    service.load_report_.rejection = error.what();
    return service;
  }
}

MapServiceResponse MappingService::map(const MapServiceRequest& request) const {
  MapScratch scratch = make_scratch();
  return map(request, scratch);
}

MapServiceResponse MappingService::map(
    const MapServiceRequest& request, MapScratch& scratch,
    std::optional<Clock::time_point> deadline) const {
  if (!deadline && request.deadline.count() > 0) {
    deadline = Clock::now() + request.deadline;
  }
  return map_impl(request, scratch, deadline);
}

std::vector<MapServiceResponse> MappingService::map_batch(
    std::span<const MapServiceRequest> requests,
    std::span<const Clock::time_point> deadlines) const {
  if (!deadlines.empty() && deadlines.size() != requests.size()) {
    throw ServiceError(ServiceErrorCode::kInvalidArgument, "deadlines",
                       "deadline span must be empty or match requests");
  }
  std::vector<MapServiceResponse> responses;
  responses.reserve(requests.size());
  MapScratch scratch = make_scratch();  // warm across the whole batch
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::optional<Clock::time_point> deadline;
    if (!deadlines.empty()) deadline = deadlines[i];
    responses.push_back(map_impl(requests[i], scratch, deadline));
  }
  return responses;
}

MapServiceResponse MappingService::map_impl(
    const MapServiceRequest& request, MapScratch& scratch,
    std::optional<Clock::time_point> deadline) const {
  request.validate(config_.params);

  MapServiceResponse response;
  response.trials = static_cast<std::uint32_t>(config_.params.trials);

  // Deadline check before the (uninterruptible) map kernel runs — the
  // service-level twin of the engine's stage_timeout contract: expiry is a
  // contained, structured failure, never a stall.
  if (deadline && Clock::now() >= *deadline) {
    response.failure = ServiceFailure{
        ServiceErrorCode::kDeadlineExceeded,
        "deadline expired before mapping started"};
    return response;
  }

  const JemMapper& mapper = engine_->mapper();
  const auto add_hit = [&](const MapResult& result) {
    MapServiceHit hit;
    hit.subject = result.subject;
    hit.subject_name = std::string(subjects_->name(result.subject));
    hit.votes = result.votes;
    response.hits.push_back(std::move(hit));
  };

  if (request.top_x == 1) {
    // The single-hit path IS map_segment — the bit-identicality anchor the
    // serve layer's golden tests pin.
    const MapResult result = mapper.map_segment(request.sequence, scratch);
    if (result.mapped() &&
        (!request.min_votes || result.votes >= *request.min_votes)) {
      add_hit(result);
    }
  } else {
    std::vector<MapResult> hits =
        mapper.map_segment_topx(request.sequence, request.top_x, scratch);
    // Hits are votes-descending: a min_votes override trims a suffix.
    if (request.min_votes) {
      while (!hits.empty() && hits.back().votes < *request.min_votes) {
        hits.pop_back();
      }
    }
    for (const MapResult& hit : hits) add_hit(hit);
  }
  return response;
}

}  // namespace jem::core
