#include "core/dna.hpp"

namespace jem::core {

std::string reverse_complement(std::string_view seq) {
  std::string out;
  out.resize(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[i] = complement_base(seq[seq.size() - 1 - i]);
  }
  return out;
}

bool is_acgt(std::string_view seq) noexcept {
  for (char c : seq) {
    if (base_code(c) == kInvalidBase) return false;
  }
  return true;
}

double gc_content(std::string_view seq) noexcept {
  std::size_t gc = 0;
  std::size_t total = 0;
  for (char c : seq) {
    const std::uint8_t code = base_code(c);
    if (code == kInvalidBase) continue;
    ++total;
    if (code == 1 || code == 2) ++gc;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(gc) / static_cast<double>(total);
}

}  // namespace jem::core
