#include "core/sketch.hpp"

#include <algorithm>
#include <deque>

namespace jem::core {

namespace {

/// Sorts and dedups every trial's k-mer list in place.
void normalize(Sketch& sketch) {
  for (auto& kmers : sketch.per_trial) {
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
  }
}

/// argmin by (hash value, k-mer code) — the k-mer tie-break makes the result
/// independent of scan order.
struct HashedKmer {
  std::uint64_t hash;
  KmerCode kmer;

  [[nodiscard]] bool less_than(const HashedKmer& other) const noexcept {
    return hash < other.hash || (hash == other.hash && kmer < other.kmer);
  }
};

}  // namespace

namespace {

/// Fast path for the query side: when the whole minimizer list spans at most
/// ℓ positions (always true for an end segment of length <= ℓ), every
/// interval [p_i, p_i + ℓ] reaches the end of the list, so the interval
/// minimum of position i is simply the suffix minimum over [i, n). One
/// backward scan per trial replaces the sliding-window rings entirely.
void sketch_by_jem_suffix(std::span<const Minimizer> minimizers,
                          const HashFamily& hashes, SketchScratch& scratch,
                          FlatSketch& out) {
  const auto trials = static_cast<std::size_t>(hashes.trials());
  const std::size_t count = minimizers.size();
  out.offsets.reserve(trials + 1);
  out.offsets.push_back(0);
  for (std::size_t t = 0; t < trials; ++t) {
    auto& emitted = scratch.trial_tmp;
    emitted.clear();
    std::uint64_t best_hash = 0;
    KmerCode best_kmer = 0;
    for (std::size_t i = count; i-- > 0;) {
      const KmerCode kmer = minimizers[i].kmer;
      const std::uint64_t hash = hashes.hash(static_cast<int>(t), kmer);
      // The running minimum only ever improves strictly walking backward,
      // so each emitted (hash, kmer) is strictly smaller than the last —
      // the emitted k-mers are already distinct, no dedup pass needed.
      if (i + 1 == count || hash < best_hash ||
          (hash == best_hash && kmer < best_kmer)) {
        best_hash = hash;
        best_kmer = kmer;
        emitted.push_back(best_kmer);
      }
    }
    std::sort(emitted.begin(), emitted.end());
    out.kmers.insert(out.kmers.end(), emitted.begin(), emitted.end());
    out.offsets.push_back(static_cast<std::uint32_t>(out.kmers.size()));
  }
}

}  // namespace

void sketch_by_jem(std::span<const Minimizer> minimizers,
                   std::uint32_t interval_length, const HashFamily& hashes,
                   SketchScratch& scratch, FlatSketch& out) {
  const auto trials = static_cast<std::size_t>(hashes.trials());
  out.clear();

  // Suffix-minima shortcut: if the last interval's start already admits the
  // last minimizer, every interval runs to the end of the list. Identical
  // output to the general path — equal (hash, kmer) pairs carry equal
  // k-mers, and each trial is sorted + deduped either way.
  if (!minimizers.empty() &&
      minimizers.back().position - minimizers.front().position <=
          interval_length) {
    sketch_by_jem_suffix(minimizers, hashes, scratch, out);
    return;
  }

  // One sliding-window-minimum ring per trial, advanced in lockstep with
  // the interval two-pointer. The rings and the emission buffer live in the
  // scratch, so repeat calls allocate nothing once capacities settle.
  auto& windows = scratch.windows;
  if (windows.size() < trials) windows.resize(trials);
  for (std::size_t t = 0; t < trials; ++t) windows[t].clear();
  scratch.emitted.clear();

  std::size_t right = 0;  // first minimizer not yet in any window
  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(minimizers[i].position) + interval_length;

    // Extend the interval: admit minimizers with p_j <= p_i + ℓ.
    while (right < minimizers.size() && minimizers[right].position <= limit) {
      const KmerCode kmer = minimizers[right].kmer;
      for (std::size_t t = 0; t < trials; ++t) {
        auto& window = windows[t];
        const std::uint64_t hash = hashes.hash(static_cast<int>(t), kmer);
        // Pop entries >= (hash, kmer): min tie-break toward smaller k-mer.
        while (!window.empty() &&
               !(window.back().hash < hash ||
                 (window.back().hash == hash && window.back().kmer < kmer))) {
          window.pop_back();
        }
        window.push_back({hash, kmer, static_cast<std::uint32_t>(right)});
      }
      ++right;
    }

    // Shrink: evict minimizers that precede the interval start, then emit
    // every trial's interval minimum (minimizer-major layout).
    for (std::size_t t = 0; t < trials; ++t) {
      auto& window = windows[t];
      while (window.front().index < i) window.pop_front();
      scratch.emitted.push_back(window.front().kmer);
    }
  }

  // Normalize each trial: gather its emission column, sort, dedup, append.
  // The result is element-for-element equal to Sketch::per_trial[t].
  out.offsets.reserve(trials + 1);
  out.offsets.push_back(0);
  const std::size_t count = minimizers.size();
  for (std::size_t t = 0; t < trials; ++t) {
    scratch.trial_tmp.clear();
    for (std::size_t i = 0; i < count; ++i) {
      scratch.trial_tmp.push_back(scratch.emitted[i * trials + t]);
    }
    std::sort(scratch.trial_tmp.begin(), scratch.trial_tmp.end());
    const auto last =
        std::unique(scratch.trial_tmp.begin(), scratch.trial_tmp.end());
    out.kmers.insert(out.kmers.end(), scratch.trial_tmp.begin(), last);
    out.offsets.push_back(static_cast<std::uint32_t>(out.kmers.size()));
  }
}

Sketch sketch_by_jem(std::span<const Minimizer> minimizers,
                     std::uint32_t interval_length,
                     const HashFamily& hashes) {
  SketchScratch scratch;
  FlatSketch flat;
  sketch_by_jem(minimizers, interval_length, hashes, scratch, flat);
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(hashes.trials()));
  for (int t = 0; t < hashes.trials(); ++t) {
    const auto kmers = flat.trial(t);
    sketch.per_trial[static_cast<std::size_t>(t)].assign(kmers.begin(),
                                                         kmers.end());
  }
  return sketch;
}

Sketch sketch_by_jem(std::string_view seq, const SketchParams& params,
                     const HashFamily& hashes) {
  const std::vector<Minimizer> minimizers =
      minimizer_scan(seq, params.minimizer);
  return sketch_by_jem(minimizers, params.interval_length, hashes);
}

Sketch sketch_by_jem_reference(std::span<const Minimizer> minimizers,
                               std::uint32_t interval_length,
                               const HashFamily& hashes) {
  const int trials = hashes.trials();
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(trials));
  if (minimizers.empty()) return sketch;

  // One sliding-window-minimum deque per trial, advanced in lockstep with
  // the interval two-pointer. Entries store (hash, kmer, index-in-list).
  struct Entry {
    HashedKmer hk;
    std::size_t index;
  };
  std::vector<std::deque<Entry>> deques(static_cast<std::size_t>(trials));

  std::size_t right = 0;  // first minimizer not yet in any deque
  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(minimizers[i].position) + interval_length;

    // Extend the interval: admit minimizers with p_j <= p_i + ℓ.
    while (right < minimizers.size() && minimizers[right].position <= limit) {
      const KmerCode kmer = minimizers[right].kmer;
      for (int t = 0; t < trials; ++t) {
        auto& deque = deques[static_cast<std::size_t>(t)];
        const HashedKmer hk{hashes.hash(t, kmer), kmer};
        while (!deque.empty() && !deque.back().hk.less_than(hk)) {
          deque.pop_back();
        }
        deque.push_back({hk, right});
      }
      ++right;
    }

    // Shrink: evict minimizers that precede the interval start.
    for (int t = 0; t < trials; ++t) {
      auto& deque = deques[static_cast<std::size_t>(t)];
      while (deque.front().index < i) deque.pop_front();
      auto& kmers = sketch.per_trial[static_cast<std::size_t>(t)];
      const KmerCode minhash = deque.front().hk.kmer;
      if (kmers.empty() || kmers.back() != minhash) kmers.push_back(minhash);
    }
  }

  normalize(sketch);
  return sketch;
}

Sketch sketch_by_jem_naive(std::span<const Minimizer> minimizers,
                           std::uint32_t interval_length,
                           const HashFamily& hashes) {
  const int trials = hashes.trials();
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(trials));

  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(minimizers[i].position) + interval_length;
    std::size_t end = i;
    while (end < minimizers.size() && minimizers[end].position <= limit) {
      ++end;
    }
    for (int t = 0; t < trials; ++t) {
      HashedKmer best{hashes.hash(t, minimizers[i].kmer), minimizers[i].kmer};
      for (std::size_t j = i + 1; j < end; ++j) {
        const HashedKmer hk{hashes.hash(t, minimizers[j].kmer),
                            minimizers[j].kmer};
        if (hk.less_than(best)) best = hk;
      }
      sketch.per_trial[static_cast<std::size_t>(t)].push_back(best.kmer);
    }
  }

  normalize(sketch);
  return sketch;
}

void classic_minhash(std::string_view seq, int k, const HashFamily& hashes,
                     SketchScratch& scratch, FlatSketch& out) {
  const auto trials = static_cast<std::size_t>(hashes.trials());
  out.clear();
  const KmerCodec codec(k);

  auto& best_hash = scratch.best_hash;
  auto& best_kmer = scratch.best_kmer;
  best_hash.assign(trials, 0);
  best_kmer.assign(trials, 0);
  bool any = false;

  // Rolling scan over all k-mers, restarting after ambiguous bases.
  KmerCode fwd = 0;
  KmerCode rc = 0;
  int valid = 0;  // valid bases accumulated toward the next full k-mer
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::uint8_t code = base_code(seq[i]);
    if (code == kInvalidBase) {
      valid = 0;
      continue;
    }
    fwd = codec.roll(fwd, code);
    rc = codec.roll_rc(rc, code);
    if (++valid < k) continue;
    valid = k;  // saturate so the counter cannot overflow on long runs

    const KmerCode canon = fwd < rc ? fwd : rc;
    for (std::size_t t = 0; t < trials; ++t) {
      const std::uint64_t hash = hashes.hash(static_cast<int>(t), canon);
      if (!any || hash < best_hash[t] ||
          (hash == best_hash[t] && canon < best_kmer[t])) {
        best_hash[t] = hash;
        best_kmer[t] = canon;
      }
    }
    any = true;
  }

  out.offsets.reserve(trials + 1);
  out.offsets.push_back(0);
  for (std::size_t t = 0; t < trials; ++t) {
    if (any) out.kmers.push_back(best_kmer[t]);
    out.offsets.push_back(static_cast<std::uint32_t>(out.kmers.size()));
  }
}

Sketch classic_minhash(std::string_view seq, int k, const HashFamily& hashes) {
  SketchScratch scratch;
  FlatSketch flat;
  classic_minhash(seq, k, hashes, scratch, flat);
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(hashes.trials()));
  for (int t = 0; t < hashes.trials(); ++t) {
    const auto kmers = flat.trial(t);
    sketch.per_trial[static_cast<std::size_t>(t)].assign(kmers.begin(),
                                                         kmers.end());
  }
  return sketch;
}

}  // namespace jem::core
