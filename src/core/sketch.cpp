#include "core/sketch.hpp"

#include <algorithm>
#include <deque>

namespace jem::core {

namespace {

/// Sorts and dedups every trial's k-mer list in place.
void normalize(Sketch& sketch) {
  for (auto& kmers : sketch.per_trial) {
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
  }
}

/// argmin by (hash value, k-mer code) — the k-mer tie-break makes the result
/// independent of scan order.
struct HashedKmer {
  std::uint64_t hash;
  KmerCode kmer;

  [[nodiscard]] bool less_than(const HashedKmer& other) const noexcept {
    return hash < other.hash || (hash == other.hash && kmer < other.kmer);
  }
};

}  // namespace

Sketch sketch_by_jem(std::span<const Minimizer> minimizers,
                     std::uint32_t interval_length,
                     const HashFamily& hashes) {
  const int trials = hashes.trials();
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(trials));
  if (minimizers.empty()) return sketch;

  // One sliding-window-minimum deque per trial, advanced in lockstep with
  // the interval two-pointer. Entries store (hash, kmer, index-in-list).
  struct Entry {
    HashedKmer hk;
    std::size_t index;
  };
  std::vector<std::deque<Entry>> deques(static_cast<std::size_t>(trials));

  std::size_t right = 0;  // first minimizer not yet in any deque
  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(minimizers[i].position) + interval_length;

    // Extend the interval: admit minimizers with p_j <= p_i + ℓ.
    while (right < minimizers.size() && minimizers[right].position <= limit) {
      const KmerCode kmer = minimizers[right].kmer;
      for (int t = 0; t < trials; ++t) {
        auto& deque = deques[static_cast<std::size_t>(t)];
        const HashedKmer hk{hashes.hash(t, kmer), kmer};
        while (!deque.empty() && !deque.back().hk.less_than(hk)) {
          deque.pop_back();
        }
        deque.push_back({hk, right});
      }
      ++right;
    }

    // Shrink: evict minimizers that precede the interval start.
    for (int t = 0; t < trials; ++t) {
      auto& deque = deques[static_cast<std::size_t>(t)];
      while (deque.front().index < i) deque.pop_front();
      auto& kmers = sketch.per_trial[static_cast<std::size_t>(t)];
      const KmerCode minhash = deque.front().hk.kmer;
      if (kmers.empty() || kmers.back() != minhash) kmers.push_back(minhash);
    }
  }

  normalize(sketch);
  return sketch;
}

Sketch sketch_by_jem(std::string_view seq, const SketchParams& params,
                     const HashFamily& hashes) {
  const std::vector<Minimizer> minimizers =
      minimizer_scan(seq, params.minimizer);
  return sketch_by_jem(minimizers, params.interval_length, hashes);
}

Sketch sketch_by_jem_naive(std::span<const Minimizer> minimizers,
                           std::uint32_t interval_length,
                           const HashFamily& hashes) {
  const int trials = hashes.trials();
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(trials));

  for (std::size_t i = 0; i < minimizers.size(); ++i) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(minimizers[i].position) + interval_length;
    std::size_t end = i;
    while (end < minimizers.size() && minimizers[end].position <= limit) {
      ++end;
    }
    for (int t = 0; t < trials; ++t) {
      HashedKmer best{hashes.hash(t, minimizers[i].kmer), minimizers[i].kmer};
      for (std::size_t j = i + 1; j < end; ++j) {
        const HashedKmer hk{hashes.hash(t, minimizers[j].kmer),
                            minimizers[j].kmer};
        if (hk.less_than(best)) best = hk;
      }
      sketch.per_trial[static_cast<std::size_t>(t)].push_back(best.kmer);
    }
  }

  normalize(sketch);
  return sketch;
}

Sketch classic_minhash(std::string_view seq, int k, const HashFamily& hashes) {
  const int trials = hashes.trials();
  Sketch sketch;
  sketch.per_trial.resize(static_cast<std::size_t>(trials));
  const KmerCodec codec(k);

  std::vector<HashedKmer> best(static_cast<std::size_t>(trials));
  bool any = false;

  // Rolling scan over all k-mers, restarting after ambiguous bases.
  KmerCode fwd = 0;
  KmerCode rc = 0;
  int valid = 0;  // valid bases accumulated toward the next full k-mer
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::uint8_t code = base_code(seq[i]);
    if (code == kInvalidBase) {
      valid = 0;
      continue;
    }
    fwd = codec.roll(fwd, code);
    rc = codec.roll_rc(rc, code);
    if (++valid < k) continue;
    valid = k;  // saturate so the counter cannot overflow on long runs

    const KmerCode canon = fwd < rc ? fwd : rc;
    for (int t = 0; t < trials; ++t) {
      const HashedKmer hk{hashes.hash(t, canon), canon};
      auto& current = best[static_cast<std::size_t>(t)];
      if (!any || hk.less_than(current)) current = hk;
    }
    any = true;
  }

  if (any) {
    for (int t = 0; t < trials; ++t) {
      sketch.per_trial[static_cast<std::size_t>(t)].push_back(
          best[static_cast<std::size_t>(t)].kmer);
    }
  }
  return sketch;
}

}  // namespace jem::core
