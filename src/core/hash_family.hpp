// The family of T random linear-congruential hash functions used for the
// MinHash trials (paper §III-B2, implementation notes):
//
//     h_t(x) = (A_t · x + B_t) mod P_t
//
// where x is the k-mer rank (its 2-bit encoding) and A_t, B_t, P_t are
// random constants generated a priori from the experiment seed. P_t is a
// random prime (distinct per trial) so each h_t is drawn from a universal
// family; A_t ∈ [1, P_t), B_t ∈ [0, P_t).
//
// Primality is checked with a deterministic Miller-Rabin test valid for all
// 64-bit inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/kmer.hpp"

namespace jem::core {

/// Deterministic Miller-Rabin for any n < 2^64.
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

/// Smallest prime >= n (n must leave room below 2^64; valid for all inputs
/// this library generates, which are < 2^62).
[[nodiscard]] std::uint64_t next_prime_u64(std::uint64_t n) noexcept;

/// One trial's hash function.
struct LcgHash {
  std::uint64_t a = 1;
  std::uint64_t b = 0;
  std::uint64_t p = 2;  // prime modulus

  [[nodiscard]] std::uint64_t operator()(KmerCode x) const noexcept {
    const auto wide = static_cast<__uint128_t>(a) * x + b;
    return static_cast<std::uint64_t>(wide % p);
  }
};

/// The T-member family. Constants are generated from `seed`; the same seed
/// always yields the same family, which is what makes subject and query
/// sketches comparable across processes (every rank derives the family from
/// the shared experiment seed rather than communicating it).
class HashFamily {
 public:
  HashFamily(int trials, std::uint64_t seed);

  [[nodiscard]] int trials() const noexcept {
    return static_cast<int>(hashes_.size());
  }

  [[nodiscard]] const LcgHash& operator[](int t) const noexcept {
    return hashes_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] std::uint64_t hash(int t, KmerCode x) const noexcept {
    return hashes_[static_cast<std::size_t>(t)](x);
  }

 private:
  std::vector<LcgHash> hashes_;
};

}  // namespace jem::core
