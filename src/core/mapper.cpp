#include "core/mapper.hpp"

#include <algorithm>
#include <mutex>

#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace jem::core {

void HotpathCounters::publish(obs::Registry& registry) const {
  using obs::Unit;
  registry.counter("core.hotpath.segments_seen").add(segments_seen);
  registry.counter("core.hotpath.segments_sampled").add(segments_sampled);
  registry.counter("core.hotpath.kmer_lookups").add(kmer_lookups);
  registry.counter("core.hotpath.sketch_hits").add(sketch_hits);
  registry.counter("core.hotpath.sketch_misses").add(sketch_misses);
  registry.counter("core.hotpath.probe_slots").add(probe_slots);
  registry.counter("core.hotpath.candidates").add(candidates);
  if (segments_sampled > 0) {
    // Per-sampled-segment distributions (log2 buckets).
    registry.histogram("core.hotpath.probe_slots_per_segment")
        .record(probe_slots / segments_sampled);
    registry.histogram("core.hotpath.candidates_per_segment")
        .record(candidates / segments_sampled);
  }
}

Sketch make_sketch(std::string_view seq, const MapParams& params,
                   SketchScheme scheme, const HashFamily& hashes) {
  switch (scheme) {
    case SketchScheme::kJem: {
      const SketchParams sp{{params.k, params.w, params.ordering},
                            params.segment_length};
      return sketch_by_jem(seq, sp, hashes);
    }
    case SketchScheme::kClassicMinhash:
      return classic_minhash(seq, params.k, hashes);
  }
  return {};
}

void make_sketch(std::string_view seq, const MapParams& params,
                 SketchScheme scheme, const HashFamily& hashes,
                 SketchScratch& scratch, FlatSketch& out) {
  switch (scheme) {
    case SketchScheme::kJem: {
      const MinimizerParams mp{params.k, params.w, params.ordering};
      minimizer_scan(seq, mp, scratch.scan, scratch.minimizers);
      sketch_by_jem(scratch.minimizers, params.segment_length, hashes,
                    scratch, out);
      break;
    }
    case SketchScheme::kClassicMinhash:
      classic_minhash(seq, params.k, hashes, scratch, out);
      break;
  }
}

SketchTable sketch_subjects(const io::SequenceSet& subjects, io::SeqId begin,
                            io::SeqId end, const MapParams& params,
                            SketchScheme scheme, const HashFamily& hashes) {
  SketchTable table(params.trials);
  for (io::SeqId id = begin; id < end; ++id) {
    table.insert(make_sketch(subjects.bases(id), params, scheme, hashes), id);
  }
  return table;
}

JemMapper::JemMapper(const io::SequenceSet& subjects, MapParams params,
                     SketchScheme scheme)
    : subjects_(subjects),
      params_(params),
      scheme_(scheme),
      hashes_(params.trials, params.seed),
      table_(sketch_subjects(subjects, 0,
                             static_cast<io::SeqId>(subjects.size()), params_,
                             scheme, hashes_)) {
  params_.validate();
  table_.freeze();  // CSR form: faster, cache-friendly query lookups
}

JemMapper::JemMapper(const io::SequenceSet& subjects, MapParams params,
                     SketchScheme scheme, SketchTable table)
    : subjects_(subjects),
      params_(params),
      scheme_(scheme),
      hashes_(params.trials, params.seed),
      table_(std::move(table)) {
  params_.validate();
  if (table_.trials() != params_.trials) {
    throw std::invalid_argument("JemMapper: table trial count mismatch");
  }
  table_.freeze();  // idempotent; the query path needs the flat index
}

MapResult JemMapper::map_segment(std::string_view segment,
                                 MapScratch& scratch) const {
  FlatSketch& sketch = scratch.sketch();
  make_sketch(segment, params_, scheme_, hashes_, scratch.sketch_scratch(),
              sketch);
  const FlatSketchIndex& index = table_.flat();
  auto& postings = scratch.postings();
  HotpathCounters& hotpath = scratch.hotpath();
  const bool sampled = hotpath.tick_sample();

  MapResult best;
  scratch.votes().new_round();
  for (int t = 0; t < params_.trials; ++t) {
    // Hits_r[t] is a *set* of subjects: a subject colliding via several
    // sketch k-mers within one trial still earns a single vote, enforced by
    // the per-trial `seen` round.
    scratch.seen().new_round();
    const std::span<const KmerCode> kmers = sketch.trial(t);
    postings.resize(kmers.size());
    const std::uint64_t probed = index.lookup_many(t, kmers, postings);
    if (sampled) {
      hotpath.probe_slots += probed;
      hotpath.kmer_lookups += kmers.size();
      for (const std::span<const io::SeqId> subjects : postings) {
        subjects.empty() ? ++hotpath.sketch_misses : ++hotpath.sketch_hits;
      }
    }
    for (const std::span<const io::SeqId> subjects : postings) {
      for (io::SeqId subject : subjects) {
        if (!scratch.seen().first_time(subject)) continue;
        const std::uint32_t count = scratch.votes().increment(subject);
        if (sampled && count == 1) ++hotpath.candidates;
        // Final winner = max votes, ties to the smallest subject id; the
        // online update below realizes exactly that order without a final
        // scan over all subjects.
        if (count > best.votes ||
            (count == best.votes && subject < best.subject)) {
          best.votes = count;
          best.subject = subject;
        }
      }
    }
  }

  if (best.votes < params_.min_votes) return {};
  return best;
}

MapResult JemMapper::map_segment_reference(std::string_view segment,
                                           MapScratch& scratch) const {
  // Frozen pre-overhaul kernel for the JEM scheme (per-trial std::deque
  // windows, allocated per call); CSR binary-search lookups below. This is
  // the baseline BENCH_hotpath.json measures the hot path against.
  const Sketch sketch =
      scheme_ == SketchScheme::kJem
          ? sketch_by_jem_reference(
                minimizer_scan(segment,
                               {params_.k, params_.w, params_.ordering}),
                params_.segment_length, hashes_)
          : make_sketch(segment, params_, scheme_, hashes_);

  MapResult best;
  scratch.votes().new_round();
  for (int t = 0; t < params_.trials; ++t) {
    scratch.seen().new_round();
    for (KmerCode kmer : sketch.per_trial[static_cast<std::size_t>(t)]) {
      for (io::SeqId subject : table_.lookup(t, kmer)) {
        if (!scratch.seen().first_time(subject)) continue;
        const std::uint32_t count = scratch.votes().increment(subject);
        if (count > best.votes ||
            (count == best.votes && subject < best.subject)) {
          best.votes = count;
          best.subject = subject;
        }
      }
    }
  }

  if (best.votes < params_.min_votes) return {};
  return best;
}

MapResult JemMapper::map_segment(std::string_view segment) const {
  MapScratch scratch(subjects_.size());
  return map_segment(segment, scratch);
}

std::vector<MapResult> JemMapper::map_segment_topx(std::string_view segment,
                                                   std::size_t x,
                                                   MapScratch& scratch) const {
  FlatSketch& sketch = scratch.sketch();
  make_sketch(segment, params_, scheme_, hashes_, scratch.sketch_scratch(),
              sketch);
  const FlatSketchIndex& index = table_.flat();
  auto& postings = scratch.postings();

  // Same vote counting as map_segment, but remember every subject touched
  // this round so the full ranking can be materialized afterwards. The
  // touched list lives in the scratch so repeat calls reuse its capacity.
  std::vector<io::SeqId>& touched = scratch.touched();
  touched.clear();
  HotpathCounters& hotpath = scratch.hotpath();
  const bool sampled = hotpath.tick_sample();
  scratch.votes().new_round();
  for (int t = 0; t < params_.trials; ++t) {
    scratch.seen().new_round();
    const std::span<const KmerCode> kmers = sketch.trial(t);
    postings.resize(kmers.size());
    const std::uint64_t probed = index.lookup_many(t, kmers, postings);
    if (sampled) {
      hotpath.probe_slots += probed;
      hotpath.kmer_lookups += kmers.size();
      for (const std::span<const io::SeqId> subjects : postings) {
        subjects.empty() ? ++hotpath.sketch_misses : ++hotpath.sketch_hits;
      }
    }
    for (const std::span<const io::SeqId> subjects : postings) {
      for (io::SeqId subject : subjects) {
        if (!scratch.seen().first_time(subject)) continue;
        if (scratch.votes().increment(subject) == 1) {
          touched.push_back(subject);
        }
      }
    }
  }
  if (sampled) hotpath.candidates += touched.size();

  std::sort(touched.begin(), touched.end(),
            [&](io::SeqId a, io::SeqId b) {
              const std::uint32_t va = scratch.votes().count(a);
              const std::uint32_t vb = scratch.votes().count(b);
              if (va != vb) return va > vb;
              return a < b;
            });

  std::vector<MapResult> hits;
  hits.reserve(std::min(x, touched.size()));
  for (io::SeqId subject : touched) {
    if (hits.size() >= x) break;
    const std::uint32_t votes = scratch.votes().count(subject);
    if (votes < params_.min_votes) break;  // sorted: all later are weaker
    hits.push_back({subject, votes});
  }
  return hits;
}

std::vector<SegmentTopX> JemMapper::map_reads_topx(const io::SequenceSet& reads,
                                                   std::size_t x,
                                                   io::SeqId begin,
                                                   io::SeqId end,
                                                   MapScratch& scratch) const {
  std::vector<SegmentTopX> mappings;
  for (io::SeqId read = begin; read < end; ++read) {
    for (const EndSegment& segment : extract_end_segments(
             read, reads.bases(read), params_.segment_length)) {
      SegmentTopX mapping;
      mapping.read = read;
      mapping.end = segment.end;
      mapping.segment_length =
          static_cast<std::uint32_t>(segment.bases.size());
      mapping.hits = map_segment_topx(segment.bases, x, scratch);
      mappings.push_back(std::move(mapping));
    }
  }
  return mappings;
}

std::vector<SegmentTopX> JemMapper::map_reads_topx(const io::SequenceSet& reads,
                                                   std::size_t x,
                                                   io::SeqId begin,
                                                   io::SeqId end) const {
  MapScratch scratch(subjects_.size());
  return map_reads_topx(reads, x, begin, end, scratch);
}

std::vector<SegmentTopX> JemMapper::map_reads_topx(const io::SequenceSet& reads,
                                                   std::size_t x) const {
  MapRequest request;
  request.mode = MapMode::kTopX;
  request.top_x = x;
  return detail::run_request(*this, reads, request).topx;
}

std::vector<SegmentMapping> JemMapper::map_reads(const io::SequenceSet& reads,
                                                 io::SeqId begin, io::SeqId end,
                                                 MapScratch& scratch) const {
  std::vector<SegmentMapping> mappings;
  for (io::SeqId read = begin; read < end; ++read) {
    for (const EndSegment& segment : extract_end_segments(
             read, reads.bases(read), params_.segment_length)) {
      SegmentMapping mapping;
      mapping.read = read;
      mapping.end = segment.end;
      mapping.offset = segment.offset;
      mapping.segment_length =
          static_cast<std::uint32_t>(segment.bases.size());
      mapping.result = map_segment(segment.bases, scratch);
      mappings.push_back(mapping);
    }
  }
  return mappings;
}

std::vector<SegmentMapping> JemMapper::map_reads(const io::SequenceSet& reads,
                                                 io::SeqId begin,
                                                 io::SeqId end) const {
  MapScratch scratch(subjects_.size());
  return map_reads(reads, begin, end, scratch);
}

std::vector<SegmentMapping> JemMapper::map_reads(
    const io::SequenceSet& reads) const {
  return map_reads(reads, 0, static_cast<io::SeqId>(reads.size()));
}

std::vector<SegmentMapping> JemMapper::map_reads_tiled(
    const io::SequenceSet& reads, io::SeqId begin, io::SeqId end,
    MapScratch& scratch) const {
  std::vector<SegmentMapping> mappings;
  for (io::SeqId read = begin; read < end; ++read) {
    for (const EndSegment& segment : extract_tiled_segments(
             read, reads.bases(read), params_.segment_length)) {
      SegmentMapping mapping;
      mapping.read = read;
      mapping.end = segment.end;
      mapping.offset = segment.offset;
      mapping.segment_length =
          static_cast<std::uint32_t>(segment.bases.size());
      mapping.result = map_segment(segment.bases, scratch);
      mappings.push_back(mapping);
    }
  }
  return mappings;
}

std::vector<SegmentMapping> JemMapper::map_reads_tiled(
    const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const {
  MapScratch scratch(subjects_.size());
  return map_reads_tiled(reads, begin, end, scratch);
}

std::vector<SegmentMapping> JemMapper::map_reads_tiled(
    const io::SequenceSet& reads) const {
  MapRequest request;
  request.mode = MapMode::kTiled;
  return detail::run_request(*this, reads, request).mappings;
}

std::vector<SegmentMapping> JemMapper::map_reads_openmp(
    const io::SequenceSet& reads) const {
  MapRequest request;
  request.backend = MapBackend::kOpenMP;
  return detail::run_request(*this, reads, request).mappings;
}

std::vector<SegmentMapping> JemMapper::map_reads_parallel(
    const io::SequenceSet& reads, util::ThreadPool& pool) const {
  MapRequest request;
  request.backend = MapBackend::kPool;
  return detail::run_request(*this, reads, request, &pool).mappings;
}

std::vector<io::MappingLine> JemMapper::to_mapping_lines(
    const io::SequenceSet& reads,
    const std::vector<SegmentMapping>& mappings) const {
  std::vector<io::MappingLine> lines;
  lines.reserve(mappings.size());
  for (const SegmentMapping& mapping : mappings) {
    io::MappingLine line;
    line.query = std::string(reads.name(mapping.read));
    line.end = read_end_tag(mapping.end);
    line.segment_length = mapping.segment_length;
    if (mapping.result.mapped()) {
      line.subject = std::string(subjects_.name(mapping.result.subject));
    }
    line.votes = mapping.result.votes;
    line.trials = static_cast<std::uint32_t>(params_.trials);
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace jem::core
