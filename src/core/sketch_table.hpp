// The sketch data structure S of Algorithm 2: T hash tables, one per trial,
// mapping a minhash k-mer to the subjects that produced it. Includes the
// flat serialization used for the MPI_Allgatherv union step (S3).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/flat_index.hpp"
#include "core/sketch.hpp"
#include "io/sequence.hpp"

namespace jem::core {

/// One serialized table entry; trivially copyable for the allgatherv wire
/// format.
struct SketchEntry {
  KmerCode kmer = 0;
  std::uint32_t trial = 0;
  io::SeqId subject = 0;

  friend bool operator==(const SketchEntry&, const SketchEntry&) = default;
};
static_assert(sizeof(SketchEntry) == 16);

// The table has three representations:
//  * a mutable hash-map form used while sketching local subjects (S2),
//  * a frozen CSR form — per trial, a position-sorted key array with a
//    postings array — matching the paper's description of S_global as
//    "T lists" (Fig 2). from_entries builds the frozen form directly by
//    sorting the allgathered wire entries, which is markedly cheaper than
//    re-inserting hundreds of thousands of entries into hash maps at every
//    rank, and lookups become cache-friendly binary searches; and
//  * a FlatSketchIndex built alongside the CSR form on freeze — the
//    open-addressing form the query hot path probes (O(1) per lookup, with
//    batched prefetching). lookup() keeps answering from the CSR arrays so
//    the two forms can be validated against each other; flat() exposes the
//    hash index JemMapper queries.
// Freezing throws std::length_error if any trial's postings exceed the
// std::uint32_t offset range of the CSR layout (2^32 - 1 entries per trial)
// rather than silently truncating.
class SketchTable {
 public:
  /// One trial's frozen list: postings sorted by (kmer, subject); keys/
  /// offsets index the distinct k-mers (CSR layout). Public for the index
  /// artifact (core/index_serde), which persists the arrays verbatim.
  struct FrozenTrial {
    std::vector<KmerCode> keys;              // sorted distinct k-mers
    std::vector<std::uint32_t> offsets;      // keys.size() + 1 entries
    std::vector<io::SeqId> subjects;         // concatenated postings
  };

  /// Creates an empty (mutable) table with `trials` trial bins.
  explicit SketchTable(int trials);

  [[nodiscard]] int trials() const noexcept { return trials_; }

  /// Inserts every (trial, kmer) of `sketch` with value `subject`.
  /// Duplicate (trial, kmer, subject) triples are collapsed.
  /// Throws std::logic_error on a frozen table.
  void insert(const Sketch& sketch, io::SeqId subject);

  /// Inserts one entry. Throws std::logic_error on a frozen table.
  void insert(int trial, KmerCode kmer, io::SeqId subject);

  /// Converts the mutable form into the frozen CSR form (idempotent).
  void freeze();

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Subjects that produced `kmer` in trial `t` (empty span if none).
  /// On a frozen table this is the CSR binary search; the hot path uses
  /// flat() instead.
  [[nodiscard]] std::span<const io::SeqId> lookup(int trial,
                                                  KmerCode kmer) const;

  /// The open-addressing query index (throws std::logic_error unless
  /// frozen). Lookups agree exactly with lookup() on a frozen table.
  [[nodiscard]] const FlatSketchIndex& flat() const;

  /// Number of stored (trial, kmer, subject) entries.
  [[nodiscard]] std::size_t size() const noexcept { return entries_; }

  /// Number of distinct (trial, kmer) keys.
  [[nodiscard]] std::size_t key_count() const noexcept;

  /// Flattens to the wire format (entries ordered by trial, then key order
  /// of the underlying map — order is irrelevant to reconstruction).
  [[nodiscard]] std::vector<SketchEntry> to_entries() const;

  /// Rebuilds a (frozen) table from concatenated per-rank entry lists.
  /// Duplicate triples across ranks are collapsed.
  [[nodiscard]] static SketchTable from_entries(
      int trials, std::span<const SketchEntry> entries);

  /// Legacy index persistence: a versioned binary dump (magic + trials +
  /// entry list), retained for wire-format compatibility. New code should
  /// use the checksummed artifact format in core/index_serde (save_index /
  /// load_index), which also persists the frozen CSR + flat-index forms so
  /// loading skips the freeze entirely. load() returns a frozen table.
  void save(std::ostream& out) const;
  [[nodiscard]] static SketchTable load(std::istream& in);

  /// One trial's frozen CSR arrays (throws std::logic_error unless frozen).
  [[nodiscard]] const FrozenTrial& frozen_trial(int trial) const;

  /// Reconstructs a frozen table directly from persisted per-trial CSR
  /// arrays and a pre-built flat index — the artifact load path: no re-sort,
  /// no re-hash, no freeze. Validates CSR shape consistency (offset array
  /// sizes, postings totals, sortedness of keys) and that the flat index
  /// agrees on trial and key counts; throws std::invalid_argument on any
  /// violation so a corrupted artifact cannot produce a malformed table.
  [[nodiscard]] static SketchTable from_frozen(
      int trials, std::vector<FrozenTrial> frozen_trials,
      FlatSketchIndex flat);

 private:
  using Bin = std::unordered_map<KmerCode, std::vector<io::SeqId>>;

  /// Builds flat_ from the frozen CSR arrays (last step of freezing).
  void build_flat_index();

  int trials_ = 0;
  std::vector<Bin> bins_;
  std::vector<FrozenTrial> frozen_trials_;
  FlatSketchIndex flat_;
  bool frozen_ = false;
  std::size_t entries_ = 0;
};

}  // namespace jem::core
