// JemMapper — Algorithm 2 (L2C mapping): build the sketch table over the
// subjects, then map every long-read end segment to its best-hit contig.
//
// The class is immutable after construction; map_segment is const and
// thread-safe given a per-thread MapScratch, which is how the threaded and
// distributed drivers parallelize the query phase.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/end_segments.hpp"
#include "core/hash_family.hpp"
#include "core/hit_counter.hpp"
#include "core/params.hpp"
#include "core/sketch.hpp"
#include "core/sketch_table.hpp"
#include "io/mapping_writer.hpp"
#include "io/sequence_set.hpp"
#include "util/thread_pool.hpp"

namespace jem::obs {
class Registry;  // obs/metrics.hpp
}  // namespace jem::obs

namespace jem::core {

/// Which sketch drives the mapping: the paper's JEM sketch or the classical
/// MinHash it is compared against (Fig 6).
enum class SketchScheme { kJem, kClassicMinhash };

/// Result of mapping one segment.
struct MapResult {
  io::SeqId subject = io::kInvalidSeqId;
  std::uint32_t votes = 0;  // trials in which the subject hit

  [[nodiscard]] bool mapped() const noexcept {
    return subject != io::kInvalidSeqId;
  }
  friend bool operator==(const MapResult&, const MapResult&) = default;
};

/// One mapped end segment with provenance — the unit of the tool's output
/// and of the quality evaluation.
struct SegmentMapping {
  io::SeqId read = 0;
  ReadEnd end = ReadEnd::kPrefix;
  std::uint32_t offset = 0;  // segment start within the read
  std::uint32_t segment_length = 0;
  MapResult result;

  friend bool operator==(const SegmentMapping&, const SegmentMapping&) =
      default;
};

/// Top-x variant (the extension the paper sketches in §IV-C: "if we are to
/// extend our method to report a fixed number, say top x hits per read,
/// then several of the missing contig hits could possibly be recovered").
/// `hits` is ordered by votes descending, ties to the smaller subject id.
struct SegmentTopX {
  io::SeqId read = 0;
  ReadEnd end = ReadEnd::kPrefix;
  std::uint32_t segment_length = 0;
  std::vector<MapResult> hits;

  friend bool operator==(const SegmentTopX&, const SegmentTopX&) = default;
};

/// Sampled hot-path counters (docs/observability.md). Plain integers owned
/// by one MapScratch — updating them is allocation- and atomic-free, which
/// keeps the instrumented map_segment inside the <= 3% overhead budget.
/// Disabled (sample_every == 0) they cost one predictable branch per
/// segment. Every sample_every-th segment is measured in full: k-mer
/// lookups, postings hits/misses, flat-index slots probed, and distinct
/// candidate subjects voted. The engine publishes the totals into its
/// metrics registry after the run (core.hotpath.* counters).
struct HotpathCounters {
  std::uint32_t sample_every = 0;  // 0 = sampling off
  std::uint32_t tick = 0;

  std::uint64_t segments_seen = 0;     // all segments (kept even unsampled)
  std::uint64_t segments_sampled = 0;  // segments measured in full
  std::uint64_t kmer_lookups = 0;      // sketch k-mers resolved (sampled)
  std::uint64_t sketch_hits = 0;       // lookups with non-empty postings
  std::uint64_t sketch_misses = 0;     // lookups with no postings
  std::uint64_t probe_slots = 0;       // flat-index slots touched (sampled)
  std::uint64_t candidates = 0;        // distinct subjects voted (sampled)

  /// Advances the per-segment clock; true when this segment is sampled.
  [[nodiscard]] bool tick_sample() noexcept {
    if (sample_every == 0) return false;
    ++segments_seen;
    if (++tick < sample_every) return false;
    tick = 0;
    ++segments_sampled;
    return true;
  }

  /// Adds the totals to the `core.hotpath.*` counters of `registry`.
  void publish(obs::Registry& registry) const;
};

/// Per-thread mutable state for the query phase: the lazy counters of the
/// paper's S4 implementation notes plus every buffer the sketch kernels and
/// the vote loop need, so a segment mapped with a warm scratch performs no
/// heap allocation at all. One scratch per worker thread; the engine's
/// ScratchPool recycles them across batches.
class MapScratch {
 public:
  explicit MapScratch(std::size_t num_subjects)
      : votes_(num_subjects), seen_(num_subjects) {}

  LazyHitCounter& votes() noexcept { return votes_; }
  LazyHitCounter& seen() noexcept { return seen_; }

  /// Sketch-kernel buffers (minimizer list, window rings, emission arrays).
  SketchScratch& sketch_scratch() noexcept { return sketch_scratch_; }

  /// The segment's sketch, rebuilt in place per map_segment call.
  FlatSketch& sketch() noexcept { return sketch_; }

  /// Per-trial postings spans resolved by FlatSketchIndex::lookup_many.
  std::vector<std::span<const io::SeqId>>& postings() noexcept {
    return postings_;
  }

  /// Subjects touched by the current top-x round (reused across calls).
  std::vector<io::SeqId>& touched() noexcept { return touched_; }

  /// Sampled instrumentation (off by default; the engine enables it when a
  /// metrics registry is attached to the run).
  HotpathCounters& hotpath() noexcept { return hotpath_; }

 private:
  LazyHitCounter votes_;
  LazyHitCounter seen_;
  SketchScratch sketch_scratch_;
  FlatSketch sketch_;
  std::vector<std::span<const io::SeqId>> postings_;
  std::vector<io::SeqId> touched_;
  HotpathCounters hotpath_;
};

/// Computes the sketch of one sequence under the given scheme.
[[nodiscard]] Sketch make_sketch(std::string_view seq, const MapParams& params,
                                 SketchScheme scheme,
                                 const HashFamily& hashes);

/// Scratch-reusing form: fills `out` without steady-state allocation. Trial
/// lists are bit-identical to the allocating overload's per_trial vectors.
void make_sketch(std::string_view seq, const MapParams& params,
                 SketchScheme scheme, const HashFamily& hashes,
                 SketchScratch& scratch, FlatSketch& out);

/// Sketches subjects [begin, end) of `subjects` into a fresh table (the
/// local S2 step of the distributed algorithm; the sequential driver calls
/// it with the full range).
[[nodiscard]] SketchTable sketch_subjects(const io::SequenceSet& subjects,
                                          io::SeqId begin, io::SeqId end,
                                          const MapParams& params,
                                          SketchScheme scheme,
                                          const HashFamily& hashes);

class JemMapper {
 public:
  /// Builds the table over all subjects (sequential S2).
  JemMapper(const io::SequenceSet& subjects, MapParams params,
            SketchScheme scheme = SketchScheme::kJem);

  /// Adopts a pre-built (e.g. allgathered) table.
  JemMapper(const io::SequenceSet& subjects, MapParams params,
            SketchScheme scheme, SketchTable table);

  [[nodiscard]] const MapParams& params() const noexcept { return params_; }
  [[nodiscard]] SketchScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] const HashFamily& hashes() const noexcept { return hashes_; }
  [[nodiscard]] const SketchTable& table() const noexcept { return table_; }
  [[nodiscard]] const io::SequenceSet& subjects() const noexcept {
    return subjects_;
  }

  /// Maps one segment (steps 4-8 of Algorithm 2). Hot path: sketches into
  /// the scratch's reusable buffers and votes through the table's
  /// FlatSketchIndex with batched, prefetching lookups.
  [[nodiscard]] MapResult map_segment(std::string_view segment,
                                      MapScratch& scratch) const;

  /// Convenience overload allocating its own scratch (tests, examples).
  [[nodiscard]] MapResult map_segment(std::string_view segment) const;

  /// The pre-overhaul query path: allocates a fresh Sketch and resolves
  /// every (trial, k-mer) with the CSR binary search. Kept as the oracle
  /// for the golden-equivalence tests and as the baseline bench_micro's
  /// hot-path benchmark measures the flat+scratch path against. Returns
  /// exactly what map_segment returns.
  [[nodiscard]] MapResult map_segment_reference(std::string_view segment,
                                                MapScratch& scratch) const;

  /// Maps one segment and returns up to `x` candidate subjects ordered by
  /// votes (descending, ties to smaller id). Subjects below min_votes are
  /// not reported; the front element equals map_segment's result.
  [[nodiscard]] std::vector<MapResult> map_segment_topx(
      std::string_view segment, std::size_t x, MapScratch& scratch) const;

  /// Maps the end segments of reads [begin, end) in top-x mode, reusing the
  /// caller's scratch (per-thread reuse in the engine's pipeline).
  [[nodiscard]] std::vector<SegmentTopX> map_reads_topx(
      const io::SequenceSet& reads, std::size_t x, io::SeqId begin,
      io::SeqId end, MapScratch& scratch) const;

  /// Maps the end segments of reads [begin, end) in top-x mode.
  [[nodiscard]] std::vector<SegmentTopX> map_reads_topx(
      const io::SequenceSet& reads, std::size_t x, io::SeqId begin,
      io::SeqId end) const;

  /// Deprecated: route whole-set batch runs through core::MappingEngine
  /// (MapRequest{.mode = MapMode::kTopX}); see docs/engine.md.
  [[deprecated(
      "use MappingEngine::run with MapMode::kTopX (docs/engine.md)")]]
  [[nodiscard]] std::vector<SegmentTopX> map_reads_topx(
      const io::SequenceSet& reads, std::size_t x) const;

  /// Maps the end segments of reads [begin, end) sequentially, reusing the
  /// caller's scratch.
  [[nodiscard]] std::vector<SegmentMapping> map_reads(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end,
      MapScratch& scratch) const;

  /// Maps the end segments of reads [begin, end) sequentially.
  [[nodiscard]] std::vector<SegmentMapping> map_reads(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const;

  /// Maps all reads sequentially.
  [[nodiscard]] std::vector<SegmentMapping> map_reads(
      const io::SequenceSet& reads) const;

  /// Deprecated: route threaded runs through core::MappingEngine
  /// (MapRequest{.backend = MapBackend::kPool}); see docs/engine.md.
  [[deprecated(
      "use MappingEngine::run with MapBackend::kPool (docs/engine.md)")]]
  [[nodiscard]] std::vector<SegmentMapping> map_reads_parallel(
      const io::SequenceSet& reads, util::ThreadPool& pool) const;

  /// Containment mode (paper §III-B1's noted extension): tiles reads
  /// [begin, end) with ℓ-length segments and maps every tile, so contigs
  /// contained in read interiors are found too. Reuses the caller's scratch.
  [[nodiscard]] std::vector<SegmentMapping> map_reads_tiled(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end,
      MapScratch& scratch) const;

  /// Containment mode over reads [begin, end).
  [[nodiscard]] std::vector<SegmentMapping> map_reads_tiled(
      const io::SequenceSet& reads, io::SeqId begin, io::SeqId end) const;

  /// Deprecated: route whole-set containment runs through
  /// core::MappingEngine (MapRequest{.mode = MapMode::kTiled}).
  [[deprecated(
      "use MappingEngine::run with MapMode::kTiled (docs/engine.md)")]]
  [[nodiscard]] std::vector<SegmentMapping> map_reads_tiled(
      const io::SequenceSet& reads) const;

  /// Deprecated: route OpenMP runs through core::MappingEngine
  /// (MapRequest{.backend = MapBackend::kOpenMP}); see docs/engine.md.
  [[deprecated(
      "use MappingEngine::run with MapBackend::kOpenMP (docs/engine.md)")]]
  [[nodiscard]] std::vector<SegmentMapping> map_reads_openmp(
      const io::SequenceSet& reads) const;

  /// Renders mappings as output lines (query/subject names resolved).
  [[nodiscard]] std::vector<io::MappingLine> to_mapping_lines(
      const io::SequenceSet& reads,
      const std::vector<SegmentMapping>& mappings) const;

 private:
  const io::SequenceSet& subjects_;
  MapParams params_;
  SketchScheme scheme_;
  HashFamily hashes_;
  SketchTable table_;
};

}  // namespace jem::core
