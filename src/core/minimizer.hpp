// Canonical lexicographic minimizers (Roberts et al. 2004), the base sampling
// layer of the JEM sketch.
//
// Definition used by the paper (§III-B2, implementation notes): for window
// size w, the minimizer of w consecutive k-mers is the lexicographically
// smallest *canonical* k-mer (the smaller of the k-mer and its reverse
// complement). A minimizer is appended to the ordered list M_o(s, w) only
// when it changes or the current one slides out of scope, yielding the
// position-sorted list of distinct minimizer occurrences.
//
// The scan is O(|s|) using a monotone deque; k-mers containing non-ACGT
// bases break the sequence into independent runs (no window spans an
// ambiguous base).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/kmer.hpp"
#include "util/ring_buffer.hpp"

namespace jem::core {

/// One minimizer occurrence: the canonical k-mer code and the start position
/// of the k-mer occurrence it was selected from.
struct Minimizer {
  KmerCode kmer = 0;
  std::uint32_t position = 0;

  friend bool operator==(const Minimizer&, const Minimizer&) = default;
};

/// How window minima are selected. The paper uses the lexicographically
/// smallest canonical k-mer ("consistent with previous works [23], [24]").
/// kRandomHash orders k-mers by a mixed hash of the canonical code instead —
/// the improvement of Marçais et al. 2017 (the paper's ref [24]): it avoids
/// the poly-A/low-complexity bias of lexicographic ordering and gives a
/// density closer to the theoretical 2/(w+1). Exposed for the ordering
/// ablation; all paper experiments use kLexicographic.
enum class MinimizerOrdering : std::uint8_t { kLexicographic, kRandomHash };

struct MinimizerParams {
  int k = 16;   // k-mer size
  int w = 100;  // number of consecutive k-mers per window
  MinimizerOrdering ordering = MinimizerOrdering::kLexicographic;
};

namespace detail {
/// One monotone-window entry of the scan: the ordering key (lexicographic
/// code or mixed hash), the canonical k-mer, and its absolute position.
struct MinimizerWindowEntry {
  std::uint64_t key;
  KmerCode canon;
  std::uint32_t pos;
};
}  // namespace detail

/// Reusable state of the scan: the monotone window buffer. A scratch that
/// survives across calls makes the scan allocation-free at steady state —
/// the buffer's capacity converges to the largest window seen (<= w entries)
/// and is reused, where the previous implementation paid std::deque's
/// chunked allocations on every call.
struct MinimizerScratch {
  util::RingDeque<detail::MinimizerWindowEntry> window;
};

/// Computes M_o(s, w): the position-sorted list of distinct minimizer
/// occurrences of `seq`. Sequences shorter than one full window (k + w - 1
/// bases) within an ACGT run contribute the minimizer of each partial run
/// only if at least one k-mer exists (the window is truncated to the run) —
/// matching how short contigs still produce sketches in practice.
[[nodiscard]] std::vector<Minimizer> minimizer_scan(std::string_view seq,
                                                    const MinimizerParams& p);

/// Scratch-reusing form of the scan: clears and fills `out`, reusing the
/// scratch's window buffer. ACGT runs are iterated lazily (no per-call run
/// vector). Produces exactly the same list as the allocating overload.
void minimizer_scan(std::string_view seq, const MinimizerParams& p,
                    MinimizerScratch& scratch, std::vector<Minimizer>& out);

/// Reference O(n·w) implementation used by property tests to validate the
/// deque-based scan.
[[nodiscard]] std::vector<Minimizer> minimizer_scan_naive(
    std::string_view seq, const MinimizerParams& p);

/// Expected density of distinct minimizers: 2/(w+1) per k-mer position.
[[nodiscard]] constexpr double expected_minimizer_density(int w) noexcept {
  return 2.0 / (static_cast<double>(w) + 1.0);
}

}  // namespace jem::core
