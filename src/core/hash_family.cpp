#include "core/hash_family.hpp"

#include <array>
#include <stdexcept>

#include "util/prng.hpp"

namespace jem::core {

namespace {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b,
                         std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1u) result = mulmod_u64(result, base, m);
    base = mulmod_u64(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Write n-1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64
  // (Sinclair 2011, verified set).
  constexpr std::array<std::uint64_t, 7> kWitnesses{
      2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL, 1795265022ULL};
  for (std::uint64_t a : kWitnesses) {
    const std::uint64_t base = a % n;
    if (base == 0) continue;
    std::uint64_t x = powmod_u64(base, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t next_prime_u64(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  if ((n & 1u) == 0) ++n;
  while (!is_prime_u64(n)) n += 2;
  return n;
}

HashFamily::HashFamily(int trials, std::uint64_t seed) {
  if (trials < 1) {
    throw std::invalid_argument("HashFamily: trials must be >= 1");
  }
  hashes_.reserve(static_cast<std::size_t>(trials));
  util::Xoshiro256ss rng(util::mix64(seed ^ 0x4a454d5f48415348ULL));
  for (int t = 0; t < trials; ++t) {
    // Random ~61-bit prime modulus, distinct constants per trial. The
    // modulus comfortably exceeds any 2k-bit k-mer rank (k <= 30 at 60
    // bits), so the LCG acts on the full rank without wrap-around in x.
    const std::uint64_t start =
        (1ULL << 60) + (rng() & ((1ULL << 60) - 1));
    LcgHash h;
    h.p = next_prime_u64(start);
    h.a = 1 + rng.bounded(h.p - 1);  // [1, p)
    h.b = rng.bounded(h.p);          // [0, p)
    hashes_.push_back(h);
  }
}

}  // namespace jem::core
