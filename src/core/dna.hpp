// DNA alphabet primitives: 2-bit base codes, complements, and reverse
// complement of ASCII sequences.
//
// Base codes are chosen so that the numeric order of codes equals the
// lexicographic order of bases (A=0 < C=1 < G=2 < T=3). Packing a k-mer
// MSB-first therefore makes unsigned integer comparison of encoded k-mers
// identical to lexicographic comparison of the strings — the ordering the
// paper's canonical k-mer ranks Π*_k are defined over.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace jem::core {

inline constexpr std::uint8_t kInvalidBase = 0xff;

/// 2-bit code for an ASCII base (case-insensitive); kInvalidBase for
/// anything outside ACGT (N, IUPAC ambiguity codes, garbage).
[[nodiscard]] constexpr std::uint8_t base_code(char base) noexcept {
  switch (base) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return kInvalidBase;
  }
}

/// ASCII base for a 2-bit code (code must be < 4).
[[nodiscard]] constexpr char code_base(std::uint8_t code) noexcept {
  constexpr std::array<char, 4> kBases{'A', 'C', 'G', 'T'};
  return kBases[code & 3u];
}

/// Complement of a 2-bit code (A<->T, C<->G): 3 - code.
[[nodiscard]] constexpr std::uint8_t complement_code(
    std::uint8_t code) noexcept {
  return static_cast<std::uint8_t>(3u - code);
}

/// Complement of an ASCII base; 'N' maps to 'N', anything unknown maps to
/// 'N' as well.
[[nodiscard]] constexpr char complement_base(char base) noexcept {
  switch (base) {
    case 'A': case 'a': return 'T';
    case 'C': case 'c': return 'G';
    case 'G': case 'g': return 'C';
    case 'T': case 't': return 'A';
    default: return 'N';
  }
}

/// Reverse complement of an ASCII sequence.
[[nodiscard]] std::string reverse_complement(std::string_view seq);

/// True if every base of `seq` is one of ACGT (case-insensitive).
[[nodiscard]] bool is_acgt(std::string_view seq) noexcept;

/// Fraction of G/C bases among ACGT bases (0 when the sequence has none).
[[nodiscard]] double gc_content(std::string_view seq) noexcept;

}  // namespace jem::core
