#include "core/sketch_table.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace jem::core {

namespace {

/// CSR offsets are std::uint32_t per trial: refuse to freeze a trial whose
/// postings would overflow them instead of silently truncating.
void check_postings_fit(std::size_t postings) {
  if (postings > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "SketchTable: trial postings exceed the uint32 CSR offset range");
  }
}

}  // namespace

SketchTable::SketchTable(int trials) : trials_(trials) {
  if (trials < 1) {
    throw std::invalid_argument("SketchTable: trials must be >= 1");
  }
  bins_.resize(static_cast<std::size_t>(trials));
}

void SketchTable::insert(const Sketch& sketch, io::SeqId subject) {
  if (sketch.trials() != trials()) {
    throw std::invalid_argument("SketchTable::insert: trial count mismatch");
  }
  for (int t = 0; t < trials(); ++t) {
    for (KmerCode kmer : sketch.per_trial[static_cast<std::size_t>(t)]) {
      insert(t, kmer, subject);
    }
  }
}

void SketchTable::insert(int trial, KmerCode kmer, io::SeqId subject) {
  if (frozen_) {
    throw std::logic_error("SketchTable::insert: table is frozen");
  }
  auto& postings = bins_[static_cast<std::size_t>(trial)][kmer];
  // Postings are kept sorted; every driver inserts subjects in
  // non-decreasing id order, so the common case is an O(1) append, and
  // arbitrary-order inserts still preserve set semantics via binary search.
  if (postings.empty() || postings.back() < subject) {
    postings.push_back(subject);
  } else {
    const auto it =
        std::lower_bound(postings.begin(), postings.end(), subject);
    if (it != postings.end() && *it == subject) return;
    postings.insert(it, subject);
  }
  ++entries_;
}

void SketchTable::freeze() {
  if (frozen_) return;
  frozen_trials_.resize(bins_.size());
  for (std::size_t t = 0; t < bins_.size(); ++t) {
    Bin& bin = bins_[t];
    FrozenTrial& frozen = frozen_trials_[t];

    std::vector<std::pair<KmerCode, io::SeqId>> flat;
    flat.reserve(entries_);
    for (auto& [kmer, postings] : bin) {
      for (io::SeqId subject : postings) flat.emplace_back(kmer, subject);
    }
    check_postings_fit(flat.size());
    std::sort(flat.begin(), flat.end());

    frozen.keys.reserve(bin.size());
    frozen.offsets.reserve(bin.size() + 1);
    frozen.subjects.reserve(flat.size());
    for (const auto& [kmer, subject] : flat) {
      if (frozen.keys.empty() || frozen.keys.back() != kmer) {
        frozen.keys.push_back(kmer);
        frozen.offsets.push_back(
            static_cast<std::uint32_t>(frozen.subjects.size()));
      }
      frozen.subjects.push_back(subject);
    }
    frozen.offsets.push_back(
        static_cast<std::uint32_t>(frozen.subjects.size()));
    bin.clear();
  }
  bins_.clear();
  bins_.shrink_to_fit();
  build_flat_index();
  frozen_ = true;
}

void SketchTable::build_flat_index() {
  std::vector<FlatSketchIndex::TrialView> views;
  views.reserve(frozen_trials_.size());
  for (const FrozenTrial& frozen : frozen_trials_) {
    views.push_back({frozen.keys, frozen.offsets, frozen.subjects});
  }
  flat_ = FlatSketchIndex::build(views);
}

const FlatSketchIndex& SketchTable::flat() const {
  if (!frozen_) {
    throw std::logic_error("SketchTable::flat: table is not frozen");
  }
  return flat_;
}

std::span<const io::SeqId> SketchTable::lookup(int trial,
                                               KmerCode kmer) const {
  if (frozen_) {
    const FrozenTrial& frozen =
        frozen_trials_[static_cast<std::size_t>(trial)];
    const auto it =
        std::lower_bound(frozen.keys.begin(), frozen.keys.end(), kmer);
    if (it == frozen.keys.end() || *it != kmer) return {};
    const auto index =
        static_cast<std::size_t>(std::distance(frozen.keys.begin(), it));
    const std::uint32_t begin = frozen.offsets[index];
    const std::uint32_t end = frozen.offsets[index + 1];
    return std::span<const io::SeqId>(frozen.subjects)
        .subspan(begin, end - begin);
  }
  const Bin& bin = bins_[static_cast<std::size_t>(trial)];
  const auto it = bin.find(kmer);
  if (it == bin.end()) return {};
  return it->second;
}

std::size_t SketchTable::key_count() const noexcept {
  std::size_t keys = 0;
  if (frozen_) {
    for (const FrozenTrial& frozen : frozen_trials_) {
      keys += frozen.keys.size();
    }
  } else {
    for (const Bin& bin : bins_) keys += bin.size();
  }
  return keys;
}

std::vector<SketchEntry> SketchTable::to_entries() const {
  std::vector<SketchEntry> entries;
  entries.reserve(entries_);
  for (int t = 0; t < trials(); ++t) {
    if (frozen_) {
      const FrozenTrial& frozen =
          frozen_trials_[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < frozen.keys.size(); ++i) {
        for (std::uint32_t j = frozen.offsets[i]; j < frozen.offsets[i + 1];
             ++j) {
          entries.push_back({frozen.keys[i], static_cast<std::uint32_t>(t),
                             frozen.subjects[j]});
        }
      }
    } else {
      for (const auto& [kmer, postings] :
           bins_[static_cast<std::size_t>(t)]) {
        for (io::SeqId subject : postings) {
          entries.push_back({kmer, static_cast<std::uint32_t>(t), subject});
        }
      }
    }
  }
  return entries;
}

SketchTable SketchTable::from_entries(int trials,
                                      std::span<const SketchEntry> entries) {
  SketchTable table(trials);

  // Bucket entries per trial, then sort each trial's postings by
  // (kmer, subject) and emit the CSR arrays directly — no hash maps, one
  // sort per trial. Duplicate triples (a subject whose sketches were
  // computed by two ranks can never occur with contiguous partitions, but
  // the wire format does not forbid it) collapse during the linear pass.
  std::vector<std::vector<std::pair<KmerCode, io::SeqId>>> per_trial(
      static_cast<std::size_t>(trials));
  for (const SketchEntry& entry : entries) {
    if (entry.trial >= static_cast<std::uint32_t>(trials)) {
      throw std::invalid_argument("SketchTable::from_entries: bad trial id");
    }
    per_trial[entry.trial].emplace_back(entry.kmer, entry.subject);
  }

  table.frozen_trials_.resize(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    auto& flat = per_trial[static_cast<std::size_t>(t)];
    std::sort(flat.begin(), flat.end());
    flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
    check_postings_fit(flat.size());

    FrozenTrial& frozen = table.frozen_trials_[static_cast<std::size_t>(t)];
    frozen.subjects.reserve(flat.size());
    for (const auto& [kmer, subject] : flat) {
      if (frozen.keys.empty() || frozen.keys.back() != kmer) {
        frozen.keys.push_back(kmer);
        frozen.offsets.push_back(
            static_cast<std::uint32_t>(frozen.subjects.size()));
      }
      frozen.subjects.push_back(subject);
    }
    frozen.offsets.push_back(
        static_cast<std::uint32_t>(frozen.subjects.size()));
    table.entries_ += flat.size();
  }
  table.bins_.clear();
  table.build_flat_index();
  table.frozen_ = true;
  return table;
}

const SketchTable::FrozenTrial& SketchTable::frozen_trial(int trial) const {
  if (!frozen_) {
    throw std::logic_error("SketchTable::frozen_trial: table is not frozen");
  }
  return frozen_trials_.at(static_cast<std::size_t>(trial));
}

SketchTable SketchTable::from_frozen(int trials,
                                     std::vector<FrozenTrial> frozen_trials,
                                     FlatSketchIndex flat) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("SketchTable::from_frozen: ") +
                                what);
  };
  if (trials < 1) fail("trials must be >= 1");
  if (frozen_trials.size() != static_cast<std::size_t>(trials)) {
    fail("trial count disagrees with the CSR arrays");
  }
  if (flat.trials() != trials) fail("flat index trial count mismatch");

  SketchTable table(trials);
  std::size_t keys = 0;
  for (const FrozenTrial& frozen : frozen_trials) {
    if (frozen.offsets.size() != frozen.keys.size() + 1) {
      fail("offset array size disagrees with key count");
    }
    if (frozen.offsets.front() != 0 ||
        frozen.offsets.back() != frozen.subjects.size()) {
      fail("offsets do not cover the postings array");
    }
    for (std::size_t i = 0; i + 1 < frozen.offsets.size(); ++i) {
      if (frozen.offsets[i] > frozen.offsets[i + 1]) {
        fail("offsets are not non-decreasing");
      }
    }
    for (std::size_t i = 1; i < frozen.keys.size(); ++i) {
      if (frozen.keys[i - 1] >= frozen.keys[i]) {
        fail("keys are not strictly increasing");
      }
    }
    keys += frozen.keys.size();
    table.entries_ += frozen.subjects.size();
  }
  if (flat.key_count() != keys) fail("flat index key count mismatch");

  table.frozen_trials_ = std::move(frozen_trials);
  table.flat_ = std::move(flat);
  table.bins_.clear();
  table.frozen_ = true;
  return table;
}

namespace {
constexpr std::uint64_t kTableMagic = 0x4a454d5f54424c31ULL;  // "JEM_TBL1"
}  // namespace

void SketchTable::save(std::ostream& out) const {
  const std::vector<SketchEntry> entries = to_entries();
  const std::uint64_t magic = kTableMagic;
  const auto trial_count = static_cast<std::uint64_t>(trials_);
  const auto entry_count = static_cast<std::uint64_t>(entries.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&trial_count), sizeof(trial_count));
  out.write(reinterpret_cast<const char*>(&entry_count), sizeof(entry_count));
  out.write(reinterpret_cast<const char*>(entries.data()),
            static_cast<std::streamsize>(entries.size() *
                                         sizeof(SketchEntry)));
  if (!out) throw std::runtime_error("SketchTable::save: write failed");
}

SketchTable SketchTable::load(std::istream& in) {
  std::uint64_t magic = 0;
  std::uint64_t trial_count = 0;
  std::uint64_t entry_count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&trial_count), sizeof(trial_count));
  in.read(reinterpret_cast<char*>(&entry_count), sizeof(entry_count));
  if (!in || magic != kTableMagic) {
    throw std::runtime_error("SketchTable::load: bad header (not a JEM "
                             "sketch table)");
  }
  if (trial_count == 0 || trial_count > 1'000'000) {
    throw std::runtime_error("SketchTable::load: implausible trial count");
  }
  std::vector<SketchEntry> entries(entry_count);
  in.read(reinterpret_cast<char*>(entries.data()),
          static_cast<std::streamsize>(entry_count * sizeof(SketchEntry)));
  if (!in) throw std::runtime_error("SketchTable::load: truncated file");
  return from_entries(static_cast<int>(trial_count), entries);
}

}  // namespace jem::core
