#include "core/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "core/index_serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace jem::core {

namespace {

std::uint64_t s_to_ns(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace

void DistributedStepReport::publish(obs::Registry& registry) const {
  registry.gauge("distributed.ranks").set(ranks);
  registry.counter("distributed.queries_mapped").add(queries_mapped);
  registry.counter("distributed.queries_recovered").add(queries_recovered);
  registry.counter("distributed.faults_injected").add(faults_injected);
  registry.counter("distributed.rank_failures").add(failed_ranks.size());
  registry.counter("distributed.shards_loaded").add(shards_loaded);
  registry.counter("distributed.shards_saved").add(shards_saved);
  registry.counter("distributed.shard_load_errors").add(shard_load_errors);
  registry.counter("distributed.sketch_bytes", obs::Unit::kBytes)
      .add(sketch_bytes);
  registry.counter("distributed.load_ns", obs::Unit::kNanos)
      .add(s_to_ns(load_s));
  registry.counter("distributed.sketch_subjects_ns", obs::Unit::kNanos)
      .add(s_to_ns(sketch_subjects_s));
  registry.counter("distributed.allgather_ns", obs::Unit::kNanos)
      .add(s_to_ns(allgather_s));
  registry.counter("distributed.build_global_ns", obs::Unit::kNanos)
      .add(s_to_ns(build_global_s));
  registry.counter("distributed.map_queries_ns", obs::Unit::kNanos)
      .add(s_to_ns(map_queries_s));
  registry.counter("distributed.recover_ns", obs::Unit::kNanos)
      .add(s_to_ns(recover_s));
  for (const RankStageTimes& times : per_rank) {
    const std::string prefix =
        "distributed.rank" + std::to_string(times.rank);
    registry.counter(prefix + ".sketch_ns", obs::Unit::kNanos)
        .add(s_to_ns(times.sketch_s));
    registry.counter(prefix + ".allgather_ns", obs::Unit::kNanos)
        .add(s_to_ns(times.allgather_s));
    registry.counter(prefix + ".build_ns", obs::Unit::kNanos)
        .add(s_to_ns(times.build_s));
    registry.counter(prefix + ".map_ns", obs::Unit::kNanos)
        .add(s_to_ns(times.map_s));
  }
  // `comm` is not re-published here: the SPMD launcher already publishes
  // the run's CommStats (mpisim.*) when a registry is attached.
}

std::vector<std::pair<io::SeqId, io::SeqId>> partition_by_bases(
    const io::SequenceSet& set, int ranks) {
  if (ranks < 1) {
    throw std::invalid_argument("partition_by_bases: ranks must be >= 1");
  }
  const auto p = static_cast<std::size_t>(ranks);
  std::vector<std::pair<io::SeqId, io::SeqId>> ranges(p);

  const double total = static_cast<double>(set.total_bases());
  io::SeqId cursor = 0;
  std::uint64_t consumed = 0;
  for (std::size_t r = 0; r < p; ++r) {
    const io::SeqId begin = cursor;
    // Advance until this rank's cumulative share reaches (r+1)/p of the
    // total bases; the last rank absorbs any floating-point remainder.
    const double target =
        total * static_cast<double>(r + 1) / static_cast<double>(p);
    while (cursor < set.size() && static_cast<double>(consumed) < target) {
      consumed += set.length(cursor);
      ++cursor;
    }
    ranges[r] = {begin, cursor};
  }
  ranges.back().second = static_cast<io::SeqId>(set.size());
  return ranges;
}

MappingWire to_wire(const SegmentMapping& mapping) noexcept {
  return {mapping.read,   static_cast<std::uint32_t>(mapping.end),
          mapping.offset, mapping.segment_length,
          mapping.result.subject, mapping.result.votes};
}

SegmentMapping from_wire(const MappingWire& wire) noexcept {
  SegmentMapping mapping;
  mapping.read = wire.read;
  mapping.end = static_cast<ReadEnd>(wire.end);
  mapping.offset = wire.offset;
  mapping.segment_length = wire.segment_length;
  mapping.result.subject = wire.subject;
  mapping.result.votes = wire.votes;
  return mapping;
}

namespace {

void sort_by_read(std::vector<SegmentMapping>& mappings) {
  std::sort(mappings.begin(), mappings.end(),
            [](const SegmentMapping& a, const SegmentMapping& b) {
              if (a.read != b.read) return a.read < b.read;
              return static_cast<int>(a.end) < static_cast<int>(b.end);
            });
}

}  // namespace

namespace {

mpisim::SpmdOptions spmd_options_for(const RobustnessOptions& robust,
                                     const obs::ObsHooks& obs) {
  mpisim::SpmdOptions options;
  options.comm = robust.comm;
  if (!robust.fault_plan.empty()) options.fault_plan = &robust.fault_plan;
  options.obs = obs;
  return options;
}

/// The driver-side recovery path shared by both SPMD strategies: assembles
/// the output from each rank's deposited local results and re-maps every
/// un-deposited (failed) rank's query partition against a freshly built
/// *full* sketch table — which is identical to the replicated S_global, so
/// recovered partitions match what the failed rank would have produced.
std::vector<SegmentMapping> recover_lost_partitions(
    const io::SequenceSet& subjects, const io::SequenceSet& reads,
    const MapParams& params, SketchScheme scheme,
    const std::vector<std::pair<io::SeqId, io::SeqId>>& read_ranges,
    const std::vector<std::vector<SegmentMapping>>& deposits,
    const std::vector<char>& deposited, std::uint64_t& queries_recovered) {
  std::vector<SegmentMapping> assembled;
  const JemMapper recovery_mapper(subjects, params, scheme);
  for (std::size_t r = 0; r < deposits.size(); ++r) {
    if (deposited[r] != 0) {
      assembled.insert(assembled.end(), deposits[r].begin(),
                       deposits[r].end());
      continue;
    }
    const auto [q_begin, q_end] = read_ranges[r];
    const std::vector<SegmentMapping> recovered =
        recovery_mapper.map_reads(reads, q_begin, q_end);
    queries_recovered += recovered.size();
    assembled.insert(assembled.end(), recovered.begin(), recovered.end());
  }
  return assembled;
}

}  // namespace

DistributedResult run_distributed(const io::SequenceSet& subjects,
                                  const io::SequenceSet& reads,
                                  const MapParams& params, int ranks,
                                  SketchScheme scheme, int threads_per_rank,
                                  const RobustnessOptions& robust,
                                  const IndexCacheOptions& index_cache,
                                  const obs::ObsHooks& obs) {
  params.validate();
  if (threads_per_rank < 1) {
    throw std::invalid_argument(
        "run_distributed: threads_per_rank must be >= 1");
  }
  DistributedResult result;
  result.report.ranks = ranks;

  std::vector<SegmentMapping> gathered;
  std::mutex report_mutex;
  double max_sketch_s = 0.0;
  double max_map_s = 0.0;
  double allgather_s = 0.0;
  double build_global_s = 0.0;
  std::uint64_t sketch_bytes = 0;
  std::uint64_t table_entries_max = 0;
  std::uint64_t queries_mapped = 0;
  std::atomic<std::uint64_t> shards_loaded{0};
  std::atomic<std::uint64_t> shards_saved{0};
  std::atomic<std::uint64_t> shard_load_errors{0};

  util::WallTimer load_timer;
  const auto subject_ranges = partition_by_bases(subjects, ranks);
  const auto read_ranges = partition_by_bases(reads, ranks);
  const double load_s = load_timer.elapsed_s();

  // Per-rank slots for the recovery path: each rank deposits its local
  // results before the final gather and flags how far it got (distinct
  // vector elements, written only by the owning rank — no locking needed).
  const auto p = static_cast<std::size_t>(ranks);
  std::vector<std::vector<SegmentMapping>> deposits(p);
  std::vector<char> deposited(p, 0);
  std::vector<char> shared_sketch(p, 0);
  std::vector<RankStageTimes> rank_times(p);

  const mpisim::SpmdReport spmd = mpisim::run_spmd_ft(
      ranks,
      [&](mpisim::Comm& comm) {
        const int rank = comm.rank();
        const auto r = static_cast<std::size_t>(rank);
        const auto [s_begin, s_end] = subject_ranges[r];
        const auto [q_begin, q_end] = read_ranges[r];

        // Every rank derives the shared hash family from the experiment
        // seed.
        const HashFamily hashes(params.trials, params.seed);

        // S2: sketch local subjects — or load this rank's cached shard
        // artifact. The artifact fingerprint binds it to (params, scheme,
        // subject set) and the filename to (p, rank), which determine the
        // subject range; any defect falls back to sketching, so a corrupt
        // or stale cache can never change the output.
        comm.fault_point("S2:sketch");
        obs::StageSpan sketch_span(obs, "S2:sketch");
        SketchTable local(params.trials);
        bool shard_loaded = false;
        if (index_cache.enabled() && index_cache.load) {
          try {
            local = load_index(index_cache.shard_path(rank, ranks), params,
                               scheme, subjects);
            shard_loaded = true;
            shards_loaded.fetch_add(1, std::memory_order_relaxed);
          } catch (const io::ArtifactError& error) {
            // A missing shard is a plain cache miss (cold cache); anything
            // else is a rejected artifact worth surfacing in the report.
            if (error.reason() != io::ArtifactReason::kOpenFailed) {
              shard_load_errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (!shard_loaded) {
          local =
              sketch_subjects(subjects, s_begin, s_end, params, scheme, hashes);
          if (index_cache.enabled() && index_cache.save) {
            local.freeze();  // the artifact persists the frozen forms
            save_index(index_cache.shard_path(rank, ranks), local, params,
                       scheme, subjects);
            shards_saved.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const std::vector<SketchEntry> local_entries = local.to_entries();
        const double sketch_s =
            static_cast<double>(sketch_span.finish()) * 1e-9;

        // S3: allgatherv the sketch entries; rebuild the replicated table.
        obs::StageSpan gather_span(obs, "S3:allgather");
        const std::vector<SketchEntry> global_entries =
            comm.allgatherv<SketchEntry>(local_entries);
        const double gather_s =
            static_cast<double>(gather_span.finish()) * 1e-9;
        shared_sketch[r] = 1;  // this rank's entries reached the union

        obs::StageSpan build_span(obs, "S3:build");
        SketchTable global =
            SketchTable::from_entries(params.trials, global_entries);
        const double build_s = static_cast<double>(build_span.finish()) * 1e-9;

        // S4: map local queries — sequentially, or with a rank-private
        // thread pool in hybrid mode.
        comm.fault_point("S4:map");
        obs::StageSpan map_span(obs, "S4:map");
        const JemMapper mapper(subjects, params, scheme, std::move(global));
        std::vector<SegmentMapping> local_mappings;
        if (threads_per_rank == 1) {
          local_mappings = mapper.map_reads(reads, q_begin, q_end);
        } else {
          util::ThreadPool pool(static_cast<std::size_t>(threads_per_rank));
          std::vector<std::vector<SegmentMapping>> partials(pool.size());
          util::parallel_for_blocks(
              pool, q_begin, q_end, pool.size(),
              [&](std::size_t block, std::size_t begin, std::size_t end) {
                partials[block] = mapper.map_reads(
                    reads, static_cast<io::SeqId>(begin),
                    static_cast<io::SeqId>(end));
              });
          for (auto& partial : partials) {
            local_mappings.insert(local_mappings.end(), partial.begin(),
                                  partial.end());
          }
        }
        const double map_s = static_cast<double>(map_span.finish()) * 1e-9;

        deposits[r] = local_mappings;
        deposited[r] = 1;
        rank_times[r] = {rank, sketch_s, gather_s, build_s, map_s};

        // Gather results at rank 0.
        std::vector<MappingWire> wire;
        wire.reserve(local_mappings.size());
        for (const SegmentMapping& mapping : local_mappings) {
          wire.push_back(to_wire(mapping));
        }
        const auto all_wire = comm.gatherv<MappingWire>(wire, /*root=*/0);

        std::lock_guard lock(report_mutex);
        max_sketch_s = std::max(max_sketch_s, sketch_s);
        max_map_s = std::max(max_map_s, map_s);
        allgather_s = std::max(allgather_s, gather_s);
        build_global_s = std::max(build_global_s, build_s);
        table_entries_max =
            std::max(table_entries_max,
                     static_cast<std::uint64_t>(mapper.table().size()));
        queries_mapped += local_mappings.size();
        if (rank == 0) {
          sketch_bytes = global_entries.size() * sizeof(SketchEntry);
          for (const auto& part : all_wire) {
            for (const MappingWire& w : part) gathered.push_back(from_wire(w));
          }
        }
      },
      spmd_options_for(robust, obs));

  std::uint64_t queries_recovered = 0;
  double recover_s = 0.0;
  if (!spmd.ok()) {
    // Assemble from the per-rank deposits (the rank-0 gather may itself be
    // incomplete — or rank 0 may be the casualty) and re-map what was lost.
    util::WallTimer recover_timer;
    gathered = recover_lost_partitions(subjects, reads, params, scheme,
                                       read_ranges, deposits, deposited,
                                       queries_recovered);
    recover_s = recover_timer.elapsed_s();
    queries_mapped += queries_recovered;
  }

  sort_by_read(gathered);
  result.mappings = std::move(gathered);
  result.report.load_s = load_s;
  result.report.sketch_subjects_s = max_sketch_s;
  result.report.allgather_s = allgather_s;
  result.report.build_global_s = build_global_s;
  result.report.map_queries_s = max_map_s;
  result.report.sketch_bytes = sketch_bytes;
  result.report.queries_mapped = queries_mapped;
  result.report.table_entries_max = table_entries_max;
  result.report.failed_ranks = spmd.failed_ranks();
  result.report.queries_recovered = queries_recovered;
  result.report.recover_s = recover_s;
  result.report.faults_injected = spmd.faults_injected;
  result.report.shards_loaded = shards_loaded.load();
  result.report.shards_saved = shards_saved.load();
  result.report.shard_load_errors = shard_load_errors.load();
  for (std::size_t r = 0; r < rank_times.size(); ++r) {
    rank_times[r].rank = static_cast<int>(r);  // a dead rank's slot is zeroed
  }
  result.report.per_rank = std::move(rank_times);
  result.report.comm = spmd.stats;
  for (const int rank : result.report.failed_ranks) {
    if (shared_sketch[static_cast<std::size_t>(rank)] == 0) {
      result.report.degraded = true;  // its sketch never reached survivors
    }
  }
  if (obs.metrics != nullptr) result.report.publish(*obs.metrics);
  return result;
}

namespace {

/// Owner rank of a k-mer under the partitioned-table strategy.
int kmer_owner(KmerCode kmer, int ranks) {
  return static_cast<int>(util::mix64(kmer) %
                          static_cast<std::uint64_t>(ranks));
}

/// Wire records for the query-routing all-to-alls.
struct QueryProbe {
  std::uint32_t segment = 0;  // local segment index at the origin rank
  std::uint32_t trial = 0;
  KmerCode kmer = 0;
};
static_assert(sizeof(QueryProbe) == 16);

struct HitReply {
  std::uint32_t segment = 0;
  std::uint32_t trial = 0;
  io::SeqId subject = 0;
};
static_assert(sizeof(HitReply) == 12);

}  // namespace

DistributedResult run_distributed_partitioned(const io::SequenceSet& subjects,
                                              const io::SequenceSet& reads,
                                              const MapParams& params,
                                              int ranks, SketchScheme scheme,
                                              const RobustnessOptions& robust,
                                              const obs::ObsHooks& obs) {
  params.validate();
  DistributedResult result;
  result.report.ranks = ranks;

  const auto subject_ranges = partition_by_bases(subjects, ranks);
  const auto read_ranges = partition_by_bases(reads, ranks);

  std::vector<SegmentMapping> gathered;
  std::mutex report_mutex;
  std::uint64_t table_entries_max = 0;
  std::uint64_t queries_mapped = 0;

  // Recovery slots, one per rank (written only by the owner; see the
  // replicated driver). Unlike the replicated strategy, *any* abort before
  // the replies exchange degrades survivors: the dead rank's table shard
  // stops answering probes, so surviving queries lose those votes.
  const auto num_ranks = static_cast<std::size_t>(ranks);
  std::vector<std::vector<SegmentMapping>> deposits(num_ranks);
  std::vector<char> deposited(num_ranks, 0);
  std::vector<char> served(num_ranks, 0);
  std::vector<RankStageTimes> rank_times(num_ranks);

  const mpisim::SpmdReport spmd =
      mpisim::run_spmd_ft(ranks, [&](mpisim::Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    const auto [s_begin, s_end] =
        subject_ranges[static_cast<std::size_t>(rank)];
    const auto [q_begin, q_end] = read_ranges[static_cast<std::size_t>(rank)];
    const HashFamily hashes(params.trials, params.seed);

    // S2: sketch local subjects, then route every entry to its k-mer's
    // owner rank (one all-to-all replaces the allgather union).
    comm.fault_point("P:route");
    obs::StageSpan sketch_span(obs, "P:sketch");
    const SketchTable local =
        sketch_subjects(subjects, s_begin, s_end, params, scheme, hashes);
    const double sketch_s = static_cast<double>(sketch_span.finish()) * 1e-9;
    obs::StageSpan route_span(obs, "P:route");
    std::vector<std::vector<SketchEntry>> outgoing(
        static_cast<std::size_t>(p));
    for (const SketchEntry& entry : local.to_entries()) {
      outgoing[static_cast<std::size_t>(kmer_owner(entry.kmer, p))]
          .push_back(entry);
    }
    const auto incoming = comm.all_to_allv<SketchEntry>(outgoing);
    std::vector<SketchEntry> shard_entries;
    for (const auto& part : incoming) {
      shard_entries.insert(shard_entries.end(), part.begin(), part.end());
    }
    const double route_s = static_cast<double>(route_span.finish()) * 1e-9;
    obs::StageSpan build_span(obs, "P:build-shard");
    const SketchTable shard =
        SketchTable::from_entries(params.trials, shard_entries);
    const double build_s = static_cast<double>(build_span.finish()) * 1e-9;

    // S4a: sketch local query segments and bucket the probes by owner.
    comm.fault_point("P:map");
    obs::StageSpan map_span(obs, "P:map");
    std::vector<SegmentMapping> local_segments;
    std::vector<std::vector<QueryProbe>> probes(static_cast<std::size_t>(p));
    for (io::SeqId read = q_begin; read < q_end; ++read) {
      for (const EndSegment& segment : extract_end_segments(
               read, reads.bases(read), params.segment_length)) {
        const auto segment_id =
            static_cast<std::uint32_t>(local_segments.size());
        SegmentMapping mapping;
        mapping.read = read;
        mapping.end = segment.end;
        mapping.offset = segment.offset;
        mapping.segment_length =
            static_cast<std::uint32_t>(segment.bases.size());
        local_segments.push_back(mapping);

        const Sketch sketch =
            make_sketch(segment.bases, params, scheme, hashes);
        for (int t = 0; t < params.trials; ++t) {
          for (KmerCode kmer :
               sketch.per_trial[static_cast<std::size_t>(t)]) {
            probes[static_cast<std::size_t>(kmer_owner(kmer, p))].push_back(
                {segment_id, static_cast<std::uint32_t>(t), kmer});
          }
        }
      }
    }

    // S4b: exchange probes; owners answer with every matching posting.
    const auto incoming_probes = comm.all_to_allv<QueryProbe>(probes);
    std::vector<std::vector<HitReply>> replies(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      for (const QueryProbe& probe :
           incoming_probes[static_cast<std::size_t>(src)]) {
        for (io::SeqId subject :
             shard.lookup(static_cast<int>(probe.trial), probe.kmer)) {
          replies[static_cast<std::size_t>(src)].push_back(
              {probe.segment, probe.trial, subject});
        }
      }
    }
    auto incoming_replies = comm.all_to_allv<HitReply>(replies);
    served[static_cast<std::size_t>(rank)] = 1;  // shard answered all probes

    // S4c: aggregate votes locally. Sorting by (segment, trial, subject)
    // and deduplicating realizes the per-trial hit *sets* of Algorithm 2.
    std::vector<HitReply> hits;
    for (auto& part : incoming_replies) {
      hits.insert(hits.end(), part.begin(), part.end());
    }
    std::sort(hits.begin(), hits.end(),
              [](const HitReply& a, const HitReply& b) {
                if (a.segment != b.segment) return a.segment < b.segment;
                if (a.trial != b.trial) return a.trial < b.trial;
                return a.subject < b.subject;
              });
    hits.erase(std::unique(hits.begin(), hits.end(),
                           [](const HitReply& a, const HitReply& b) {
                             return a.segment == b.segment &&
                                    a.trial == b.trial &&
                                    a.subject == b.subject;
                           }),
               hits.end());

    LazyHitCounter votes(subjects.size());
    std::size_t cursor = 0;
    while (cursor < hits.size()) {
      const std::uint32_t segment = hits[cursor].segment;
      votes.new_round();
      MapResult best;
      while (cursor < hits.size() && hits[cursor].segment == segment) {
        const io::SeqId subject = hits[cursor].subject;
        const std::uint32_t count = votes.increment(subject);
        if (count > best.votes ||
            (count == best.votes && subject < best.subject)) {
          best.votes = count;
          best.subject = subject;
        }
        ++cursor;
      }
      if (best.votes >= params.min_votes) {
        local_segments[segment].result = best;
      }
    }

    const double map_s = static_cast<double>(map_span.finish()) * 1e-9;
    deposits[static_cast<std::size_t>(rank)] = local_segments;
    deposited[static_cast<std::size_t>(rank)] = 1;
    rank_times[static_cast<std::size_t>(rank)] = {rank, sketch_s, route_s,
                                                  build_s, map_s};

    // Gather results at rank 0 (same as the replicated driver).
    std::vector<MappingWire> wire;
    wire.reserve(local_segments.size());
    for (const SegmentMapping& mapping : local_segments) {
      wire.push_back(to_wire(mapping));
    }
    const auto all_wire = comm.gatherv<MappingWire>(wire, /*root=*/0);

    std::lock_guard lock(report_mutex);
    table_entries_max =
        std::max(table_entries_max,
                 static_cast<std::uint64_t>(shard.size()));
    queries_mapped += local_segments.size();
    if (rank == 0) {
      for (const auto& part : all_wire) {
        for (const MappingWire& w : part) gathered.push_back(from_wire(w));
      }
    }
  }, spmd_options_for(robust, obs));

  std::uint64_t queries_recovered = 0;
  double recover_s = 0.0;
  if (!spmd.ok()) {
    util::WallTimer recover_timer;
    gathered = recover_lost_partitions(subjects, reads, params, scheme,
                                       read_ranges, deposits, deposited,
                                       queries_recovered);
    recover_s = recover_timer.elapsed_s();
    queries_mapped += queries_recovered;
  }

  sort_by_read(gathered);
  result.mappings = std::move(gathered);
  result.report.queries_mapped = queries_mapped;
  result.report.table_entries_max = table_entries_max;
  // For the partitioned strategy the interesting volume is everything the
  // collectives moved (entry routing + probes + replies + result gather).
  result.report.sketch_bytes = spmd.stats.collective_bytes;
  result.report.failed_ranks = spmd.failed_ranks();
  result.report.queries_recovered = queries_recovered;
  result.report.recover_s = recover_s;
  result.report.faults_injected = spmd.faults_injected;
  for (std::size_t r = 0; r < rank_times.size(); ++r) {
    rank_times[r].rank = static_cast<int>(r);
    result.report.sketch_subjects_s =
        std::max(result.report.sketch_subjects_s, rank_times[r].sketch_s);
    result.report.allgather_s =
        std::max(result.report.allgather_s, rank_times[r].allgather_s);
    result.report.build_global_s =
        std::max(result.report.build_global_s, rank_times[r].build_s);
    result.report.map_queries_s =
        std::max(result.report.map_queries_s, rank_times[r].map_s);
  }
  result.report.per_rank = std::move(rank_times);
  result.report.comm = spmd.stats;
  for (const int rank : result.report.failed_ranks) {
    if (served[static_cast<std::size_t>(rank)] == 0) {
      result.report.degraded = true;  // its shard stopped answering probes
    }
  }
  if (obs.metrics != nullptr) result.report.publish(*obs.metrics);
  return result;
}

DistributedResult run_staged(const io::SequenceSet& subjects,
                             const io::SequenceSet& reads,
                             const MapParams& params, int ranks,
                             const mpisim::NetworkModel& model,
                             SketchScheme scheme,
                             const RobustnessOptions& robust,
                             const obs::ObsHooks& obs) {
  params.validate();
  mpisim::StagedExecutor executor(ranks, model);
  if (!robust.fault_plan.empty()) {
    executor.set_fault_plan(&robust.fault_plan);
  }
  DistributedResult result;
  result.report.ranks = ranks;

  util::WallTimer load_timer;
  const auto subject_ranges = partition_by_bases(subjects, ranks);
  const auto read_ranges = partition_by_bases(reads, ranks);
  const HashFamily hashes(params.trials, params.seed);
  result.report.load_s = load_timer.elapsed_s();

  // S2: sketch local subjects, one rank at a time (timed in isolation).
  std::vector<std::vector<SketchEntry>> per_rank_entries(
      static_cast<std::size_t>(ranks));
  executor.compute_step("S2:sketch-subjects", [&](int rank) {
    const auto [begin, end] = subject_ranges[static_cast<std::size_t>(rank)];
    per_rank_entries[static_cast<std::size_t>(rank)] =
        sketch_subjects(subjects, begin, end, params, scheme, hashes)
            .to_entries();
  });

  // S3: allgatherv of the union volume, then each rank rebuilds the global
  // table. The rebuild is identical work at every rank, so it is performed
  // once and charged uniformly.
  std::vector<SketchEntry> global_entries;
  for (const auto& entries : per_rank_entries) {
    global_entries.insert(global_entries.end(), entries.begin(),
                          entries.end());
  }
  const std::uint64_t volume = global_entries.size() * sizeof(SketchEntry);
  executor.comm_allgatherv("S3:allgather", volume);

  // Each rank performs an identical rebuild of the global table; measure it
  // once and charge that uniform cost (running it p times would only repeat
  // the same measurement).
  SketchTable global(params.trials);
  const double build_s = util::time_void([&] {
    global = SketchTable::from_entries(params.trials, global_entries);
  });
  const JemMapper mapper(subjects, params, scheme, std::move(global));

  // S4: map local queries per rank.
  std::vector<std::vector<SegmentMapping>> per_rank_mappings(
      static_cast<std::size_t>(ranks));
  executor.compute_step("S4:map-queries", [&](int rank) {
    const auto [begin, end] = read_ranges[static_cast<std::size_t>(rank)];
    per_rank_mappings[static_cast<std::size_t>(rank)] =
        mapper.map_reads(reads, begin, end);
  });

  for (auto& partial : per_rank_mappings) {
    result.mappings.insert(result.mappings.end(), partial.begin(),
                           partial.end());
    result.report.queries_mapped += partial.size();
  }
  sort_by_read(result.mappings);

  result.report.sketch_subjects_s = executor.step_s("S2:sketch-subjects");
  result.report.allgather_s = executor.comm_s();
  result.report.build_global_s = build_s;
  result.report.map_queries_s = executor.step_s("S4:map-queries");
  result.report.sketch_bytes = volume;
  result.report.failed_ranks = executor.failed_ranks();
  result.report.faults_injected = executor.faults_injected();
  for (const mpisim::StagedExecutor::StepRecord& step : executor.steps()) {
    if (step.name.rfind("recover:", 0) == 0) {
      result.report.recover_s += step.cost_s;
    }
  }
  // The model re-executes lost work, so the output is always complete; the
  // failed ranks' mapping counts show up as recovered, never degraded.
  for (const int rank : result.report.failed_ranks) {
    result.report.queries_recovered +=
        per_rank_mappings[static_cast<std::size_t>(rank)].size();
  }

  // Per-rank stage times from the executor's step records: S2/S4 vary per
  // rank; S3 (collective + uniform rebuild) is charged identically.
  result.report.per_rank.resize(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    RankStageTimes& times =
        result.report.per_rank[static_cast<std::size_t>(rank)];
    times.rank = rank;
    times.allgather_s = result.report.allgather_s;
    times.build_s = build_s;
  }
  for (const mpisim::StagedExecutor::StepRecord& step : executor.steps()) {
    if (step.is_comm || step.name.rfind("recover:", 0) == 0) continue;
    for (std::size_t r = 0;
         r < step.per_rank_s.size() &&
         r < result.report.per_rank.size();
         ++r) {
      if (step.name == "S2:sketch-subjects") {
        result.report.per_rank[r].sketch_s = step.per_rank_s[r];
      } else if (step.name == "S4:map-queries") {
        result.report.per_rank[r].map_s = step.per_rank_s[r];
      }
    }
  }

  if (obs.tracer != nullptr) executor.export_trace(*obs.tracer);
  if (obs.metrics != nullptr) {
    executor.publish(*obs.metrics);
    result.report.publish(*obs.metrics);
  }
  return result;
}

}  // namespace jem::core
