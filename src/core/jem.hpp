// Umbrella header for the JEM-mapper public API. Downstream users include
// this and link against jem_core.
//
// Quick tour:
//   io::SequenceSet      — load contigs/reads (io/fasta.hpp)
//   core::MapParams      — k, w, T, ℓ, seed (MapParams::make() builder)
//   core::JemMapper      — sequential Algorithm 2 kernels
//   core::MappingEngine  — batched/streaming execution (MapRequest)
//   core::run_distributed / run_staged — the parallel drivers (S1-S4)
//   core::SketchScheme   — JEM sketch vs classical MinHash
//   core::save_index / load_index — durable sketch-index artifacts
//   io::CheckpointWriter / read_journal — resumable streaming runs
#pragma once

#include "core/distributed.hpp"
#include "core/dna.hpp"
#include "core/end_segments.hpp"
#include "core/engine.hpp"
#include "core/hash_family.hpp"
#include "core/hit_counter.hpp"
#include "core/index_serde.hpp"
#include "core/kmer.hpp"
#include "core/mapper.hpp"
#include "core/minimizer.hpp"
#include "core/params.hpp"
#include "core/sketch.hpp"
#include "core/sketch_table.hpp"
#include "io/artifact.hpp"
#include "io/batch_stream.hpp"
#include "io/checkpoint.hpp"
#include "io/fasta.hpp"
#include "io/mapping_writer.hpp"
#include "io/sequence_set.hpp"
