#include "core/kmer.hpp"

#include <stdexcept>

namespace jem::core {

KmerCodec::KmerCodec(int k) : k_(k), rc_shift_(2 * (k - 1)) {
  if (k < 1 || k > kMaxK) {
    throw std::invalid_argument("KmerCodec: k must be in [1, 32]");
  }
  mask_ = k == 32 ? ~KmerCode{0} : ((KmerCode{1} << (2 * k)) - 1);
}

std::optional<KmerCode> KmerCodec::encode(std::string_view seq) const noexcept {
  if (seq.size() < static_cast<std::size_t>(k_)) return std::nullopt;
  KmerCode code = 0;
  for (int i = 0; i < k_; ++i) {
    const std::uint8_t b = base_code(seq[static_cast<std::size_t>(i)]);
    if (b == kInvalidBase) return std::nullopt;
    code = (code << 2) | b;
  }
  return code;
}

std::string KmerCodec::decode(KmerCode code) const {
  std::string out(static_cast<std::size_t>(k_), 'A');
  for (int i = k_ - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] =
        code_base(static_cast<std::uint8_t>(code & 3u));
    code >>= 2;
  }
  return out;
}

KmerCode KmerCodec::reverse_complement(KmerCode code) const noexcept {
  // Complement all bases at once (code -> 3-code per 2-bit group is XOR with
  // 0b11), then reverse the 2-bit groups with a byte/word swap network.
  KmerCode x = ~code;
  // Reverse 2-bit groups within the full 64-bit word.
  x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
  x = ((x & 0x0f0f0f0f0f0f0f0fULL) << 4) | ((x >> 4) & 0x0f0f0f0f0f0f0f0fULL);
  x = ((x & 0x00ff00ff00ff00ffULL) << 8) | ((x >> 8) & 0x00ff00ff00ff00ffULL);
  x = ((x & 0x0000ffff0000ffffULL) << 16) |
      ((x >> 16) & 0x0000ffff0000ffffULL);
  x = (x << 32) | (x >> 32);
  // The groups now sit in the high bits; shift down to the low 2k bits.
  return (x >> (64 - 2 * k_)) & mask_;
}

}  // namespace jem::core
