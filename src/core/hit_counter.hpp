// The lazy-update hit counter of the paper's S4 implementation notes: an
// array A[1..n] of <count, stamp> tuples that never needs a bulk reset.
// Whenever a new query (or query-trial) begins, the caller bumps the epoch;
// stale slots are detected by comparing their stamp against the current
// epoch and are reinitialized on first touch. This replaces an O(n) clear
// per query with O(1) amortized work per hit — one of the design choices the
// ablation benchmark quantifies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "io/sequence.hpp"

namespace jem::core {

class LazyHitCounter {
 public:
  explicit LazyHitCounter(std::size_t num_subjects)
      : slots_(num_subjects) {}

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Starts a new counting round (the paper: "set A[i].v to j and reset the
  /// counter" — here a single epoch bump invalidates every slot at once).
  void new_round() noexcept { ++epoch_; }

  /// Increments the subject's count for the current round and returns the
  /// new count.
  std::uint32_t increment(io::SeqId subject) noexcept {
    Slot& slot = slots_[subject];
    if (slot.epoch != epoch_) {
      slot.epoch = epoch_;
      slot.count = 0;
    }
    return ++slot.count;
  }

  /// Marks the subject as seen this round; returns true only on the first
  /// call of the round (used for per-trial hit-set deduplication).
  bool first_time(io::SeqId subject) noexcept {
    Slot& slot = slots_[subject];
    if (slot.epoch != epoch_) {
      slot.epoch = epoch_;
      slot.count = 1;
      return true;
    }
    if (slot.count == 0) {
      slot.count = 1;
      return true;
    }
    return false;
  }

  /// Current-round count (0 if untouched this round).
  [[nodiscard]] std::uint32_t count(io::SeqId subject) const noexcept {
    const Slot& slot = slots_[subject];
    return slot.epoch == epoch_ ? slot.count : 0;
  }

 private:
  struct Slot {
    std::uint64_t epoch = 0;
    std::uint32_t count = 0;
  };
  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;  // starts above the all-zero initial stamps
};

/// The naive alternative used by the counter ablation: a plain count array
/// cleared with an O(n) pass per round.
class ResettingHitCounter {
 public:
  explicit ResettingHitCounter(std::size_t num_subjects)
      : counts_(num_subjects, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  void new_round() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0u);
  }

  std::uint32_t increment(io::SeqId subject) noexcept {
    return ++counts_[subject];
  }

  [[nodiscard]] std::uint32_t count(io::SeqId subject) const noexcept {
    return counts_[subject];
  }

 private:
  std::vector<std::uint32_t> counts_;
};

}  // namespace jem::core
