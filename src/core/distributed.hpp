// Distributed-memory JEM-mapper (paper §III-C, steps S1-S4):
//
//   S1 load/partition input so each rank holds ~M/p query bases and ~N/p
//      subject bases (contiguous ranges chosen by cumulative base count);
//   S2 each rank sketches its local subjects into S_local;
//   S3 allgatherv unions every S_local into the replicated S_global;
//   S4 each rank maps its local queries against S_global.
//
// Two execution modes share these per-rank kernels:
//  * run_distributed   — real SPMD over mpisim threads (one thread per
//    rank, real Allgatherv). Used for correctness: the output must equal
//    the sequential mapper's bit-for-bit.
//  * run_staged        — bulk-synchronous performance mode: per-rank compute
//    is executed sequentially and wall-timed, communication is charged via
//    the α-β network model. Produces the per-step breakdown behind
//    Table II / Fig 7 / Fig 8.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/mapper.hpp"
#include "core/params.hpp"
#include "io/sequence_set.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/network_model.hpp"
#include "mpisim/staged_executor.hpp"
#include "obs/obs.hpp"

namespace jem::core {

/// Contiguous [begin, end) sequence ranges balancing total bases across p
/// ranks (the S1 partitioning rule).
[[nodiscard]] std::vector<std::pair<io::SeqId, io::SeqId>> partition_by_bases(
    const io::SequenceSet& set, int ranks);

/// Wire format for one mapped segment in the result gather.
struct MappingWire {
  io::SeqId read = 0;
  std::uint32_t end = 0;  // ReadEnd as integer
  std::uint32_t offset = 0;
  std::uint32_t segment_length = 0;
  io::SeqId subject = io::kInvalidSeqId;
  std::uint32_t votes = 0;
};
static_assert(sizeof(MappingWire) == 24);

[[nodiscard]] MappingWire to_wire(const SegmentMapping& mapping) noexcept;
[[nodiscard]] SegmentMapping from_wire(const MappingWire& wire) noexcept;

/// Fault/timeout configuration for the distributed drivers
/// (docs/robustness.md). Default-constructed = no faults, infinite waits —
/// exactly the pre-robustness behavior.
struct RobustnessOptions {
  /// Deterministic fault schedule threaded through every mpisim collective
  /// plus the drivers' named sites ("S2:sketch", "S4:map", "P:route",
  /// "P:map"; staged mode uses its step names).
  util::FaultPlan fault_plan;

  /// Timeout/retry policy for blocking communicator waits.
  mpisim::CommConfig comm;
};

/// Per-rank sketch-shard caching for run_distributed (replicated strategy).
/// With a directory set, each rank persists its S2 result as a checksummed
/// index artifact `shard_p<ranks>_r<rank>.jemidx` (core/index_serde) and
/// later runs load it instead of re-sketching — S2 becomes file I/O. The
/// artifact's fingerprint binds it to the exact subject set and mapping
/// parameters; the filename binds it to the partition (rank count + rank,
/// which determine the subject range). Any defect — truncation, bit rot, a
/// parameter or dataset change — fails the load as a structured
/// ArtifactError and the rank silently falls back to sketching (counted in
/// DistributedStepReport::shard_load_errors). Output is bit-identical with
/// caching on, off, or partially hit.
struct IndexCacheOptions {
  std::string dir;    // empty = caching disabled
  bool save = true;   // persist freshly sketched shards
  bool load = true;   // try loading shards before sketching

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }

  /// The shard artifact path for `rank` of `ranks`.
  [[nodiscard]] std::string shard_path(int rank, int ranks) const {
    return dir + "/shard_p" + std::to_string(ranks) + "_r" +
           std::to_string(rank) + ".jemidx";
  }
};

/// One rank's stage wall times within a distributed run — the S1-S4
/// imbalance view (docs/observability.md). The aggregate report fields are
/// maxima over these; the spread between ranks is what the partitioning
/// rule (S1) is supposed to minimize.
struct RankStageTimes {
  int rank = 0;
  double sketch_s = 0.0;     // S2: sketch local subjects (or load shard)
  double allgather_s = 0.0;  // S3: time inside the collective (incl. wait)
  double build_s = 0.0;      // S3: global table reconstruction
  double map_s = 0.0;        // S4: map local queries
};

/// Per-step timing/volume record of one distributed run (Fig 7a / Fig 8).
struct DistributedStepReport {
  int ranks = 1;
  double load_s = 0.0;          // S1: partition bookkeeping
  double sketch_subjects_s = 0.0;  // S2 (max over ranks in staged mode)
  double allgather_s = 0.0;     // S3: communication
  double build_global_s = 0.0;  // S3: table reconstruction (compute)
  double map_queries_s = 0.0;   // S4 (max over ranks in staged mode)
  std::uint64_t sketch_bytes = 0;  // union volume moved by S3
  std::uint64_t queries_mapped = 0;
  // Largest per-rank sketch-table size (entries). For the replicated
  // strategy this is the full table at every rank; for the partitioned
  // strategy it is the biggest shard — the memory-scaling story.
  std::uint64_t table_entries_max = 0;

  // Robustness accounting (all zero/false on a fault-free run).
  std::vector<int> failed_ranks;        // ranks that aborted, ascending
  std::uint64_t queries_recovered = 0;  // segments re-mapped by the driver
  double recover_s = 0.0;               // time spent redoing lost work
  std::uint64_t faults_injected = 0;    // fault decisions that fired

  // Shard-cache accounting (IndexCacheOptions; all zero with caching off).
  std::uint64_t shards_loaded = 0;      // S2 results read from artifacts
  std::uint64_t shards_saved = 0;       // S2 results persisted this run
  std::uint64_t shard_load_errors = 0;  // artifacts rejected (rebuilt fresh)
  /// True when a failure cost shared state the survivors depended on (a
  /// rank died before contributing its sketch to S3, or before answering
  /// probes in partitioned mode): every query is still mapped, but
  /// survivor results were computed against an incomplete table and may
  /// differ from the fault-free run. False means the recovered output is
  /// bit-identical to a fault-free run.
  bool degraded = false;

  /// Per-rank S2/S3/S4 stage times, ascending by rank (empty only for a
  /// rank that never reported, i.e. died before timing anything).
  std::vector<RankStageTimes> per_rank;

  /// Communication volume of the run, including the per-collective,
  /// per-rank byte breakdown (CommStats::per_site). Zero-valued for
  /// run_staged, whose communication is modeled, not executed.
  mpisim::CommStats comm;

  /// Adds this report to `registry` under `distributed.*` names: aggregate
  /// counters, kNanos stage-time counters and per-rank
  /// `distributed.rank<r>.<stage>_ns` counters.
  void publish(obs::Registry& registry) const;

  [[nodiscard]] double total_s() const noexcept {
    return load_s + sketch_subjects_s + allgather_s + build_global_s +
           map_queries_s;
  }
  [[nodiscard]] double compute_s() const noexcept {
    return total_s() - allgather_s;
  }
  /// Query throughput in segments per second of S4 (map_queries) time only
  /// — communication and sketching are excluded (Fig 7b). Returns 0 when
  /// nothing was mapped or S4 was not timed, so empty or unmeasured runs
  /// cannot report a bogus rate.
  [[nodiscard]] double query_throughput() const noexcept {
    if (queries_mapped == 0 || map_queries_s <= 0.0) return 0.0;
    return static_cast<double>(queries_mapped) / map_queries_s;
  }
};

struct DistributedResult {
  std::vector<SegmentMapping> mappings;  // ordered by read id then end
  DistributedStepReport report;
};

/// Real SPMD execution on `ranks` mpisim threads. `threads_per_rank` > 1
/// enables the hybrid MPI+threads mode (the paper's platform supported
/// OpenMPI and OpenMP side by side): each rank maps its local queries with a
/// rank-private thread pool. Results are identical for any configuration.
///
/// With `robust` set, ranks that abort (injected faults, timeouts) are
/// tolerated: the survivors complete, the driver re-maps every failed
/// rank's query partition against the full sketch table, and the report
/// records failed_ranks / queries_recovered / degraded. A rank that dies
/// after S3 (e.g. at site "S4:map") costs no shared state, so the output
/// is bit-identical to the fault-free run.
[[nodiscard]] DistributedResult run_distributed(
    const io::SequenceSet& subjects, const io::SequenceSet& reads,
    const MapParams& params, int ranks,
    SketchScheme scheme = SketchScheme::kJem, int threads_per_rank = 1,
    const RobustnessOptions& robust = {},
    const IndexCacheOptions& index_cache = {},
    const obs::ObsHooks& obs = {});

/// Partitioned-table strategy: instead of replicating S_global at every
/// rank (the paper's S3, space O(n·m_s·T) *per process* — its §III-C1
/// space note), the table is sharded by k-mer hash across ranks and queries
/// are routed with two all-to-all exchanges (probes out, hits back).
/// Memory per rank drops to ~1/p of the table at the price of all-to-all
/// communication in the query phase. Mappings are bit-identical to the
/// replicated strategy.
[[nodiscard]] DistributedResult run_distributed_partitioned(
    const io::SequenceSet& subjects, const io::SequenceSet& reads,
    const MapParams& params, int ranks,
    SketchScheme scheme = SketchScheme::kJem,
    const RobustnessOptions& robust = {}, const obs::ObsHooks& obs = {});

/// Staged bulk-synchronous execution with modeled communication. A fault
/// plan in `robust` alters the modeled timeline (delays add to step costs;
/// an aborted rank's work is re-billed to "recover:<step>" records) —
/// results are always complete because the model re-executes lost work.
[[nodiscard]] DistributedResult run_staged(
    const io::SequenceSet& subjects, const io::SequenceSet& reads,
    const MapParams& params, int ranks,
    const mpisim::NetworkModel& model = {},
    SketchScheme scheme = SketchScheme::kJem,
    const RobustnessOptions& robust = {}, const obs::ObsHooks& obs = {});

}  // namespace jem::core
