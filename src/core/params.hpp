// The parameter block every JEM-mapper driver shares. Defaults are the
// paper's software configuration (§IV-A): k = 16, w = 100, T = 30,
// ℓ = 1000 bp.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/minimizer.hpp"

namespace jem::core {

struct MapParams {
  int k = 16;                        // k-mer size
  int w = 100;                       // minimizer window (in k-mers)
  MinimizerOrdering ordering = MinimizerOrdering::kLexicographic;
  int trials = 30;                   // T, number of MinHash trials
  std::uint32_t segment_length = 1000;  // ℓ, end-segment / interval length
  std::uint64_t seed = 20230517;     // experiment seed (hash family etc.)
  std::uint32_t min_votes = 1;       // minimum trial votes to report a hit

  void validate() const {
    if (k < 1 || k > 32) throw std::invalid_argument("MapParams: bad k");
    if (w < 1) throw std::invalid_argument("MapParams: bad w");
    if (trials < 1) throw std::invalid_argument("MapParams: bad trials");
    if (segment_length == 0) {
      throw std::invalid_argument("MapParams: bad segment_length");
    }
    if (min_votes < 1) {
      throw std::invalid_argument("MapParams: min_votes must be >= 1");
    }
  }
};

}  // namespace jem::core
