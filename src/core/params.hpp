// The parameter block every JEM-mapper driver shares. Defaults are the
// paper's software configuration (§IV-A): k = 16, w = 100, T = 30,
// ℓ = 1000 bp.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/minimizer.hpp"

namespace jem::core {

struct MapParams {
  int k = 16;                        // k-mer size
  int w = 100;                       // minimizer window (in k-mers)
  MinimizerOrdering ordering = MinimizerOrdering::kLexicographic;
  int trials = 30;                   // T, number of MinHash trials
  std::uint32_t segment_length = 1000;  // ℓ, end-segment / interval length
  std::uint64_t seed = 20230517;     // experiment seed (hash family etc.)
  std::uint32_t min_votes = 1;       // minimum trial votes to report a hit

  void validate() const {
    if (k < 1 || k > 32) throw std::invalid_argument("MapParams: bad k");
    if (w < 1) throw std::invalid_argument("MapParams: bad w");
    if (trials < 1) throw std::invalid_argument("MapParams: bad trials");
    if (segment_length == 0) {
      throw std::invalid_argument("MapParams: bad segment_length");
    }
    if (min_votes < 1) {
      throw std::invalid_argument("MapParams: min_votes must be >= 1");
    }
  }

  class Builder;
  [[nodiscard]] static Builder make();
};

/// Fluent construction with validation at the end, so an invalid
/// configuration fails where it is written rather than mid-run:
///   const MapParams params =
///       MapParams::make().k(16).window(100).trials(30).build();
class MapParams::Builder {
 public:
  Builder& k(int value) {
    params_.k = value;
    return *this;
  }
  Builder& window(int value) {
    params_.w = value;
    return *this;
  }
  Builder& ordering(MinimizerOrdering value) {
    params_.ordering = value;
    return *this;
  }
  Builder& trials(int value) {
    params_.trials = value;
    return *this;
  }
  Builder& segment_length(std::uint32_t value) {
    params_.segment_length = value;
    return *this;
  }
  Builder& seed(std::uint64_t value) {
    params_.seed = value;
    return *this;
  }
  Builder& min_votes(std::uint32_t value) {
    params_.min_votes = value;
    return *this;
  }

  /// Terminal call: validates and returns the finished parameter block.
  /// Throws std::invalid_argument on any out-of-range field.
  [[nodiscard]] MapParams build() const {
    params_.validate();
    return params_;
  }

 private:
  MapParams params_;
};

inline MapParams::Builder MapParams::make() { return {}; }

}  // namespace jem::core
