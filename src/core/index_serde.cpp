#include "core/index_serde.hpp"

#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/mapper.hpp"
#include "obs/metrics.hpp"

namespace jem::core {

namespace {

using io::ArtifactError;
using io::ArtifactReason;

// Fixed-layout PARAMS section: every field that changes what the sketch
// table contains or how it is queried. 40 bytes, little-endian.
struct PackedParams {
  std::uint32_t k = 0;
  std::uint32_t w = 0;
  std::uint32_t ordering = 0;
  std::uint32_t trials = 0;
  std::uint32_t segment_length = 0;
  std::uint32_t min_votes = 0;
  std::uint64_t seed = 0;
  std::uint32_t scheme = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(PackedParams) == 40);

// SUBJSET section: dense-id binding to the exact subject set.
struct PackedSubjects {
  std::uint64_t count = 0;
  std::uint64_t digest = 0;
};
static_assert(sizeof(PackedSubjects) == 16);

PackedParams pack_params(const MapParams& params, SketchScheme scheme) {
  PackedParams packed;
  packed.k = static_cast<std::uint32_t>(params.k);
  packed.w = static_cast<std::uint32_t>(params.w);
  packed.ordering = static_cast<std::uint32_t>(params.ordering);
  packed.trials = static_cast<std::uint32_t>(params.trials);
  packed.segment_length = params.segment_length;
  packed.min_votes = params.min_votes;
  packed.seed = params.seed;
  packed.scheme = static_cast<std::uint32_t>(scheme);
  return packed;
}

template <typename T>
std::string_view as_bytes(const T& value) {
  return {reinterpret_cast<const char*>(&value), sizeof(T)};
}

template <typename T>
std::string_view span_bytes(std::span<const T> values) {
  return {reinterpret_cast<const char*>(values.data()),
          values.size() * sizeof(T)};
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Decodes a section payload into a vector of trivially-copyable records,
/// requiring an exact element-size multiple.
template <typename T>
std::vector<T> decode_array(std::string_view payload, const char* what) {
  if (payload.size() % sizeof(T) != 0) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        std::string(what) + " payload size " +
                            std::to_string(payload.size()) +
                            " is not a multiple of " +
                            std::to_string(sizeof(T)));
  }
  std::vector<T> values(payload.size() / sizeof(T));
  std::memcpy(values.data(), payload.data(), payload.size());
  return values;
}

std::uint64_t read_u64_at(std::string_view payload, std::size_t index) {
  std::uint64_t v;
  std::memcpy(&v, payload.data() + index * sizeof(v), sizeof(v));
  return v;
}

[[noreturn]] void params_mismatch(const char* field, std::uint64_t stored,
                                  std::uint64_t requested) {
  throw ArtifactError(ArtifactReason::kParamsMismatch,
                      std::string("index parameter '") + field +
                          "' disagrees (artifact " + std::to_string(stored) +
                          ", run " + std::to_string(requested) + ")");
}

void check_params(const PackedParams& stored, const PackedParams& requested) {
  if (stored.k != requested.k) params_mismatch("k", stored.k, requested.k);
  if (stored.w != requested.w) params_mismatch("w", stored.w, requested.w);
  if (stored.ordering != requested.ordering) {
    params_mismatch("ordering", stored.ordering, requested.ordering);
  }
  if (stored.trials != requested.trials) {
    params_mismatch("trials", stored.trials, requested.trials);
  }
  if (stored.segment_length != requested.segment_length) {
    params_mismatch("segment_length", stored.segment_length,
                    requested.segment_length);
  }
  if (stored.min_votes != requested.min_votes) {
    params_mismatch("min_votes", stored.min_votes, requested.min_votes);
  }
  if (stored.seed != requested.seed) {
    params_mismatch("seed", stored.seed, requested.seed);
  }
  if (stored.scheme != requested.scheme) {
    params_mismatch("scheme", stored.scheme, requested.scheme);
  }
}

}  // namespace

std::uint64_t params_digest(const MapParams& params, SketchScheme scheme) {
  const PackedParams packed = pack_params(params, scheme);
  return io::xxh64(as_bytes(packed));
}

std::uint64_t subjects_digest(const io::SequenceSet& subjects) {
  io::Xxh64Stream stream;
  const std::uint64_t count = subjects.size();
  stream.update(as_bytes(count));
  for (io::SeqId id = 0; id < subjects.size(); ++id) {
    const std::string_view name = subjects.name(id);
    const std::string_view bases = subjects.bases(id);
    const std::uint64_t name_size = name.size();
    const std::uint64_t base_size = bases.size();
    stream.update(as_bytes(name_size));
    stream.update(name);
    stream.update(as_bytes(base_size));
    stream.update(bases);
  }
  return stream.digest();
}

std::string serialize_index(const SketchTable& table, const MapParams& params,
                            SketchScheme scheme,
                            const io::SequenceSet& subjects) {
  if (!table.frozen()) {
    throw std::logic_error("serialize_index: table must be frozen");
  }

  io::ArtifactWriter writer(kIndexArtifactMagic, kIndexArtifactVersion);

  const PackedParams packed = pack_params(params, scheme);
  writer.add_section("PARAMS", as_bytes(packed));

  PackedSubjects subj;
  subj.count = subjects.size();
  subj.digest = subjects_digest(subjects);
  writer.add_section("SUBJSET", as_bytes(subj));

  // SHAPE: totals, then per-trial (key count, posting count).
  std::string shape;
  append_u64(shape, table.size());
  append_u64(shape, table.key_count());
  std::string keys;
  std::string offsets;
  std::string postings;
  for (int t = 0; t < table.trials(); ++t) {
    const SketchTable::FrozenTrial& trial = table.frozen_trial(t);
    append_u64(shape, trial.keys.size());
    append_u64(shape, trial.subjects.size());
    keys.append(span_bytes(std::span<const KmerCode>(trial.keys)));
    offsets.append(
        span_bytes(std::span<const std::uint32_t>(trial.offsets)));
    postings.append(span_bytes(std::span<const io::SeqId>(trial.subjects)));
  }
  writer.add_section("SHAPE", shape);
  writer.add_section("KEYS", keys);
  writer.add_section("OFFSETS", offsets);
  writer.add_section("SUBJECTS", postings);

  // The frozen flat index, raw: region geometry interleaved (base, mask)
  // per trial, then the slot array and its postings pool.
  const FlatSketchIndex& flat = table.flat();
  std::string geometry;
  for (int t = 0; t < flat.trials(); ++t) {
    append_u64(geometry,
               static_cast<std::uint64_t>(flat.bases()[static_cast<std::size_t>(t)]));
    append_u64(geometry,
               static_cast<std::uint64_t>(flat.masks()[static_cast<std::size_t>(t)]));
  }
  writer.add_section("FLATGEO", geometry);
  writer.add_section("FLATSLOT", span_bytes(flat.slots()));
  writer.add_section("FLATSUB", span_bytes(flat.subjects()));

  return writer.serialize();
}

void save_index(const std::string& path, const SketchTable& table,
                const MapParams& params, SketchScheme scheme,
                const io::SequenceSet& subjects) {
  io::atomic_write_file(path, serialize_index(table, params, scheme, subjects));
  obs::default_registry().counter("io.index_cache.saves").add(1);
}

SketchTable deserialize_index(std::string bytes, const MapParams& params,
                              SketchScheme scheme,
                              const io::SequenceSet& subjects) {
  const io::ArtifactReader reader(std::move(bytes), kIndexArtifactMagic,
                                  kIndexArtifactVersion);

  PackedParams stored;
  std::memcpy(&stored, reader.section("PARAMS", sizeof(PackedParams)).data(),
              sizeof(PackedParams));
  check_params(stored, pack_params(params, scheme));

  PackedSubjects subj;
  std::memcpy(&subj, reader.section("SUBJSET", sizeof(PackedSubjects)).data(),
              sizeof(PackedSubjects));
  if (subj.count != subjects.size() ||
      subj.digest != subjects_digest(subjects)) {
    throw ArtifactError(
        ArtifactReason::kParamsMismatch,
        "index was built from a different subject set (postings reference "
        "dense ids; refusing to map against mismatched contigs)");
  }

  const std::string_view shape = reader.section("SHAPE");
  const std::size_t trials = static_cast<std::size_t>(params.trials);
  if (shape.size() != (2 + 2 * trials) * sizeof(std::uint64_t)) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        "SHAPE section size disagrees with the trial count");
  }
  const std::uint64_t total_entries = read_u64_at(shape, 0);
  const std::uint64_t total_keys = read_u64_at(shape, 1);

  std::vector<KmerCode> keys =
      decode_array<KmerCode>(reader.section("KEYS"), "KEYS");
  std::vector<std::uint32_t> offsets =
      decode_array<std::uint32_t>(reader.section("OFFSETS"), "OFFSETS");
  std::vector<io::SeqId> postings =
      decode_array<io::SeqId>(reader.section("SUBJECTS"), "SUBJECTS");

  std::vector<SketchTable::FrozenTrial> frozen(trials);
  std::size_t key_cursor = 0;
  std::size_t offset_cursor = 0;
  std::size_t posting_cursor = 0;
  std::uint64_t shape_entries = 0;
  std::uint64_t shape_keys = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t trial_keys = read_u64_at(shape, 2 + 2 * t);
    const std::uint64_t trial_postings = read_u64_at(shape, 3 + 2 * t);
    shape_keys += trial_keys;
    shape_entries += trial_postings;
    if (key_cursor + trial_keys > keys.size() ||
        offset_cursor + trial_keys + 1 > offsets.size() ||
        posting_cursor + trial_postings > postings.size()) {
      throw ArtifactError(ArtifactReason::kBadSection,
                          "SHAPE counts overrun the CSR sections");
    }
    frozen[t].keys.assign(
        keys.begin() + static_cast<std::ptrdiff_t>(key_cursor),
        keys.begin() + static_cast<std::ptrdiff_t>(key_cursor + trial_keys));
    frozen[t].offsets.assign(
        offsets.begin() + static_cast<std::ptrdiff_t>(offset_cursor),
        offsets.begin() +
            static_cast<std::ptrdiff_t>(offset_cursor + trial_keys + 1));
    frozen[t].subjects.assign(
        postings.begin() + static_cast<std::ptrdiff_t>(posting_cursor),
        postings.begin() +
            static_cast<std::ptrdiff_t>(posting_cursor + trial_postings));
    key_cursor += trial_keys;
    offset_cursor += trial_keys + 1;
    posting_cursor += trial_postings;
  }
  if (key_cursor != keys.size() || offset_cursor != offsets.size() ||
      posting_cursor != postings.size()) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        "CSR sections have trailing data beyond SHAPE");
  }
  if (shape_keys != total_keys || shape_entries != total_entries) {
    throw ArtifactError(ArtifactReason::kBadSection,
                        "SHAPE totals disagree with its per-trial counts");
  }

  std::vector<std::uint64_t> geometry = decode_array<std::uint64_t>(
      reader.section("FLATGEO", 2 * trials * sizeof(std::uint64_t)),
      "FLATGEO");
  std::vector<std::size_t> bases(trials);
  std::vector<std::size_t> masks(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    bases[t] = static_cast<std::size_t>(geometry[2 * t]);
    masks[t] = static_cast<std::size_t>(geometry[2 * t + 1]);
  }
  std::vector<FlatSketchIndex::Slot> slots =
      decode_array<FlatSketchIndex::Slot>(reader.section("FLATSLOT"),
                                          "FLATSLOT");
  std::vector<io::SeqId> flat_subjects =
      decode_array<io::SeqId>(reader.section("FLATSUB"), "FLATSUB");

  try {
    FlatSketchIndex flat = FlatSketchIndex::from_parts(
        std::move(slots), std::move(bases), std::move(masks),
        std::move(flat_subjects), static_cast<std::size_t>(total_keys));
    return SketchTable::from_frozen(params.trials, std::move(frozen),
                                    std::move(flat));
  } catch (const std::invalid_argument& error) {
    // Structural validation failures in the reconstructors mean the
    // artifact's (checksummed) sections are mutually inconsistent — treat
    // as a malformed artifact, not a programming error.
    throw ArtifactError(ArtifactReason::kBadSection, error.what());
  }
}

SketchTable load_index(const std::string& path, const MapParams& params,
                       SketchScheme scheme, const io::SequenceSet& subjects) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ArtifactError(ArtifactReason::kOpenFailed,
                        "cannot open index artifact: " + path);
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  SketchTable table =
      deserialize_index(std::move(raw).str(), params, scheme, subjects);
  // Only counted once the artifact fully verified — a rejected or corrupt
  // file is not a cache hit.
  obs::default_registry().counter("io.index_cache.hits").add(1);
  return table;
}

}  // namespace jem::core
