// FlatSketchIndex — the frozen query-side form of the sketch table S: one
// open-addressing (linear-probe, power-of-two) hash table per trial mapping
// a minhash k-mer to its postings span.
//
// The CSR form answers lookup(t, kmer) with a binary search: O(log K) keys
// touched, each a dependent cache miss. The flat index answers it with a
// mixed-hash probe into a half-loaded slot array: ~1.1 slots touched on
// average, each slot carrying the postings offset and count inline, so a hit
// costs one cache line for the slot plus the postings themselves. This is
// the minimap2 indexing strategy (Li 2018) adapted to the per-trial key
// spaces of the JEM sketch.
//
// lookup_many resolves a whole segment-sketch's k-mer list for one trial and
// software-prefetches each k-mer's home slot a fixed distance ahead, hiding
// the (random) slot miss latency behind the probe of the current key — the
// batched form the mapper's vote loop uses.
//
// The index is built once, from the same frozen CSR arrays the wire format
// (SketchEntry lists) reconstructs, and is immutable afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kmer.hpp"
#include "io/sequence.hpp"

namespace jem::core {

class FlatSketchIndex {
 public:
  /// One trial's frozen CSR arrays (the build input). `offsets` has
  /// keys.size() + 1 entries; subjects[offsets[i], offsets[i+1]) are the
  /// postings of keys[i].
  struct TrialView {
    std::span<const KmerCode> keys;
    std::span<const std::uint32_t> offsets;
    std::span<const io::SeqId> subjects;
  };

  /// One probe slot; count == 0 marks an empty slot (every stored key has
  /// >= 1 posting). Public for the index artifact (core/index_serde), which
  /// persists the slot array verbatim so load skips the build entirely.
  struct Slot {
    KmerCode kmer = 0;
    std::uint32_t offset = 0;
    std::uint32_t count = 0;

    friend bool operator==(const Slot&, const Slot&) = default;
  };
  static_assert(sizeof(Slot) == 16);

  /// An empty index (no trials); lookups are invalid until assigned from
  /// build().
  FlatSketchIndex() = default;

  /// Builds the index from per-trial CSR views. Keys within a trial must be
  /// distinct (they are: CSR keys are sorted-unique). Throws
  /// std::length_error if any trial's postings exceed the uint32 offset
  /// range.
  [[nodiscard]] static FlatSketchIndex build(
      std::span<const TrialView> trials);

  [[nodiscard]] int trials() const noexcept {
    return static_cast<int>(base_.size());
  }

  /// Distinct (trial, kmer) keys stored.
  [[nodiscard]] std::size_t key_count() const noexcept { return keys_; }

  /// Total slots across all trials (>= 2x key_count: max load factor 0.5).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

  /// Postings of `kmer` in trial `t` (empty span if absent).
  [[nodiscard]] std::span<const io::SeqId> lookup(int trial,
                                                  KmerCode kmer) const {
    const std::size_t t = static_cast<std::size_t>(trial);
    const std::size_t base = base_[t];
    const std::size_t mask = mask_[t];
    std::size_t i = hash(kmer) & mask;
    while (true) {
      const Slot& slot = slots_[base + i];
      if (slot.count == 0) return {};
      if (slot.kmer == kmer) {
        return std::span<const io::SeqId>(subjects_)
            .subspan(slot.offset, slot.count);
      }
      i = (i + 1) & mask;
    }
  }

  /// Batched lookup of kmers[j] in trial `t` into out[j], prefetching home
  /// slots ahead of the probe loop. `out` must have kmers.size() entries.
  /// Returns the number of slots probed across all keys (>= kmers.size();
  /// the mapper's sampled hot-path counters turn this into a probe-length
  /// distribution at zero extra memory traffic).
  std::uint64_t lookup_many(int trial, std::span<const KmerCode> kmers,
                            std::span<std::span<const io::SeqId>> out) const;

  /// Raw-part access for the index artifact: the slot array, per-trial
  /// region geometry and postings pool exactly as built.
  [[nodiscard]] std::span<const Slot> slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::span<const std::size_t> bases() const noexcept {
    return base_;
  }
  [[nodiscard]] std::span<const std::size_t> masks() const noexcept {
    return mask_;
  }
  [[nodiscard]] std::span<const io::SeqId> subjects() const noexcept {
    return subjects_;
  }

  /// Reconstructs an index from persisted raw parts (the inverse of the
  /// accessors above). Validates the geometry — region sizes power-of-two
  /// and contiguous, every slot's postings span inside the pool, occupied
  /// slot count equal to `keys` — and throws std::invalid_argument on any
  /// violation, so a corrupted artifact can never produce an index whose
  /// probe loop reads out of bounds or spins forever.
  [[nodiscard]] static FlatSketchIndex from_parts(
      std::vector<Slot> slots, std::vector<std::size_t> base,
      std::vector<std::size_t> mask, std::vector<io::SeqId> subjects,
      std::size_t keys);

 private:
  [[nodiscard]] static std::uint64_t hash(KmerCode kmer) noexcept;

  std::vector<Slot> slots_;         // concatenated per-trial pow2 regions
  std::vector<std::size_t> base_;   // trial -> first slot
  std::vector<std::size_t> mask_;   // trial -> region capacity - 1
  std::vector<io::SeqId> subjects_;  // shared postings pool
  std::size_t keys_ = 0;
};

}  // namespace jem::core
