#include "core/minimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace jem::core {

namespace {

/// Ordering key of a canonical k-mer under the configured scheme. Smaller
/// key = preferred minimizer.
std::uint64_t ordering_key(KmerCode canon, MinimizerOrdering ordering) {
  return ordering == MinimizerOrdering::kLexicographic ? canon
                                                       : util::mix64(canon);
}

/// A maximal run of ACGT bases: [begin, end) over the original sequence.
struct Run {
  std::size_t begin;
  std::size_t end;
};

std::vector<Run> acgt_runs(std::string_view seq) {
  std::vector<Run> runs;
  std::size_t begin = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const bool valid = base_code(seq[i]) != kInvalidBase;
    if (valid && !in_run) {
      begin = i;
      in_run = true;
    } else if (!valid && in_run) {
      runs.push_back({begin, i});
      in_run = false;
    }
  }
  if (in_run) runs.push_back({begin, seq.size()});
  return runs;
}

void validate(const MinimizerParams& p) {
  if (p.k < 1 || p.k > kMaxK) {
    throw std::invalid_argument("minimizer_scan: k out of range");
  }
  if (p.w < 1) {
    throw std::invalid_argument("minimizer_scan: w must be >= 1");
  }
}

/// Appends the distinct minimizers of one ACGT run using a monotone ring
/// buffer (bounded by the window size, reused across runs and calls). Ties
/// are broken toward the leftmost occurrence (values equal to the new
/// candidate are kept in the buffer, so an earlier equal minimum stays at
/// the front).
void scan_run(std::string_view seq, Run run, const MinimizerParams& p,
              const KmerCodec& codec,
              util::RingDeque<detail::MinimizerWindowEntry>& window_buf,
              std::vector<Minimizer>& out) {
  const std::size_t run_len = run.end - run.begin;
  if (run_len < static_cast<std::size_t>(p.k)) return;
  const std::size_t num_kmers = run_len - static_cast<std::size_t>(p.k) + 1;
  const std::size_t window =
      std::min<std::size_t>(static_cast<std::size_t>(p.w), num_kmers);
  window_buf.clear();

  KmerCode fwd = 0;
  KmerCode rc = 0;
  for (std::size_t i = 0; i < num_kmers; ++i) {
    // Roll the forward and reverse-complement tracks.
    if (i == 0) {
      for (int j = 0; j < p.k; ++j) {
        const std::uint8_t code =
            base_code(seq[run.begin + static_cast<std::size_t>(j)]);
        fwd = codec.roll(fwd, code);
        rc = codec.roll_rc(rc, code);
      }
    } else {
      const std::uint8_t code = base_code(
          seq[run.begin + i + static_cast<std::size_t>(p.k) - 1]);
      fwd = codec.roll(fwd, code);
      rc = codec.roll_rc(rc, code);
    }
    const KmerCode canon = fwd < rc ? fwd : rc;
    const std::uint64_t key = ordering_key(canon, p.ordering);
    const auto pos = static_cast<std::uint32_t>(run.begin + i);

    // Maintain monotone (strictly increasing) keys front to back; equal
    // keys are kept so the leftmost minimum wins ties.
    while (!window_buf.empty() && window_buf.back().key > key) {
      window_buf.pop_back();
    }
    window_buf.push_back({key, canon, pos});

    // Window covering k-mers [i - window + 1, i] is complete once
    // i + 1 >= window. Evict entries that fell out of it.
    if (i + 1 >= window) {
      const auto window_begin = static_cast<std::uint32_t>(
          run.begin + i + 1 - window);
      while (window_buf.front().pos < window_begin) window_buf.pop_front();
      const detail::MinimizerWindowEntry& min_entry = window_buf.front();
      if (out.empty() || out.back().kmer != min_entry.canon ||
          out.back().position != min_entry.pos) {
        out.push_back({min_entry.canon, min_entry.pos});
      }
    }
  }
}

}  // namespace

void minimizer_scan(std::string_view seq, const MinimizerParams& p,
                    MinimizerScratch& scratch, std::vector<Minimizer>& out) {
  validate(p);
  const KmerCodec codec(p.k);
  out.clear();
  // Lazy run iteration: walk the sequence once, handing each maximal ACGT
  // run to the window scan as it is found (no per-call run vector).
  std::size_t i = 0;
  while (i < seq.size()) {
    while (i < seq.size() && base_code(seq[i]) == kInvalidBase) ++i;
    const std::size_t begin = i;
    while (i < seq.size() && base_code(seq[i]) != kInvalidBase) ++i;
    if (begin < i) scan_run(seq, {begin, i}, p, codec, scratch.window, out);
  }
}

std::vector<Minimizer> minimizer_scan(std::string_view seq,
                                      const MinimizerParams& p) {
  MinimizerScratch scratch;
  std::vector<Minimizer> out;
  minimizer_scan(seq, p, scratch, out);
  return out;
}

std::vector<Minimizer> minimizer_scan_naive(std::string_view seq,
                                            const MinimizerParams& p) {
  validate(p);
  const KmerCodec codec(p.k);
  std::vector<Minimizer> out;
  for (const Run& run : acgt_runs(seq)) {
    const std::size_t run_len = run.end - run.begin;
    if (run_len < static_cast<std::size_t>(p.k)) continue;
    const std::size_t num_kmers = run_len - static_cast<std::size_t>(p.k) + 1;
    const std::size_t window =
        std::min<std::size_t>(static_cast<std::size_t>(p.w), num_kmers);

    // Pre-encode every canonical k-mer of the run and its ordering key.
    std::vector<KmerCode> canon(num_kmers);
    std::vector<std::uint64_t> keys(num_kmers);
    for (std::size_t i = 0; i < num_kmers; ++i) {
      const auto code = codec.encode(
          seq.substr(run.begin + i, static_cast<std::size_t>(p.k)));
      canon[i] = codec.canonical(*code);
      keys[i] = ordering_key(canon[i], p.ordering);
    }

    for (std::size_t w_begin = 0; w_begin + window <= num_kmers; ++w_begin) {
      std::size_t best = w_begin;
      for (std::size_t j = w_begin + 1; j < w_begin + window; ++j) {
        if (keys[j] < keys[best]) best = j;  // leftmost tie-break via <
      }
      const Minimizer m{canon[best],
                        static_cast<std::uint32_t>(run.begin + best)};
      if (out.empty() || out.back() != m) out.push_back(m);
    }
  }
  return out;
}

}  // namespace jem::core
