// Persistent sketch-index artifact (paper stages S2-S3 made durable): a
// versioned, checksummed on-disk form of the frozen SketchTable, so the
// global sketch table is built from FASTA once and reloaded on every later
// run — the .mmi lesson from minimap2 applied to the JEM sketch.
//
// The artifact persists both frozen forms the query path needs:
//   * the per-trial CSR arrays (keys / offsets / postings), and
//   * the FlatSketchIndex raw parts (slot array + region geometry),
// so load_index skips sketching, sorting AND the flat-index build: the
// loaded table is query-ready as-is.
//
// Sections ("JEMIDX1\0" container, io/artifact.hpp framing):
//   PARAMS   packed mapping-parameter fingerprint (k/w/ordering/T/ℓ/seed/
//            min_votes/scheme) — compared field-by-field on load; any
//            disagreement is ArtifactError(kParamsMismatch) naming the
//            offending parameter. An index queried under different
//            parameters would silently return wrong mappings; the
//            fingerprint makes that impossible.
//   SUBJSET  subject-set binding: sequence count + XXH64 over every name
//            and base — postings reference subjects by dense id, so an
//            index is only valid with the exact contig set it was built
//            from.
//   SHAPE    entry/key totals and per-trial key/posting counts.
//   KEYS / OFFSETS / SUBJECTS    concatenated per-trial CSR arrays.
//   FLATGEO / FLATSLOT / FLATSUB FlatSketchIndex raw parts.
//
// Every load failure — truncation, bit rot, foreign file, parameter or
// subject-set mismatch — surfaces as a structured ArtifactError; callers
// fall back to rebuild-from-FASTA (jem_map logs the reason and rebuilds).
#pragma once

#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "core/sketch_table.hpp"
#include "io/artifact.hpp"
#include "io/sequence_set.hpp"

namespace jem::core {

enum class SketchScheme;  // defined in core/mapper.hpp

inline constexpr std::uint64_t kIndexArtifactMagic =
    0x00315844494d454aULL;  // "JEMIDX1\0"
inline constexpr std::uint32_t kIndexArtifactVersion = 1;

/// XXH64 digest of the packed parameter fingerprint — the params word of
/// the run-journal fingerprint (io/checkpoint.hpp).
[[nodiscard]] std::uint64_t params_digest(const MapParams& params,
                                          SketchScheme scheme);

/// XXH64 digest over the subject set (count, names, bases): binds an index
/// artifact to the exact contig set whose dense ids its postings reference.
[[nodiscard]] std::uint64_t subjects_digest(const io::SequenceSet& subjects);

/// Serializes a frozen table (throws std::logic_error on an unfrozen one)
/// into the artifact byte string.
[[nodiscard]] std::string serialize_index(const SketchTable& table,
                                          const MapParams& params,
                                          SketchScheme scheme,
                                          const io::SequenceSet& subjects);

/// serialize_index + atomic durable publish (temp + fsync + rename).
void save_index(const std::string& path, const SketchTable& table,
                const MapParams& params, SketchScheme scheme,
                const io::SequenceSet& subjects);

/// Parses, integrity-checks and validates an artifact against this run's
/// parameters and subject set, returning a frozen, query-ready table.
/// Throws io::ArtifactError on any defect (see file header).
[[nodiscard]] SketchTable deserialize_index(std::string bytes,
                                            const MapParams& params,
                                            SketchScheme scheme,
                                            const io::SequenceSet& subjects);

/// deserialize_index over the file at `path` (kOpenFailed when missing).
[[nodiscard]] SketchTable load_index(const std::string& path,
                                     const MapParams& params,
                                     SketchScheme scheme,
                                     const io::SequenceSet& subjects);

}  // namespace jem::core
