#include "core/flat_index.hpp"

#include <limits>
#include <stdexcept>

#include "util/prng.hpp"

namespace jem::core {

namespace {

/// Smallest power of two >= 2n (load factor <= 0.5), and at least one slot
/// so the probe loop of an empty trial terminates on the empty marker.
std::size_t region_capacity(std::size_t n) noexcept {
  std::size_t cap = 1;
  while (cap < 2 * n) cap *= 2;
  return cap;
}

}  // namespace

std::uint64_t FlatSketchIndex::hash(KmerCode kmer) noexcept {
  return util::mix64(kmer);
}

FlatSketchIndex FlatSketchIndex::build(std::span<const TrialView> trials) {
  FlatSketchIndex index;
  index.base_.reserve(trials.size());
  index.mask_.reserve(trials.size());

  std::size_t total_slots = 0;
  std::size_t total_postings = 0;
  for (const TrialView& trial : trials) {
    total_slots += region_capacity(trial.keys.size());
    total_postings += trial.subjects.size();
  }
  index.slots_.resize(total_slots);
  index.subjects_.reserve(total_postings);

  std::size_t base = 0;
  for (const TrialView& trial : trials) {
    const std::size_t capacity = region_capacity(trial.keys.size());
    const std::size_t mask = capacity - 1;
    index.base_.push_back(base);
    index.mask_.push_back(mask);

    for (std::size_t k = 0; k < trial.keys.size(); ++k) {
      const KmerCode kmer = trial.keys[k];
      const std::uint32_t begin = trial.offsets[k];
      const std::uint32_t end = trial.offsets[k + 1];
      if (index.subjects_.size() + (end - begin) >
          std::numeric_limits<std::uint32_t>::max()) {
        throw std::length_error(
            "FlatSketchIndex: postings exceed uint32 offset range");
      }
      const auto offset =
          static_cast<std::uint32_t>(index.subjects_.size());
      for (std::uint32_t j = begin; j < end; ++j) {
        index.subjects_.push_back(trial.subjects[j]);
      }

      std::size_t i = hash(kmer) & mask;
      while (index.slots_[base + i].count != 0) i = (i + 1) & mask;
      index.slots_[base + i] = Slot{kmer, offset, end - begin};
      ++index.keys_;
    }
    base += capacity;
  }
  return index;
}

FlatSketchIndex FlatSketchIndex::from_parts(std::vector<Slot> slots,
                                            std::vector<std::size_t> base,
                                            std::vector<std::size_t> mask,
                                            std::vector<io::SeqId> subjects,
                                            std::size_t keys) {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("FlatSketchIndex::from_parts: ") +
                                what);
  };
  if (base.size() != mask.size()) fail("base/mask trial count mismatch");

  std::size_t expected_base = 0;
  std::size_t occupied = 0;
  for (std::size_t t = 0; t < base.size(); ++t) {
    const std::size_t capacity = mask[t] + 1;
    if (capacity == 0 || (capacity & mask[t]) != 0) {
      fail("region capacity is not a power of two");
    }
    if (base[t] != expected_base) fail("regions are not contiguous");
    expected_base += capacity;
    if (expected_base > slots.size()) fail("regions overrun the slot array");

    std::size_t region_occupied = 0;
    for (std::size_t i = base[t]; i < base[t] + capacity; ++i) {
      const Slot& slot = slots[i];
      if (slot.count == 0) continue;
      ++region_occupied;
      if (static_cast<std::size_t>(slot.offset) + slot.count >
          subjects.size()) {
        fail("slot postings span exceeds the subjects pool");
      }
    }
    // The probe loop terminates on an empty slot; a full region would spin
    // forever on a missing key.
    if (region_occupied >= capacity) fail("region has no empty slot");
    occupied += region_occupied;
  }
  if (expected_base != slots.size()) fail("slot array has trailing slots");
  if (occupied != keys) fail("occupied slot count disagrees with key count");

  FlatSketchIndex index;
  index.slots_ = std::move(slots);
  index.base_ = std::move(base);
  index.mask_ = std::move(mask);
  index.subjects_ = std::move(subjects);
  index.keys_ = keys;
  return index;
}

std::uint64_t FlatSketchIndex::lookup_many(
    int trial, std::span<const KmerCode> kmers,
    std::span<std::span<const io::SeqId>> out) const {
  constexpr std::size_t kPrefetchDistance = 8;
  const std::size_t t = static_cast<std::size_t>(trial);
  const std::size_t base = base_[t];
  const std::size_t mask = mask_[t];
  std::uint64_t probed = 0;
  for (std::size_t j = 0; j < kmers.size(); ++j) {
    if (j + kPrefetchDistance < kmers.size()) {
      const std::size_t home = hash(kmers[j + kPrefetchDistance]) & mask;
      __builtin_prefetch(&slots_[base + home], 0 /* read */, 1);
    }
    // Open-coded probe (same loop as lookup()) so the slots touched can be
    // counted without a second pass.
    const KmerCode kmer = kmers[j];
    std::size_t i = hash(kmer) & mask;
    std::span<const io::SeqId> result;
    while (true) {
      const Slot& slot = slots_[base + i];
      ++probed;
      if (slot.count == 0) break;
      if (slot.kmer == kmer) {
        result = std::span<const io::SeqId>(subjects_)
                     .subspan(slot.offset, slot.count);
        break;
      }
      i = (i + 1) & mask;
    }
    out[j] = result;
  }
  return probed;
}

}  // namespace jem::core
