// MappingService — the stable service-facing API over MappingEngine.
//
// Every front end (the `jem map` batch CLI, `jem serve`'s HTTP server, and
// future subcommand modes) consumes the engine through this facade instead
// of re-plumbing MapParams/MapRequest by hand:
//
//  * ServiceConfig — one validated builder assembling MapParams + scheme,
//    including the string-valued knobs CLI front ends parse ("lex"/"hash"
//    orderings, "jem"/"minhash" schemes). Invalid values surface as a
//    structured ServiceError naming the offending field — mirroring the
//    index artifact's params-fingerprint diagnostics — instead of ad-hoc
//    stderr-and-exit at each call site.
//  * MapServiceRequest / MapServiceResponse — the stable request/response
//    pair of the mapping service: one query segment in, its candidate
//    subjects out. Responses carry a structured ServiceFailure (taxonomy in
//    ServiceErrorCode) instead of throwing on per-request conditions such
//    as an expired deadline, so a server can keep serving.
//  * MappingService — owns the subject set and the MappingEngine, loads a
//    frozen JEMIDX1 index when one is offered (core::index_serde, with the
//    same reject-and-rebuild fallback jem_map uses), and maps single
//    requests or coalesced micro-batches. Batch results are bit-identical
//    to single-shot JemMapper::map_segment output (golden-tested) — the
//    micro-batcher in src/serve/ depends on that.
//
// Thread model: map() is const and thread-safe given a per-thread
// MapScratch, exactly like JemMapper::map_segment. map_batch() reuses one
// warm scratch across the batch — the same amortization the engine's batch
// kernels perform.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/mapper.hpp"
#include "core/params.hpp"
#include "io/sequence_set.hpp"

namespace jem::core {

/// Why a service call could not be satisfied. The service-layer analogue of
/// io::ArtifactReason: every failure is one of these, so callers (and HTTP
/// status mapping) switch on the code instead of parsing message text.
enum class ServiceErrorCode {
  kInvalidArgument,   // a config/request field is out of range (named)
  kDeadlineExceeded,  // the request's deadline expired before mapping ran
  kOverloaded,        // admission queue full — shed, retry later
  kIndexUnavailable,  // no usable index and rebuilding was not permitted
  kInternal,          // unexpected condition (a bug, not a caller error)
};

/// Stable name of a code ("invalid-argument", "deadline-exceeded", ...) —
/// the `error` field of the serve layer's JSON error bodies and the
/// failure annotation of its flight-recorder records (/debug/requests,
/// docs/observability.md), so dumps and error responses cross-reference
/// by the same vocabulary.
[[nodiscard]] std::string_view service_error_name(
    ServiceErrorCode code) noexcept;

/// Thrown by configuration/request builders on invalid input. `field()`
/// names the offending field ("k", "ordering", "sequence", ...), so CLI
/// and HTTP front ends can point at exactly what to fix.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrorCode code, std::string field, std::string detail);

  [[nodiscard]] ServiceErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  ServiceErrorCode code_;
  std::string field_;
};

/// The validated mapping configuration every entry point shares: MapParams
/// plus the sketch scheme. Construct through the builder.
struct ServiceConfig {
  MapParams params;
  SketchScheme scheme = SketchScheme::kJem;

  class Builder;
  [[nodiscard]] static Builder make();
};

/// Fluent assembly with per-field validation at build(): each out-of-range
/// or unparsable value throws ServiceError(kInvalidArgument) naming the
/// field. String setters accept exactly what the CLI accepts ("lex"/"hash",
/// "jem"/"minhash"); numeric setters take the CLI's uint64 values and
/// range-check them here, so a `--k 99` diagnostic names "k" everywhere.
class ServiceConfig::Builder {
 public:
  Builder& k(std::uint64_t value);
  Builder& window(std::uint64_t value);
  Builder& trials(std::uint64_t value);
  Builder& segment_length(std::uint64_t value);
  Builder& seed(std::uint64_t value);
  Builder& min_votes(std::uint64_t value);
  Builder& ordering(MinimizerOrdering value);
  Builder& ordering(std::string_view name);  // "lex" | "hash"
  Builder& scheme(SketchScheme value);
  Builder& scheme(std::string_view name);  // "jem" | "minhash"

  /// Validates every field and returns the finished config. Throws
  /// ServiceError(kInvalidArgument) naming the first offending field.
  [[nodiscard]] ServiceConfig build() const;

 private:
  std::uint64_t k_ = 16;
  std::uint64_t w_ = 100;
  std::uint64_t trials_ = 30;
  std::uint64_t segment_length_ = 1000;
  std::uint64_t seed_ = 20230517;
  std::uint64_t min_votes_ = 1;
  std::string ordering_name_ = "lex";
  std::string scheme_name_ = "jem";
};

/// One mapping request: a query segment plus how to report it. Construct
/// through the builder (validated) or aggregate-initialize and rely on
/// MappingService validating at map() time.
struct MapServiceRequest {
  std::string sequence;  // query segment bases (mapped as one segment)
  std::size_t top_x = 1;  // candidates to report (1 = best hit only)

  /// Optional tightening of MapParams::min_votes for this request (same
  /// contract as MapRequest::min_votes: must be >= the configured value).
  std::optional<std::uint32_t> min_votes;

  /// Per-request deadline budget measured from map() entry (or from
  /// admission in the serve layer). zero = no deadline.
  std::chrono::milliseconds deadline{0};

  class Builder;
  [[nodiscard]] static Builder make();

  /// Field-by-field validation against the service's parameters. Throws
  /// ServiceError(kInvalidArgument) naming the offending field.
  void validate(const MapParams& params) const;
};

class MapServiceRequest::Builder {
 public:
  Builder& sequence(std::string bases);
  Builder& top_x(std::size_t value);
  Builder& min_votes(std::uint32_t value);
  Builder& deadline(std::chrono::milliseconds value);

  /// Validates the request shape (sequence present, top_x >= 1). Service-
  /// dependent checks (min_votes floor) run again inside map().
  [[nodiscard]] MapServiceRequest build() const;

 private:
  MapServiceRequest request_;
};

/// One candidate subject of a response, name resolved.
struct MapServiceHit {
  io::SeqId subject = io::kInvalidSeqId;
  std::string subject_name;
  std::uint32_t votes = 0;

  friend bool operator==(const MapServiceHit&, const MapServiceHit&) = default;
};

/// Structured per-request failure (the response-level analogue of
/// EngineFailure): the taxonomy code plus a human-readable message.
struct ServiceFailure {
  ServiceErrorCode code = ServiceErrorCode::kInternal;
  std::string message;

  friend bool operator==(const ServiceFailure&, const ServiceFailure&) =
      default;
};

/// Result of one mapping request. `hits` is ordered by votes descending
/// (ties to the smaller subject id), empty when the segment is unmapped;
/// hits[0] is bit-identical to JemMapper::map_segment on the same bytes.
struct MapServiceResponse {
  std::vector<MapServiceHit> hits;
  std::uint32_t trials = 0;   // T the service ran with (response context)
  bool cache_hit = false;     // set by the serve layer's LRU, never here
  std::optional<ServiceFailure> failure;

  [[nodiscard]] bool ok() const noexcept { return !failure.has_value(); }
  [[nodiscard]] bool mapped() const noexcept { return !hits.empty(); }

  friend bool operator==(const MapServiceResponse&, const MapServiceResponse&) =
      default;
};

class MappingService {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds the sketch index from `subjects` (sequential S2). The service
  /// owns the subject set — callers hand it over by value and query through
  /// the service from then on.
  MappingService(io::SequenceSet subjects, ServiceConfig config);

  /// Adopts a pre-built (e.g. loaded) frozen table.
  MappingService(io::SequenceSet subjects, ServiceConfig config,
                 SketchTable table);

  /// Loads the frozen JEMIDX1 index at `index_path` (core::index_serde) and
  /// serves from it. A missing/corrupt/mismatched artifact is never fatal:
  /// the reason is recorded in load_report() and the index is rebuilt from
  /// the subject set — the same degrade-gracefully contract jem_map's
  /// --load-index has always had.
  [[nodiscard]] static MappingService from_index(const std::string& index_path,
                                                 io::SequenceSet subjects,
                                                 ServiceConfig config);

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;
  /// Movable: the subject set and engine live behind stable pointers, so
  /// the engine's internal reference to the subjects survives the move.
  MappingService(MappingService&&) noexcept = default;
  MappingService& operator=(MappingService&&) noexcept = default;

  /// How the index came to be: loaded from an artifact or rebuilt (and why).
  struct LoadReport {
    bool loaded_from_artifact = false;
    std::string rejection;  // non-empty when an offered artifact was rejected
  };
  [[nodiscard]] const LoadReport& load_report() const noexcept {
    return load_report_;
  }

  [[nodiscard]] const MappingEngine& engine() const noexcept {
    return *engine_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const io::SequenceSet& subjects() const noexcept {
    return *subjects_;
  }

  /// Fresh per-thread scratch sized for this service's subject set.
  [[nodiscard]] MapScratch make_scratch() const {
    return MapScratch(subjects_->size());
  }

  /// Maps one request on the caller's thread with a private scratch
  /// (convenience for tests and one-shot callers).
  [[nodiscard]] MapServiceResponse map(const MapServiceRequest& request) const;

  /// Hot path: maps one request reusing `scratch`. `deadline` is the
  /// absolute expiry (admission time + budget in the serve layer); nullopt
  /// derives it from request.deadline at entry. An expired deadline returns
  /// a response with failure = kDeadlineExceeded instead of mapping — the
  /// same contained-failure shape run_stream_guarded gives EngineTimeout.
  [[nodiscard]] MapServiceResponse map(
      const MapServiceRequest& request, MapScratch& scratch,
      std::optional<Clock::time_point> deadline = std::nullopt) const;

  /// Maps a coalesced micro-batch with one warm scratch (the serve layer's
  /// batcher calls this with every request in flight). `deadlines` is
  /// either empty (none) or exactly requests.size() absolute expiries;
  /// expired entries get a kDeadlineExceeded response, and every other
  /// response is bit-identical to a single-shot map() of that request.
  [[nodiscard]] std::vector<MapServiceResponse> map_batch(
      std::span<const MapServiceRequest> requests,
      std::span<const Clock::time_point> deadlines = {}) const;

 private:
  MapServiceResponse map_impl(const MapServiceRequest& request,
                              MapScratch& scratch,
                              std::optional<Clock::time_point> deadline) const;

  std::unique_ptr<io::SequenceSet> subjects_;  // stable across moves
  ServiceConfig config_;
  std::unique_ptr<MappingEngine> engine_;  // set in every constructor
  LoadReport load_report_;
};

}  // namespace jem::core
