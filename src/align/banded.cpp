#include "align/banded.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

namespace jem::align {

std::uint64_t edit_distance(std::string_view a, std::string_view b) {
  // Two-row DP; iterate over the shorter string in the inner loop.
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<std::uint64_t> prev(b.size() + 1);
  std::vector<std::uint64_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::uint64_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({sub, prev[j] + 1, curr[j - 1] + 1});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::optional<std::uint64_t> banded_edit_distance(std::string_view a,
                                                  std::string_view b,
                                                  std::uint64_t band) {
  const std::uint64_t length_gap =
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  if (length_gap > band) return std::nullopt;

  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max() / 2;
  const auto w = static_cast<std::size_t>(2 * band + 1);
  // Row i stores cells j in [i - band, i + band], offset into [0, w).
  std::vector<std::uint64_t> prev(w, kInf);
  std::vector<std::uint64_t> curr(w, kInf);

  // Row 0: D[0][j] = j for j <= band.
  for (std::size_t d = 0; d < w; ++d) {
    const std::int64_t j = static_cast<std::int64_t>(d) -
                           static_cast<std::int64_t>(band);
    if (j >= 0 && j <= static_cast<std::int64_t>(b.size())) {
      prev[d] = static_cast<std::uint64_t>(j);
    }
  }

  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::int64_t j_lo =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(i) -
                                      static_cast<std::int64_t>(band));
    const std::int64_t j_hi =
        std::min<std::int64_t>(static_cast<std::int64_t>(b.size()),
                               static_cast<std::int64_t>(i + band));
    for (std::int64_t j = j_lo; j <= j_hi; ++j) {
      const std::size_t d = static_cast<std::size_t>(
          j - static_cast<std::int64_t>(i) + static_cast<std::int64_t>(band));
      std::uint64_t best = kInf;
      if (j == 0) {
        best = i;
      } else {
        // Substitution: prev row, same diagonal offset.
        const std::uint64_t sub =
            prev[d] + (a[i - 1] == b[static_cast<std::size_t>(j) - 1] ? 0 : 1);
        best = sub;
        // Deletion from a: prev row, diagonal offset +1.
        if (d + 1 < w) best = std::min(best, prev[d + 1] + 1);
        // Insertion into a: current row, diagonal offset -1.
        if (d >= 1) best = std::min(best, curr[d - 1] + 1);
      }
      curr[d] = best;
    }
    std::swap(prev, curr);
  }

  const std::int64_t final_d = static_cast<std::int64_t>(b.size()) -
                               static_cast<std::int64_t>(a.size()) +
                               static_cast<std::int64_t>(band);
  const std::uint64_t result = prev[static_cast<std::size_t>(final_d)];
  if (result > band) return std::nullopt;
  return result;
}

SemiglobalResult semiglobal_align(std::string_view query,
                                  std::string_view subject) {
  // D[i][j] = min edits aligning query[0..i) ending at subject position j,
  // with D[0][j] = 0 (free leading subject gap). The best end column of the
  // last row gives the placement; the start is recovered from a parallel
  // "start column" table propagated with the DP (O(|q|·|s|) time, O(|s|)
  // space).
  const std::size_t qn = query.size();
  const std::size_t sn = subject.size();
  SemiglobalResult result;
  if (qn == 0) {
    result.identity = 1.0;
    return result;
  }
  if (sn == 0) {
    result.edit_distance = qn;
    return result;
  }

  std::vector<std::uint64_t> prev(sn + 1), curr(sn + 1);
  std::vector<std::uint64_t> prev_start(sn + 1), curr_start(sn + 1);
  for (std::size_t j = 0; j <= sn; ++j) {
    prev[j] = 0;
    prev_start[j] = j;  // an alignment ending at column j starts at j
  }

  for (std::size_t i = 1; i <= qn; ++i) {
    curr[0] = i;
    curr_start[0] = 0;
    for (std::size_t j = 1; j <= sn; ++j) {
      const std::uint64_t sub =
          prev[j - 1] + (query[i - 1] == subject[j - 1] ? 0 : 1);
      const std::uint64_t del = prev[j] + 1;     // consume query base only
      const std::uint64_t ins = curr[j - 1] + 1; // consume subject base only
      if (sub <= del && sub <= ins) {
        curr[j] = sub;
        curr_start[j] = prev_start[j - 1];
      } else if (del <= ins) {
        curr[j] = del;
        curr_start[j] = prev_start[j];
      } else {
        curr[j] = ins;
        curr_start[j] = curr_start[j - 1];
      }
    }
    std::swap(prev, curr);
    std::swap(prev_start, curr_start);
  }

  std::size_t best_j = 0;
  for (std::size_t j = 1; j <= sn; ++j) {
    if (prev[j] < prev[best_j]) best_j = j;
  }
  result.edit_distance = prev[best_j];
  result.subject_begin = prev_start[best_j];
  result.subject_end = best_j;
  const std::uint64_t window = best_j - prev_start[best_j];
  const std::uint64_t denom = std::max<std::uint64_t>(qn, window);
  result.identity =
      denom == 0 ? 1.0
                 : 1.0 - static_cast<double>(result.edit_distance) /
                             static_cast<double>(denom);
  return result;
}

LocalResult local_align(std::string_view query, std::string_view subject) {
  return local_align_cigar(query, subject).local;
}

CigarResult local_align_cigar(std::string_view query,
                              std::string_view subject) {
  CigarResult out;
  LocalResult& result = out.local;
  const std::size_t qn = query.size();
  const std::size_t sn = subject.size();
  if (qn == 0 || sn == 0) return out;

  constexpr std::int32_t kMatch = 1;
  constexpr std::int32_t kMismatch = -1;
  // Gaps cost more than mismatches (BLAST-like ratio). With gap == match a
  // local alignment can chain matches through unrelated sequence at
  // break-even cost and creep far into non-homologous flanks; -2 keeps the
  // alignment confined to the truly homologous region.
  constexpr std::int32_t kGap = -2;
  enum : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

  // Full DP with a traceback matrix (rows = query+1, cols = subject+1).
  const std::size_t stride = sn + 1;
  std::vector<std::int32_t> score((qn + 1) * stride, 0);
  std::vector<std::uint8_t> trace((qn + 1) * stride, kStop);

  std::int32_t best_score = 0;
  std::size_t best_i = 0;
  std::size_t best_j = 0;
  for (std::size_t i = 1; i <= qn; ++i) {
    for (std::size_t j = 1; j <= sn; ++j) {
      const bool match = query[i - 1] == subject[j - 1];
      const std::int32_t diag = score[(i - 1) * stride + (j - 1)] +
                                (match ? kMatch : kMismatch);
      const std::int32_t up = score[(i - 1) * stride + j] + kGap;
      const std::int32_t left = score[i * stride + (j - 1)] + kGap;
      std::int32_t cell = 0;
      std::uint8_t direction = kStop;
      if (diag > cell) {
        cell = diag;
        direction = kDiag;
      }
      if (up > cell) {
        cell = up;
        direction = kUp;
      }
      if (left > cell) {
        cell = left;
        direction = kLeft;
      }
      score[i * stride + j] = cell;
      trace[i * stride + j] = direction;
      if (cell > best_score) {
        best_score = cell;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best_score == 0) return out;

  // Trace back from the maximum-scoring cell, collecting CIGAR ops in
  // reverse (kDiag -> M, kUp -> I [query-only], kLeft -> D [subject-only]).
  result.score = best_score;
  result.query_end = best_i;
  result.subject_end = best_j;
  std::vector<CigarOp> reversed;
  const auto emit = [&reversed](char op) {
    if (!reversed.empty() && reversed.back().op == op) {
      ++reversed.back().length;
    } else {
      reversed.push_back({op, 1});
    }
  };
  std::size_t i = best_i;
  std::size_t j = best_j;
  while (trace[i * stride + j] != kStop) {
    switch (trace[i * stride + j]) {
      case kDiag:
        if (query[i - 1] == subject[j - 1]) ++result.matches;
        emit('M');
        --i;
        --j;
        break;
      case kUp:
        emit('I');
        --i;
        break;
      case kLeft:
        emit('D');
        --j;
        break;
      default:
        break;
    }
    ++result.columns;
  }
  result.query_begin = i;
  result.subject_begin = j;

  // Assemble forward CIGAR with soft clips for the unaligned query ends.
  if (result.query_begin > 0) {
    out.cigar.push_back(
        {'S', static_cast<std::uint32_t>(result.query_begin)});
  }
  out.cigar.insert(out.cigar.end(), reversed.rbegin(), reversed.rend());
  if (result.query_end < qn) {
    out.cigar.push_back(
        {'S', static_cast<std::uint32_t>(qn - result.query_end)});
  }
  return out;
}

std::string cigar_string(const std::vector<CigarOp>& cigar) {
  if (cigar.empty()) return "*";
  std::string out;
  for (const CigarOp& op : cigar) {
    out += std::to_string(op.length);
    out.push_back(op.op);
  }
  return out;
}

std::uint64_t cigar_query_span(const std::vector<CigarOp>& ops) {
  std::uint64_t span = 0;
  for (const CigarOp& op : ops) {
    if (op.op == 'M' || op.op == 'I' || op.op == 'S') span += op.length;
  }
  return span;
}

std::uint64_t cigar_subject_span(const std::vector<CigarOp>& ops) {
  std::uint64_t span = 0;
  for (const CigarOp& op : ops) {
    if (op.op == 'M' || op.op == 'D') span += op.length;
  }
  return span;
}

}  // namespace jem::align
