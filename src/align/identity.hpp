// Percent-identity verification of mappings (the paper's Fig 9 pipeline,
// which used BLAST): for a mapped <segment, contig> pair, localize the
// segment on the contig via shared minimizers, extract a window with margin,
// and compute identity with an exact semi-global alignment — trying both
// orientations, since contigs and reads have arbitrary strands.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "align/banded.hpp"
#include "core/minimizer.hpp"

namespace jem::align {

struct IdentityParams {
  core::MinimizerParams minimizer{16, 100};
  std::uint32_t window_margin = 400;  // extra subject bases on each side
};

struct IdentityResult {
  double identity = 0.0;      // best of the two orientations
  bool reverse = false;       // true if the reverse-complement strand won
  std::uint64_t subject_begin = 0;
  std::uint64_t subject_end = 0;
  // CIGAR of the winning local alignment (query as aligned, i.e. already
  // reverse-complemented when `reverse` is set), with soft-clipped ends.
  std::vector<CigarOp> cigar;
};

/// Localizes `segment` on `subject` and returns its percent identity, or
/// nullopt when no shared minimizer anchors the placement.
[[nodiscard]] std::optional<IdentityResult> segment_identity(
    std::string_view segment, std::string_view subject,
    const IdentityParams& params = {});

}  // namespace jem::align
