#include "align/identity.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "align/banded.hpp"
#include "core/dna.hpp"

namespace jem::align {

namespace {

/// Median offset (subject_pos - query_pos) of shared minimizers between the
/// query and one orientation of the subject; nullopt when nothing is shared.
std::optional<std::int64_t> anchor_offset(
    const std::vector<core::Minimizer>& query,
    const std::vector<core::Minimizer>& subject) {
  std::unordered_map<core::KmerCode, std::vector<std::uint32_t>> query_pos;
  for (const core::Minimizer& m : query) query_pos[m.kmer].push_back(m.position);

  std::vector<std::int64_t> offsets;
  for (const core::Minimizer& m : subject) {
    const auto it = query_pos.find(m.kmer);
    if (it == query_pos.end()) continue;
    for (std::uint32_t qp : it->second) {
      offsets.push_back(static_cast<std::int64_t>(m.position) -
                        static_cast<std::int64_t>(qp));
    }
  }
  if (offsets.empty()) return std::nullopt;
  const std::size_t mid = offsets.size() / 2;
  std::nth_element(offsets.begin(),
                   offsets.begin() + static_cast<std::ptrdiff_t>(mid),
                   offsets.end());
  return offsets[mid];
}

/// Aligns the query against the subject window around `offset` with a local
/// (Smith-Waterman) alignment — BLAST semantics: identity is measured over
/// the best-aligned region, so a segment that only partially overlaps the
/// contig scores the identity of its overlapping part.
IdentityResult align_at(std::string_view segment, std::string_view subject,
                        std::int64_t offset, const IdentityParams& params,
                        bool reverse) {
  const auto margin = static_cast<std::int64_t>(params.window_margin);
  const std::int64_t lo = std::max<std::int64_t>(0, offset - margin);
  const std::int64_t hi = std::min<std::int64_t>(
      static_cast<std::int64_t>(subject.size()),
      offset + static_cast<std::int64_t>(segment.size()) + margin);
  IdentityResult result;
  result.reverse = reverse;
  if (hi <= lo) return result;

  const std::string_view window = subject.substr(
      static_cast<std::size_t>(lo), static_cast<std::size_t>(hi - lo));
  CigarResult aligned = local_align_cigar(segment, window);
  result.identity = aligned.local.identity();
  result.subject_begin =
      static_cast<std::uint64_t>(lo) + aligned.local.subject_begin;
  result.subject_end =
      static_cast<std::uint64_t>(lo) + aligned.local.subject_end;
  result.cigar = std::move(aligned.cigar);
  return result;
}

}  // namespace

std::optional<IdentityResult> segment_identity(std::string_view segment,
                                               std::string_view subject,
                                               const IdentityParams& params) {
  const std::vector<core::Minimizer> query_minimizers =
      core::minimizer_scan(segment, params.minimizer);
  if (query_minimizers.empty()) return std::nullopt;

  // Canonical minimizers match across strands, so one subject scan anchors
  // both orientations; the orientation is disambiguated by aligning the
  // forward and reverse-complemented segment and keeping the better.
  const std::vector<core::Minimizer> subject_minimizers =
      core::minimizer_scan(subject, params.minimizer);

  const auto fwd_offset = anchor_offset(query_minimizers, subject_minimizers);

  const std::string rc_segment = core::reverse_complement(segment);
  const std::vector<core::Minimizer> rc_minimizers =
      core::minimizer_scan(rc_segment, params.minimizer);
  const auto rc_offset = anchor_offset(rc_minimizers, subject_minimizers);

  std::optional<IdentityResult> best;
  if (fwd_offset.has_value()) {
    best = align_at(segment, subject, *fwd_offset, params, /*reverse=*/false);
  }
  if (rc_offset.has_value()) {
    const IdentityResult rc_result =
        align_at(rc_segment, subject, *rc_offset, params, /*reverse=*/true);
    if (!best.has_value() || rc_result.identity > best->identity) {
      best = rc_result;
    }
  }
  return best;
}

}  // namespace jem::align
