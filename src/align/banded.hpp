// Exact alignment kernels used to verify mapping quality (the paper used
// BLAST for its Fig 9 percent-identity measurement; these provide the same
// number from an exact dynamic program).
//
//  * edit_distance           — full Levenshtein DP, O(mn), small inputs.
//  * banded_edit_distance    — banded Levenshtein; returns nullopt when the
//                              true distance exceeds the band.
//  * semiglobal_identity     — glocal alignment of a query against a longer
//                              subject window (free gaps at the subject
//                              ends), returning percent identity of the best
//                              placement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jem::align {

/// Classic Levenshtein distance (unit costs).
[[nodiscard]] std::uint64_t edit_distance(std::string_view a,
                                          std::string_view b);

/// Banded Levenshtein with band half-width `band`. Exact when the true
/// distance is <= band; otherwise returns nullopt.
[[nodiscard]] std::optional<std::uint64_t> banded_edit_distance(
    std::string_view a, std::string_view b, std::uint64_t band);

/// Result of a semi-global alignment of `query` inside `subject`.
struct SemiglobalResult {
  std::uint64_t edit_distance = 0;  // of the best placement
  std::uint64_t subject_begin = 0;  // best-placement window on the subject
  std::uint64_t subject_end = 0;
  double identity = 0.0;  // 1 - dist / max(|query|, window length)
};

/// Aligns `query` against `subject` with free leading/trailing subject gaps
/// (the query must be consumed entirely). O(|q|·|s|) — callers pass a
/// pre-localized subject window, not a whole contig.
[[nodiscard]] SemiglobalResult semiglobal_align(std::string_view query,
                                                std::string_view subject);

/// Result of a local (Smith-Waterman) alignment with unit scores
/// (+1 match, -1 mismatch, -1 gap).
struct LocalResult {
  std::int64_t score = 0;
  std::uint64_t matches = 0;       // matched columns in the best alignment
  std::uint64_t columns = 0;       // total alignment columns
  std::uint64_t query_begin = 0;   // aligned query range [begin, end)
  std::uint64_t query_end = 0;
  std::uint64_t subject_begin = 0;
  std::uint64_t subject_end = 0;

  /// BLAST-style percent identity: matches / alignment columns.
  [[nodiscard]] double identity() const noexcept {
    return columns == 0 ? 0.0
                        : static_cast<double>(matches) /
                              static_cast<double>(columns);
  }
};

/// Smith-Waterman local alignment with full traceback — the measurement the
/// paper's Fig 9 takes from BLAST: identity over the best-aligned region
/// only, so a segment that half-overlaps a contig still scores its
/// overlapping half. O(|q|·|s|) time and space.
[[nodiscard]] LocalResult local_align(std::string_view query,
                                      std::string_view subject);

/// One CIGAR operation (SAM semantics): M (align column), I (insertion to
/// the subject, i.e. query-only base), D (deletion from the subject),
/// S (soft clip).
struct CigarOp {
  char op = 'M';
  std::uint32_t length = 0;

  friend bool operator==(const CigarOp&, const CigarOp&) = default;
};

/// Local alignment that also returns the CIGAR of the best placement, with
/// soft clips covering the unaligned query ends — ready for SAM emission.
struct CigarResult {
  LocalResult local;
  std::vector<CigarOp> cigar;  // includes leading/trailing S ops
};

[[nodiscard]] CigarResult local_align_cigar(std::string_view query,
                                            std::string_view subject);

/// Renders a CIGAR vector as the SAM string ("5S90M1I4M..."); empty input
/// renders as "*".
[[nodiscard]] std::string cigar_string(const std::vector<CigarOp>& cigar);

/// Total query bases consumed by a CIGAR (M + I + S) — must equal the query
/// length of the record it annotates.
[[nodiscard]] std::uint64_t cigar_query_span(const std::vector<CigarOp>& ops);

/// Total subject bases consumed (M + D).
[[nodiscard]] std::uint64_t cigar_subject_span(
    const std::vector<CigarOp>& ops);

}  // namespace jem::align
