#include "sim/presets.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace jem::sim {

const std::vector<DatasetPreset>& table1_presets() {
  // Columns from Table I of the paper; repeat fractions reflect the
  // organism class (bacteria ~ none, invertebrates moderate, vertebrate
  // chromosomes and rice repeat-rich).
  static const std::vector<DatasetPreset> kPresets = {
      {"E. coli", 4'641'652, 0.51, 0.02, 12388, 13997, 0.974, 10.0, 10205,
       3418, false},
      {"P. aeruginosa", 6'264'404, 0.66, 0.02, 13382, 18218, 0.983, 10.0,
       10221, 3363, false},
      {"C. elegans", 100'286'401, 0.35, 0.12, 2819, 4663, 0.854, 10.0, 10205,
       3400, false},
      {"D. busckii", 118'492'362, 0.40, 0.15, 2541, 3151, 0.922, 10.6, 10168,
       3412, false},
      {"Human chr 7", 159'345'973, 0.41, 0.28, 2007, 1934, 0.697, 10.0, 9612,
       2988, false},
      {"Human chr 8", 145'138'636, 0.40, 0.28, 2053, 1876, 0.762, 10.0, 10200,
       3402, false},
      {"B. splendens", 339'050'970, 0.44, 0.20, 3462, 4181, 0.999, 12.9,
       10177, 3403, false},
      {"O. sativa chr 8 (real)", 28'443'022, 0.44, 0.35, 1851, 2067, 0.647,
       20.0, 19642, 4246, true},
  };
  return kPresets;
}

const DatasetPreset& preset_by_name(std::string_view name) {
  for (const DatasetPreset& preset : table1_presets()) {
    if (preset.name == name) return preset;
  }
  throw std::invalid_argument("unknown dataset preset: " + std::string(name));
}

Dataset generate_dataset(const DatasetPreset& preset, double scale,
                         std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("generate_dataset: scale must be in (0, 1]");
  }

  Dataset dataset;
  dataset.preset = preset;
  dataset.scale = scale;

  GenomeParams genome_params;
  genome_params.length = std::max<std::uint64_t>(
      50'000, static_cast<std::uint64_t>(
                  static_cast<double>(preset.genome_length) * scale));
  genome_params.gc = preset.gc;
  genome_params.repeat_fraction = preset.repeat_fraction;
  genome_params.seed = util::mix64(seed ^ 0x01);
  dataset.genome = simulate_genome(genome_params);

  ContigSimParams contig_params;
  contig_params.mean_length = preset.contig_mean;
  contig_params.sd_length = preset.contig_sd;
  contig_params.coverage_fraction = std::min(preset.subject_coverage, 1.0);
  contig_params.seed = util::mix64(seed ^ 0x02);
  dataset.contigs = simulate_contigs(dataset.genome, contig_params);

  HiFiParams read_params;
  read_params.coverage = preset.read_coverage;
  read_params.mean_length = preset.read_mean;
  read_params.sd_length = preset.read_sd;
  read_params.seed = util::mix64(seed ^ 0x03);
  dataset.reads = simulate_hifi_reads(dataset.genome, read_params);

  return dataset;
}

}  // namespace jem::sim
