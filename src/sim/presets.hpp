// The eight input data sets of Table I, expressed as simulation presets.
//
// Each preset carries the paper's published statistics (genome length,
// contig count/length distribution, subject coverage fraction, read count,
// read length distribution) plus a repeat-content profile reflecting the
// organism class — the property the paper credits for the precision spread
// between bacterial and eukaryotic inputs.
//
// Presets are generated at a *scale factor* (fraction of the true genome
// length): the full sizes (up to 339 Mbp / 4.4 Gbp of query data) exceed
// this container's time budget, and the mapping behaviour under study is
// governed by per-base densities (coverage, contig length, repeat fraction),
// all of which are preserved under scaling. EXPERIMENTS.md records the
// factor used for every regenerated table/figure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/contigs.hpp"
#include "sim/genome.hpp"
#include "sim/hifi_reads.hpp"

namespace jem::sim {

struct DatasetPreset {
  std::string name;
  std::uint64_t genome_length = 0;   // the paper's full size
  double gc = 0.41;
  double repeat_fraction = 0.0;
  double contig_mean = 3000.0;       // Table I contig length avg
  double contig_sd = 4000.0;         // Table I contig length std.dev
  double subject_coverage = 0.92;    // total subject bp / genome bp
  double read_coverage = 10.0;       // query bp / genome bp
  double read_mean = 10205.0;        // Table I read length avg
  double read_sd = 3400.0;
  bool real_data = false;            // O. sativa row used real reads
};

/// All eight Table I presets, in the paper's row order.
[[nodiscard]] const std::vector<DatasetPreset>& table1_presets();

/// Lookup by name (case-sensitive, e.g. "E. coli"); throws if unknown.
[[nodiscard]] const DatasetPreset& preset_by_name(std::string_view name);

/// A fully generated data set: genome + contigs + reads with ground truth.
struct Dataset {
  DatasetPreset preset;
  double scale = 1.0;
  std::string genome;
  SimulatedContigs contigs;
  SimulatedReads reads;
};

/// Generates a preset at the given scale (genome length multiplied by
/// `scale`, densities preserved). Deterministic in (preset, scale, seed).
[[nodiscard]] Dataset generate_dataset(const DatasetPreset& preset,
                                       double scale, std::uint64_t seed);

}  // namespace jem::sim
