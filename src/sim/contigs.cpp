#include "sim/contigs.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::sim {

LogNormalSpec lognormal_from_mean_sd(double mean, double sd) {
  if (mean <= 0.0 || sd <= 0.0) {
    throw std::invalid_argument("lognormal_from_mean_sd: mean/sd must be > 0");
  }
  const double variance_ratio = (sd * sd) / (mean * mean);
  LogNormalSpec spec;
  spec.sigma = std::sqrt(std::log1p(variance_ratio));
  spec.mu = std::log(mean) - 0.5 * spec.sigma * spec.sigma;
  return spec;
}

namespace {

void apply_substitutions(std::string& seq, double rate,
                         util::Xoshiro256ss& rng) {
  if (rate <= 0.0) return;
  for (char& c : seq) {
    if (rng.uniform() >= rate) continue;
    const std::uint8_t old_code = core::base_code(c);
    std::uint8_t new_code = old_code;
    while (new_code == old_code) {
      new_code = static_cast<std::uint8_t>(rng.bounded(4));
    }
    c = core::code_base(new_code);
  }
}

}  // namespace

SimulatedContigs simulate_contigs(std::string_view genome,
                                  const ContigSimParams& params) {
  if (genome.empty()) {
    throw std::invalid_argument("simulate_contigs: empty genome");
  }
  if (params.coverage_fraction <= 0.0 || params.coverage_fraction > 1.0) {
    throw std::invalid_argument(
        "simulate_contigs: coverage_fraction must be in (0, 1]");
  }

  util::Xoshiro256ss rng(util::mix64(params.seed ^ 0x434f4e544947ULL));
  const LogNormalSpec spec =
      lognormal_from_mean_sd(params.mean_length, params.sd_length);
  std::lognormal_distribution<double> length_dist(spec.mu, spec.sigma);
  // Gaps sized so contigs cover coverage_fraction of the walk in expectation:
  // E[gap] = E[contig] * (1 - f) / f.
  const double mean_gap = params.mean_length *
                          (1.0 - params.coverage_fraction) /
                          params.coverage_fraction;
  std::exponential_distribution<double> gap_dist(
      mean_gap > 0.0 ? 1.0 / mean_gap : 1.0);

  SimulatedContigs out;
  std::uint64_t pos = 0;
  std::uint32_t index = 0;
  while (pos < genome.size()) {
    auto length = static_cast<std::uint64_t>(length_dist(rng));
    length = std::max(length, params.min_length);
    length = std::min(length, static_cast<std::uint64_t>(genome.size()) - pos);

    if (length >= params.min_length) {
      std::string bases(genome.substr(pos, length));
      const bool reverse =
          params.random_orientation && rng.uniform() < 0.5;
      if (reverse) bases = core::reverse_complement(bases);
      apply_substitutions(bases, params.error_rate, rng);

      out.contigs.add("contig_" + std::to_string(index), bases);
      out.truth.push_back({pos, pos + length});
      out.reversed.push_back(reverse);
      ++index;
    }
    pos += length;
    if (mean_gap > 0.0) {
      pos += static_cast<std::uint64_t>(gap_dist(rng));
    }
  }

  return out;
}

}  // namespace jem::sim
