// Contig simulation — the stand-in for the paper's ART (100 bp Illumina
// reads) + Minia (de Bruijn assembly) contig-construction pipeline.
//
// What the mapping experiments need from the contig set is its *shape*, not
// the assembler: (a) a non-redundant tiling of most of the genome,
// (b) the contig length distribution of Table I (mean ≈ stddev, i.e. a
// heavy-tailed log-normal), (c) assembly gaps between contigs, and
// (d) arbitrary strand orientation. The simulator walks the genome
// alternating contig and gap segments drawn from calibrated distributions
// and records each contig's true genome interval — which the paper had to
// recover by re-mapping contigs with Minimap2, and we get exactly.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "io/sequence_set.hpp"

namespace jem::sim {

/// Half-open interval of genome coordinates.
struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t length() const noexcept { return end - begin; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Overlap length of two intervals (0 when disjoint).
[[nodiscard]] constexpr std::uint64_t overlap(const Interval& a,
                                              const Interval& b) noexcept {
  const std::uint64_t begin = a.begin > b.begin ? a.begin : b.begin;
  const std::uint64_t end = a.end < b.end ? a.end : b.end;
  return end > begin ? end - begin : 0;
}

struct ContigSimParams {
  double mean_length = 3000.0;     // target contig length mean (Table I)
  double sd_length = 4000.0;       // target contig length stddev
  std::uint64_t min_length = 500;  // Table I counts contigs >= 500 bp
  double coverage_fraction = 0.92; // fraction of the genome tiled by contigs
  bool random_orientation = true;  // assemblers emit arbitrary strands
  double error_rate = 0.0;         // per-base substitutions (short-read
                                   // assemblies are near-exact)
  std::uint64_t seed = 2;
};

struct SimulatedContigs {
  io::SequenceSet contigs;
  std::vector<Interval> truth;   // genome interval per contig
  std::vector<bool> reversed;    // orientation per contig
};

[[nodiscard]] SimulatedContigs simulate_contigs(std::string_view genome,
                                                const ContigSimParams& params);

/// Log-normal (mu, sigma) such that the distribution has the given mean and
/// standard deviation.
struct LogNormalSpec {
  double mu = 0.0;
  double sigma = 1.0;
};
[[nodiscard]] LogNormalSpec lognormal_from_mean_sd(double mean, double sd);

}  // namespace jem::sim
