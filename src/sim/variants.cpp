#include "sim/variants.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::sim {

DonorGenome apply_structural_variants(std::string_view genome,
                                      const VariantParams& params) {
  if (genome.empty()) {
    throw std::invalid_argument("apply_structural_variants: empty genome");
  }
  if (params.deletion_fraction + params.insertion_fraction > 1.0) {
    throw std::invalid_argument(
        "apply_structural_variants: event-type fractions exceed 1");
  }
  if (params.min_length == 0 || params.min_length > params.max_length) {
    throw std::invalid_argument(
        "apply_structural_variants: bad length bounds");
  }

  util::Xoshiro256ss rng(util::mix64(params.seed ^ 0x5356534956ULL));
  std::exponential_distribution<double> length_dist(
      1.0 / static_cast<double>(params.mean_length));

  const auto target_events = static_cast<std::size_t>(
      params.events_per_mbp * static_cast<double>(genome.size()) / 1e6);

  // Sample non-overlapping events by rejection: keep positions at least
  // max_length apart from accepted ones (cheap at realistic densities).
  DonorGenome result;
  result.events.reserve(target_events);
  std::size_t attempts = 0;
  while (result.events.size() < target_events &&
         attempts < target_events * 20 + 100) {
    ++attempts;
    auto length = static_cast<std::uint64_t>(length_dist(rng));
    length = std::clamp(length, params.min_length, params.max_length);
    if (length >= genome.size()) continue;
    const std::uint64_t position = rng.bounded(genome.size() - length);

    bool overlaps = false;
    for (const VariantEvent& event : result.events) {
      const std::uint64_t lo = event.position;
      const std::uint64_t hi = event.position + event.length;
      if (position < hi && position + length > lo) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;

    const double kind = rng.uniform();
    VariantType type = VariantType::kInversion;
    if (kind < params.deletion_fraction) {
      type = VariantType::kDeletion;
    } else if (kind < params.deletion_fraction + params.insertion_fraction) {
      type = VariantType::kInsertion;
    }
    result.events.push_back({type, position, length});
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const VariantEvent& a, const VariantEvent& b) {
              return a.position < b.position;
            });

  // Build the donor genome left to right.
  result.genome.reserve(genome.size() + genome.size() / 16);
  std::uint64_t cursor = 0;
  for (const VariantEvent& event : result.events) {
    result.genome.append(genome.substr(cursor, event.position - cursor));
    switch (event.type) {
      case VariantType::kDeletion:
        break;  // skip the span
      case VariantType::kInsertion: {
        // Novel sequence inserted *before* the span, which is kept.
        std::string inserted(event.length, 'A');
        for (char& c : inserted) {
          c = core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
        }
        result.genome.append(inserted);
        result.genome.append(genome.substr(event.position, event.length));
        break;
      }
      case VariantType::kInversion: {
        result.genome.append(core::reverse_complement(
            genome.substr(event.position, event.length)));
        break;
      }
    }
    cursor = event.position + event.length;
  }
  result.genome.append(genome.substr(cursor));
  return result;
}

}  // namespace jem::sim
