// Synthetic genome generation — the stand-in for the GenBank reference
// genomes the paper simulated from (Table I).
//
// What matters for the mapping experiments is not the literal sequence but
// (a) the size, (b) the GC composition, and (c) the repeat content: the
// paper attributes the precision gap between bacterial and eukaryotic
// inputs to repetitive sequence confusing the sketches. The generator
// therefore plants configurable repeat families: each family is a random
// "ancestral" unit copied to random locations with per-copy divergence and
// random orientation, which is exactly the structure that produces
// ambiguous minimizer hits.
#pragma once

#include <cstdint>
#include <string>

namespace jem::sim {

struct GenomeParams {
  std::uint64_t length = 1'000'000;
  double gc = 0.41;                 // GC fraction of the random background
  double repeat_fraction = 0.0;     // genome fraction covered by repeats
  std::uint32_t repeat_unit_length = 5000;
  int repeat_families = 8;
  // Per-base mutation rate between repeat copies. Real repeat families
  // (transposable elements etc.) diverge by several percent; near-identical
  // copies would make 1 Kbp segments fundamentally unmappable rather than
  // merely hard.
  double repeat_divergence = 0.08;
  std::uint64_t seed = 1;
};

/// Generates a genome according to `params`. Deterministic in the seed.
[[nodiscard]] std::string simulate_genome(const GenomeParams& params);

}  // namespace jem::sim
