// Structural-variant simulation. The paper's read simulator (Sim-it, ref
// [26]) is in fact an SV benchmark tool; hybrid workflows must keep mapping
// reads from a *donor* genome that differs from the assembly's genome by
// deletions, insertions and inversions. This module derives such a donor
// genome and records the event list, enabling robustness studies of the
// mapper under genuine biological divergence (bench/robustness_sv).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jem::sim {

enum class VariantType : std::uint8_t { kDeletion, kInsertion, kInversion };

struct VariantEvent {
  VariantType type = VariantType::kDeletion;
  std::uint64_t position = 0;  // on the *original* genome
  std::uint64_t length = 0;

  friend bool operator==(const VariantEvent&, const VariantEvent&) = default;
};

struct VariantParams {
  double events_per_mbp = 20.0;    // total SV events per megabase
  double deletion_fraction = 0.4;  // event-type mix (remainder: inversions)
  double insertion_fraction = 0.3;
  std::uint64_t mean_length = 500;  // exponential event-length model
  std::uint64_t min_length = 50;
  std::uint64_t max_length = 5000;
  std::uint64_t seed = 4;
};

struct DonorGenome {
  std::string genome;                // the variant-carrying donor sequence
  std::vector<VariantEvent> events;  // sorted by position, non-overlapping
};

/// Derives a donor genome from `genome` by planting non-overlapping SV
/// events. Deterministic in the seed.
[[nodiscard]] DonorGenome apply_structural_variants(
    std::string_view genome, const VariantParams& params);

}  // namespace jem::sim
