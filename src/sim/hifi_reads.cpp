#include "sim/hifi_reads.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::sim {

namespace {

char random_acgt(util::Xoshiro256ss& rng) {
  return core::code_base(static_cast<std::uint8_t>(rng.bounded(4)));
}

char random_other(util::Xoshiro256ss& rng, char not_this) {
  char c = not_this;
  while (c == not_this) c = random_acgt(rng);
  return c;
}

std::string apply_errors(std::string_view seq, const HiFiParams& params,
                         util::Xoshiro256ss& rng) {
  if (params.error_rate <= 0.0) return std::string(seq);
  std::string out;
  out.reserve(seq.size() + seq.size() / 64);
  const double p_mismatch = params.mismatch_fraction;
  const double p_insert = params.insertion_fraction;
  for (char c : seq) {
    if (rng.uniform() >= params.error_rate) {
      out.push_back(c);
      continue;
    }
    const double kind = rng.uniform();
    if (kind < p_mismatch) {
      out.push_back(random_other(rng, c));
    } else if (kind < p_mismatch + p_insert) {
      out.push_back(random_acgt(rng));
      out.push_back(c);
    }
    // else: deletion — emit nothing for this base
  }
  return out;
}

}  // namespace

std::string apply_hifi_errors(std::string_view seq, const HiFiParams& params,
                              std::uint64_t seed) {
  util::Xoshiro256ss rng(util::mix64(seed ^ 0x4849464945525277ULL));
  return apply_errors(seq, params, rng);
}

SimulatedReads simulate_hifi_reads(std::string_view genome,
                                   const HiFiParams& params) {
  if (genome.empty()) {
    throw std::invalid_argument("simulate_hifi_reads: empty genome");
  }
  if (params.coverage <= 0.0) {
    throw std::invalid_argument("simulate_hifi_reads: coverage must be > 0");
  }
  if (params.mean_length <= 0.0 || params.sd_length < 0.0) {
    throw std::invalid_argument("simulate_hifi_reads: bad length model");
  }
  if (params.mismatch_fraction + params.insertion_fraction > 1.0) {
    throw std::invalid_argument("simulate_hifi_reads: error split exceeds 1");
  }

  util::Xoshiro256ss rng(util::mix64(params.seed ^ 0x48494649ULL));
  std::normal_distribution<double> length_dist(params.mean_length,
                                               params.sd_length);

  const double genome_length = static_cast<double>(genome.size());
  const auto num_reads = static_cast<std::uint64_t>(
      std::max(1.0, params.coverage * genome_length / params.mean_length));

  SimulatedReads out;
  out.reads.reserve(num_reads, static_cast<std::uint64_t>(
                                   params.coverage * genome_length * 1.05));
  out.truth.reserve(num_reads);

  for (std::uint64_t i = 0; i < num_reads; ++i) {
    auto length = static_cast<std::uint64_t>(
        std::clamp(length_dist(rng), static_cast<double>(params.min_length),
                   static_cast<double>(params.max_length)));
    length = std::min(length, static_cast<std::uint64_t>(genome.size()));

    const std::uint64_t begin =
        rng.bounded(static_cast<std::uint64_t>(genome.size()) - length + 1);
    std::string bases(genome.substr(begin, length));

    const bool reverse = rng.uniform() < 0.5;
    if (reverse) bases = core::reverse_complement(bases);
    bases = apply_errors(bases, params, rng);

    out.reads.add("read_" + std::to_string(i), bases);
    out.truth.push_back({{begin, begin + length}, reverse});
  }
  return out;
}

}  // namespace jem::sim
