// PacBio HiFi long-read simulation — the stand-in for the Sim-it simulator
// the paper used ("run with a low coverage of 10x and a long read median
// length 10Kbp", §IV-A).
//
// Reads are sampled uniformly over the genome at a target coverage with
// normally distributed lengths (Table I: ~10.2 Kbp ± 3.4 Kbp), random
// strand, and a 99.9 %-accuracy error model (substitutions, insertions,
// deletions). The true genome interval and strand of each read are recorded
// directly, replacing the paper's Minimap2 back-mapping step for truth
// construction.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "io/sequence_set.hpp"
#include "sim/contigs.hpp"  // Interval

namespace jem::sim {

struct HiFiParams {
  double coverage = 10.0;
  double mean_length = 10205.0;  // Table I simulated-read statistics
  double sd_length = 3400.0;
  std::uint64_t min_length = 1000;
  std::uint64_t max_length = 30000;
  double error_rate = 0.001;     // HiFi: 99.9 % accuracy
  double mismatch_fraction = 0.5;  // error split: the remainder is indels,
  double insertion_fraction = 0.25;  // evenly insertion/deletion by default
  std::uint64_t seed = 3;
};

struct ReadTruth {
  Interval interval;  // genome coordinates the read was sampled from
  bool reverse = false;
};

struct SimulatedReads {
  io::SequenceSet reads;
  std::vector<ReadTruth> truth;
};

[[nodiscard]] SimulatedReads simulate_hifi_reads(std::string_view genome,
                                                 const HiFiParams& params);

/// Applies the HiFi error model to a sequence (exposed for tests).
[[nodiscard]] std::string apply_hifi_errors(std::string_view seq,
                                            const HiFiParams& params,
                                            std::uint64_t seed);

}  // namespace jem::sim
