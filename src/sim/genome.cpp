#include "sim/genome.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/dna.hpp"
#include "util/prng.hpp"

namespace jem::sim {

namespace {

char random_base(util::Xoshiro256ss& rng, double gc) {
  const double u = rng.uniform();
  if (u < gc) {
    return u < gc / 2 ? 'G' : 'C';
  }
  return (u - gc) < (1.0 - gc) / 2 ? 'A' : 'T';
}

std::string random_sequence(util::Xoshiro256ss& rng, std::uint64_t length,
                            double gc) {
  std::string seq(length, 'A');
  for (char& c : seq) c = random_base(rng, gc);
  return seq;
}

/// Copies `unit` with per-base divergence (substitutions only — repeat
/// copies in real genomes diverge mostly by point mutation).
std::string mutate_copy(util::Xoshiro256ss& rng, const std::string& unit,
                        double divergence, double gc) {
  std::string copy = unit;
  for (char& c : copy) {
    if (rng.uniform() < divergence) {
      char replacement = random_base(rng, gc);
      while (replacement == c) replacement = random_base(rng, gc);
      c = replacement;
    }
  }
  return copy;
}

}  // namespace

std::string simulate_genome(const GenomeParams& params) {
  if (params.length == 0) {
    throw std::invalid_argument("simulate_genome: length must be > 0");
  }
  if (params.gc <= 0.0 || params.gc >= 1.0) {
    throw std::invalid_argument("simulate_genome: gc must be in (0, 1)");
  }
  if (params.repeat_fraction < 0.0 || params.repeat_fraction >= 1.0) {
    throw std::invalid_argument(
        "simulate_genome: repeat_fraction must be in [0, 1)");
  }

  util::Xoshiro256ss rng(util::mix64(params.seed ^ 0x47454e4f4d45ULL));
  std::string genome = random_sequence(rng, params.length, params.gc);

  if (params.repeat_fraction > 0.0 && params.repeat_families > 0 &&
      params.repeat_unit_length > 0 &&
      params.repeat_unit_length < params.length) {
    // Ancestral repeat units.
    std::vector<std::string> families;
    families.reserve(static_cast<std::size_t>(params.repeat_families));
    for (int f = 0; f < params.repeat_families; ++f) {
      families.push_back(
          random_sequence(rng, params.repeat_unit_length, params.gc));
    }

    const auto target_bases = static_cast<std::uint64_t>(
        params.repeat_fraction * static_cast<double>(params.length));
    std::uint64_t planted = 0;
    while (planted + params.repeat_unit_length <= target_bases) {
      const auto& unit =
          families[rng.bounded(static_cast<std::uint64_t>(families.size()))];
      std::string copy =
          mutate_copy(rng, unit, params.repeat_divergence, params.gc);
      if (rng.uniform() < 0.5) copy = core::reverse_complement(copy);
      const std::uint64_t pos =
          rng.bounded(params.length - params.repeat_unit_length + 1);
      std::copy(copy.begin(), copy.end(),
                genome.begin() + static_cast<std::ptrdiff_t>(pos));
      planted += params.repeat_unit_length;
    }
  }

  return genome;
}

}  // namespace jem::sim
