#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <optional>
#include <thread>

#include "util/log.hpp"
#include "util/prng.hpp"

namespace jem::serve {

namespace {

void set_socket_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// RAII socket so every ClientError throw path closes the fd.
struct Socket {
  int fd = -1;
  ~Socket() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const HttpRequest& request,
                          std::chrono::milliseconds timeout) {
  Socket sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) {
    throw ClientError(std::string("socket: ") + std::strerror(errno));
  }
  set_socket_timeouts(sock.fd, timeout);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ClientError("bad address '" + host + "'");
  }
  while (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    throw ClientError("connect " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(errno));
  }

  const std::string wire =
      serialize_request(request, host + ":" + std::to_string(port));
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw ClientError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      throw ClientError(std::string("recv: ") + std::strerror(errno));
    }
    const bool eof = (n == 0);
    if (!eof) buffer.append(chunk, static_cast<std::size_t>(n));
    const ResponseParse parsed = parse_response(buffer, eof);
    if (parsed.status == ParseStatus::kComplete) return parsed.response;
    if (parsed.status == ParseStatus::kBad) {
      throw ClientError("bad response: " + parsed.error);
    }
    if (eof) throw ClientError("connection closed mid-response");
  }
}

HttpResponse http_get(const std::string& host, std::uint16_t port,
                      std::string_view target,
                      std::chrono::milliseconds timeout) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(target);
  return http_request(host, port, request, timeout);
}

HttpResponse http_post(const std::string& host, std::uint16_t port,
                       std::string_view target, std::string_view body,
                       std::chrono::milliseconds timeout) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::string(target);
  request.body = std::string(body);
  return http_request(host, port, request, timeout);
}

// --- CircuitBreaker ---------------------------------------------------------

std::string_view CircuitBreaker::state_name(State state) noexcept {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::open(Clock::time_point now) {
  state_ = State::kOpen;
  opened_at_ = now;
  probe_successes_ = 0;
  ++opens_;
}

bool CircuitBreaker::allow(Clock::time_point now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now >= opened_at_ + config_.cooldown) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::on_success(Clock::time_point) {
  switch (state_) {
    case State::kClosed:
      failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= config_.half_open_successes) {
        state_ = State::kClosed;
        failures_ = 0;
        probe_successes_ = 0;
      }
      break;
    case State::kOpen:
      // A success cannot be observed while open (allow() refused); treat a
      // straggler as the half-open transition already having happened.
      break;
  }
}

void CircuitBreaker::on_failure(Clock::time_point now) {
  switch (state_) {
    case State::kClosed:
      if (++failures_ >= config_.failure_threshold) open(now);
      break;
    case State::kHalfOpen:
      // The probe failed: straight back to open, cooldown restarts.
      open(now);
      break;
    case State::kOpen:
      break;
  }
}

// --- Client -----------------------------------------------------------------

namespace {

/// Retryable HTTP statuses: transient server-side conditions. Everything
/// else (2xx/4xx) is a final answer.
bool retryable_status(int status) {
  return status == 500 || status == 502 || status == 503 || status == 504;
}

/// Retry-After value in seconds from a response, or -1 when absent/bad.
long retry_after_seconds(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower != "retry-after") continue;
    long seconds = -1;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), seconds);
    if (ec != std::errc{} || ptr != value.data() + value.size()) return -1;
    return seconds;
  }
  return -1;
}

}  // namespace

Client::Client(std::string host, std::uint16_t port, RetryPolicy policy,
               CircuitBreaker::Config breaker, obs::Registry* metrics)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      metrics_(metrics),
      breaker_(breaker),
      rng_state_(policy.jitter_seed) {}

CircuitBreaker::State Client::breaker_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_.state();
}

std::uint64_t Client::attempts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attempts_;
}

std::uint64_t Client::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

obs::TraceContext Client::last_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_trace_;
}

std::chrono::milliseconds Client::backoff_delay(
    int attempt, std::chrono::milliseconds retry_after_hint) {
  // Full jitter (AWS architecture-blog shape): uniform in [0, cap] where
  // cap doubles each attempt. Deterministic: SplitMix64 over jitter_seed.
  std::uint64_t cap_ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, policy_.initial_backoff.count()));
  for (int i = 0; i < attempt && cap_ms < static_cast<std::uint64_t>(
                                              policy_.max_backoff.count());
       ++i) {
    cap_ms *= 2;
  }
  cap_ms = std::min(cap_ms,
                    static_cast<std::uint64_t>(policy_.max_backoff.count()));
  const std::uint64_t draw = util::SplitMix64{rng_state_}();
  rng_state_ = util::mix64(rng_state_ + 0x9e3779b97f4a7c15ull);
  std::chrono::milliseconds delay{
      static_cast<std::int64_t>(draw % (cap_ms + 1))};
  if (retry_after_hint.count() > 0 && policy_.honor_retry_after) {
    delay = std::max(delay, std::min(retry_after_hint, policy_.max_backoff));
  }
  return delay;
}

HttpResponse Client::request(const HttpRequest& request, bool idempotent) {
  using Clock = CircuitBreaker::Clock;
  const Clock::time_point start = Clock::now();
  const bool bounded = policy_.overall_deadline.count() > 0;
  const Clock::time_point deadline = start + policy_.overall_deadline;

  // Trace stamping: honor a caller-supplied traceparent (the caller's trace
  // continues through us), otherwise mint a fresh context and forward it.
  // Retries reuse the same context — they are the same logical request.
  HttpRequest traced = request;
  obs::TraceContext trace;
  if (const std::string* existing = traced.header("traceparent")) {
    if (const auto parsed = obs::parse_traceparent(*existing)) trace = *parsed;
  }
  if (trace.trace_id.empty()) {
    trace = obs::generate_trace_context();
    traced.headers.emplace_back("traceparent", obs::to_traceparent(trace));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_trace_ = trace;
  }
  // One span over ALL attempts: the caller-visible latency, backoff
  // included. The id in the name ties it to the server-side span tree.
  std::optional<obs::Span> span;
  if (tracer_ != nullptr) {
    span.emplace(tracer_->span("client.request[" + trace.trace_id + "]"));
  }

  obs::Counter* attempts_counter =
      metrics_ ? &metrics_->counter("serve.client.attempts") : nullptr;
  obs::Counter* retries_counter =
      metrics_ ? &metrics_->counter("serve.client.retries") : nullptr;
  obs::Counter* opens_counter =
      metrics_ ? &metrics_->counter("serve.client.breaker.opens") : nullptr;
  obs::Gauge* state_gauge =
      metrics_ ? &metrics_->gauge("serve.client.breaker.state") : nullptr;

  std::string last_error;
  HttpResponse last_response;
  bool have_response = false;

  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    Clock::time_point now = Clock::now();
    if (bounded && now >= deadline) break;

    // Admission through the breaker. When open, wait out the cooldown if
    // the overall deadline allows a later probe; otherwise fail fast.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!breaker_.allow(now)) {
        const Clock::time_point retry_at = breaker_.retry_at();
        if (bounded && retry_at >= deadline) {
          throw ClientError(
              "circuit open: breaker cooldown outlasts the overall deadline");
        }
        lock.unlock();
        std::this_thread::sleep_until(retry_at);
        now = Clock::now();
        lock.lock();
      }
      ++attempts_;
      if (attempt > 0) ++retries_;
    }
    if (attempts_counter) attempts_counter->add(1);
    if (retries_counter && attempt > 0) retries_counter->add(1);

    // Per-attempt socket timeout, clipped to what remains of the overall
    // deadline so the last attempt cannot overshoot it.
    std::chrono::milliseconds timeout = policy_.attempt_timeout;
    if (bounded) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      timeout = std::max(std::chrono::milliseconds(1),
                         std::min(timeout, remaining));
    }

    bool failed = false;
    std::chrono::milliseconds retry_after_hint{0};
    try {
      const HttpResponse response =
          http_request(host_, port_, traced, timeout);
      last_response = response;
      have_response = true;
      failed = retryable_status(response.status);
      if (failed && response.status == 503) {
        const long seconds = retry_after_seconds(response);
        if (seconds >= 0) retry_after_hint = std::chrono::seconds(seconds);
      }
    } catch (const ClientError& error) {
      last_error = error.what();
      have_response = false;
      failed = true;
      if (!idempotent) {
        // A dead connection may have executed the request server-side;
        // only an idempotent request may be replayed.
        std::lock_guard<std::mutex> lock(mutex_);
        breaker_.on_failure(Clock::now());
        if (state_gauge) {
          state_gauge->set(static_cast<std::int64_t>(breaker_.state()));
        }
        throw;
      }
    }

    std::chrono::milliseconds delay{0};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const std::uint64_t opens_before = breaker_.opens();
      if (failed) {
        breaker_.on_failure(Clock::now());
      } else {
        breaker_.on_success(Clock::now());
      }
      if (opens_counter && breaker_.opens() > opens_before) {
        opens_counter->add(breaker_.opens() - opens_before);
      }
      if (state_gauge) {
        state_gauge->set(static_cast<std::int64_t>(breaker_.state()));
      }
      if (failed) delay = backoff_delay(attempt, retry_after_hint);
    }
    if (!failed) {
      util::log_debug() << "serve client: " << traced.method << " "
                        << (traced.target.empty() ? traced.path
                                                  : traced.target)
                        << " " << last_response.status
                        << " trace=" << trace.trace_id
                        << " attempts=" << attempt + 1;
      return last_response;
    }

    if (attempt + 1 < policy_.max_attempts && delay.count() > 0) {
      if (bounded) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now());
        delay = std::min(delay, std::max(std::chrono::milliseconds(0),
                                         remaining));
      }
      std::this_thread::sleep_for(delay);
    }
  }

  // Out of attempts (or deadline). An HTTP-level failure is still a
  // response — hand the caller the last status; pure transport failure is
  // an exception, same contract as http_request.
  util::log_debug() << "serve client: " << traced.method << " "
                    << (traced.target.empty() ? traced.path : traced.target)
                    << " gave up trace=" << trace.trace_id << " "
                    << (have_response
                            ? "status=" + std::to_string(last_response.status)
                            : "error=" + last_error);
  if (have_response) return last_response;
  throw ClientError("request failed after " +
                    std::to_string(policy_.max_attempts) + " attempts: " +
                    (last_error.empty() ? "deadline exceeded" : last_error));
}

HttpResponse Client::get(std::string_view target) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(target);
  return this->request(request, /*idempotent=*/true);
}

HttpResponse Client::post(std::string_view target, std::string_view body,
                          bool idempotent) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::string(target);
  request.body = std::string(body);
  return this->request(request, idempotent);
}

}  // namespace jem::serve
