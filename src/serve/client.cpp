#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace jem::serve {

namespace {

void set_socket_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// RAII socket so every ClientError throw path closes the fd.
struct Socket {
  int fd = -1;
  ~Socket() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const HttpRequest& request,
                          std::chrono::milliseconds timeout) {
  Socket sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) {
    throw ClientError(std::string("socket: ") + std::strerror(errno));
  }
  set_socket_timeouts(sock.fd, timeout);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ClientError("bad address '" + host + "'");
  }
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw ClientError("connect " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(errno));
  }

  const std::string wire =
      serialize_request(request, host + ":" + std::to_string(port));
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      throw ClientError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      throw ClientError(std::string("recv: ") + std::strerror(errno));
    }
    const bool eof = (n == 0);
    if (!eof) buffer.append(chunk, static_cast<std::size_t>(n));
    const ResponseParse parsed = parse_response(buffer, eof);
    if (parsed.status == ParseStatus::kComplete) return parsed.response;
    if (parsed.status == ParseStatus::kBad) {
      throw ClientError("bad response: " + parsed.error);
    }
    if (eof) throw ClientError("connection closed mid-response");
  }
}

HttpResponse http_get(const std::string& host, std::uint16_t port,
                      std::string_view target,
                      std::chrono::milliseconds timeout) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(target);
  return http_request(host, port, request, timeout);
}

HttpResponse http_post(const std::string& host, std::uint16_t port,
                       std::string_view target, std::string_view body,
                       std::chrono::milliseconds timeout) {
  HttpRequest request;
  request.method = "POST";
  request.target = std::string(target);
  request.body = std::string(body);
  return http_request(host, port, request, timeout);
}

}  // namespace jem::serve
