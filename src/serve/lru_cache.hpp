// LruCache — a fixed-capacity least-recently-used map, the hot-segment
// response cache of the mapping service (the role lru_cache.h plays inside
// vg's mapper core). Heavy traffic is skewed: the same read segments and
// probe queries repeat, and a cache entry turns a ~30 µs map_segment into a
// hash lookup.
//
// Design notes:
//  * Keys are stored in full and compared with `KeyEqual` on every probe —
//    the digest (`Hash`) only picks the bucket. A digest collision therefore
//    degrades to a bucket chain walk, never to a wrong value (the
//    digest-collision-safety contract tests/serve/test_lru.cpp pins with a
//    deliberately colliding hasher).
//  * No internal locking: the server wraps access in one mutex — cache
//    probes are rare-path (admission) work, not map-kernel work.
//  * Recency is a doubly-linked list (front = most recent); get() and put()
//    are O(1) amortized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace jem::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<Key>>
class LruCache {
 public:
  /// Capacity is clamped to at least 1 entry.
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Lifetime tallies — the serve layer publishes them as
  /// serve.cache.{hits,misses,evictions}.
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Returns a copy of the cached value and marks the entry most recently
  /// used; nullopt on a miss.
  [[nodiscard]] std::optional<Value> get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most recently used. The least
  /// recently used entry is evicted once size exceeds capacity.
  void put(Key key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(std::move(key), std::move(value));
    index_.emplace(entries_.front().first, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
  }

  /// True when `key` is resident (no recency update, no hit/miss tally).
  [[nodiscard]] bool contains(const Key& key) const {
    return index_.find(key) != index_.end();
  }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  // Entry list owns the keys; the index maps a *copy* of each key to its
  // list position. Keys are immutable while resident, so the duplication is
  // safe; values live only in the list.
  std::list<std::pair<Key, Value>> entries_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash, KeyEqual>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace jem::serve
