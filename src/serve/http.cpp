#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace jem::serve {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits "a=1&b=2" into pairs; empty segments are skipped.
std::vector<std::pair<std::string, std::string>> parse_query_string(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view item = query.substr(0, amp);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        out.emplace_back(std::string(item), std::string());
      } else {
        out.emplace_back(std::string(item.substr(0, eq)),
                         std::string(item.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return out;
}

/// Parses the header block [after the request/status line, before the blank
/// line]. Returns false on a malformed field line.
bool parse_headers(std::string_view block,
                   std::vector<std::pair<std::string, std::string>>& out,
                   std::string& error) {
  while (!block.empty()) {
    std::size_t eol = block.find("\r\n");
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(0, eol);
    if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        error = "malformed header line";
        return false;
      }
      out.emplace_back(to_lower(trim(line.substr(0, colon))),
                       std::string(trim(line.substr(colon + 1))));
    }
    if (eol == block.size()) break;
    block.remove_prefix(eol + 2);
  }
  return true;
}

/// Content-Length lookup shared by both directions: returns false on a
/// malformed value; `length` stays 0 when the header is absent.
bool content_length(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::size_t& length, bool& present, std::string& error) {
  present = false;
  length = 0;
  for (const auto& [name, value] : headers) {
    if (name != "content-length") continue;
    present = true;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), length);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      error = "malformed Content-Length '" + value + "'";
      return false;
    }
    return true;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpRequest::query_param(std::string_view name) const {
  for (const auto& [key, value] : query) {
    if (key == name) return &value;
  }
  return nullptr;
}

const std::string* HttpResponse::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return &value;
  }
  return nullptr;
}

RequestParse parse_request(std::string_view buffer, std::size_t max_body) {
  RequestParse result;
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // An unbounded head is a malformed client, not a slow one.
    if (buffer.size() > (64u << 10)) {
      result.status = ParseStatus::kBad;
      result.error = "header block exceeds 64 KiB";
      result.reject_status = 431;
    }
    return result;
  }

  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, std::min(line_end, head.size()));

  // METHOD SP TARGET SP VERSION
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
    result.status = ParseStatus::kBad;
    result.error = "malformed request line";
    return result;
  }
  HttpRequest& request = result.request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    result.status = ParseStatus::kBad;
    result.error = "unsupported version '" + request.version + "'";
    return result;
  }

  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  if (qmark != std::string::npos) {
    request.query = parse_query_string(
        std::string_view(request.target).substr(qmark + 1));
  }

  if (line_end != std::string_view::npos &&
      !parse_headers(head.substr(line_end + 2), request.headers,
                     result.error)) {
    result.status = ParseStatus::kBad;
    return result;
  }

  std::size_t body_length = 0;
  bool has_length = false;
  if (!content_length(request.headers, body_length, has_length,
                      result.error)) {
    result.status = ParseStatus::kBad;
    return result;
  }
  if (body_length > max_body) {
    result.status = ParseStatus::kBad;
    result.error = "body of " + std::to_string(body_length) +
                   " bytes exceeds the limit of " + std::to_string(max_body);
    result.reject_status = 413;
    return result;
  }

  const std::size_t body_start = head_end + 4;
  if (buffer.size() - body_start < body_length) {
    return result;  // kIncomplete: wait for the rest of the body
  }
  request.body = std::string(buffer.substr(body_start, body_length));
  result.consumed = body_start + body_length;
  result.status = ParseStatus::kComplete;
  return result;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string serialize_request(const HttpRequest& request,
                              std::string_view host) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target.empty() ? request.path : request.target;
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\nContent-Length: ";
  out += std::to_string(request.body.size());
  out += "\r\nConnection: close\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

ResponseParse parse_response(std::string_view buffer, bool eof) {
  ResponseParse result;
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (eof) {
      result.status = ParseStatus::kBad;
      result.error = "connection closed before the header block completed";
    }
    return result;
  }
  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = std::min(head.find("\r\n"), head.size());
  const std::string_view status_line = head.substr(0, line_end);
  // HTTP/1.1 SP 3DIGIT SP REASON
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.size() < sp1 + 4) {
    result.status = ParseStatus::kBad;
    result.error = "malformed status line";
    return result;
  }
  const std::string_view code = status_line.substr(sp1 + 1, 3);
  int status_value = 0;
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), status_value);
  if (ec != std::errc{} || ptr != code.data() + code.size()) {
    result.status = ParseStatus::kBad;
    result.error = "malformed status code";
    return result;
  }
  result.response.status = status_value;

  std::vector<std::pair<std::string, std::string>> headers;
  if (line_end != head.size() &&
      !parse_headers(head.substr(line_end + 2), headers, result.error)) {
    result.status = ParseStatus::kBad;
    return result;
  }
  result.response.headers = headers;
  for (const auto& [name, value] : headers) {
    if (name == "content-type") result.response.content_type = value;
  }

  std::size_t body_length = 0;
  bool has_length = false;
  if (!content_length(headers, body_length, has_length, result.error)) {
    result.status = ParseStatus::kBad;
    return result;
  }
  const std::string_view body = buffer.substr(head_end + 4);
  if (has_length) {
    if (body.size() < body_length) {
      if (eof) {
        result.status = ParseStatus::kBad;
        result.error = "connection closed mid-body";
      }
      return result;
    }
    result.response.body = std::string(body.substr(0, body_length));
  } else {
    if (!eof) return result;  // body runs to connection close
    result.response.body = std::string(body);
  }
  result.status = ParseStatus::kComplete;
  return result;
}

}  // namespace jem::serve
