#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "core/index_serde.hpp"
#include "io/artifact.hpp"
#include "obs/json.hpp"
#include "obs/openmetrics.hpp"
#include "util/log.hpp"

namespace jem::serve {

namespace {

using core::MapServiceRequest;
using core::MapServiceResponse;
using core::ServiceError;
using core::ServiceErrorCode;
using core::ServiceFailure;
using util::FaultAction;
using util::FaultDecision;

/// Applies SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer cannot pin a thread.
void set_socket_timeouts(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// send() the whole buffer (MSG_NOSIGNAL: a vanished peer must not raise
/// SIGPIPE). Retries EINTR and short writes; returns false on real failure.
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Hard-closes a connection with an RST (SO_LINGER zero) — the injected
/// "connection reset" fault the resilient client must survive.
void reset_connection(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  (void)setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

/// JSON error body in the service's structured-error shape.
std::string error_body(ServiceErrorCode code, std::string_view field,
                       std::string_view message) {
  std::string out = "{\"error\":\"";
  out += core::service_error_name(code);
  out += '"';
  if (!field.empty()) {
    out += ",\"field\":\"";
    out += obs::json::escape(field);
    out += '"';
  }
  out += ",\"message\":\"";
  out += obs::json::escape(message);
  out += "\"}";
  return out;
}

std::string map_response_body(const MapServiceResponse& response) {
  std::string out = "{\"mapped\":";
  out += response.mapped() ? "true" : "false";
  out += ",\"trials\":" + std::to_string(response.trials);
  out += ",\"cache\":\"";
  out += response.cache_hit ? "hit" : "miss";
  out += "\",\"hits\":[";
  for (std::size_t i = 0; i < response.hits.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"subject\":\"";
    out += obs::json::escape(response.hits[i].subject_name);
    out += "\",\"votes\":" + std::to_string(response.hits[i].votes) + '}';
  }
  out += "]}";
  return out;
}

/// Parses a non-negative integer query parameter; false on garbage.
bool parse_uint_param(const std::string& text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// The request body is the query bases; tolerate a trailing newline from
/// `curl --data-binary @file` and friends.
std::string_view trim_sequence(std::string_view body) {
  while (!body.empty() &&
         (body.back() == '\n' || body.back() == '\r' || body.back() == ' ')) {
    body.remove_suffix(1);
  }
  return body;
}

/// The SLO ring must hold the deepest /healthz tier: 300 frames (the "5m"
/// window at the production 1 s frame width).
constexpr std::size_t kSloFrames = 300;

/// /healthz + OpenMetrics window tiers, in frames of ServerConfig::slo_frame.
struct SloTier {
  std::string_view label;
  std::size_t frames;
};
constexpr SloTier kSloTiers[] = {{"10s", 10}, {"1m", 60}, {"5m", 300}};

std::uint64_t elapsed_ns(core::MappingService::Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          core::MappingService::Clock::now() - since)
          .count());
}

void append_ms(std::string& out, double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ns / 1e6);
  out += buf;
}

}  // namespace

MappingServer::MappingServer(const core::MappingService& service,
                             ServerConfig config)
    : MappingServer(std::shared_ptr<const core::MappingService>(
                        &service, [](const core::MappingService*) {}),
                    std::move(config)) {}

MappingServer::MappingServer(
    std::shared_ptr<const core::MappingService> service, ServerConfig config)
    : config_(std::move(config)),
      service_(std::move(service)),
      injector_(config_.fault_plan, /*rank=*/0),
      win_latency_(config_.slo_frame, kSloFrames),
      win_requests_(config_.slo_frame, kSloFrames),
      win_errors_(config_.slo_frame, kSloFrames),
      win_shed_(config_.slo_frame, kSloFrames) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.flight_recorder_size > 0) {
    flight_ = std::make_unique<FlightRecorder>(config_.flight_recorder_size);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->set_track_label(kRequestTrack, "serve requests");
  }
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }

  requests_total_ = &registry_->counter("serve.http.requests");
  responses_2xx_ = &registry_->counter("serve.http.responses.2xx");
  responses_4xx_ = &registry_->counter("serve.http.responses.4xx");
  responses_5xx_ = &registry_->counter("serve.http.responses.5xx");
  shed_total_ = &registry_->counter("serve.http.shed");
  deadline_expired_ = &registry_->counter("serve.deadline.expired");
  cache_hits_ = &registry_->counter("serve.cache.hits");
  cache_misses_ = &registry_->counter("serve.cache.misses");
  cache_evictions_ = &registry_->counter("serve.cache.evictions");
  batches_total_ = &registry_->counter("serve.batches");
  rejected_head_ = &registry_->counter("serve.http.rejected.head");
  rejected_body_ = &registry_->counter("serve.http.rejected.body");
  rejected_malformed_ = &registry_->counter("serve.http.rejected.malformed");
  chaos_delay_ = &registry_->counter("serve.chaos.injected.delay");
  chaos_reset_ = &registry_->counter("serve.chaos.injected.reset");
  chaos_partial_ = &registry_->counter("serve.chaos.injected.partial");
  chaos_abort_ = &registry_->counter("serve.chaos.injected.abort");
  chaos_cache_bypass_ =
      &registry_->counter("serve.chaos.injected.cache_bypass");
  chaos_batch_drop_ = &registry_->counter("serve.chaos.injected.batch_drop");
  reload_success_ = &registry_->counter("serve.reload.success");
  reload_rejected_ = &registry_->counter("serve.reload.rejected");
  restarts_worker_ = &registry_->counter("serve.supervisor.worker_restarts");
  restarts_batcher_ = &registry_->counter("serve.supervisor.batcher_restarts");
  queue_depth_ = &registry_->gauge("serve.queue.depth");
  work_depth_ = &registry_->gauge("serve.work.depth");
  cache_size_ = &registry_->gauge("serve.cache.size");
  epoch_gauge_ = &registry_->gauge("serve.index.epoch");
  map_latency_ns_ =
      &registry_->histogram("serve.endpoint.map.latency_ns", obs::Unit::kNanos);
  healthz_latency_ns_ = &registry_->histogram("serve.endpoint.healthz.latency_ns",
                                              obs::Unit::kNanos);
  metrics_latency_ns_ = &registry_->histogram("serve.endpoint.metrics.latency_ns",
                                              obs::Unit::kNanos);
  batch_size_ = &registry_->histogram("serve.batch.size");

  conn_queue_ =
      std::make_unique<util::BoundedQueue<int>>(config_.queue_capacity);
  work_queue_ =
      std::make_unique<util::BoundedQueue<PendingMap>>(config_.work_capacity);
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<LruCache<std::string, MapServiceResponse>>(
        config_.cache_capacity);
  }
}

MappingServer::~MappingServer() { stop(); }

std::shared_ptr<const core::MappingService> MappingServer::current_service()
    const {
  std::lock_guard lock(service_mutex_);
  return service_;
}

void MappingServer::start() {
  if (running_.load(std::memory_order_acquire)) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ServeError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("bad listen address '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("bind " + config_.host + ":" +
                     std::to_string(config_.port) + ": " + reason);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServeError("listen: " + reason);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  started_at_ = Clock::now();
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  {
    std::lock_guard lock(lifecycle_mutex_);
    supervising_ = true;
    respawn_enabled_ = true;
    workers_active_ = config_.workers;
    dead_.clear();
  }
  batcher_ = std::thread([this] { batcher_main(); });
  workers_.clear();
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void MappingServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Stop admitting: the acceptor exits its poll loop; the listen socket
  //    closes so new connects are refused.
  accepting_.store(false, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain admitted connections: close() releases blocked workers while
  //    keeping queued items poppable, so every accepted request is served.
  //    The supervisor stays armed through the drain — a worker or batcher
  //    that aborts mid-drain is still respawned, so no worker ever waits on
  //    a future nobody will fulfil.
  conn_queue_->close();
  {
    std::unique_lock lock(lifecycle_mutex_);
    drained_cv_.wait(lock, [this] {
      if (workers_active_ != 0 || respawn_in_flight_ != 0) return false;
      for (const std::size_t slot : dead_) {
        if (slot != kBatcherSlot) return false;
      }
      return true;
    });
    respawn_enabled_ = false;
  }

  // 3. Every worker has exited; join the thread objects. Moved out under
  //    the lock so the supervisor (still alive, maybe joining a dead
  //    batcher) never races the vector.
  std::vector<std::thread> finished;
  {
    std::lock_guard lock(lifecycle_mutex_);
    finished.swap(workers_);
  }
  for (std::thread& worker : finished) {
    if (worker.joinable()) worker.join();
  }

  // 4. Retire the supervisor; it drains any leftover dead_ joins first.
  {
    std::lock_guard lock(lifecycle_mutex_);
    supervising_ = false;
  }
  death_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();

  // 5. Drain the map work queue last — workers may have been waiting on
  //    batcher results until the moment they exited.
  work_queue_->close();
  std::thread batcher;
  {
    std::lock_guard lock(lifecycle_mutex_);
    batcher = std::move(batcher_);
  }
  if (batcher.joinable()) batcher.join();

  // 6. Anything still queued belonged to a batcher that died un-respawned
  //    after its waiters left. Nobody holds the futures; drop the items so
  //    the queue destructs empty.
  PendingMap leftover;
  while (work_queue_->pop_wait_for(leftover, std::chrono::milliseconds(0)) ==
         util::QueueOpResult::kSuccess) {
  }
}

void MappingServer::acceptor_loop() {
  while (accepting_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_socket_timeouts(fd, config_.io_timeout);

    // serve.accept: delay stalls the admission, drop/abort resets the new
    // connection. The acceptor itself never dies — a dead listener is a
    // dead server, not a survivable fault.
    if (injector_.active()) {
      const FaultDecision fault = injector_.next("serve.accept");
      if (fault.action == FaultAction::kDelay) {
        chaos_delay_->add();
        std::this_thread::sleep_for(fault.delay);
      } else if (fault.action != FaultAction::kNone) {
        chaos_reset_->add();
        reset_connection(fd);
        continue;
      }
    }

    // Admission control: try-push (zero wait). A full queue sheds the
    // connection right here with 503 + Retry-After — the listener never
    // blocks behind slow workers.
    int conn = fd;
    const util::QueueOpResult admitted =
        conn_queue_->push_wait_for(conn, std::chrono::milliseconds(0));
    if (admitted == util::QueueOpResult::kSuccess) {
      queue_depth_->set(static_cast<std::int64_t>(conn_queue_->size()));
      continue;
    }
    shed_total_->add();
    responses_5xx_->add();
    win_shed_.add(1);
    HttpResponse shed;
    shed.status = 503;
    shed.headers.emplace_back("Retry-After",
                              std::to_string(config_.retry_after_s));
    shed.body = error_body(ServiceErrorCode::kOverloaded, "",
                           "admission queue full; retry shortly");
    (void)send_all(fd, serialize_response(shed));
    ::close(fd);
  }
}

void MappingServer::note_death(std::size_t slot) {
  {
    std::lock_guard lock(lifecycle_mutex_);
    dead_.push_back(slot);
    if (slot != kBatcherSlot && workers_active_ > 0) --workers_active_;
  }
  death_cv_.notify_all();
  drained_cv_.notify_all();
}

void MappingServer::worker_main(std::size_t slot) {
  try {
    worker_loop();
  } catch (const std::exception& error) {
    // Injected abort (util::FaultAbort) or a genuine bug: either way the
    // thread is gone — hand the slot to the supervisor for respawn. A chaos
    // plan can kill workers hundreds of times a second; the limiter keeps
    // the warn stream at one line per second with a suppressed count.
    std::uint64_t suppressed = 0;
    if (worker_died_limit_.allow(suppressed)) {
      util::log_warn() << "serve: worker died (restart gen "
                       << worker_restarts_.load(std::memory_order_relaxed)
                       << "): " << error.what()
                       << util::LogRateLimiter::suffix(suppressed);
    }
    note_death(slot);
    return;
  }
  {
    std::lock_guard lock(lifecycle_mutex_);
    if (workers_active_ > 0) --workers_active_;
  }
  drained_cv_.notify_all();
}

void MappingServer::worker_loop() {
  while (true) {
    std::optional<int> fd = conn_queue_->pop();
    if (!fd) return;  // closed and drained
    queue_depth_->set(static_cast<std::int64_t>(conn_queue_->size()));
    serve_connection(*fd);
  }
}

void MappingServer::serve_connection(int fd) {
  // serve.read: one decision per connection (not per recv) so a seeded
  // plan's invocation numbering is independent of TCP segmentation. Delay
  // stalls the read, drop resets the peer, abort kills this worker after
  // resetting the peer (its request never entered the pipeline, so nothing
  // is left in flight).
  if (injector_.active()) {
    const FaultDecision fault = injector_.next("serve.read");
    if (fault.action == FaultAction::kDelay) {
      chaos_delay_->add();
      std::this_thread::sleep_for(fault.delay);
    } else if (fault.action == FaultAction::kDrop) {
      chaos_reset_->add();
      reset_connection(fd);
      return;
    } else if (fault.action == FaultAction::kAbort) {
      chaos_abort_->add();
      reset_connection(fd);
      throw util::FaultAbort(injector_.rank(), "serve.read");
    }
  }

  std::string buffer;
  char chunk[8192];
  RequestParse parsed;
  while (true) {
    parsed = parse_request(buffer);
    if (parsed.status != ParseStatus::kIncomplete) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // timeout, reset, or EOF mid-request: drop quietly
      ::close(fd);
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  if (parsed.status == ParseStatus::kBad) {
    requests_total_->add();
    responses_4xx_->add();
    switch (parsed.reject_status) {
      case 431: rejected_head_->add(); break;
      case 413: rejected_body_->add(); break;
      default: rejected_malformed_->add(); break;
    }
    response.status = parsed.reject_status;
    response.body = error_body(ServiceErrorCode::kInvalidArgument, "request",
                               parsed.error);
  } else {
    try {
      response = handle(parsed.request);
    } catch (const util::FaultAbort&) {
      // Crash containment: the in-flight request is answered with a
      // structured 500 before this worker dies — never a hung client.
      responses_5xx_->add();
      HttpResponse crashed;
      crashed.status = 500;
      crashed.body = error_body(ServiceErrorCode::kInternal, "",
                                "worker aborted by fault injection");
      (void)send_all(fd, serialize_response(crashed));
      ::close(fd);
      throw;
    }
  }

  // serve.write: one decision per response. Delay stalls the write, drop
  // truncates it mid-body (the client sees a torn response), abort answers
  // with a structured 500 and then kills this worker.
  if (injector_.active()) {
    const FaultDecision fault = injector_.next("serve.write");
    if (fault.action == FaultAction::kDelay) {
      chaos_delay_->add();
      std::this_thread::sleep_for(fault.delay);
    } else if (fault.action == FaultAction::kDrop) {
      chaos_partial_->add();
      const std::string wire = serialize_response(response);
      (void)send_all(fd, std::string_view(wire).substr(0, wire.size() / 2));
      reset_connection(fd);
      return;
    } else if (fault.action == FaultAction::kAbort) {
      chaos_abort_->add();
      responses_5xx_->add();
      HttpResponse crashed;
      crashed.status = 500;
      crashed.body = error_body(ServiceErrorCode::kInternal, "",
                                "worker aborted by fault injection");
      (void)send_all(fd, serialize_response(crashed));
      ::close(fd);
      throw util::FaultAbort(injector_.rank(), "serve.write");
    }
  }

  (void)send_all(fd, serialize_response(response));
  ::close(fd);
}

HttpResponse MappingServer::handle(const HttpRequest& request) {
  requests_total_->add();

  // Trace stamping: honor a forwarded W3C traceparent (the client's span
  // becomes our parent; we mint a fresh request/span id inside its trace),
  // otherwise start a new trace. The pair flows through every log line,
  // span, flight record, error body and the x-jem-request-id echo.
  RequestContext ctx;
  ctx.start = Clock::now();
  if (const std::string* parent = request.header("traceparent")) {
    if (const auto parsed = obs::parse_traceparent(*parent)) {
      ctx.trace = obs::child_of(*parsed);
    }
  }
  if (ctx.trace.trace_id.empty()) ctx.trace = obs::generate_trace_context();
  ctx.record.trace_id = ctx.trace.trace_id;
  ctx.record.request_id = ctx.trace.span_id;
  ctx.record.endpoint = request.path;

  std::optional<obs::Span> span;
  if (config_.tracer != nullptr) {
    span.emplace(
        config_.tracer->span("serve.request[" + ctx.trace.trace_id + "]"));
  }

  HttpResponse response;
  if (request.path == "/map") {
    if (request.method != "POST") {
      response.status = 405;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "method",
                                 "/map takes POST");
    } else {
      response = handle_map(request, ctx);
    }
  } else if (request.path == "/healthz") {
    if (request.method != "GET") {
      response.status = 405;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "method",
                                 "/healthz takes GET");
    } else {
      response = handle_healthz();
    }
  } else if (request.path == "/metrics") {
    if (request.method != "GET") {
      response.status = 405;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "method",
                                 "/metrics takes GET");
    } else {
      response = handle_metrics(request);
    }
  } else if (request.path == "/debug/requests") {
    if (request.method != "GET") {
      response.status = 405;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "method",
                                 "/debug/requests takes GET");
    } else {
      response = handle_debug_requests(request);
    }
  } else if (request.path == "/admin/reload") {
    if (request.method != "POST") {
      response.status = 405;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "method",
                                 "/admin/reload takes POST");
    } else {
      response = handle_reload(request);
    }
  } else {
    response.status = 404;
    response.body = error_body(ServiceErrorCode::kInvalidArgument, "path",
                               "no such endpoint '" + request.path + "'");
  }
  span.reset();

  if (response.status < 300) {
    responses_2xx_->add();
  } else if (response.status < 500) {
    responses_4xx_->add();
  } else {
    responses_5xx_->add();
  }

  // Echo the ids; stamp them into structured error bodies (every error body
  // this server builds is a JSON object).
  response.headers.emplace_back(
      "x-jem-request-id", ctx.trace.trace_id + "-" + ctx.trace.span_id);
  if (response.status >= 400 && !response.body.empty() &&
      response.body.front() == '{') {
    response.body.insert(1, "\"trace_id\":\"" + ctx.trace.trace_id +
                                "\",\"request_id\":\"" + ctx.trace.span_id +
                                "\",");
  }

  const std::uint64_t total_ns = elapsed_ns(ctx.start);
  ctx.record.status = response.status;
  ctx.record.total_ns = total_ns;

  // Windowed SLO tallies cover the mapping workload: /map latency, errors
  // (5xx other than sheds) and sheds. Acceptor-level sheds are added in
  // acceptor_loop — they never reach handle().
  if (request.path == "/map") {
    win_latency_.record(total_ns);
    win_requests_.add(1);
    if (response.status == 503) {
      win_shed_.add(1);
    } else if (response.status >= 500) {
      win_errors_.add(1);
    }
  }

  if (flight_) flight_->push(ctx.record);

  // Access log at debug so the hot path stays quiet at the default level.
  util::log_debug() << "serve: " << request.method << " " << request.path
                    << " " << response.status
                    << " trace=" << ctx.trace.trace_id
                    << " req=" << ctx.trace.span_id
                    << " total_us=" << total_ns / 1000;

  // Slow-request exemplar: the full span breakdown, at warn, rate-unlimited
  // (exemplars are rare by construction of the threshold).
  if (config_.slow_threshold.count() > 0 &&
      total_ns >= static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          config_.slow_threshold)
                          .count())) {
    util::log_warn() << "serve: slow request trace=" << ctx.trace.trace_id
                     << " req=" << ctx.trace.span_id << " " << request.method
                     << " " << request.path << " " << response.status
                     << " total_us=" << total_ns / 1000
                     << " queue_wait_us=" << ctx.record.queue_wait_ns / 1000
                     << " map_us=" << ctx.record.map_ns / 1000
                     << " serialize_us=" << ctx.record.serialize_ns / 1000
                     << " batch=" << ctx.record.batch << (ctx.record.annotation.empty() ? "" : " note=")
                     << ctx.record.annotation;
  }
  return response;
}

HttpResponse MappingServer::handle_map(const HttpRequest& request,
                                       RequestContext& ctx) {
  const auto start = ctx.start;
  HttpResponse response;
  const auto finish = [&](HttpResponse r) {
    map_latency_ns_->record(elapsed_ns(start));
    return r;
  };
  // Response-body construction, timed (and spanned) per request.
  const auto serialize = [&](const MapServiceResponse& service_response) {
    const auto serialize_start = Clock::now();
    std::optional<obs::Span> span;
    if (config_.tracer != nullptr) {
      span.emplace(config_.tracer->span("serve.serialize[" +
                                        ctx.trace.trace_id + "]"));
    }
    std::string body = map_response_body(service_response);
    span.reset();
    ctx.record.serialize_ns = elapsed_ns(serialize_start);
    return body;
  };

  // Snapshot the serving epoch once: this request runs start-to-finish on
  // the index it admitted against, even if a reload lands mid-flight.
  const std::shared_ptr<const core::MappingService> service =
      current_service();

  // Assemble the service request: body = bases, knobs via query string.
  MapServiceRequest service_request;
  service_request.sequence = std::string(trim_sequence(request.body));
  if (const std::string* raw = request.query_param("top_x")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "top_x",
                                 "not an unsigned integer: '" + *raw + "'");
      return finish(std::move(response));
    }
    service_request.top_x = static_cast<std::size_t>(value);
  }
  if (const std::string* raw = request.query_param("min_votes")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body =
          error_body(ServiceErrorCode::kInvalidArgument, "min_votes",
                     "not an unsigned integer: '" + *raw + "'");
      return finish(std::move(response));
    }
    service_request.min_votes = static_cast<std::uint32_t>(value);
  }
  std::chrono::milliseconds budget = config_.default_deadline;
  if (const std::string* raw = request.query_param("deadline_ms")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body =
          error_body(ServiceErrorCode::kInvalidArgument, "deadline_ms",
                     "not an unsigned integer: '" + *raw + "'");
      return finish(std::move(response));
    }
    budget = std::chrono::milliseconds(value);
  }
  try {
    service_request.validate(service->config().params);
  } catch (const ServiceError& error) {
    response.status = 400;
    response.body = error_body(error.code(), error.field(), error.what());
    return finish(std::move(response));
  }

  // serve.cache: delay stalls the probe, drop bypasses the cache for this
  // request (a forced miss — results stay identical, only latency and hit
  // tallies move), abort kills this worker (contained in serve_connection).
  bool cache_bypassed = false;
  if (cache_ && injector_.active()) {
    const FaultDecision fault = injector_.next("serve.cache");
    if (fault.action == FaultAction::kDelay) {
      chaos_delay_->add();
      std::this_thread::sleep_for(fault.delay);
    } else if (fault.action == FaultAction::kDrop) {
      chaos_cache_bypass_->add();
      cache_bypassed = true;
    } else if (fault.action == FaultAction::kAbort) {
      chaos_abort_->add();
      throw util::FaultAbort(injector_.rank(), "serve.cache");
    }
  }

  // Cache probe. The key embeds every knob that shapes the response; the
  // stored key is compared byte-for-byte on lookup (digest-collision safe).
  std::string cache_key;
  if (cache_ && !cache_bypassed) {
    cache_key = service_request.sequence;
    cache_key += '\x1f';
    cache_key += std::to_string(service_request.top_x);
    cache_key += '\x1f';
    cache_key += service_request.min_votes
                     ? std::to_string(*service_request.min_votes)
                     : std::string("-");
    std::optional<MapServiceResponse> cached;
    {
      std::lock_guard lock(cache_mutex_);
      cached = cache_->get(cache_key);
    }
    if (cached) {
      cache_hits_->add();
      cached->cache_hit = true;
      ctx.record.cache_hit = true;
      response.body = serialize(*cached);
      return finish(std::move(response));
    }
    cache_misses_->add();
  }

  // Submit to the micro-batcher. The work queue is the second bounded
  // stage: full means the mappers are saturated — shed rather than stall.
  PendingMap pending;
  pending.request = std::move(service_request);
  if (budget.count() > 0) pending.deadline = start + budget;
  pending.enqueued = Clock::now();
  pending.trace_id = ctx.trace.trace_id;
  if (config_.tracer != nullptr) {
    pending.enqueue_trace_ns = config_.tracer->now_ns();
  }
  std::future<BatchedResult> future = pending.promise.get_future();
  const util::QueueOpResult pushed = work_queue_->push_wait_for(
      pending, std::chrono::milliseconds(1));
  if (pushed != util::QueueOpResult::kSuccess) {
    shed_total_->add();
    ctx.record.annotation = pushed == util::QueueOpResult::kClosed
                                ? "shed:draining"
                                : "shed:work-queue";
    response.status = 503;
    response.headers.emplace_back("Retry-After",
                                  std::to_string(config_.retry_after_s));
    response.body = error_body(ServiceErrorCode::kOverloaded, "",
                               pushed == util::QueueOpResult::kClosed
                                   ? "server is draining"
                                   : "work queue full; retry shortly");
    return finish(std::move(response));
  }
  work_depth_->set(static_cast<std::int64_t>(work_queue_->size()));

  BatchedResult result = future.get();
  ctx.record.queue_wait_ns = result.queue_wait_ns;
  ctx.record.map_ns = result.map_ns;
  ctx.record.batch = result.batch_id;
  MapServiceResponse service_response = std::move(result.response);
  if (!service_response.ok()) {
    const ServiceFailure& failure = *service_response.failure;
    if (failure.code == ServiceErrorCode::kDeadlineExceeded) {
      deadline_expired_->add();
      response.status = 504;
    } else {
      response.status = 500;
    }
    ctx.record.annotation = core::service_error_name(failure.code);
    response.body = error_body(failure.code, "", failure.message);
    return finish(std::move(response));
  }

  if (cache_ && !cache_bypassed) {
    std::lock_guard lock(cache_mutex_);
    cache_->put(std::move(cache_key), service_response);
    cache_size_->set(static_cast<std::int64_t>(cache_->size()));
    // Counters are monotonic; evictions tally lives in the cache.
    const std::uint64_t evicted = cache_->evictions();
    const std::uint64_t published = cache_evictions_->value();
    if (evicted > published) cache_evictions_->add(evicted - published);
  }
  response.body = serialize(service_response);
  return finish(std::move(response));
}

HttpResponse MappingServer::handle_healthz() {
  const auto start = Clock::now();
  HttpResponse response;
  const std::shared_ptr<const core::MappingService> service =
      current_service();
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const auto uptime_s = std::chrono::duration_cast<std::chrono::seconds>(
                            Clock::now() - started_at_)
                            .count();
  std::string body = "{\"status\":\"ok\",\"subjects\":";
  body += std::to_string(service->subjects().size());
  body += ",\"trials\":";
  body += std::to_string(service->config().params.trials);
  body += ",\"index\":\"";
  // Epoch > 0 means the serving index came from a hot-swapped artifact.
  body += (service->load_report().loaded_from_artifact || epoch > 0)
              ? "artifact"
              : "rebuilt";
  body += "\",\"epoch\":";
  body += std::to_string(epoch);
  body += ",\"reloads\":";
  body += std::to_string(reloads_.load(std::memory_order_relaxed));
  body += ",\"worker_restarts\":";
  body += std::to_string(worker_restarts_.load(std::memory_order_relaxed));
  body += ",\"batcher_restarts\":";
  body += std::to_string(batcher_restarts_.load(std::memory_order_relaxed));
  body += ",\"uptime_s\":";
  body += std::to_string(uptime_s);
  body += ",\"slo\":";
  body += slo_json();
  body += '}';
  response.body = std::move(body);
  healthz_latency_ns_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count()));
  return response;
}

std::string MappingServer::slo_json() {
  std::string out = "{";
  bool first_tier = true;
  for (const auto& tier : kSloTiers) {
    const auto window = config_.slo_frame * static_cast<int>(tier.frames);
    obs::WindowSnapshot snap = win_latency_.snapshot(window);
    if (!first_tier) out += ',';
    first_tier = false;
    out += '"';
    out += tier.label;
    out += "\":{\"p50_ms\":";
    append_ms(out, snap.quantile(0.50));
    out += ",\"p99_ms\":";
    append_ms(out, snap.quantile(0.99));
    out += ",\"p999_ms\":";
    append_ms(out, snap.quantile(0.999));
    out += ",\"requests\":";
    out += std::to_string(win_requests_.total(window));
    out += ",\"errors\":";
    out += std::to_string(win_errors_.total(window));
    out += ",\"shed\":";
    out += std::to_string(win_shed_.total(window));
    out += '}';
  }
  // Cumulative tail for contrast: the process-lifetime numbers the windows
  // are designed to escape.
  const obs::WindowSnapshot all = win_latency_.cumulative();
  out += ",\"cumulative\":{\"p50_ms\":";
  append_ms(out, all.quantile(0.50));
  out += ",\"p99_ms\":";
  append_ms(out, all.quantile(0.99));
  out += ",\"p999_ms\":";
  append_ms(out, all.quantile(0.999));
  out += ",\"requests\":";
  out += std::to_string(all.count);
  out += "}}";
  return out;
}

std::string MappingServer::slo_openmetrics() {
  std::string out;
  out += "# TYPE jem_serve_slo_latency_ns gauge\n";
  for (const auto& tier : kSloTiers) {
    const auto window = config_.slo_frame * static_cast<int>(tier.frames);
    obs::WindowSnapshot snap = win_latency_.snapshot(window);
    for (const auto& [q_label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.99", 0.99},
          {"0.999", 0.999}}) {
      std::string labels = "window=\"";
      labels += tier.label;
      labels += "\",quantile=\"";
      labels += q_label;
      labels += '"';
      out += obs::openmetrics_sample("jem_serve_slo_latency_ns", labels,
                                     snap.quantile(q));
    }
  }
  const auto add_window_counts = [&](const char* family,
                                     obs::WindowedCounter& counter) {
    out += "# TYPE ";
    out += family;
    out += " gauge\n";
    for (const auto& tier : kSloTiers) {
      const auto window = config_.slo_frame * static_cast<int>(tier.frames);
      std::string labels = "window=\"";
      labels += tier.label;
      labels += '"';
      out += obs::openmetrics_sample(
          family, labels, static_cast<double>(counter.total(window)));
    }
  };
  add_window_counts("jem_serve_slo_requests", win_requests_);
  add_window_counts("jem_serve_slo_errors", win_errors_);
  add_window_counts("jem_serve_slo_shed", win_shed_);
  return out;
}

HttpResponse MappingServer::handle_metrics(const HttpRequest& request) {
  const auto start = Clock::now();
  HttpResponse response;
  // Accept negotiation: the JSON snapshot stays the default (and byte-
  // stable); OpenMetrics text is opt-in via the Accept header or
  // ?format=openmetrics (curl convenience).
  bool openmetrics = false;
  if (const std::string* accept = request.header("accept")) {
    openmetrics =
        accept->find("application/openmetrics-text") != std::string::npos;
  }
  if (const std::string* format = request.query_param("format")) {
    if (*format == "openmetrics") openmetrics = true;
  }
  if (openmetrics) {
    response.content_type = std::string(obs::kOpenMetricsContentType);
    response.body = obs::to_openmetrics(registry_->snapshot(),
                                        slo_openmetrics());
  } else {
    response.body = registry_->snapshot().to_json();
    response.body += '\n';
  }
  metrics_latency_ns_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count()));
  return response;
}

HttpResponse MappingServer::handle_debug_requests(const HttpRequest& request) {
  HttpResponse response;
  if (!flight_) {
    response.status = 404;
    response.body = error_body(ServiceErrorCode::kInvalidArgument, "path",
                               "flight recorder disabled "
                               "(--flight-recorder-size 0)");
    return response;
  }
  FlightFilter filter;
  if (const std::string* raw = request.query_param("status")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "status",
                                 "not an unsigned integer: '" + *raw + "'");
      return response;
    }
    filter.status = static_cast<int>(value);
  }
  if (const std::string* raw = request.query_param("min_latency_ms")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body =
          error_body(ServiceErrorCode::kInvalidArgument, "min_latency_ms",
                     "not an unsigned integer: '" + *raw + "'");
      return response;
    }
    filter.min_total_ns = value * 1000000ull;
  }
  if (const std::string* raw = request.query_param("limit")) {
    std::uint64_t value = 0;
    if (!parse_uint_param(*raw, value)) {
      response.status = 400;
      response.body = error_body(ServiceErrorCode::kInvalidArgument, "limit",
                                 "not an unsigned integer: '" + *raw + "'");
      return response;
    }
    filter.limit = static_cast<std::size_t>(value);
  }
  response.body = flight_->to_json(filter);
  return response;
}

std::string MappingServer::flight_recorder_text(std::size_t limit) const {
  if (!flight_) return {};
  return flight_->to_text(limit);
}

HttpResponse MappingServer::handle_reload(const HttpRequest& request) {
  std::string path = config_.reload_index_path;
  if (const std::string* raw = request.query_param("path")) path = *raw;
  HttpResponse response;
  if (path.empty()) {
    response.status = 400;
    response.body = error_body(
        ServiceErrorCode::kInvalidArgument, "path",
        "no ?path= given and the server has no configured reload path");
    return response;
  }
  const ReloadOutcome outcome = reload_index(path);
  if (!outcome.success) {
    // 409: the request was well-formed but the artifact conflicts with the
    // running configuration (or is unreadable); the old index keeps serving.
    response.status = 409;
    response.body =
        error_body(ServiceErrorCode::kIndexUnavailable, "index", outcome.error);
    return response;
  }
  response.body = "{\"status\":\"reloaded\",\"epoch\":" +
                  std::to_string(outcome.epoch) + "}";
  return response;
}

MappingServer::ReloadOutcome MappingServer::reload_index(
    const std::string& path) {
  std::lock_guard reload_lock(reload_mutex_);
  ReloadOutcome outcome;
  const std::shared_ptr<const core::MappingService> current =
      current_service();

  // Load and validate against the RUNNING fingerprint: same params, same
  // scheme, same subject set. index_serde rejects any disagreement with a
  // structured ArtifactError naming the offending field.
  io::SequenceSet subjects = current->subjects();  // value copy
  std::shared_ptr<const core::MappingService> fresh;
  try {
    core::SketchTable table = core::load_index(
        path, current->config().params, current->config().scheme, subjects);
    fresh = std::make_shared<const core::MappingService>(
        std::move(subjects), current->config(), std::move(table));
  } catch (const io::ArtifactError& error) {
    reload_rejected_->add();
    outcome.epoch = epoch_.load(std::memory_order_acquire);
    outcome.error = error.what();
    util::log_warn() << "serve: reload rejected: " << outcome.error;
    return outcome;
  }

  // Atomic publish: new requests snapshot the fresh epoch, in-flight ones
  // finish on the shared_ptr they already hold.
  {
    std::lock_guard lock(service_mutex_);
    service_ = fresh;
  }
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  reloads_.fetch_add(1, std::memory_order_relaxed);
  epoch_gauge_->set(static_cast<std::int64_t>(epoch));
  reload_success_->add();

  // The cache may hold responses computed on the old index; clear it only
  // now that the swap is committed.
  if (cache_) {
    std::lock_guard lock(cache_mutex_);
    cache_->clear();
    cache_size_->set(0);
  }

  outcome.success = true;
  outcome.epoch = epoch;
  util::log_info() << "serve: index hot-swapped from '" << path << "' (epoch "
                   << epoch << ")";
  return outcome;
}

void MappingServer::fail_batch(std::vector<PendingMap>& batch,
                               std::string_view message) {
  for (PendingMap& pending : batch) {
    BatchedResult result;
    result.response.failure =
        ServiceFailure{ServiceErrorCode::kInternal, std::string(message)};
    result.queue_wait_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             pending.enqueued)
            .count());
    pending.promise.set_value(std::move(result));
  }
  batch.clear();
}

void MappingServer::batcher_main() {
  try {
    batcher_loop();
  } catch (const std::exception& error) {
    std::uint64_t suppressed = 0;
    if (batcher_died_limit_.allow(suppressed)) {
      util::log_warn() << "serve: batcher died (restart gen "
                       << batcher_restarts_.load(std::memory_order_relaxed)
                       << "): " << error.what()
                       << util::LogRateLimiter::suffix(suppressed);
    }
    note_death(kBatcherSlot);
  }
}

void MappingServer::batcher_loop() {
  std::vector<PendingMap> batch;
  std::vector<MapServiceRequest> requests;
  std::vector<Clock::time_point> deadlines;
  while (true) {
    PendingMap first;
    const util::QueueOpResult got =
        work_queue_->pop_wait_for(first, std::chrono::milliseconds(50));
    if (got == util::QueueOpResult::kClosed) return;  // closed and drained
    if (got == util::QueueOpResult::kTimeout) continue;

    batch.clear();
    batch.push_back(std::move(first));

    // Coalesce: whatever lands within batch_window, up to max_batch — the
    // dynamic micro-batching that turns concurrent requests into one
    // warm-scratch engine batch.
    const auto window_end = Clock::now() + config_.batch_window;
    while (batch.size() < config_.max_batch) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          window_end - Clock::now());
      PendingMap next;
      const util::QueueOpResult more = work_queue_->pop_wait_for(
          next, std::max(remaining, std::chrono::milliseconds(0)));
      if (more != util::QueueOpResult::kSuccess) break;
      batch.push_back(std::move(next));
      if (Clock::now() >= window_end) break;
    }
    work_depth_->set(static_cast<std::int64_t>(work_queue_->size()));

    if (config_.batch_hook) config_.batch_hook();

    // serve.batch: one decision per micro-batch, after coalescing and
    // before the map kernel. Delay stalls the batch, drop fails every
    // member with a structured 500 (clients retry), abort additionally
    // kills the batcher — the supervisor respawns it. Promises are always
    // fulfilled before the throw: a dead batcher never strands a waiter.
    if (injector_.active()) {
      const FaultDecision fault = injector_.next("serve.batch");
      if (fault.action == FaultAction::kDelay) {
        chaos_delay_->add();
        std::this_thread::sleep_for(fault.delay);
      } else if (fault.action == FaultAction::kDrop) {
        chaos_batch_drop_->add();
        fail_batch(batch, "batch dropped by fault injection");
        continue;
      } else if (fault.action == FaultAction::kAbort) {
        chaos_abort_->add();
        fail_batch(batch, "batcher aborted by fault injection");
        throw util::FaultAbort(injector_.rank(), "serve.batch");
      }
    }

    batches_total_->add();
    batch_size_->record(batch.size());
    const std::uint64_t batch_id =
        next_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Queue-wait ends when the batch is formed: everything after this point
    // is batch time, not queueing.
    const auto formed = Clock::now();
    std::vector<std::uint64_t> queue_waits;
    queue_waits.reserve(batch.size());
    for (const PendingMap& pending : batch) {
      queue_waits.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              formed - pending.enqueued)
              .count()));
    }

    requests.clear();
    deadlines.clear();
    requests.reserve(batch.size());
    deadlines.reserve(batch.size());
    for (const PendingMap& pending : batch) {
      requests.push_back(pending.request);
      deadlines.push_back(pending.deadline);
    }

    // One service snapshot per batch: a reload that lands mid-batch takes
    // effect from the next batch on.
    const std::shared_ptr<const core::MappingService> service =
        current_service();
    std::optional<obs::Span> batch_span;
    if (config_.tracer != nullptr) {
      batch_span.emplace(config_.tracer->span(
          "serve.map_batch#" + std::to_string(batch_id)));
    }
    const std::uint64_t formed_trace_ns =
        config_.tracer != nullptr ? config_.tracer->now_ns() : 0;
    const auto map_start = Clock::now();
    std::vector<MapServiceResponse> responses;
    try {
      responses = service->map_batch(requests, deadlines);
    } catch (const std::exception& error) {
      // A batch-level throw (programming error) must not strand waiters.
      batch_span.reset();
      fail_batch(batch, error.what());
      continue;
    }
    const std::uint64_t map_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             map_start)
            .count());
    const std::uint64_t map_end_trace_ns =
        config_.tracer != nullptr ? config_.tracer->now_ns() : 0;
    batch_span.reset();

    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Per-request spans on the shared synthetic track: queue wait (from
      // the worker's enqueue stamp to batch formation), the batch phase,
      // and the map kernel nested inside it — one causally-connected tree
      // per trace id, reconstructable from the Chrome export.
      if (config_.tracer != nullptr && batch[i].enqueue_trace_ns > 0) {
        const std::string& id = batch[i].trace_id;
        config_.tracer->record(
            "serve.queue.wait[" + id + "]", kRequestTrack,
            batch[i].enqueue_trace_ns,
            formed_trace_ns - std::min(formed_trace_ns,
                                       batch[i].enqueue_trace_ns));
        config_.tracer->record("serve.batch[" + id + "]", kRequestTrack,
                               formed_trace_ns,
                               map_end_trace_ns - formed_trace_ns,
                               /*depth=*/1);
        config_.tracer->record("serve.map[" + id + "]", kRequestTrack,
                               map_end_trace_ns - map_ns, map_ns,
                               /*depth=*/2);
      }
      BatchedResult result;
      result.response = std::move(responses[i]);
      result.queue_wait_ns = queue_waits[i];
      result.map_ns = map_ns;
      result.batch_id = batch_id;
      batch[i].promise.set_value(std::move(result));
    }
  }
}

void MappingServer::supervisor_loop() {
  std::unique_lock lock(lifecycle_mutex_);
  while (true) {
    death_cv_.wait(lock, [this] { return !dead_.empty() || !supervising_; });
    if (dead_.empty() && !supervising_) return;

    const std::size_t slot = dead_.back();
    dead_.pop_back();
    ++respawn_in_flight_;
    std::thread corpse = slot == kBatcherSlot ? std::move(batcher_)
                                              : std::move(workers_[slot]);
    lock.unlock();
    if (corpse.joinable()) corpse.join();
    lock.lock();

    if (respawn_enabled_) {
      if (slot == kBatcherSlot) {
        batcher_ = std::thread([this] { batcher_main(); });
        batcher_restarts_.fetch_add(1, std::memory_order_relaxed);
        restarts_batcher_->add();
      } else {
        workers_[slot] = std::thread([this, slot] { worker_main(slot); });
        ++workers_active_;
        worker_restarts_.fetch_add(1, std::memory_order_relaxed);
        restarts_worker_->add();
      }
    }
    --respawn_in_flight_;
    drained_cv_.notify_all();
  }
}

}  // namespace jem::serve
