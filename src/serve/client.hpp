// Minimal blocking HTTP/1.1 client for the mapping service: one request per
// connection (matching the server's `Connection: close`), loopback-oriented.
// This is the transport behind tests/serve/, `jem probe`, bench_serve, and
// the check.sh smoke — not a general-purpose client.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/http.hpp"

namespace jem::serve {

/// Transport-level client failure (connect/send/recv/parse). HTTP error
/// statuses are NOT exceptions — they come back as HttpResponse::status.
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sends one request to host:port and returns the parsed response. Throws
/// ClientError on transport failure; `timeout` bounds each socket wait.
[[nodiscard]] HttpResponse http_request(
    const std::string& host, std::uint16_t port, const HttpRequest& request,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

/// GET `target` (path + optional query string).
[[nodiscard]] HttpResponse http_get(
    const std::string& host, std::uint16_t port, std::string_view target,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

/// POST `body` to `target`.
[[nodiscard]] HttpResponse http_post(
    const std::string& host, std::uint16_t port, std::string_view target,
    std::string_view body,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

}  // namespace jem::serve
