// HTTP/1.1 client layer for the mapping service: one request per connection
// (matching the server's `Connection: close`), loopback-oriented.
//
// Two tiers:
//  * http_request / http_get / http_post — the raw blocking transport: one
//    attempt, throws ClientError on any socket/parse failure. These remain
//    what byte-level tests use when they WANT to see a failure.
//  * Client — the resilient front end `jem probe` and the chaos suite use:
//    retries with exponential backoff + full jitter, honors Retry-After on
//    503 sheds, enforces per-attempt and overall deadlines, retries
//    connection resets only for idempotent requests, and trips a
//    closed/open/half-open circuit breaker whose state is exported through
//    obs gauges. Against a server running a seeded fault plan (resets,
//    truncated writes, worker aborts) the Client completes every request
//    bit-identical to a fault-free run — the acceptance contract of the
//    serve chaos suite.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/http.hpp"

namespace jem::serve {

/// Transport-level client failure (connect/send/recv/parse). HTTP error
/// statuses are NOT exceptions — they come back as HttpResponse::status.
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sends one request to host:port and returns the parsed response. Throws
/// ClientError on transport failure; `timeout` bounds each socket wait.
[[nodiscard]] HttpResponse http_request(
    const std::string& host, std::uint16_t port, const HttpRequest& request,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

/// GET `target` (path + optional query string).
[[nodiscard]] HttpResponse http_get(
    const std::string& host, std::uint16_t port, std::string_view target,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

/// POST `body` to `target`.
[[nodiscard]] HttpResponse http_post(
    const std::string& host, std::uint16_t port, std::string_view target,
    std::string_view body,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

/// Circuit breaker state machine (closed → open → half-open → closed), the
/// standard release-valve in front of a struggling dependency. Pure logic
/// with injected time, so the unit tests script it deterministically: no
/// clock reads, no sleeps, no locking (Client serializes access).
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive failures that trip closed → open.
    int failure_threshold = 5;
    /// How long the breaker stays open before admitting a half-open probe.
    std::chrono::milliseconds cooldown{1000};
    /// Consecutive successes that close a half-open breaker.
    int half_open_successes = 1;
  };

  explicit CircuitBreaker(Config config) : config_(config) {}

  /// True when a request may proceed at `now`. An open breaker past its
  /// cooldown transitions to half-open and admits exactly the probes that
  /// follow (each failure re-opens it).
  [[nodiscard]] bool allow(Clock::time_point now);

  void on_success(Clock::time_point now);
  void on_failure(Clock::time_point now);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] int consecutive_failures() const noexcept { return failures_; }
  /// Lifetime closed→open transitions.
  [[nodiscard]] std::uint64_t opens() const noexcept { return opens_; }
  /// Earliest instant an open breaker will admit a half-open probe.
  [[nodiscard]] Clock::time_point retry_at() const noexcept {
    return opened_at_ + config_.cooldown;
  }

  /// Stable name for logs/metrics: "closed" | "open" | "half-open".
  [[nodiscard]] static std::string_view state_name(State state) noexcept;

 private:
  void open(Clock::time_point now);

  Config config_;
  State state_ = State::kClosed;
  int failures_ = 0;        // consecutive, in closed state
  int probe_successes_ = 0;  // consecutive, in half-open state
  Clock::time_point opened_at_{};
  std::uint64_t opens_ = 0;
};

/// Retry schedule: exponential backoff with full jitter (sleep uniform in
/// [0, min(max_backoff, initial << attempt)]), deterministic given
/// jitter_seed. A 503 with Retry-After sleeps at least that hint.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Socket-level timeout per attempt.
  std::chrono::milliseconds attempt_timeout{10000};
  /// Overall budget across attempts and backoff sleeps; zero = unbounded.
  std::chrono::milliseconds overall_deadline{0};
  bool honor_retry_after = true;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Resilient HTTP client: one instance per target server, shared across
/// threads (`jem probe` hands one to its whole worker pool — all state is
/// mutex-guarded; socket I/O runs outside the lock).
class Client {
 public:
  Client(std::string host, std::uint16_t port, RetryPolicy policy = {},
         CircuitBreaker::Config breaker = {},
         obs::Registry* metrics = nullptr);

  /// Sends with retries. `idempotent` gates retry-after-reset: a request
  /// whose connection died mid-flight is only re-sent when re-executing it
  /// is safe (every mapping-service endpoint is a pure function, so the
  /// callers here pass true; false restores one-shot transport semantics
  /// for the reset case). Returns the last HttpResponse seen — callers
  /// inspect .status. Throws ClientError when every attempt failed at the
  /// transport level, the circuit is open past the deadline, or the overall
  /// deadline expired before a response landed.
  [[nodiscard]] HttpResponse request(const HttpRequest& request,
                                     bool idempotent = true);

  [[nodiscard]] HttpResponse get(std::string_view target);
  [[nodiscard]] HttpResponse post(std::string_view target,
                                  std::string_view body,
                                  bool idempotent = true);

  [[nodiscard]] CircuitBreaker::State breaker_state() const;
  [[nodiscard]] std::uint64_t attempts() const;
  [[nodiscard]] std::uint64_t retries() const;

  /// Wires a tracer: each request() gets a `client.request[<trace_id>]`
  /// span covering all attempts and backoff sleeps. Optional — nullptr
  /// (the default) keeps the client span-free.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Trace context of the most recent request() call (the ids the server
  /// saw in `traceparent`). Empty until the first request.
  [[nodiscard]] obs::TraceContext last_trace() const;

 private:
  [[nodiscard]] std::chrono::milliseconds backoff_delay(
      int attempt, std::chrono::milliseconds retry_after_hint);

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  obs::Registry* metrics_;
  obs::Tracer* tracer_ = nullptr;

  mutable std::mutex mutex_;  // guards breaker_, rng_state_, tallies
  CircuitBreaker breaker_;
  std::uint64_t rng_state_;
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
  obs::TraceContext last_trace_;  // guarded by mutex_
};

}  // namespace jem::serve
