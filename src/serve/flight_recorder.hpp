// Flight recorder (docs/observability.md "Flight recorder"): a fixed-size
// ring of per-request records kept by the live server, so "what did the
// last N requests actually do" is answerable without logs or a tracer —
// `GET /debug/requests` serves it as JSON (newest-first, filterable), and
// SIGUSR1 dumps it to stderr.
//
// Lock-cheap by sharding: the ring is split across kShards independently
// mutex-guarded sub-rings; a push picks its shard by the caller's metrics
// stripe, holds that shard's mutex only for one record move, and never
// allocates ring storage after construction. Readers (rare) lock shards one
// at a time and merge by the global sequence number.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jem::serve {

/// One completed request, as the server saw it.
struct FlightRecord {
  std::uint64_t seq = 0;        ///< Global completion order (1-based).
  std::string trace_id;         ///< 32 hex chars (W3C trace id).
  std::string request_id;       ///< 16 hex chars (server span id).
  std::string endpoint;         ///< Request path, e.g. "/map".
  int status = 0;               ///< HTTP status served.
  bool cache_hit = false;       ///< /map answered from the LRU.
  std::uint64_t batch = 0;      ///< Micro-batch id (0 = not batched).
  std::uint64_t queue_wait_ns = 0;  ///< Admission -> batcher pop.
  std::uint64_t map_ns = 0;         ///< map_batch wall time of its batch.
  std::uint64_t serialize_ns = 0;   ///< Response-body construction.
  std::uint64_t total_ns = 0;       ///< handle() entry to exit.
  std::string annotation;  ///< Shed/fault/deadline note; empty = clean.
};

/// Selection predicate for dump()/to_json().
struct FlightFilter {
  int status = 0;                  ///< 0 = any; else exact match.
  std::uint64_t min_total_ns = 0;  ///< Keep records at least this slow.
  std::size_t limit = ~std::size_t{0};  ///< Max records returned.
};

class FlightRecorder {
 public:
  /// Retains the newest `capacity` records (clamped to >= 1).
  explicit FlightRecorder(std::size_t capacity);

  /// Records one completed request. O(1), one short shard lock.
  void push(FlightRecord record);

  /// Matching records, newest first.
  [[nodiscard]] std::vector<FlightRecord> dump(
      const FlightFilter& filter = {}) const;

  /// `{"capacity":...,"recorded":...,"requests":[...]}`, newest first.
  [[nodiscard]] std::string to_json(const FlightFilter& filter = {}) const;

  /// Human-readable table (one line per record, newest first) for the
  /// SIGUSR1 stderr dump.
  [[nodiscard]] std::string to_text(std::size_t limit = ~std::size_t{0}) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Lifetime count of records pushed (>= retained).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    std::vector<FlightRecord> ring;  ///< Fixed capacity after construction.
    std::size_t next = 0;            ///< Ring write cursor.
    std::size_t used = 0;            ///< Occupied slots (<= ring.size()).
  };

  std::size_t capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace jem::serve
